#!/usr/bin/env bash
# Tier-1 CI: offline build + full test suite + zero-dependency policy check.
#
# The workspace must build and test with NO network and NO crates.io
# registry: every dependency in every crate manifest is a `path`
# dependency inside this repository. This script is the enforcement
# point — it fails if any manifest acquires a registry dependency.
set -euo pipefail
cd "$(dirname "$0")"

echo "== zero-dependency policy =="
# Inspect every [dependencies]/[dev-dependencies]/[build-dependencies]
# section; each entry must carry `path =` or `workspace = true` (the
# workspace table itself is path-only, checked below).
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    deps=$(awk '
        /^\[(workspace\.)?(dependencies|dev-dependencies|build-dependencies)\]/ { on=1; next }
        /^\[/ { on=0 }
        on && NF && $0 !~ /^#/ { print FILENAME ": " $0 }
    ' "$manifest")
    while IFS= read -r line; do
        [ -z "$line" ] && continue
        if ! echo "$line" | grep -Eq 'path *=|workspace *= *true'; then
            echo "registry dependency found -> $line"
            bad=1
        fi
    done <<< "$deps"
done
if [ "$bad" -ne 0 ]; then
    echo "FAIL: non-path dependencies detected (zero-dependency policy, README.md)"
    exit 1
fi
echo "ok: all dependencies are path-only"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (TIMEDRL_THREADS=1) =="
TIMEDRL_THREADS=1 cargo test --offline -q

echo "== tests (TIMEDRL_THREADS=4) =="
TIMEDRL_THREADS=4 cargo test --offline -q

echo "== determinism probe: checkpoint byte-equality across thread counts =="
# A tiny data-parallel pretrain must serialize identically no matter how
# many pool workers ran it (see DESIGN.md, deterministic parallelism).
cargo build --release --offline -p timedrl-bench --bin pretrain_checkpoint
probe_dir=$(mktemp -d)
trap 'rm -rf "$probe_dir"' EXIT
TIMEDRL_THREADS=1 ./target/release/pretrain_checkpoint "$probe_dir/ckpt_t1.bin"
TIMEDRL_THREADS=4 ./target/release/pretrain_checkpoint "$probe_dir/ckpt_t4.bin"
if ! cmp "$probe_dir/ckpt_t1.bin" "$probe_dir/ckpt_t4.bin"; then
    echo "FAIL: pretrain checkpoint differs between TIMEDRL_THREADS=1 and 4"
    exit 1
fi
echo "ok: checkpoints byte-identical"

echo "== kill-and-resume gate: checkpoint resume is bit-exact =="
# Crash-safe checkpointing (DESIGN.md §11): 4 epochs straight vs 2 epochs +
# training-state snapshot + resume for 2 in a *separate process* must yield
# byte-identical final model checkpoints, at any thread count.
cargo build --release --offline -p timedrl-bench --bin resume_probe
for threads in 1 4; do
    export TIMEDRL_THREADS=$threads
    ./target/release/resume_probe straight "$probe_dir/straight_t$threads.bin"
    ./target/release/resume_probe phase1 "$probe_dir/state_t$threads.tdrl"
    ./target/release/resume_probe phase2 "$probe_dir/state_t$threads.tdrl" "$probe_dir/resumed_t$threads.bin"
    if ! cmp "$probe_dir/straight_t$threads.bin" "$probe_dir/resumed_t$threads.bin"; then
        echo "FAIL: resumed checkpoint differs from straight run at TIMEDRL_THREADS=$threads"
        exit 1
    fi
done
unset TIMEDRL_THREADS
echo "ok: resumed runs byte-identical to uninterrupted runs (threads 1 and 4)"

echo "== allocation budget: steady-state training step =="
# The tensor buffer pool and the inline autograd tape keep a steady-state
# whole-batch training step near-allocation-free (DESIGN.md §10). The seed
# code performed 8944 heap allocations per step; the transpose-aware
# backward (DESIGN.md §12) brought the steady state down to 416, fused
# attention (DESIGN.md §17) to 376, and the budget below is that
# measurement plus ~10% headroom. Measured at TIMEDRL_THREADS=1 so
# pool-worker allocations cannot pollute the process-global counter.
ALLOC_BUDGET=415
cargo build --release --offline -p timedrl-bench --bin step_alloc_probe
alloc_line=$(TIMEDRL_THREADS=1 ./target/release/step_alloc_probe)
allocs=${alloc_line#allocs_per_step=}
echo "steady-state allocations/step: $allocs (budget $ALLOC_BUDGET, seed baseline 8944)"
if [ "$allocs" -gt "$ALLOC_BUDGET" ]; then
    echo "FAIL: training step allocates $allocs blocks/step, budget is $ALLOC_BUDGET"
    exit 1
fi
echo "ok: allocation budget held"

echo "== fused-attention gate: bitwise parity + speedup over materialized path =="
# The fused tiled attention kernel (DESIGN.md §17) replaced the composed
# matmul_t -> scale -> mask -> softmax -> matmul chain on every hot path.
# The probe proves forward AND backward bit-identical to that chain at
# pool thread counts 1 and 4, then requires a >=1.5x median speedup over
# the materialized [B*H, T, T] path at T=256.
cargo build --release --offline -p timedrl-bench --bin attn_probe
attn_out=$(TIMEDRL_THREADS=1 ./target/release/attn_probe)
echo "$attn_out"
if ! echo "$attn_out" | grep -q '^parity=ok$'; then
    echo "FAIL: fused attention diverged bitwise from the materialized path"
    exit 1
fi
echo "ok: fused attention bit-exact and fast enough"

echo "== serving gate: compiled inference parity + zero allocs/request =="
# The tape-free serving path (DESIGN.md §13): export a fixture model, run
# the real embed_server binary over its stdin/stdout frame protocol, then
# verify (a) the compiled forward is byte-identical to the tape-path
# golden outputs, (b) every server response carries those same bytes, and
# (c) a warmed request performs zero heap allocations. TIMEDRL_THREADS=1
# because the allocation counter is process-global.
cargo build --release --offline -p timedrl-serve --bin embed_server --bin serve_probe
serve_dir="$probe_dir/serve"
TIMEDRL_THREADS=1 ./target/release/serve_probe prepare "$serve_dir"
TIMEDRL_THREADS=1 ./target/release/embed_server --stdio "$serve_dir/model.tdrl" \
    < "$serve_dir/request.bin" > "$serve_dir/response.bin"
check_out=$(TIMEDRL_THREADS=1 ./target/release/serve_probe check "$serve_dir")
echo "$check_out"
allocs=$(echo "$check_out" | sed -n 's/^allocs_per_request=//p')
if [ "$allocs" != "0" ]; then
    echo "FAIL: warmed embedding request allocates $allocs blocks, budget is 0"
    exit 1
fi
echo "ok: serving path bit-exact and allocation-free"

echo "== quantized-serving gate: relaxed tier quality + typed refusal =="
# The relaxed exactness tier (DESIGN.md §15): int8 quantized serving must
# not change downstream answers. The probe fits the paper's linear
# readouts on exact- and relaxed-tier embeddings of one dataset and
# requires classification accuracy and forecast MSE to agree within ε,
# plus the zero-allocation steady state on the relaxed path.
cargo build --release --offline -p timedrl-bench --bin quant_probe
quant_out=$(TIMEDRL_THREADS=1 ./target/release/quant_probe)
echo "$quant_out"
if ! echo "$quant_out" | grep -q '^quality=ok$'; then
    echo "FAIL: relaxed tier drifted beyond the quality budget"
    exit 1
fi
# A relaxed server's responses are only ε-comparable: the byte-exact
# golden gate must *refuse* them with the typed precision-mismatch error
# rather than report a spurious byte diff.
cp "$serve_dir/response.bin" "$serve_dir/response_exact.bin"
TIMEDRL_THREADS=1 ./target/release/embed_server --stdio --precision relaxed \
    "$serve_dir/model.tdrl" < "$serve_dir/request.bin" > "$serve_dir/response.bin"
if refusal=$(TIMEDRL_THREADS=1 ./target/release/serve_probe check "$serve_dir" 2>&1); then
    echo "FAIL: serve_probe byte-compared a relaxed response against exact goldens"
    exit 1
fi
if ! echo "$refusal" | grep -q "precision mismatch"; then
    echo "FAIL: relaxed refusal was not the typed precision-mismatch error:"
    echo "$refusal"
    exit 1
fi
cp "$serve_dir/response_exact.bin" "$serve_dir/response.bin"
# The exact tier must be untouched by the quantized kernels landing:
# re-run the strict bitwise parity suite as part of this gate.
TIMEDRL_THREADS=1 cargo test --offline -q -p timedrl-serve --test parity
echo "ok: relaxed tier within quality budget, exact tier still bitwise, refusal typed"

echo "== streaming gate: tick-by-tick equivalence + zero allocs/tick =="
# The streaming engine (DESIGN.md §14): the equivalence property suite
# must prove the incremental path matches the batch path — bitwise on
# exact-stats hops, within ε between — at multiple thread counts, and a
# warmed steady-state tick must perform zero heap allocations (measured
# at TIMEDRL_THREADS=1 because the allocation counter is process-global).
for threads in 1 4; do
    echo "-- equivalence suite (TIMEDRL_THREADS=$threads) --"
    TIMEDRL_THREADS=$threads cargo test --offline -q -p timedrl-stream --test equivalence
done
cargo build --release --offline -p timedrl-stream --bin stream_probe
stream_out=$(TIMEDRL_THREADS=1 ./target/release/stream_probe)
echo "$stream_out"
allocs=$(echo "$stream_out" | sed -n 's/^allocs_per_tick=//p')
if [ "$allocs" != "0" ]; then
    echo "FAIL: warmed streaming tick allocates $allocs blocks, budget is 0"
    exit 1
fi
if ! echo "$stream_out" | grep -q '^equivalence=ok$'; then
    echo "FAIL: stream_probe did not confirm batch equivalence"
    exit 1
fi
echo "ok: streaming path matches the batch path and is allocation-free"

echo "== sharded-pretraining gate: multi-process determinism + crash recovery =="
# Out-of-core sharded pretraining (DESIGN.md §16): N worker *processes*
# exchanging gradients through atomic checkpoint files must produce a
# final checkpoint byte-identical to the single-process run at workers
# {1, 2, 4}, and killing a worker mid-run (follower AND coordinator) then
# respawning it must recover to the same bytes.
cargo build --release --offline -p timedrl-bench --bin shard_probe
shard_dir="$probe_dir/shards"
./target/release/shard_probe prepare "$shard_dir"
for n in 1 2 4; do
    ./target/release/shard_probe run "$shard_dir" "$probe_dir/shard_run$n" "$n" "$probe_dir/shard_final$n.tdrl"
done
for n in 2 4; do
    if ! cmp "$probe_dir/shard_final1.tdrl" "$probe_dir/shard_final$n.tdrl"; then
        echo "FAIL: $n-worker sharded checkpoint differs from the single-process run"
        exit 1
    fi
done
echo "ok: sharded checkpoints byte-identical at workers 1, 2, 4"
# Kill-and-resume across real process boundaries: a follower (worker 1),
# then the coordinator (worker 0), each killed at optimizer step 2.
for victim in 1 0; do
    ./target/release/shard_probe crash "$shard_dir" "$probe_dir/shard_crash$victim" 2 "$victim" "$probe_dir/shard_crash_final$victim.tdrl"
    if ! cmp "$probe_dir/shard_final1.tdrl" "$probe_dir/shard_crash_final$victim.tdrl"; then
        echo "FAIL: kill-and-resume of worker $victim diverged from the uninterrupted run"
        exit 1
    fi
done
echo "ok: sharded runs recover bit-exactly from a killed follower and a killed coordinator"

echo "== CI green =="
