//! Patching (PatchTST-style): aggregating adjacent timesteps into tokens.
//!
//! Eq. 1 of the paper: a `[T, C]` sample becomes `[T_p, C·P]` where `P` is
//! the patch length and `T_p = ⌊(T − P)/S⌋ + 1` for stride `S`. The encoder
//! input then grows by one `[CLS]` slot to `1 + T_p` tokens (Fig. 4's
//! `⌊(L−P)/S⌋ + 2` accounting).

use timedrl_tensor::NdArray;

/// Patching configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchConfig {
    /// Patch length `P` (timesteps per token).
    pub patch_len: usize,
    /// Stride `S` between patch starts.
    pub stride: usize,
}

impl PatchConfig {
    /// Non-overlapping patches of length `p`.
    pub fn non_overlapping(p: usize) -> Self {
        Self { patch_len: p, stride: p }
    }

    /// Number of patches produced from a length-`t` series.
    pub fn num_patches(&self, t: usize) -> usize {
        assert!(t >= self.patch_len, "series shorter than one patch ({t} < {})", self.patch_len);
        (t - self.patch_len) / self.stride + 1
    }

    /// Encoder sequence length including the `[CLS]` token.
    pub fn encoder_len(&self, t: usize) -> usize {
         1 + self.num_patches(t)
    }
}

/// Patches a single `[T, C]` sample into `[T_p, C·P]`.
///
/// Within a patch token the layout is timestep-major: token `i` holds
/// `x[i·S .. i·S+P]` flattened as `[t0c0, t0c1, ..., t1c0, ...]`.
pub fn patch_sample(x: &NdArray, cfg: &PatchConfig) -> NdArray {
    assert_eq!(x.rank(), 2, "patch_sample expects [T, C]");
    let (t, c) = (x.shape()[0], x.shape()[1]);
    let n = cfg.num_patches(t);
    let mut data = Vec::with_capacity(n * cfg.patch_len * c);
    for p in 0..n {
        let start = p * cfg.stride;
        data.extend_from_slice(&x.data()[start * c..(start + cfg.patch_len) * c]);
    }
    NdArray::from_vec(&[n, c * cfg.patch_len], data).expect("patch shape")
}

/// Patches a `[B, T, C]` batch into `[B, T_p, C·P]`.
pub fn patch_batch(x: &NdArray, cfg: &PatchConfig) -> NdArray {
    assert_eq!(x.rank(), 3, "patch_batch expects [B, T, C]");
    let b = x.shape()[0];
    let parts: Vec<NdArray> = (0..b).map(|i| patch_sample(&x.index_axis0(i), cfg)).collect();
    let refs: Vec<&NdArray> = parts.iter().collect();
    NdArray::stack(&refs)
}

/// Reconstructs a `[T, C]` sample from non-overlapping patches (the inverse
/// of [`patch_sample`] when `stride == patch_len` and `P | T`).
pub fn unpatch_sample(patched: &NdArray, cfg: &PatchConfig, c: usize) -> NdArray {
    assert_eq!(cfg.stride, cfg.patch_len, "unpatch requires non-overlapping patches");
    let n = patched.shape()[0];
    let t = n * cfg.patch_len;
    NdArray::from_vec(&[t, c], patched.data().to_vec()).expect("unpatch shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_tensor::Prng;

    #[test]
    fn patch_count_matches_paper_formula() {
        let cfg = PatchConfig { patch_len: 16, stride: 8 };
        // Fig. 4 text: L=512, P=16, S=8 -> floor((512-16)/8)+2 = 64 tokens
        // including [CLS].
        assert_eq!(cfg.encoder_len(512), (512 - 16) / 8 + 2);
    }

    #[test]
    fn non_overlapping_roundtrip() {
        let mut rng = Prng::new(0);
        let x = rng.randn(&[24, 3]);
        let cfg = PatchConfig::non_overlapping(4);
        let p = patch_sample(&x, &cfg);
        assert_eq!(p.shape(), &[6, 12]);
        let back = unpatch_sample(&p, &cfg, 3);
        assert_eq!(back, x);
    }

    #[test]
    fn overlapping_patches_share_content() {
        let x = NdArray::from_fn(&[8, 1], |i| i as f32);
        let cfg = PatchConfig { patch_len: 4, stride: 2 };
        let p = patch_sample(&x, &cfg);
        assert_eq!(p.shape(), &[3, 4]);
        // Patch 0 = [0,1,2,3], patch 1 = [2,3,4,5]: overlap of 2.
        assert_eq!(p.at(&[0, 2]), p.at(&[1, 0]));
        assert_eq!(p.at(&[0, 3]), p.at(&[1, 1]));
    }

    #[test]
    fn patch_batch_shapes() {
        let mut rng = Prng::new(1);
        let x = rng.randn(&[5, 16, 2]);
        let cfg = PatchConfig::non_overlapping(8);
        let p = patch_batch(&x, &cfg);
        assert_eq!(p.shape(), &[5, 2, 16]);
    }

    #[test]
    fn patch_token_layout_is_timestep_major() {
        // x[t, c] = 10 t + c; the first token must read t=0's channels then
        // t=1's channels.
        let x = NdArray::from_fn(&[4, 2], |flat| {
            let (t, c) = (flat / 2, flat % 2);
            (10 * t + c) as f32
        });
        let p = patch_sample(&x, &PatchConfig::non_overlapping(2));
        assert_eq!(p.data()[..4], [0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "shorter than one patch")]
    fn too_short_series_panics() {
        let x = NdArray::zeros(&[3, 1]);
        patch_sample(&x, &PatchConfig::non_overlapping(4));
    }
}
