//! Out-of-core dataset shards: a long `[T, C]` series split into
//! CRC-framed container files so training can stream datasets much larger
//! than RAM (DESIGN.md §16).
//!
//! # Shard container (`KIND_SHARD`, v2 framing)
//!
//! Each shard reuses the checkpoint container machinery
//! (`timedrl_tensor::serialize`): `"TDRL"` magic, `u64` payload length, an
//! IEEE CRC-32 verified before any byte is interpreted, atomic
//! temp+fsync+rename writes, and 64 KiB bounded chunked reads. The payload
//! body is a manifest header followed by a contiguous row slab:
//!
//! ```text
//! u64 shard_index    u64 total_shards   u64 global_offset
//! u64 rows           u64 channels       u64 total_rows
//! rows × channels × f32-le
//! ```
//!
//! The manifest is *self-describing and redundant*: every shard names the
//! full split it belongs to, so [`ShardedDataset::open`] can detect a
//! missing shard, a shard from a different split, or a duplicated index —
//! without a separate manifest file that could itself go stale.
//!
//! # Memory model
//!
//! [`ShardedDataset::open`] verifies every shard (full CRC read) but holds
//! only the headers: one shard slab is resident at a time. The streaming
//! window iterator ([`ShardedDataset::windows`]) keeps a rolling row
//! buffer that never exceeds one shard plus one window span, so peak
//! resident data is bounded by the shard size regardless of `T`. Windows
//! are produced by pure `memcpy` from the slabs — **bitwise-equal** to the
//! in-memory [`sliding_windows`](crate::window::sliding_windows) path,
//! including windows straddling shard boundaries (a property test in
//! `crates/integration` pins this).

use crate::window::WindowedForecast;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use timedrl_tensor::serialize::{read_file, write_file_atomic, ByteReader, KIND_SHARD};
use timedrl_tensor::NdArray;

/// A failure in the shard layer, surfaced as a value per the library-code
/// panic-free contract (DESIGN.md §11).
#[derive(Debug)]
pub enum ShardError {
    /// Underlying filesystem failure (open, create, rename, …).
    Io(io::Error),
    /// The series or split geometry handed to the writer is unusable.
    BadSplit(String),
    /// A shard file failed container validation (bad magic/CRC/kind,
    /// truncation, or garbage in the manifest header).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What the reader rejected.
        detail: String,
    },
    /// The set of shard files in a directory does not assemble into one
    /// consistent split (missing/duplicated index, disagreeing totals,
    /// non-contiguous offsets, or a shard from a different split).
    ManifestMismatch {
        /// The shard directory.
        dir: PathBuf,
        /// What was inconsistent.
        detail: String,
    },
    /// The window plan is degenerate (zero stride or zero span).
    BadWindowPlan(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard io error: {e}"),
            ShardError::BadSplit(msg) => write!(f, "bad shard split: {msg}"),
            ShardError::Corrupt { path, detail } => {
                write!(f, "corrupt shard {}: {detail}", path.display())
            }
            ShardError::ManifestMismatch { dir, detail } => {
                write!(f, "inconsistent shard set in {}: {detail}", dir.display())
            }
            ShardError::BadWindowPlan(msg) => write!(f, "bad window plan: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// The manifest header every shard file carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMeta {
    /// This shard's position in the split, `0..total_shards`.
    pub shard_index: u64,
    /// Number of shards in the split this shard belongs to.
    pub total_shards: u64,
    /// Row index (into the full series) of this shard's first row.
    pub global_offset: u64,
    /// Rows in this shard.
    pub rows: u64,
    /// Channels (`C`) — identical across the split.
    pub channels: u64,
    /// Total rows (`T`) of the full series.
    pub total_rows: u64,
}

/// The canonical on-disk name of shard `index`.
pub fn shard_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("shard_{index:05}.tdrl"))
}

/// Splits an in-memory `[T, C]` series into `KIND_SHARD` container files —
/// deterministically: the same series and `rows_per_shard` always produce
/// the same bytes.
#[derive(Debug, Clone)]
pub struct ShardWriter {
    rows_per_shard: usize,
}

impl ShardWriter {
    /// Creates a writer producing shards of `rows_per_shard` rows (the
    /// last shard holds the remainder).
    ///
    /// # Errors
    /// [`ShardError::BadSplit`] when `rows_per_shard == 0`.
    pub fn new(rows_per_shard: usize) -> Result<Self, ShardError> {
        if rows_per_shard == 0 {
            return Err(ShardError::BadSplit("rows_per_shard must be positive".into()));
        }
        Ok(Self { rows_per_shard })
    }

    /// Writes the shard files for `series` into `dir` (created if absent),
    /// atomically (temp + fsync + rename per shard). Returns the paths in
    /// shard order.
    ///
    /// # Errors
    /// [`ShardError::BadSplit`] for a non-`[T, C]` or empty series,
    /// [`ShardError::Io`] on filesystem failures.
    pub fn write(&self, series: &NdArray, dir: impl AsRef<Path>) -> Result<Vec<PathBuf>, ShardError> {
        let dir = dir.as_ref();
        if series.rank() != 2 {
            return Err(ShardError::BadSplit(format!(
                "series must be [T, C], got shape {:?}",
                series.shape()
            )));
        }
        let (t, c) = (series.shape()[0], series.shape()[1]);
        if t == 0 || c == 0 {
            return Err(ShardError::BadSplit(format!("empty series [{t}, {c}]")));
        }
        std::fs::create_dir_all(dir)?;
        let total_shards = t.div_ceil(self.rows_per_shard);
        let mut paths = Vec::with_capacity(total_shards);
        for i in 0..total_shards {
            let offset = i * self.rows_per_shard;
            let rows = self.rows_per_shard.min(t - offset);
            let meta = ShardMeta {
                shard_index: i as u64,
                total_shards: total_shards as u64,
                global_offset: offset as u64,
                rows: rows as u64,
                channels: c as u64,
                total_rows: t as u64,
            };
            let slab = &series.data()[offset * c..(offset + rows) * c];
            let mut payload = Vec::with_capacity(52 + slab.len() * 4);
            payload.extend_from_slice(&KIND_SHARD.to_le_bytes());
            for word in [
                meta.shard_index,
                meta.total_shards,
                meta.global_offset,
                meta.rows,
                meta.channels,
                meta.total_rows,
            ] {
                payload.extend_from_slice(&word.to_le_bytes());
            }
            for &v in slab {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            let path = shard_path(dir, i as u64);
            write_file_atomic(&path, &payload)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> ShardError {
    ShardError::Corrupt { path: path.to_path_buf(), detail: detail.into() }
}

/// Reads and fully validates one shard file: container framing (magic,
/// version, CRC, kind, no trailing bytes) plus manifest-header sanity.
/// Returns the header and the `rows × channels` row slab.
///
/// # Errors
/// [`ShardError::Corrupt`] on any framing or header problem;
/// [`ShardError::Io`] when the file cannot be read at all.
pub fn read_shard(path: impl AsRef<Path>) -> Result<(ShardMeta, Vec<f32>), ShardError> {
    let path = path.as_ref();
    let payload = read_file(path, KIND_SHARD).map_err(|e| {
        // InvalidData is the framing layer's corruption verdict;
        // UnexpectedEof is a truncated file — both are corruption, not
        // transient I/O.
        if matches!(e.kind(), io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof) {
            corrupt(path, e.to_string())
        } else {
            ShardError::Io(e)
        }
    })?;
    let mut r = ByteReader::new(&payload);
    let mut words = [0u64; 6];
    for w in &mut words {
        *w = r.u64().map_err(|e| corrupt(path, e.to_string()))?;
    }
    let meta = ShardMeta {
        shard_index: words[0],
        total_shards: words[1],
        global_offset: words[2],
        rows: words[3],
        channels: words[4],
        total_rows: words[5],
    };
    if meta.total_shards == 0 || meta.shard_index >= meta.total_shards {
        return Err(corrupt(
            path,
            format!("shard index {} of {} shards", meta.shard_index, meta.total_shards),
        ));
    }
    if meta.rows == 0 || meta.channels == 0 {
        return Err(corrupt(path, format!("degenerate slab [{}, {}]", meta.rows, meta.channels)));
    }
    let end = meta
        .global_offset
        .checked_add(meta.rows)
        .filter(|&end| end <= meta.total_rows)
        .ok_or_else(|| {
            corrupt(
                path,
                format!(
                    "rows {}..{:?} exceed total_rows {}",
                    meta.global_offset,
                    meta.global_offset.checked_add(meta.rows),
                    meta.total_rows
                ),
            )
        })?;
    let _ = end;
    let numel = (meta.rows as usize)
        .checked_mul(meta.channels as usize)
        .ok_or_else(|| corrupt(path, "slab element count overflows"))?;
    let slab = r.f32_vec(numel).map_err(|e| corrupt(path, e.to_string()))?;
    r.finish().map_err(|e| corrupt(path, e.to_string()))?;
    Ok((meta, slab))
}

/// A directory of shard files opened as one logical dataset.
///
/// `open` CRC-verifies every shard (loading one slab at a time, so peak
/// memory stays one shard) and cross-checks the manifest headers into one
/// consistent split; afterwards only the headers stay resident.
#[derive(Debug, Clone)]
pub struct ShardedDataset {
    dir: PathBuf,
    metas: Vec<ShardMeta>,
}

impl ShardedDataset {
    /// Opens and validates the shard set in `dir`.
    ///
    /// # Errors
    /// [`ShardError::Corrupt`] if any shard fails container validation,
    /// [`ShardError::ManifestMismatch`] if the shards do not assemble into
    /// exactly one split (missing/duplicate/foreign shards, disagreeing
    /// totals, non-contiguous offsets).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, ShardError> {
        let dir = dir.as_ref().to_path_buf();
        let mismatch = |detail: String| ShardError::ManifestMismatch { dir: dir.clone(), detail };
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard_") && n.ends_with(".tdrl"))
            })
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(mismatch("no shard_*.tdrl files".into()));
        }
        let mut metas = Vec::with_capacity(paths.len());
        for path in &paths {
            // Slab dropped immediately: open() never holds two shards.
            let (meta, _slab) = read_shard(path)?;
            metas.push(meta);
        }
        let total = metas[0].total_shards;
        if metas.len() as u64 != total {
            return Err(mismatch(format!(
                "{} shard files for a split of {total} shards",
                metas.len()
            )));
        }
        metas.sort_by_key(|m| m.shard_index);
        let mut offset = 0u64;
        for (i, m) in metas.iter().enumerate() {
            if m.shard_index != i as u64 {
                return Err(mismatch(format!(
                    "shard index {} where {} was expected (missing or duplicated shard)",
                    m.shard_index, i
                )));
            }
            if m.total_shards != total
                || m.channels != metas[0].channels
                || m.total_rows != metas[0].total_rows
            {
                return Err(mismatch(format!(
                    "shard {i} describes a different split ({} shards, {} channels, {} rows) \
                     than shard 0 ({total}, {}, {})",
                    m.total_shards, m.channels, m.total_rows, metas[0].channels, metas[0].total_rows
                )));
            }
            if m.global_offset != offset {
                return Err(mismatch(format!(
                    "shard {i} starts at row {} where {} was expected (gap or overlap)",
                    m.global_offset, offset
                )));
            }
            offset += m.rows;
        }
        if offset != metas[0].total_rows {
            return Err(mismatch(format!(
                "shards cover {offset} rows of a {}-row series",
                metas[0].total_rows
            )));
        }
        Ok(Self { dir, metas })
    }

    /// Number of shards in the split.
    pub fn num_shards(&self) -> usize {
        self.metas.len()
    }

    /// Channels (`C`) of the series.
    pub fn channels(&self) -> usize {
        self.metas[0].channels as usize
    }

    /// Total rows (`T`) of the full series.
    pub fn total_rows(&self) -> usize {
        self.metas[0].total_rows as usize
    }

    /// Header of shard `j`.
    pub fn meta(&self, j: usize) -> &ShardMeta {
        &self.metas[j]
    }

    /// Loads shard `j`'s slab, re-verifying its CRC and re-checking the
    /// header against the one captured at `open` (a file swapped on disk
    /// in between is a manifest mismatch, not silent bad data).
    fn load_slab(&self, j: usize) -> Result<Vec<f32>, ShardError> {
        let path = shard_path(&self.dir, j as u64);
        let (meta, slab) = read_shard(&path)?;
        if meta != self.metas[j] {
            return Err(ShardError::ManifestMismatch {
                dir: self.dir.clone(),
                detail: format!("shard {j} changed on disk since open: {meta:?} vs {:?}", self.metas[j]),
            });
        }
        Ok(slab)
    }

    fn check_plan(&self, span: usize, stride: usize) -> Result<(), ShardError> {
        if stride == 0 {
            return Err(ShardError::BadWindowPlan("stride must be positive".into()));
        }
        if span == 0 {
            return Err(ShardError::BadWindowPlan("lookback + horizon must be positive".into()));
        }
        Ok(())
    }

    /// Number of `(lookback, horizon)` windows at `stride` over the full
    /// series — the same count formula as the in-memory
    /// [`sliding_windows`](crate::window::sliding_windows).
    pub fn window_count(&self, lookback: usize, horizon: usize, stride: usize) -> usize {
        let span = lookback + horizon;
        let t = self.total_rows();
        if stride == 0 || span == 0 || t < span {
            0
        } else {
            (t - span) / stride + 1
        }
    }

    /// Global index range `[start, end)` of the windows *owned* by shard
    /// `j`: a window belongs to the shard containing its first row.
    pub fn shard_window_range(
        &self,
        j: usize,
        lookback: usize,
        horizon: usize,
        stride: usize,
    ) -> (usize, usize) {
        let n = self.window_count(lookback, horizon, stride);
        if n == 0 {
            return (0, 0);
        }
        let m = &self.metas[j];
        let (off, rows) = (m.global_offset as usize, m.rows as usize);
        let first = off.div_ceil(stride);
        let last = (off + rows - 1) / stride + 1;
        (first.min(n), last.min(n))
    }

    /// Number of windows owned by shard `j`.
    pub fn shard_window_count(&self, j: usize, lookback: usize, horizon: usize, stride: usize) -> usize {
        let (a, b) = self.shard_window_range(j, lookback, horizon, stride);
        b - a
    }

    /// Streaming iterator over every window of the series in global order,
    /// loading shards on demand: peak resident data is one shard plus one
    /// window span, regardless of `T`.
    ///
    /// # Errors
    /// [`ShardError::BadWindowPlan`] on a degenerate plan.
    pub fn windows(
        &self,
        lookback: usize,
        horizon: usize,
        stride: usize,
    ) -> Result<ShardedWindows<'_>, ShardError> {
        self.check_plan(lookback + horizon, stride)?;
        Ok(ShardedWindows {
            ds: self,
            lookback,
            horizon,
            stride,
            n: self.window_count(lookback, horizon, stride),
            next_window: 0,
            buf: Vec::new(),
            buf_start: 0,
            next_shard: 0,
            peak_buf_rows: 0,
        })
    }

    /// Materializes the windows owned by shard `j` as a
    /// [`WindowedForecast`] — the unit a sharded-pretraining worker
    /// consumes. Rows are gathered from the minimal run of shards covering
    /// the range (windows near the end of shard `j` may straddle into the
    /// following shards), holding one slab at a time.
    ///
    /// # Errors
    /// [`ShardError::BadWindowPlan`] on a degenerate plan, or any
    /// corruption/mismatch error from reloading the slabs.
    pub fn shard_windows(
        &self,
        j: usize,
        lookback: usize,
        horizon: usize,
        stride: usize,
    ) -> Result<WindowedForecast, ShardError> {
        let span = lookback + horizon;
        self.check_plan(span, stride)?;
        let c = self.channels();
        let (w0, w1) = self.shard_window_range(j, lookback, horizon, stride);
        if w0 >= w1 {
            return Ok(WindowedForecast {
                inputs: NdArray::zeros(&[0, lookback, c]),
                targets: NdArray::zeros(&[0, horizon, c]),
            });
        }
        // Rows needed: the first owned window's start through the last
        // owned window's end.
        let row_lo = w0 * stride;
        let row_hi = (w1 - 1) * stride + span;
        let rows = self.gather_row_range(row_lo, row_hi)?;
        let n = w1 - w0;
        let mut inputs = Vec::with_capacity(n * lookback * c);
        let mut targets = Vec::with_capacity(n * horizon * c);
        for w in w0..w1 {
            let start = w * stride - row_lo;
            inputs.extend_from_slice(&rows[start * c..(start + lookback) * c]);
            let tstart = start + lookback;
            targets.extend_from_slice(&rows[tstart * c..(tstart + horizon) * c]);
        }
        Ok(WindowedForecast {
            inputs: NdArray::from_vec(&[n, lookback, c], inputs).expect("window shape"),
            targets: NdArray::from_vec(&[n, horizon, c], targets).expect("target shape"),
        })
    }

    /// Materializes only the windows `idx` — *local* indices into shard
    /// `j`'s owned window range (see [`Self::shard_window_range`]), in
    /// `idx` order. This is the sharded trainer's per-step unit: peak
    /// resident data is one shard slab plus one mini-batch of windows,
    /// never a shard's full window tensor.
    ///
    /// # Errors
    /// [`ShardError::BadWindowPlan`] on a degenerate plan or an index
    /// outside the shard's owned range, or any corruption/mismatch error
    /// from reloading the slabs.
    pub fn shard_window_batch(
        &self,
        j: usize,
        lookback: usize,
        horizon: usize,
        stride: usize,
        idx: &[usize],
    ) -> Result<WindowedForecast, ShardError> {
        let span = lookback + horizon;
        self.check_plan(span, stride)?;
        let c = self.channels();
        let (w0, w1) = self.shard_window_range(j, lookback, horizon, stride);
        let owned = w1 - w0;
        if let Some(&bad) = idx.iter().find(|&&i| i >= owned) {
            return Err(ShardError::BadWindowPlan(format!(
                "window index {bad} out of range for shard {j}'s {owned} owned windows"
            )));
        }
        if idx.is_empty() {
            return Ok(WindowedForecast {
                inputs: NdArray::zeros(&[0, lookback, c]),
                targets: NdArray::zeros(&[0, horizon, c]),
            });
        }
        // Rows covering the selected windows only.
        let lo = *idx.iter().min().expect("non-empty idx");
        let hi = *idx.iter().max().expect("non-empty idx");
        let row_lo = (w0 + lo) * stride;
        let row_hi = (w0 + hi) * stride + span;
        let rows = self.gather_row_range(row_lo, row_hi)?;
        let n = idx.len();
        let mut inputs = Vec::with_capacity(n * lookback * c);
        let mut targets = Vec::with_capacity(n * horizon * c);
        for &i in idx {
            let start = (w0 + i) * stride - row_lo;
            inputs.extend_from_slice(&rows[start * c..(start + lookback) * c]);
            let tstart = start + lookback;
            targets.extend_from_slice(&rows[tstart * c..(tstart + horizon) * c]);
        }
        Ok(WindowedForecast {
            inputs: NdArray::from_vec(&[n, lookback, c], inputs).expect("window shape"),
            targets: NdArray::from_vec(&[n, horizon, c], targets).expect("target shape"),
        })
    }

    /// Gathers global rows `[row_lo, row_hi)` from the minimal run of
    /// shards covering the range, holding one slab at a time.
    fn gather_row_range(&self, row_lo: usize, row_hi: usize) -> Result<Vec<f32>, ShardError> {
        let c = self.channels();
        let mut rows: Vec<f32> = Vec::with_capacity((row_hi - row_lo) * c);
        for (k, m) in self.metas.iter().enumerate() {
            let (off, len) = (m.global_offset as usize, m.rows as usize);
            if off + len <= row_lo || off >= row_hi {
                continue;
            }
            let slab = self.load_slab(k)?;
            let lo = row_lo.max(off) - off;
            let hi = row_hi.min(off + len) - off;
            rows.extend_from_slice(&slab[lo * c..hi * c]);
        }
        Ok(rows)
    }
}

/// Streaming window iterator over a [`ShardedDataset`]; see
/// [`ShardedDataset::windows`].
pub struct ShardedWindows<'a> {
    ds: &'a ShardedDataset,
    lookback: usize,
    horizon: usize,
    stride: usize,
    n: usize,
    next_window: usize,
    /// Rows `[buf_start, buf_start + buf.len()/c)` of the global series.
    buf: Vec<f32>,
    buf_start: usize,
    next_shard: usize,
    peak_buf_rows: usize,
}

impl ShardedWindows<'_> {
    /// Total windows this iterator will yield.
    pub fn window_count(&self) -> usize {
        self.n
    }

    /// High-water mark of the rolling row buffer, in bytes — the RSS proxy
    /// `BENCH_shard.json` reports against the full-series footprint.
    pub fn peak_buffer_bytes(&self) -> usize {
        self.peak_buf_rows * self.ds.channels() * std::mem::size_of::<f32>()
    }
}

impl Iterator for ShardedWindows<'_> {
    type Item = Result<(NdArray, NdArray), ShardError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_window >= self.n {
            return None;
        }
        let c = self.ds.channels();
        let span = self.lookback + self.horizon;
        let start = self.next_window * self.stride;
        let end = start + span;
        // Retire rows before this window's start.
        if start > self.buf_start {
            let drop_rows = (start - self.buf_start).min(self.buf.len() / c);
            self.buf.drain(..drop_rows * c);
            self.buf_start = start;
        }
        // Pull shards until the window's last row is buffered.
        while self.buf_start + self.buf.len() / c < end {
            // A long stride can move the buffer start past whole shards
            // that were never loaded; skip them without loading (their
            // rows are entirely behind this window).
            while self
                .ds
                .metas
                .get(self.next_shard)
                .is_some_and(|m| (m.global_offset + m.rows) as usize <= self.buf_start)
            {
                self.next_shard += 1;
            }
            let k = self.next_shard;
            if k >= self.ds.metas.len() {
                // Unreachable for a set validated by `open` (full row
                // coverage), but a typed error beats an index panic.
                let w = self.next_window;
                self.next_window = self.n; // poison: stop iterating
                return Some(Err(ShardError::BadWindowPlan(format!(
                    "window {w} needs rows up to {end}, past the end of the shard set"
                ))));
            }
            let slab = match self.ds.load_slab(k) {
                Ok(s) => s,
                Err(e) => {
                    self.next_window = self.n; // poison: stop iterating
                    return Some(Err(e));
                }
            };
            let off = self.ds.metas[k].global_offset as usize;
            // Skip any prefix already behind the buffer start; the shard
            // advance above guarantees this stays within the slab.
            let skip = self.buf_start.saturating_sub(off);
            self.buf.extend_from_slice(&slab[skip * c..]);
            self.next_shard += 1;
        }
        self.peak_buf_rows = self.peak_buf_rows.max(self.buf.len() / c);
        let base = (start - self.buf_start) * c;
        let input = NdArray::from_vec(
            &[self.lookback, c],
            self.buf[base..base + self.lookback * c].to_vec(),
        )
        .expect("window shape");
        let target = NdArray::from_vec(
            &[self.horizon, c],
            self.buf[base + self.lookback * c..base + span * c].to_vec(),
        )
        .expect("target shape");
        self.next_window += 1;
        Some(Ok((input, target)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(t: usize, c: usize) -> NdArray {
        NdArray::from_fn(&[t, c], |i| (i as f32).sin() * 3.0 + i as f32 * 0.01)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("timedrl_shard_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_reassembles_the_series() {
        let dir = tmp("roundtrip");
        let s = series(37, 3);
        let paths = ShardWriter::new(10).unwrap().write(&s, &dir).unwrap();
        assert_eq!(paths.len(), 4); // 10+10+10+7
        let ds = ShardedDataset::open(&dir).unwrap();
        assert_eq!(ds.num_shards(), 4);
        assert_eq!(ds.total_rows(), 37);
        assert_eq!(ds.channels(), 3);
        let mut rows = Vec::new();
        for j in 0..ds.num_shards() {
            rows.extend(ds.load_slab(j).unwrap());
        }
        assert_eq!(rows, s.data());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_rejects_degenerate_input() {
        assert!(matches!(ShardWriter::new(0), Err(ShardError::BadSplit(_))));
        let dir = tmp("degenerate");
        let w = ShardWriter::new(4).unwrap();
        let rank1 = NdArray::from_fn(&[5], |i| i as f32);
        assert!(matches!(w.write(&rank1, &dir), Err(ShardError::BadSplit(_))));
        let empty = NdArray::zeros(&[0, 2]);
        assert!(matches!(w.write(&empty, &dir), Err(ShardError::BadSplit(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_window_ranges_partition_all_windows() {
        let dir = tmp("ranges");
        ShardWriter::new(7).unwrap().write(&series(53, 2), &dir).unwrap();
        let ds = ShardedDataset::open(&dir).unwrap();
        for (lookback, horizon, stride) in [(5, 2, 1), (8, 0, 3), (16, 4, 5), (60, 0, 1)] {
            let n = ds.window_count(lookback, horizon, stride);
            let mut covered = 0;
            let mut next = 0;
            for j in 0..ds.num_shards() {
                let (a, b) = ds.shard_window_range(j, lookback, horizon, stride);
                assert!(a == next || a == b, "range gap at shard {j}");
                if a < b {
                    next = b;
                }
                covered += b - a;
            }
            assert_eq!(covered, n, "plan ({lookback},{horizon},{stride})");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degenerate_plans_are_typed_errors() {
        let dir = tmp("plans");
        ShardWriter::new(8).unwrap().write(&series(20, 1), &dir).unwrap();
        let ds = ShardedDataset::open(&dir).unwrap();
        assert!(matches!(ds.windows(4, 1, 0), Err(ShardError::BadWindowPlan(_))));
        assert!(matches!(ds.windows(0, 0, 1), Err(ShardError::BadWindowPlan(_))));
        assert!(matches!(ds.shard_windows(0, 4, 1, 0), Err(ShardError::BadWindowPlan(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stride_past_a_whole_shard_streams_without_panicking() {
        // 35 rows in 10-row shards, windows (5, 0, 25): window 1 starts at
        // row 25, past the end of the never-loaded shard 1 — this used to
        // slice out of the shard's slab and panic.
        let dir = tmp("stride_jump");
        let s = series(35, 1);
        ShardWriter::new(10).unwrap().write(&s, &dir).unwrap();
        let ds = ShardedDataset::open(&dir).unwrap();
        let mut iter = ds.windows(5, 0, 25).unwrap();
        let got: Vec<_> = iter.by_ref().map(|w| w.unwrap()).collect();
        assert_eq!(got.len(), 2);
        for (w, (input, _target)) in got.iter().enumerate() {
            let start = w * 25;
            assert_eq!(input.data(), &s.data()[start..start + 5], "window {w}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_window_batch_matches_full_materialization() {
        let dir = tmp("batch");
        ShardWriter::new(7).unwrap().write(&series(53, 2), &dir).unwrap();
        let ds = ShardedDataset::open(&dir).unwrap();
        let (lookback, horizon, stride) = (5, 2, 3);
        for j in 0..ds.num_shards() {
            let full = ds.shard_windows(j, lookback, horizon, stride).unwrap();
            let n = full.inputs.shape()[0];
            if n == 0 {
                continue;
            }
            // Reversed order: batches are shuffled index lists, so the
            // gather must honor `idx` order, not window order.
            let idx: Vec<usize> = (0..n).rev().collect();
            let batch = ds.shard_window_batch(j, lookback, horizon, stride, &idx).unwrap();
            for (k, &w) in idx.iter().enumerate() {
                assert_eq!(
                    batch.inputs.slice(0, k, 1).unwrap().data(),
                    full.inputs.slice(0, w, 1).unwrap().data(),
                    "shard {j} window {w} input bytes"
                );
                assert_eq!(
                    batch.targets.slice(0, k, 1).unwrap().data(),
                    full.targets.slice(0, w, 1).unwrap().data(),
                    "shard {j} window {w} target bytes"
                );
            }
            // An index past the owned range is a typed error, not a panic.
            assert!(matches!(
                ds.shard_window_batch(j, lookback, horizon, stride, &[n]),
                Err(ShardError::BadWindowPlan(_))
            ));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_an_empty_directory() {
        let dir = tmp("empty_dir");
        assert!(matches!(
            ShardedDataset::open(&dir),
            Err(ShardError::ManifestMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
