//! The six time-series augmentations of the Table VI ablation.
//!
//! TimeDRL's thesis is that *none* of these should be applied — each
//! encodes a transformation-invariance assumption that hurts on at least
//! some datasets. They are implemented here so the ablation harness can
//! demonstrate exactly that (Table VI: every augmentation worsens MSE).

use timedrl_tensor::{NdArray, Prng};

/// One of the paper's six augmentation families, or `None` (TimeDRL's
/// choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Augmentation {
    /// No augmentation — the TimeDRL default.
    None,
    /// Additive Gaussian noise (simulated sensor noise).
    Jitter,
    /// Multiplication by a random scalar.
    Scaling,
    /// Feature-order permutation with random sign flips.
    Rotation,
    /// Segment-shuffling along the time axis.
    Permutation,
    /// Random zeroing of individual values.
    Masking,
    /// Zeroing the left and right margins of the window.
    Cropping,
}

impl Augmentation {
    /// All seven rows of Table VI, `None` first.
    pub const ALL: [Augmentation; 7] = [
        Augmentation::None,
        Augmentation::Jitter,
        Augmentation::Scaling,
        Augmentation::Rotation,
        Augmentation::Permutation,
        Augmentation::Masking,
        Augmentation::Cropping,
    ];

    /// The row label used in Table VI.
    pub fn name(&self) -> &'static str {
        match self {
            Augmentation::None => "None (Ours)",
            Augmentation::Jitter => "Jitter",
            Augmentation::Scaling => "Scaling",
            Augmentation::Rotation => "Rotation",
            Augmentation::Permutation => "Permutation",
            Augmentation::Masking => "Masking",
            Augmentation::Cropping => "Cropping",
        }
    }

    /// Applies the augmentation to a `[T, C]` sample.
    pub fn apply(&self, x: &NdArray, rng: &mut Prng) -> NdArray {
        assert_eq!(x.rank(), 2, "augmentations operate on [T, C] samples");
        match self {
            Augmentation::None => x.clone(),
            Augmentation::Jitter => jitter(x, 0.1, rng),
            Augmentation::Scaling => scaling(x, 0.2, rng),
            Augmentation::Rotation => rotation(x, rng),
            Augmentation::Permutation => permutation(x, 5, rng),
            Augmentation::Masking => masking(x, 0.15, rng),
            Augmentation::Cropping => cropping(x, 0.2, rng),
        }
    }

    /// Applies the augmentation independently per sample of a `[B, T, C]`
    /// batch.
    pub fn apply_batch(&self, x: &NdArray, rng: &mut Prng) -> NdArray {
        if matches!(self, Augmentation::None) {
            return x.clone();
        }
        let b = x.shape()[0];
        let parts: Vec<NdArray> = (0..b).map(|i| self.apply(&x.index_axis0(i), rng)).collect();
        let refs: Vec<&NdArray> = parts.iter().collect();
        NdArray::stack(&refs)
    }
}

/// Additive Gaussian noise with standard deviation `sigma`.
pub fn jitter(x: &NdArray, sigma: f32, rng: &mut Prng) -> NdArray {
    NdArray::from_fn(x.shape(), |_| rng.normal_with(0.0, sigma)).add(x)
}

/// Per-channel multiplicative scaling by `N(1, sigma)` factors.
pub fn scaling(x: &NdArray, sigma: f32, rng: &mut Prng) -> NdArray {
    let c = x.shape()[1];
    let factors = NdArray::from_fn(&[1, c], |_| rng.normal_with(1.0, sigma));
    x.mul(&factors)
}

/// Rotation (Um et al.): permutes the feature order and flips random
/// feature signs.
pub fn rotation(x: &NdArray, rng: &mut Prng) -> NdArray {
    let (t, c) = (x.shape()[0], x.shape()[1]);
    let mut order: Vec<usize> = (0..c).collect();
    rng.shuffle(&mut order);
    let signs: Vec<f32> = (0..c).map(|_| if rng.bernoulli(0.5) { -1.0 } else { 1.0 }).collect();
    NdArray::from_fn(&[t, c], |flat| {
        let (ti, ci) = (flat / c, flat % c);
        signs[ci] * x.at(&[ti, order[ci]])
    })
}

/// Slices the series into `segments` chunks and shuffles their order.
pub fn permutation(x: &NdArray, segments: usize, rng: &mut Prng) -> NdArray {
    let t = x.shape()[0];
    let n = segments.min(t).max(1);
    // Segment boundaries as even as possible.
    let mut bounds = vec![0usize];
    for i in 1..=n {
        bounds.push(i * t / n);
    }
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut parts = Vec::with_capacity(n);
    for &seg in &order {
        let start = bounds[seg];
        let len = bounds[seg + 1] - start;
        parts.push(x.slice(0, start, len).expect("segment slice"));
    }
    let refs: Vec<&NdArray> = parts.iter().collect();
    NdArray::concat(&refs, 0)
}

/// Randomly zeroes each value with probability `p`.
pub fn masking(x: &NdArray, p: f32, rng: &mut Prng) -> NdArray {
    x.map(|v| v) // copy
        .zip_map(
            &NdArray::from_fn(x.shape(), |_| if rng.bernoulli(p) { 0.0 } else { 1.0 }),
            |v, m| v * m,
        )
        .expect("mask shapes")
}

/// Zeroes `frac/2` of the window on each side (crop-and-pad to the same
/// length, as described in Section V.D.2).
pub fn cropping(x: &NdArray, frac: f32, rng: &mut Prng) -> NdArray {
    let (t, c) = (x.shape()[0], x.shape()[1]);
    let crop_total = ((t as f32) * frac) as usize;
    let left = if crop_total > 0 { rng.below(crop_total + 1) } else { 0 };
    let right = crop_total - left;
    NdArray::from_fn(&[t, c], |flat| {
        let ti = flat / c;
        if ti < left || ti >= t - right {
            0.0
        } else {
            x.data()[flat]
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NdArray {
        NdArray::from_fn(&[20, 3], |i| (i as f32 * 0.37).sin() + 1.0)
    }

    #[test]
    fn none_is_identity() {
        let x = sample();
        assert_eq!(Augmentation::None.apply(&x, &mut Prng::new(0)), x);
    }

    #[test]
    fn jitter_perturbs_but_preserves_scale() {
        let x = sample();
        let y = jitter(&x, 0.1, &mut Prng::new(1));
        assert_ne!(x, y);
        assert!(x.max_abs_diff(&y) < 1.0);
        assert!((x.mean() - y.mean()).abs() < 0.1);
    }

    #[test]
    fn scaling_is_per_channel_multiplicative() {
        let x = NdArray::ones(&[10, 2]);
        let y = scaling(&x, 0.2, &mut Prng::new(2));
        // Every row identical per channel (a single factor per channel).
        for t in 1..10 {
            assert_eq!(y.at(&[t, 0]), y.at(&[0, 0]));
            assert_eq!(y.at(&[t, 1]), y.at(&[0, 1]));
        }
    }

    #[test]
    fn rotation_preserves_value_multiset() {
        let x = sample();
        let y = rotation(&x, &mut Prng::new(3));
        let mut a: Vec<f32> = x.data().iter().map(|v| v.abs()).collect();
        let mut b: Vec<f32> = y.data().iter().map(|v| v.abs()).collect();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        for (va, vb) in a.iter().zip(b.iter()) {
            assert!((va - vb).abs() < 1e-6);
        }
    }

    #[test]
    fn permutation_preserves_rows() {
        let x = sample();
        let y = permutation(&x, 4, &mut Prng::new(4));
        assert_eq!(y.shape(), x.shape());
        let sum_x: f32 = x.data().iter().sum();
        let sum_y: f32 = y.data().iter().sum();
        assert!((sum_x - sum_y).abs() < 1e-3);
    }

    #[test]
    fn permutation_single_segment_is_identity() {
        let x = sample();
        assert_eq!(permutation(&x, 1, &mut Prng::new(5)), x);
    }

    #[test]
    fn masking_zeroes_roughly_p_fraction() {
        let x = NdArray::ones(&[100, 10]);
        let y = masking(&x, 0.15, &mut Prng::new(6));
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 1000.0;
        assert!((frac - 0.15).abs() < 0.05, "masked fraction {frac}");
    }

    #[test]
    fn cropping_zeroes_margins_only() {
        let x = NdArray::ones(&[50, 2]);
        let y = cropping(&x, 0.2, &mut Prng::new(7));
        let zero_rows = (0..50)
            .filter(|&t| y.at(&[t, 0]) == 0.0 && y.at(&[t, 1]) == 0.0)
            .count();
        assert_eq!(zero_rows, 10);
        // Zeros must form a prefix and a suffix.
        let first_keep = (0..50).find(|&t| y.at(&[t, 0]) != 0.0).unwrap();
        let last_keep = (0..50).rev().find(|&t| y.at(&[t, 0]) != 0.0).unwrap();
        for t in first_keep..=last_keep {
            assert_ne!(y.at(&[t, 0]), 0.0);
        }
    }

    #[test]
    fn batch_application_is_per_sample() {
        let x = sample();
        let batch = NdArray::stack(&[&x, &x]);
        let y = Augmentation::Jitter.apply_batch(&batch, &mut Prng::new(8));
        // Two samples get different noise.
        assert!(y.index_axis0(0).max_abs_diff(&y.index_axis0(1)) > 1e-4);
    }

    #[test]
    fn all_table_rows_present() {
        assert_eq!(Augmentation::ALL.len(), 7);
        assert_eq!(Augmentation::ALL[0].name(), "None (Ours)");
    }
}
