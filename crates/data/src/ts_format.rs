//! Loader for the UEA/UCR `.ts` classification-archive format — the
//! distribution format of the paper's classification benchmarks
//! (FingerMovements, PenDigits, HAR, Epilepsy, WISDM are all published as
//! sktime `.ts` files).
//!
//! Supported subset of the format:
//!
//! ```text
//! @problemName PenDigits        # metadata lines, case-insensitive keys
//! @univariate false
//! @classLabel true 0 1 ... 9
//! @data
//! v,v,...,v : v,v,...,v : label # one line per case; ':' separates dims
//! ```
//!
//! All series must be equal length (the benchmarks here are); dimensions
//! become feature channels.

use crate::dataset::ClassifyDataset;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;
use timedrl_tensor::NdArray;

/// Errors raised while loading a `.ts` file.
#[derive(Debug)]
pub enum TsFormatError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Missing `@data` section.
    MissingData,
    /// A data line is malformed.
    BadCase {
        /// 1-based case index.
        case: usize,
        /// What went wrong.
        reason: String,
    },
    /// Series lengths or dimension counts disagree across cases.
    Inconsistent {
        /// 1-based case index.
        case: usize,
        /// Description of the mismatch.
        reason: String,
    },
    /// No cases in the data section.
    Empty,
}

impl fmt::Display for TsFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsFormatError::Io(e) => write!(f, "io error: {e}"),
            TsFormatError::MissingData => write!(f, "no @data section"),
            TsFormatError::BadCase { case, reason } => write!(f, "case {case}: {reason}"),
            TsFormatError::Inconsistent { case, reason } => write!(f, "case {case}: {reason}"),
            TsFormatError::Empty => write!(f, "no cases in @data section"),
        }
    }
}

impl std::error::Error for TsFormatError {}

impl From<std::io::Error> for TsFormatError {
    fn from(e: std::io::Error) -> Self {
        TsFormatError::Io(e)
    }
}

/// Parses `.ts` text into a [`ClassifyDataset`]. Class labels may be
/// arbitrary strings; they are mapped to dense `0..K` indices in sorted
/// order (so numeric labels keep their natural order).
pub fn parse_ts(text: &str, name: &'static str) -> Result<ClassifyDataset, TsFormatError> {
    let mut in_data = false;
    let mut samples: Vec<NdArray> = Vec::new();
    let mut raw_labels: Vec<String> = Vec::new();
    let mut expected: Option<(usize, usize)> = None; // (dims, len)

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !in_data {
            if line.to_ascii_lowercase().starts_with("@data") {
                in_data = true;
            }
            continue;
        }
        let case_idx = samples.len() + 1;
        // Split "dim : dim : ... : label".
        let mut parts: Vec<&str> = line.split(':').map(str::trim).collect();
        if parts.len() < 2 {
            return Err(TsFormatError::BadCase {
                case: case_idx,
                reason: "expected 'values : label'".into(),
            });
        }
        let label = parts.pop().unwrap().to_string();
        let dims: Vec<Vec<f32>> = parts
            .iter()
            .map(|dim| {
                dim.split(',')
                    .map(|v| {
                        v.trim().parse::<f32>().map_err(|_| TsFormatError::BadCase {
                            case: case_idx,
                            reason: format!("cannot parse value {v:?}"),
                        })
                    })
                    .collect()
            })
            .collect::<Result<_, _>>()?;
        let c = dims.len();
        let t = dims[0].len();
        if dims.iter().any(|d| d.len() != t) {
            return Err(TsFormatError::Inconsistent {
                case: case_idx,
                reason: "dimensions have different lengths".into(),
            });
        }
        match expected {
            None => expected = Some((c, t)),
            Some((ec, et)) if ec != c || et != t => {
                return Err(TsFormatError::Inconsistent {
                    case: case_idx,
                    reason: format!("expected {ec} dims x {et} steps, found {c} x {t}"),
                });
            }
            _ => {}
        }
        // Transpose dims-major -> time-major [T, C].
        let sample = NdArray::from_fn(&[t, c], |flat| dims[flat % c][flat / c]);
        samples.push(sample);
        raw_labels.push(label);
    }

    if !in_data {
        return Err(TsFormatError::MissingData);
    }
    if samples.is_empty() {
        return Err(TsFormatError::Empty);
    }

    // Dense label mapping in sorted order.
    let mut class_map: BTreeMap<String, usize> = BTreeMap::new();
    for l in &raw_labels {
        let next = class_map.len();
        class_map.entry(l.clone()).or_insert(next);
    }
    // Re-sort keys so indices follow sorted label order.
    let mut keys: Vec<&String> = class_map.keys().collect();
    keys.sort();
    let sorted_map: BTreeMap<String, usize> =
        keys.into_iter().cloned().zip(0..).collect();
    let labels = raw_labels.iter().map(|l| sorted_map[l]).collect();

    Ok(ClassifyDataset { name, samples, labels, n_classes: sorted_map.len() })
}

/// Loads a `.ts` file from disk.
pub fn load_ts(path: impl AsRef<Path>, name: &'static str) -> Result<ClassifyDataset, TsFormatError> {
    let text = fs::read_to_string(path)?;
    parse_ts(&text, name)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
@problemName Toy
@univariate false
@classLabel true a b
@data
1.0,2.0,3.0 : 10.0,20.0,30.0 : a
4.0,5.0,6.0 : 40.0,50.0,60.0 : b
7.0,8.0,9.0 : 70.0,80.0,90.0 : a
";

    #[test]
    fn parses_multivariate_cases() {
        let ds = parse_ts(SAMPLE, "Toy").unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.sample_len(), 3);
        assert_eq!(ds.features(), 2);
        assert_eq!(ds.n_classes, 2);
        // Time-major layout: sample 0, t=1 -> (2.0, 20.0).
        assert_eq!(ds.samples[0].at(&[1, 0]), 2.0);
        assert_eq!(ds.samples[0].at(&[1, 1]), 20.0);
        assert_eq!(ds.labels, vec![0, 1, 0]);
    }

    #[test]
    fn numeric_labels_keep_order() {
        let text = "@data\n1.0 : 1\n2.0 : 0\n3.0 : 2\n";
        let ds = parse_ts(text, "N").unwrap();
        assert_eq!(ds.labels, vec![1, 0, 2]);
        assert_eq!(ds.n_classes, 3);
    }

    #[test]
    fn rejects_missing_data_section() {
        assert!(matches!(parse_ts("@problemName X\n", "X"), Err(TsFormatError::MissingData)));
    }

    #[test]
    fn rejects_ragged_dimensions() {
        let text = "@data\n1.0,2.0 : 3.0 : a\n";
        assert!(matches!(parse_ts(text, "X"), Err(TsFormatError::Inconsistent { case: 1, .. })));
    }

    #[test]
    fn rejects_inconsistent_cases() {
        let text = "@data\n1.0,2.0 : a\n1.0,2.0,3.0 : a\n";
        assert!(matches!(parse_ts(text, "X"), Err(TsFormatError::Inconsistent { case: 2, .. })));
    }

    #[test]
    fn rejects_bad_values() {
        let text = "@data\n1.0,huh : a\n";
        assert!(matches!(parse_ts(text, "X"), Err(TsFormatError::BadCase { case: 1, .. })));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header comment\n\n@data\n\n1.0,2.0 : a\n";
        let ds = parse_ts(text, "C").unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn load_from_disk() {
        let dir = std::env::temp_dir().join("timedrl_ts_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.ts");
        std::fs::write(&path, SAMPLE).unwrap();
        let ds = load_ts(&path, "Toy").unwrap();
        assert_eq!(ds.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
