//! Dataset containers shared by the forecasting and classification
//! pipelines.

use timedrl_tensor::{NdArray, Prng};

/// A single long multivariate time-series, `[T, C]`, as used by the
/// forecasting benchmarks (Table I).
#[derive(Debug, Clone)]
pub struct ForecastDataset {
    /// Dataset name (e.g. `"ETTh1"`).
    pub name: &'static str,
    /// The series, shape `[timesteps, features]`.
    pub series: NdArray,
    /// Sampling cadence label, as reported in Table I.
    pub frequency: &'static str,
    /// Index of the univariate-forecasting target channel (e.g. oil
    /// temperature for ETT, Singapore for Exchange, wet bulb for Weather).
    pub target_channel: usize,
}

impl ForecastDataset {
    /// Number of timesteps.
    pub fn timesteps(&self) -> usize {
        self.series.shape()[0]
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.series.shape()[1]
    }

    /// Extracts the univariate view `[T, 1]` of the target channel.
    pub fn univariate(&self) -> ForecastDataset {
        let t = self.timesteps();
        let col = self
            .series
            .slice(1, self.target_channel, 1)
            .expect("target channel in range");
        ForecastDataset {
            name: self.name,
            series: col.reshape(&[t, 1]).expect("reshape univariate"),
            frequency: self.frequency,
            target_channel: 0,
        }
    }
}

/// A labelled collection of fixed-length samples, as used by the
/// classification benchmarks (Table II).
#[derive(Debug, Clone)]
pub struct ClassifyDataset {
    /// Dataset name (e.g. `"HAR"`).
    pub name: &'static str,
    /// Samples, each `[length, features]`.
    pub samples: Vec<NdArray>,
    /// Integer class labels, parallel to `samples`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl ClassifyDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Per-sample series length.
    pub fn sample_len(&self) -> usize {
        self.samples[0].shape()[0]
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.samples[0].shape()[1]
    }

    /// Splits into train/test by a shuffled index partition, preserving the
    /// label distribution approximately (shuffle + proportional cut).
    pub fn train_test_split(&self, train_frac: f32, rng: &mut Prng) -> (ClassifyDataset, ClassifyDataset) {
        assert!((0.0..=1.0).contains(&train_frac));
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let cut = ((self.len() as f32) * train_frac).round() as usize;
        let make = |ids: &[usize]| ClassifyDataset {
            name: self.name,
            samples: ids.iter().map(|&i| self.samples[i].clone()).collect(),
            labels: ids.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        };
        (make(&idx[..cut]), make(&idx[cut..]))
    }

    /// Keeps a random `frac` of samples (for the Fig. 5 label-fraction
    /// sweep); always keeps at least one sample per class present in the
    /// original set.
    pub fn subsample_labels(&self, frac: f32, rng: &mut Prng) -> ClassifyDataset {
        assert!((0.0..=1.0).contains(&frac));
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let keep = (((self.len() as f32) * frac).round() as usize).max(1);
        let mut chosen: Vec<usize> = idx[..keep].to_vec();
        // Ensure class coverage.
        for class in 0..self.n_classes {
            if !chosen.iter().any(|&i| self.labels[i] == class) {
                if let Some(&i) = idx.iter().find(|&&i| self.labels[i] == class) {
                    chosen.push(i);
                }
            }
        }
        ClassifyDataset {
            name: self.name,
            samples: chosen.iter().map(|&i| self.samples[i].clone()).collect(),
            labels: chosen.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// Stacks all samples into a `[N, T, C]` batch tensor.
    pub fn to_batch(&self) -> NdArray {
        let refs: Vec<&NdArray> = self.samples.iter().collect();
        NdArray::stack(&refs)
    }
}

/// Deterministic mini-batch index iterator with optional shuffling.
pub struct BatchIndices {
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl BatchIndices {
    /// Creates a batch plan over `n` samples.
    pub fn new(n: usize, batch_size: usize, shuffle: Option<&mut Prng>) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..n).collect();
        if let Some(rng) = shuffle {
            rng.shuffle(&mut order);
        }
        Self { order, batch_size, cursor: 0 }
    }
}

impl Iterator for BatchIndices {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

/// Gathers rows of a sample list into a `[B, T, C]` batch.
pub fn gather_batch(samples: &[NdArray], indices: &[usize]) -> NdArray {
    let parts: Vec<&NdArray> = indices.iter().map(|&i| &samples[i]).collect();
    NdArray::stack(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_classify(n: usize) -> ClassifyDataset {
        let samples = (0..n).map(|i| NdArray::full(&[4, 2], i as f32)).collect();
        let labels = (0..n).map(|i| i % 3).collect();
        ClassifyDataset { name: "toy", samples, labels, n_classes: 3 }
    }

    #[test]
    fn split_partitions_everything() {
        let ds = toy_classify(30);
        let (train, test) = ds.train_test_split(0.6, &mut Prng::new(0));
        assert_eq!(train.len(), 18);
        assert_eq!(test.len(), 12);
    }

    #[test]
    fn subsample_keeps_class_coverage() {
        let ds = toy_classify(30);
        let sub = ds.subsample_labels(0.1, &mut Prng::new(1));
        for class in 0..3 {
            assert!(sub.labels.contains(&class), "class {class} lost");
        }
    }

    #[test]
    fn batches_cover_all_indices_once() {
        let batches: Vec<Vec<usize>> = BatchIndices::new(10, 3, None).collect();
        let flat: Vec<usize> = batches.iter().flatten().copied().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        assert_eq!(batches.last().unwrap().len(), 1); // remainder batch
    }

    #[test]
    fn shuffled_batches_are_permutation() {
        let mut rng = Prng::new(2);
        let batches: Vec<Vec<usize>> = BatchIndices::new(10, 4, Some(&mut rng)).collect();
        let mut flat: Vec<usize> = batches.into_iter().flatten().collect();
        flat.sort_unstable();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn gather_batch_shape() {
        let ds = toy_classify(5);
        let b = gather_batch(&ds.samples, &[0, 2, 4]);
        assert_eq!(b.shape(), &[3, 4, 2]);
        assert_eq!(b.at(&[1, 0, 0]), 2.0);
    }

    #[test]
    fn univariate_extracts_target() {
        let series = NdArray::from_fn(&[10, 3], |i| i as f32);
        let ds = ForecastDataset { name: "t", series, frequency: "1h", target_channel: 2 };
        let uni = ds.univariate();
        assert_eq!(uni.series.shape(), &[10, 1]);
        assert_eq!(uni.series.at(&[0, 0]), 2.0);
        assert_eq!(uni.series.at(&[1, 0]), 5.0);
    }
}
