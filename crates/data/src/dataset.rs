//! Dataset containers shared by the forecasting and classification
//! pipelines.

use std::fmt;
use timedrl_tensor::{NdArray, Prng};

/// An invalid argument to a dataset operation, surfaced as a value instead
/// of the `assert!` panics this module used to produce (the library-code
/// panic-free contract, DESIGN.md §11).
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A fraction argument fell outside `[0, 1]` (or was NaN).
    BadFraction {
        /// The operation that rejected the fraction.
        op: &'static str,
        /// The offending value.
        value: f32,
    },
    /// A batch plan was requested with `batch_size == 0`.
    ZeroBatchSize,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::BadFraction { op, value } => {
                write!(f, "{op}: fraction {value} outside [0, 1]")
            }
            DataError::ZeroBatchSize => write!(f, "batch size must be positive, got 0"),
        }
    }
}

impl std::error::Error for DataError {}

/// The single definition of every fraction-of-a-length cut in this crate:
/// the nearest integer to `len · frac`, computed **exactly** and clamped to
/// `len`. Ties round up (half away from zero, matching `f64::round`).
///
/// `frac` must already be validated to `[0, 1]`; callers surface
/// [`DataError::BadFraction`] first.
///
/// # Boundary semantics (pinned)
///
/// * `frac == 0.0` ⇒ `0` — an empty cut, in every caller. (The old
///   `subsample_labels` bumped this to 1 with a `max(1)`; the class-coverage
///   backstop documented there is the only thing that may re-add samples.)
/// * `frac == 1.0` ⇒ `len`.
/// * Odd lengths at `frac == 0.5` round up: `split_index(7, 0.5) == 4`.
///
/// # Why not `(len as f32 * frac).round()`
///
/// `len as f32` is lossy past 2²⁴ elements, so out-of-core-scale datasets
/// got a wrong (`±1`-and-worse) cut. This computes `len · m / 2^p` (the
/// exact rational value of the `f32` fraction) in 128-bit integer
/// arithmetic, which is exact for any `len` a `Vec` can hold.
pub fn split_index(len: usize, frac: f32) -> usize {
    debug_assert!((0.0..=1.0).contains(&frac), "callers validate frac first");
    if len == 0 || frac == 0.0 {
        return 0;
    }
    // Decompose the f32 exactly as m · 2^(exp − 150) (normals carry the
    // implicit leading bit; subnormals are m · 2^(−149)).
    let bits = frac.to_bits();
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac_mant = (bits & 0x7f_ffff) as u128;
    let (mant, pow) = if exp == 0 {
        (frac_mant, 149u32)
    } else {
        (frac_mant | 0x80_0000, (150 - exp) as u32)
    };
    // len < 2^64 and mant < 2^24, so num < 2^88: for pow ≥ 89 the value is
    // below ½ and rounds to zero (also keeps the shifts in range).
    if pow >= 89 {
        return 0;
    }
    let num = len as u128 * mant;
    let half = 1u128 << (pow - 1);
    (((num + half) >> pow) as usize).min(len)
}

/// A single long multivariate time-series, `[T, C]`, as used by the
/// forecasting benchmarks (Table I).
#[derive(Debug, Clone)]
pub struct ForecastDataset {
    /// Dataset name (e.g. `"ETTh1"`).
    pub name: &'static str,
    /// The series, shape `[timesteps, features]`.
    pub series: NdArray,
    /// Sampling cadence label, as reported in Table I.
    pub frequency: &'static str,
    /// Index of the univariate-forecasting target channel (e.g. oil
    /// temperature for ETT, Singapore for Exchange, wet bulb for Weather).
    pub target_channel: usize,
}

impl ForecastDataset {
    /// Number of timesteps.
    pub fn timesteps(&self) -> usize {
        self.series.shape()[0]
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.series.shape()[1]
    }

    /// Extracts the univariate view `[T, 1]` of the target channel.
    pub fn univariate(&self) -> ForecastDataset {
        let t = self.timesteps();
        let col = self
            .series
            .slice(1, self.target_channel, 1)
            .expect("target channel in range");
        ForecastDataset {
            name: self.name,
            series: col.reshape(&[t, 1]).expect("reshape univariate"),
            frequency: self.frequency,
            target_channel: 0,
        }
    }
}

/// A labelled collection of fixed-length samples, as used by the
/// classification benchmarks (Table II).
#[derive(Debug, Clone)]
pub struct ClassifyDataset {
    /// Dataset name (e.g. `"HAR"`).
    pub name: &'static str,
    /// Samples, each `[length, features]`.
    pub samples: Vec<NdArray>,
    /// Integer class labels, parallel to `samples`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl ClassifyDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Per-sample series length.
    pub fn sample_len(&self) -> usize {
        self.samples[0].shape()[0]
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.samples[0].shape()[1]
    }

    /// Splits into train/test by a shuffled index partition, preserving the
    /// label distribution approximately (shuffle + proportional cut). The
    /// cut is `split_index(len, train_frac)` — exact integer arithmetic, so
    /// `0.0` yields an empty train set and `1.0` an empty test set.
    ///
    /// # Errors
    /// [`DataError::BadFraction`] when `train_frac` is outside `[0, 1]`.
    pub fn train_test_split(
        &self,
        train_frac: f32,
        rng: &mut Prng,
    ) -> Result<(ClassifyDataset, ClassifyDataset), DataError> {
        if !(0.0..=1.0).contains(&train_frac) {
            return Err(DataError::BadFraction { op: "train_test_split", value: train_frac });
        }
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let cut = split_index(self.len(), train_frac);
        let make = |ids: &[usize]| ClassifyDataset {
            name: self.name,
            samples: ids.iter().map(|&i| self.samples[i].clone()).collect(),
            labels: ids.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        };
        Ok((make(&idx[..cut]), make(&idx[cut..])))
    }

    /// Keeps a random `frac` of samples (for the Fig. 5 label-fraction
    /// sweep). The base keep count is `split_index(len, frac)` — so
    /// `frac == 0.0` keeps nothing by itself — after which the
    /// class-coverage backstop re-adds one sample for every class present
    /// in the original set but missing from the draw.
    ///
    /// # Errors
    /// [`DataError::BadFraction`] when `frac` is outside `[0, 1]`.
    pub fn subsample_labels(&self, frac: f32, rng: &mut Prng) -> Result<ClassifyDataset, DataError> {
        if !(0.0..=1.0).contains(&frac) {
            return Err(DataError::BadFraction { op: "subsample_labels", value: frac });
        }
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let keep = split_index(self.len(), frac);
        let mut chosen: Vec<usize> = idx[..keep].to_vec();
        // Ensure class coverage.
        for class in 0..self.n_classes {
            if !chosen.iter().any(|&i| self.labels[i] == class) {
                if let Some(&i) = idx.iter().find(|&&i| self.labels[i] == class) {
                    chosen.push(i);
                }
            }
        }
        Ok(ClassifyDataset {
            name: self.name,
            samples: chosen.iter().map(|&i| self.samples[i].clone()).collect(),
            labels: chosen.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        })
    }

    /// Stacks all samples into a `[N, T, C]` batch tensor.
    pub fn to_batch(&self) -> NdArray {
        let refs: Vec<&NdArray> = self.samples.iter().collect();
        NdArray::stack(&refs)
    }
}

/// Deterministic mini-batch index iterator with optional shuffling.
#[derive(Debug)]
pub struct BatchIndices {
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl BatchIndices {
    /// Creates a batch plan over `n` samples.
    ///
    /// # Errors
    /// [`DataError::ZeroBatchSize`] when `batch_size == 0` (which would
    /// otherwise loop forever without yielding a sample).
    pub fn new(n: usize, batch_size: usize, shuffle: Option<&mut Prng>) -> Result<Self, DataError> {
        if batch_size == 0 {
            return Err(DataError::ZeroBatchSize);
        }
        let mut order: Vec<usize> = (0..n).collect();
        if let Some(rng) = shuffle {
            rng.shuffle(&mut order);
        }
        Ok(Self { order, batch_size, cursor: 0 })
    }
}

impl Iterator for BatchIndices {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

/// Gathers rows of a sample list into a `[B, T, C]` batch.
pub fn gather_batch(samples: &[NdArray], indices: &[usize]) -> NdArray {
    let parts: Vec<&NdArray> = indices.iter().map(|&i| &samples[i]).collect();
    NdArray::stack(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_classify(n: usize) -> ClassifyDataset {
        let samples = (0..n).map(|i| NdArray::full(&[4, 2], i as f32)).collect();
        let labels = (0..n).map(|i| i % 3).collect();
        ClassifyDataset { name: "toy", samples, labels, n_classes: 3 }
    }

    #[test]
    fn split_partitions_everything() {
        let ds = toy_classify(30);
        let (train, test) = ds.train_test_split(0.6, &mut Prng::new(0)).unwrap();
        assert_eq!(train.len(), 18);
        assert_eq!(test.len(), 12);
    }

    #[test]
    fn subsample_keeps_class_coverage() {
        let ds = toy_classify(30);
        let sub = ds.subsample_labels(0.1, &mut Prng::new(1)).unwrap();
        for class in 0..3 {
            assert!(sub.labels.contains(&class), "class {class} lost");
        }
    }

    #[test]
    fn bad_fractions_are_typed_errors_not_panics() {
        let ds = toy_classify(10);
        for bad in [-0.1f32, 1.5, f32::NAN] {
            let err = ds.train_test_split(bad, &mut Prng::new(0)).unwrap_err();
            assert!(
                matches!(err, DataError::BadFraction { op: "train_test_split", .. }),
                "{err}"
            );
            let err = ds.subsample_labels(bad, &mut Prng::new(0)).unwrap_err();
            assert!(
                matches!(err, DataError::BadFraction { op: "subsample_labels", .. }),
                "{err}"
            );
        }
    }

    #[test]
    fn split_index_boundary_semantics_are_pinned() {
        // frac == 0.0 ⇒ empty cut; frac == 1.0 ⇒ everything; 0.5 on odd
        // lengths rounds up (half away from zero).
        assert_eq!(split_index(30, 0.0), 0);
        assert_eq!(split_index(30, 1.0), 30);
        assert_eq!(split_index(7, 0.5), 4);
        assert_eq!(split_index(9, 0.5), 5);
        assert_eq!(split_index(0, 0.5), 0);
        // And both dataset paths share those semantics.
        let ds = toy_classify(7);
        let (train, test) = ds.train_test_split(0.0, &mut Prng::new(0)).unwrap();
        assert_eq!((train.len(), test.len()), (0, 7));
        let (train, test) = ds.train_test_split(1.0, &mut Prng::new(0)).unwrap();
        assert_eq!((train.len(), test.len()), (7, 0));
        let (train, test) = ds.train_test_split(0.5, &mut Prng::new(0)).unwrap();
        assert_eq!((train.len(), test.len()), (4, 3));
        // subsample at 0.0 keeps only the class-coverage backstop: exactly
        // one sample per class present.
        let sub = ds.subsample_labels(0.0, &mut Prng::new(1)).unwrap();
        assert_eq!(sub.len(), 3);
        let mut classes: Vec<usize> = sub.labels.clone();
        classes.sort_unstable();
        assert_eq!(classes, vec![0, 1, 2]);
        let sub = ds.subsample_labels(1.0, &mut Prng::new(1)).unwrap();
        assert_eq!(sub.len(), 7);
    }

    /// Regression: at lengths past 2²⁴, `len as f32` is lossy and the old
    /// `(len as f32 * frac).round()` cut landed on the wrong index. The
    /// expected value is computed with independent 128-bit integer
    /// arithmetic from the exact rational value of `0.6f32`.
    #[test]
    fn split_index_is_exact_past_f32_precision() {
        let len: usize = (1 << 25) + 1; // 33_554_433: not representable in f32
        let frac = 0.6f32; // exactly 10_066_330 / 2²⁴
        let exact = ((len as u128 * 10_066_330 + (1 << 23)) >> 24) as usize;
        assert_eq!(split_index(len, frac), exact);
        let f32_cut = ((len as f32) * frac).round() as usize;
        assert_ne!(f32_cut, exact, "the old f32 arithmetic must provably misplace this cut");
        assert_eq!(exact, 20_132_661);
        assert_eq!(f32_cut, 20_132_660);
        // Huge lengths stay exact and clamped — no overflow, no f64 drift.
        assert_eq!(split_index(usize::MAX, 1.0), usize::MAX);
        assert_eq!(split_index(usize::MAX, 0.0), 0);
    }

    #[test]
    fn batches_cover_all_indices_once() {
        let batches: Vec<Vec<usize>> = BatchIndices::new(10, 3, None).unwrap().collect();
        let flat: Vec<usize> = batches.iter().flatten().copied().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        assert_eq!(batches.last().unwrap().len(), 1); // remainder batch
    }

    #[test]
    fn zero_batch_size_is_a_typed_error() {
        let err = BatchIndices::new(10, 0, None).unwrap_err();
        assert_eq!(err, DataError::ZeroBatchSize);
        assert!(err.to_string().contains("batch size"), "{err}");
    }

    #[test]
    fn shuffled_batches_are_permutation() {
        let mut rng = Prng::new(2);
        let batches: Vec<Vec<usize>> = BatchIndices::new(10, 4, Some(&mut rng)).unwrap().collect();
        let mut flat: Vec<usize> = batches.into_iter().flatten().collect();
        flat.sort_unstable();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn gather_batch_shape() {
        let ds = toy_classify(5);
        let b = gather_batch(&ds.samples, &[0, 2, 4]);
        assert_eq!(b.shape(), &[3, 4, 2]);
        assert_eq!(b.at(&[1, 0, 0]), 2.0);
    }

    #[test]
    fn univariate_extracts_target() {
        let series = NdArray::from_fn(&[10, 3], |i| i as f32);
        let ds = ForecastDataset { name: "t", series, frequency: "1h", target_channel: 2 };
        let uni = ds.univariate();
        assert_eq!(uni.series.shape(), &[10, 1]);
        assert_eq!(uni.series.at(&[0, 0]), 2.0);
        assert_eq!(uni.series.at(&[1, 0]), 5.0);
    }
}
