//! Synthetic stand-ins for the six forecasting benchmarks of Table I.
//!
//! Each generator matches its dataset's published feature count, default
//! length, sampling cadence, and qualitative structure:
//!
//! | dataset | features | timesteps | cadence | structure |
//! |---|---|---|---|---|
//! | ETTh1/ETTh2 | 7 | 17,420 | 1 hour  | daily+weekly seasonality, trend, AR noise; OT driven by loads |
//! | ETTm1/ETTm2 | 7 | 69,680 | 15 min  | same process at 4x resolution |
//! | Exchange    | 8 | 7,588  | 1 day   | correlated random walks (daily FX rates) |
//! | Weather     | 21| 52,696 | 10 min  | smooth annual/diurnal cycles + weather noise |
//!
//! The substitution rationale lives in DESIGN.md §2: the paper's
//! experiments compare *methods on shared data*; these processes expose the
//! same learnable structure (multi-scale periodicity, cross-channel
//! coupling, regime drift) on the same code paths.

use crate::dataset::ForecastDataset;
use timedrl_tensor::{NdArray, Prng};

/// Season / trend / noise mixing weights for an ETT-style channel.
struct EttChannel {
    daily_amp: f32,
    weekly_amp: f32,
    trend: f32,
    noise: f32,
    phase: f32,
}

/// Shared ETT process. `steps_per_day` distinguishes hourly (24) from
/// 15-minute (96) sampling; `volatility` distinguishes the calmer h1/m1
/// provinces from the more erratic h2/m2.
fn ett_like(
    name: &'static str,
    len: usize,
    steps_per_day: usize,
    volatility: f32,
    frequency: &'static str,
    seed: u64,
) -> ForecastDataset {
    let mut rng = Prng::new(seed);
    let n_loads = 6;
    let channels: Vec<EttChannel> = (0..n_loads)
        .map(|_| EttChannel {
            daily_amp: rng.uniform_in(0.5, 2.0),
            weekly_amp: rng.uniform_in(0.2, 0.8),
            trend: rng.uniform_in(-0.3, 0.3),
            noise: rng.uniform_in(0.1, 0.3) * volatility,
            phase: rng.uniform_in(0.0, std::f32::consts::TAU),
        })
        .collect();
    let day = steps_per_day as f32;
    let week = day * 7.0;
    let mut series = NdArray::zeros(&[len, 7]);
    // AR(1) noise state per channel, occasional regime shifts, and —
    // crucially — per-channel slow level drift. Real ETT spans two years
    // of electricity demand with pronounced non-stationarity (seasonal
    // migration, growing load): the train/test splits differ in level and
    // scale, which is exactly why instance-normalizing models dominate it.
    // The random-walk drift reproduces that inter-split shift at any
    // generated length, and the slow cycle adds within-series seasonal
    // migration (period tied to the series span, as a 2-year window of
    // real data would show ~2 annual swings).
    let mut ar = vec![0.0f32; n_loads];
    let mut level = vec![0.0f32; n_loads];
    let drift_std = 0.04 * volatility / (steps_per_day as f32 / 24.0).sqrt();
    let slow_period = len as f32 / 2.0;
    let slow_amp: Vec<f32> = (0..n_loads).map(|_| rng.uniform_in(0.8, 1.8)).collect();
    let slow_phase: Vec<f32> = (0..n_loads).map(|_| rng.uniform_in(0.0, std::f32::consts::TAU)).collect();
    let mut regime = 0.0f32;
    for t in 0..len {
        let tf = t as f32;
        if rng.bernoulli(1.0 / (30.0 * day)) {
            // Roughly monthly regime shift in overall demand.
            regime += rng.normal_with(0.0, 0.8) * volatility;
        }
        let mut load_sum = 0.0f32;
        for (c, ch) in channels.iter().enumerate() {
            ar[c] = 0.9 * ar[c] + rng.normal_with(0.0, ch.noise);
            level[c] += rng.normal_with(0.0, drift_std);
            let v = ch.daily_amp * (std::f32::consts::TAU * tf / day + ch.phase).sin()
                + ch.weekly_amp * (std::f32::consts::TAU * tf / week + ch.phase * 0.5).sin()
                + slow_amp[c] * (std::f32::consts::TAU * tf / slow_period + slow_phase[c]).sin()
                + ch.trend * 3.0 * tf / len as f32
                + regime
                + level[c]
                + ar[c];
            series.set(&[t, c], v);
            load_sum += v;
        }
        // Oil temperature: smoothed response to total load, lagging by
        // roughly half a day, plus its own seasonal cycle.
        let lag = steps_per_day / 2;
        let lagged = if t >= lag { series.at(&[t - lag, 0]) } else { 0.0 };
        let ot = 0.35 * load_sum / n_loads as f32
            + 0.25 * lagged
            + 0.8 * (std::f32::consts::TAU * tf / day).sin()
            + rng.normal_with(0.0, 0.05 * volatility);
        series.set(&[t, 6], ot);
    }
    ForecastDataset { name, series, frequency, target_channel: 6 }
}

/// ETTh1: hourly, calmer province. Default length 17,420.
pub fn etth1(len: usize, seed: u64) -> ForecastDataset {
    ett_like("ETTh1", len, 24, 1.0, "1 hour", seed ^ 0x0e77_0001)
}

/// ETTh2: hourly, higher volatility. Default length 17,420.
pub fn etth2(len: usize, seed: u64) -> ForecastDataset {
    ett_like("ETTh2", len, 24, 2.2, "1 hour", seed ^ 0x0e77_0002)
}

/// ETTm1: 15-minute sampling. Default length 69,680.
pub fn ettm1(len: usize, seed: u64) -> ForecastDataset {
    ett_like("ETTm1", len, 96, 1.0, "15 min", seed ^ 0x0e77_0003)
}

/// ETTm2: 15-minute sampling, higher volatility. Default length 69,680.
pub fn ettm2(len: usize, seed: u64) -> ForecastDataset {
    ett_like("ETTm2", len, 96, 2.2, "15 min", seed ^ 0x0e77_0004)
}

/// Exchange: 8 correlated FX random walks (daily). Default length 7,588.
/// The univariate target (channel 7) plays Singapore's role.
pub fn exchange(len: usize, seed: u64) -> ForecastDataset {
    let mut rng = Prng::new(seed ^ 0xf0e8_0005);
    let c = 8;
    let mut series = NdArray::zeros(&[len, c]);
    let mut level: Vec<f32> = (0..c).map(|_| rng.uniform_in(0.5, 2.0)).collect();
    let drift: Vec<f32> = (0..c).map(|_| rng.normal_with(0.0, 2e-5)).collect();
    for t in 0..len {
        // A common "dollar factor" couples all currencies, as real FX data
        // exhibits, plus idiosyncratic innovations.
        let common = rng.normal_with(0.0, 0.004);
        for ch in 0..c {
            let innovation = drift[ch] + 0.6 * common + rng.normal_with(0.0, 0.006);
            level[ch] *= 1.0 + innovation;
            series.set(&[t, ch], level[ch]);
        }
    }
    ForecastDataset { name: "Exchange", series, frequency: "1 day", target_channel: 7 }
}

/// Weather: 21 meteorological channels at 10-minute cadence. Default
/// length 52,696. Channel 20 plays the 'wet bulb' target.
pub fn weather(len: usize, seed: u64) -> ForecastDataset {
    let mut rng = Prng::new(seed ^ 0x3ea7_0006);
    let c = 21;
    let day = 144.0; // 10-minute steps per day
    let year = day * 365.0;
    let mut series = NdArray::zeros(&[len, c]);
    // Channel roles: 0 temperature-like, 1 pressure-like, 2 humidity-like,
    // the rest mixtures with varying smoothness.
    let smooth: Vec<f32> = (0..c).map(|_| rng.uniform_in(0.6, 0.98)).collect();
    let diurnal: Vec<f32> = (0..c).map(|_| rng.uniform_in(0.0, 1.5)).collect();
    let annual: Vec<f32> = (0..c).map(|_| rng.uniform_in(0.0, 2.0)).collect();
    let mut state = vec![0.0f32; c];
    for t in 0..len {
        let tf = t as f32;
        let mut temp_proxy = 0.0f32;
        for ch in 0..c - 1 {
            let target = diurnal[ch] * (std::f32::consts::TAU * tf / day).sin()
                + annual[ch] * (std::f32::consts::TAU * tf / year).sin()
                + rng.normal_with(0.0, 0.3);
            state[ch] = smooth[ch] * state[ch] + (1.0 - smooth[ch]) * target;
            series.set(&[t, ch], state[ch]);
            if ch < 3 {
                temp_proxy += state[ch];
            }
        }
        // Wet bulb: a function of the temperature/humidity channels.
        let wb = 0.5 * temp_proxy / 3.0
            + 0.3 * (std::f32::consts::TAU * tf / day - 0.7).sin()
            + rng.normal_with(0.0, 0.05);
        series.set(&[t, c - 1], wb);
    }
    ForecastDataset { name: "Weather", series, frequency: "10 min", target_channel: 20 }
}

/// Paper-published default lengths (Table I).
pub mod default_len {
    /// ETTh1/ETTh2 timesteps.
    pub const ETTH: usize = 17_420;
    /// ETTm1/ETTm2 timesteps.
    pub const ETTM: usize = 69_680;
    /// Exchange timesteps.
    pub const EXCHANGE: usize = 7_588;
    /// Weather timesteps.
    pub const WEATHER: usize = 52_696;
}

/// All six forecasting datasets at a common reduced length (for
/// experiments) or their paper lengths (`len = None`).
pub fn all_forecast_datasets(len: Option<usize>, seed: u64) -> Vec<ForecastDataset> {
    vec![
        etth1(len.unwrap_or(default_len::ETTH), seed),
        etth2(len.unwrap_or(default_len::ETTH), seed),
        ettm1(len.unwrap_or(default_len::ETTM), seed),
        ettm2(len.unwrap_or(default_len::ETTM), seed),
        exchange(len.unwrap_or(default_len::EXCHANGE), seed),
        weather(len.unwrap_or(default_len::WEATHER), seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_table_one() {
        assert_eq!(etth1(default_len::ETTH, 0).series.shape(), &[17_420, 7]);
        assert_eq!(ettm2(default_len::ETTM, 0).series.shape(), &[69_680, 7]);
        assert_eq!(exchange(default_len::EXCHANGE, 0).series.shape(), &[7_588, 8]);
        assert_eq!(weather(default_len::WEATHER, 0).series.shape(), &[52_696, 21]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = etth1(500, 42).series;
        let b = etth1(500, 42).series;
        assert_eq!(a, b);
        let c = etth1(500, 43).series;
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn ett_has_daily_periodicity() {
        // Autocorrelation at the daily lag should clearly beat a random lag.
        let s = etth1(24 * 90, 7).series;
        let ch0: Vec<f32> = (0..s.shape()[0]).map(|t| s.at(&[t, 0])).collect();
        let ac_daily = autocorr(&ch0, 24);
        let ac_off = autocorr(&ch0, 17);
        assert!(ac_daily > ac_off + 0.1, "daily {ac_daily} vs off-cycle {ac_off}");
    }

    #[test]
    fn etth2_more_volatile_than_etth1() {
        let v1 = diff_std(&etth1(2000, 3).series);
        let v2 = diff_std(&etth2(2000, 3).series);
        assert!(v2 > v1 * 1.3, "h2 {v2} vs h1 {v1}");
    }

    #[test]
    fn exchange_is_near_random_walk() {
        // First differences of a random walk are near-white: the daily
        // autocorrelation of *levels* is high, of *diffs* near zero.
        let s = exchange(2000, 9).series;
        let ch: Vec<f32> = (0..2000).map(|t| s.at(&[t, 0])).collect();
        assert!(autocorr(&ch, 1) > 0.95);
        let d: Vec<f32> = ch.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(autocorr(&d, 1).abs() < 0.1);
    }

    #[test]
    fn weather_channels_differ_in_smoothness() {
        let s = weather(3000, 5).series;
        let stds: Vec<f32> = (0..21)
            .map(|c| {
                let ch: Vec<f32> = (0..3000).map(|t| s.at(&[t, c])).collect();
                let d: Vec<f32> = ch.windows(2).map(|w| w[1] - w[0]).collect();
                std(&d)
            })
            .collect();
        let max = stds.iter().cloned().fold(0.0f32, f32::max);
        let min = stds.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(max > 2.0 * min, "channel smoothness should vary: {min}..{max}");
    }

    #[test]
    fn target_channel_is_coupled_to_loads() {
        // Shuffling test: correlation between OT and mean load should be
        // well above zero.
        let s = etth1(5000, 11).series;
        let ot: Vec<f32> = (0..5000).map(|t| s.at(&[t, 6])).collect();
        let load: Vec<f32> = (0..5000)
            .map(|t| (0..6).map(|c| s.at(&[t, c])).sum::<f32>() / 6.0)
            .collect();
        assert!(corr(&ot, &load) > 0.3);
    }

    fn mean(xs: &[f32]) -> f32 {
        xs.iter().sum::<f32>() / xs.len() as f32
    }

    fn std(xs: &[f32]) -> f32 {
        let m = mean(xs);
        (xs.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / xs.len() as f32).sqrt()
    }

    fn corr(a: &[f32], b: &[f32]) -> f32 {
        let (ma, mb) = (mean(a), mean(b));
        let cov: f32 =
            a.iter().zip(b.iter()).map(|(&x, &y)| (x - ma) * (y - mb)).sum::<f32>() / a.len() as f32;
        cov / (std(a) * std(b) + 1e-9)
    }

    fn autocorr(xs: &[f32], lag: usize) -> f32 {
        corr(&xs[..xs.len() - lag], &xs[lag..])
    }

    fn diff_std(s: &NdArray) -> f32 {
        // Average over the six load channels: each channel's noise amplitude
        // is an independent draw, so a single channel is seed-luck.
        let t = s.shape()[0];
        (0..6)
            .map(|c| {
                let ch: Vec<f32> = (0..t).map(|i| s.at(&[i, c])).collect();
                let d: Vec<f32> = ch.windows(2).map(|w| w[1] - w[0]).collect();
                std(&d)
            })
            .sum::<f32>()
            / 6.0
    }
}

#[cfg(test)]
mod nonstationarity_tests {
    use super::*;

    /// Real ETT's signature: the chronological test split sits at a
    /// different level/scale than the train split. Verify the generator
    /// reproduces that inter-split shift (the property RevIN-style models
    /// exploit).
    #[test]
    fn ett_splits_are_distribution_shifted() {
        let s = etth1(3000, 2024).series;
        let train = s.slice(0, 0, 1800).unwrap();
        let test = s.slice(0, 2400, 600).unwrap();
        let shift = (train.mean_axis(0, false).sub(&test.mean_axis(0, false))).map(f32::abs).mean();
        let scale = train.var_axis(0, false).mean().sqrt();
        assert!(
            shift > 0.3 * scale,
            "test split should be level-shifted: shift {shift} vs train std {scale}"
        );
    }

    #[test]
    fn daily_cycle_survives_the_drift() {
        let s = etth1(24 * 120, 7).series;
        // Autocorrelation of first differences at the daily lag stays
        // clearly positive (drift inflates level autocorrelation, so test
        // on differences).
        let ch: Vec<f32> = (0..s.shape()[0]).map(|t| s.at(&[t, 0])).collect();
        let d: Vec<f32> = ch.windows(2).map(|w| w[1] - w[0]).collect();
        let n = d.len() - 24;
        let mean: f32 = d.iter().sum::<f32>() / d.len() as f32;
        let mut num = 0.0f32;
        let mut den = 0.0f32;
        for i in 0..n {
            num += (d[i] - mean) * (d[i + 24] - mean);
        }
        for v in &d {
            den += (v - mean) * (v - mean);
        }
        assert!(num / den > 0.1, "daily structure lost: {}", num / den);
    }
}
