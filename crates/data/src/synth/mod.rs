//! Synthetic dataset generators standing in for the paper's 11 public
//! benchmarks (see DESIGN.md §2 for the substitution rationale).

pub mod classify;
pub mod forecast;
