//! Synthetic stand-ins for the five classification benchmarks of Table II.
//!
//! | dataset | samples | features | classes | length | structure |
//! |---|---|---|---|---|---|
//! | FingerMovements | 416    | 28 | 2  | 50  | EEG-like noise with class-dependent lateralized drift |
//! | PenDigits       | 10,992 | 2  | 10 | 8   | 8-point pen trajectories of digit prototypes |
//! | HAR             | 10,299 | 9  | 6  | 128 | accelerometer/gyroscope motifs per activity |
//! | Epilepsy        | 11,500 | 1  | 2  | 178 | EEG: seizure = high-amplitude spiking rhythm |
//! | WISDM           | 4,091  | 3  | 6  | 256 | smartphone accelerometer motifs per activity |
//!
//! Each class owns a parametric signal family; samples draw per-instance
//! amplitude/frequency/phase jitter plus sensor noise, so classes overlap
//! but remain separable — the regime the paper's linear-evaluation protocol
//! probes.

use crate::dataset::ClassifyDataset;
use timedrl_tensor::{NdArray, Prng};

const TAU: f32 = std::f32::consts::TAU;

/// Activity motif generator shared by HAR and WISDM: walking-like periodic
/// bursts, sitting-like flatness, stair-like asymmetric ramps, etc.
fn activity_sample(class: usize, len: usize, features: usize, rng: &mut Prng) -> NdArray {
    let base_freq = match class {
        0 => 2.0,  // walking
        1 => 2.8,  // walking upstairs (faster, asymmetric)
        2 => 2.4,  // walking downstairs
        3 => 0.0,  // sitting
        4 => 0.0,  // standing
        5 => 0.05, // laying (slow drift)
        _ => 1.0,
    };
    let amp = match class {
        0 => 1.0,
        1 => 1.4,
        2 => 1.2,
        3 => 0.05,
        4 => 0.10,
        5 => 0.05,
        _ => 0.5,
    };
    let asym = matches!(class, 1 | 2);
    let freq_jitter = rng.uniform_in(0.85, 1.15);
    let phase = rng.uniform_in(0.0, TAU);
    let amp_jitter = rng.uniform_in(0.8, 1.2);
    NdArray::from_fn(&[len, features], |flat| {
        let t = (flat / features) as f32 / len as f32 * 8.0; // ~8 "seconds"
        let ch = flat % features;
        let ch_phase = ch as f32 * 0.7;
        let mut v = if base_freq > 0.0 {
            let s = (TAU * base_freq * freq_jitter * t + phase + ch_phase).sin();
            // Upstairs/downstairs motifs clip one half-cycle harder.
            if asym && s < 0.0 {
                s * 0.4
            } else {
                s
            }
        } else {
            0.0
        };
        // Standing vs sitting differ in micro-tremor frequency.
        if class == 4 {
            v += 0.1 * (TAU * 8.0 * t + ch_phase).sin();
        }
        if class == 5 {
            v += 0.3 * (TAU * 0.05 * t).sin(); // slow postural drift
        }
        amp * amp_jitter * v
    })
    .add(&noise(len, features, 0.15, rng))
}

fn noise(len: usize, features: usize, std: f32, rng: &mut Prng) -> NdArray {
    NdArray::from_fn(&[len, features], |_| rng.normal_with(0.0, std))
}

/// HAR: 10,299 samples, 9 features (3x accelerometer body/total +
/// gyroscope), 6 activities, length 128.
pub fn har(n_samples: usize, seed: u64) -> ClassifyDataset {
    build("HAR", n_samples, 6, seed ^ 0xAA01, |class, rng| activity_sample(class, 128, 9, rng))
}

/// WISDM: 4,091 samples, 3 accelerometer axes, 6 activities, length 256.
pub fn wisdm(n_samples: usize, seed: u64) -> ClassifyDataset {
    build("WISDM", n_samples, 6, seed ^ 0xAA02, |class, rng| activity_sample(class, 256, 3, rng))
}

/// Epilepsy: 11,500 samples, single EEG channel, binary seizure label,
/// length 178. Seizure activity shows high-amplitude 3–5 Hz spiking.
pub fn epilepsy(n_samples: usize, seed: u64) -> ClassifyDataset {
    build("Epilepsy", n_samples, 2, seed ^ 0xAA03, |class, rng| {
        let len = 178;
        let seizure = class == 1;
        let spike_freq = rng.uniform_in(3.0, 5.0);
        let phase = rng.uniform_in(0.0, TAU);
        let alpha = rng.uniform_in(8.0, 12.0);
        let base = NdArray::from_fn(&[len, 1], |i| {
            let t = i as f32 / 178.0 * 23.6 / 10.0; // compressed time axis
            if seizure {
                // Sharp, saturating spike train.
                let s = (TAU * spike_freq * t + phase).sin();
                4.0 * s.signum() * s.abs().powf(0.3)
            } else {
                // Normal alpha-band background rhythm.
                (TAU * alpha * t + phase).sin()
            }
        });
        let noise_std = if seizure { 0.8 } else { 0.4 };
        base.add(&noise(len, 1, noise_std, rng))
    })
}

/// Digit stroke prototypes for PenDigits: 8 (x, y) waypoints per digit,
/// loosely tracing each numeral's pen path in a unit box.
const DIGIT_PROTOS: [[(f32, f32); 8]; 10] = [
    // 0: oval
    [(0.5, 1.0), (0.15, 0.8), (0.1, 0.4), (0.35, 0.0), (0.65, 0.0), (0.9, 0.4), (0.85, 0.8), (0.5, 1.0)],
    // 1: vertical stroke
    [(0.4, 0.9), (0.5, 1.0), (0.5, 0.85), (0.5, 0.6), (0.5, 0.45), (0.5, 0.3), (0.5, 0.15), (0.5, 0.0)],
    // 2: arc then base line
    [(0.15, 0.8), (0.4, 1.0), (0.75, 0.9), (0.8, 0.6), (0.5, 0.35), (0.2, 0.1), (0.5, 0.05), (0.9, 0.0)],
    // 3: double bump
    [(0.2, 0.95), (0.65, 1.0), (0.8, 0.75), (0.45, 0.55), (0.8, 0.35), (0.7, 0.1), (0.35, 0.0), (0.15, 0.1)],
    // 4: down-diagonal, cross, vertical
    [(0.7, 1.0), (0.45, 0.7), (0.2, 0.4), (0.5, 0.4), (0.85, 0.4), (0.7, 0.7), (0.7, 0.3), (0.7, 0.0)],
    // 5: top bar, belly
    [(0.85, 1.0), (0.3, 1.0), (0.25, 0.6), (0.6, 0.6), (0.85, 0.4), (0.8, 0.15), (0.45, 0.0), (0.15, 0.1)],
    // 6: sweep down into loop
    [(0.75, 1.0), (0.45, 0.8), (0.2, 0.5), (0.15, 0.2), (0.45, 0.0), (0.75, 0.15), (0.7, 0.4), (0.3, 0.4)],
    // 7: top bar, diagonal
    [(0.1, 1.0), (0.5, 1.0), (0.9, 1.0), (0.7, 0.7), (0.55, 0.5), (0.45, 0.3), (0.35, 0.15), (0.3, 0.0)],
    // 8: two loops
    [(0.5, 1.0), (0.2, 0.8), (0.5, 0.55), (0.8, 0.8), (0.5, 1.0), (0.15, 0.2), (0.5, 0.0), (0.85, 0.25)],
    // 9: loop then tail
    [(0.8, 0.8), (0.5, 1.0), (0.2, 0.8), (0.5, 0.55), (0.8, 0.8), (0.75, 0.5), (0.7, 0.25), (0.65, 0.0)],
];

/// PenDigits: 10,992 samples, (x, y) pen coordinates resampled to 8 points,
/// 10 digit classes.
pub fn pendigits(n_samples: usize, seed: u64) -> ClassifyDataset {
    build("PenDigits", n_samples, 10, seed ^ 0xAA04, |class, rng| {
        let proto = &DIGIT_PROTOS[class];
        // Affine jitter: per-writer scale, shear, offset, point noise.
        let sx = rng.uniform_in(0.8, 1.2);
        let sy = rng.uniform_in(0.8, 1.2);
        let shear = rng.uniform_in(-0.15, 0.15);
        let (ox, oy) = (rng.uniform_in(-0.05, 0.05), rng.uniform_in(-0.05, 0.05));
        let mut out = NdArray::zeros(&[8, 2]);
        for (i, &(px, py)) in proto.iter().enumerate() {
            let x = sx * px + shear * py + ox + rng.normal_with(0.0, 0.03);
            let y = sy * py + oy + rng.normal_with(0.0, 0.03);
            out.set(&[i, 0], x);
            out.set(&[i, 1], y);
        }
        out
    })
}

/// FingerMovements: 416 samples, 28 EEG channels, binary left/right
/// intention, length 50. The class signal is a weak lateralized readiness
/// drift — deliberately hard, matching the near-chance baseline accuracies
/// of Table V.
pub fn finger_movements(n_samples: usize, seed: u64) -> ClassifyDataset {
    build("FingerMovements", n_samples, 2, seed ^ 0xAA05, |class, rng| {
        let len = 50;
        let c = 28;
        // Left hemisphere channels 0..14, right 14..28; upcoming left key
        // press (class 0) shows contralateral (right-side) drift and vice
        // versa.
        let lateral = if class == 0 { 1.0 } else { -1.0 };
        let drift_amp = rng.uniform_in(0.2, 0.45);
        let alpha_freq = rng.uniform_in(9.0, 11.0);
        let phase = rng.uniform_in(0.0, TAU);
        let base = NdArray::from_fn(&[len, c], |flat| {
            let t = (flat / c) as f32 / len as f32;
            let ch = flat % c;
            let side = if ch < 14 { -1.0 } else { 1.0 };
            // Readiness potential: slow ramp toward movement onset.
            let drift = lateral * side * drift_amp * t * t;
            let rhythm = 0.3 * (TAU * alpha_freq * t + phase + ch as f32 * 0.3).sin();
            drift + rhythm
        });
        base.add(&noise(len, c, 0.5, rng))
    })
}

/// Builds a dataset with a balanced class distribution.
fn build(
    name: &'static str,
    n_samples: usize,
    n_classes: usize,
    seed: u64,
    mut gen: impl FnMut(usize, &mut Prng) -> NdArray,
) -> ClassifyDataset {
    let mut rng = Prng::new(seed);
    let mut samples = Vec::with_capacity(n_samples);
    let mut labels = Vec::with_capacity(n_samples);
    for i in 0..n_samples {
        let class = i % n_classes;
        samples.push(gen(class, &mut rng));
        labels.push(class);
    }
    // Shuffle so class order carries no information.
    let mut idx: Vec<usize> = (0..n_samples).collect();
    rng.shuffle(&mut idx);
    let samples = idx.iter().map(|&i| samples[i].clone()).collect();
    let labels = idx.iter().map(|&i| labels[i]).collect();
    ClassifyDataset { name, samples, labels, n_classes }
}

/// Paper-published sample counts (Table II).
pub mod default_n {
    /// FingerMovements samples.
    pub const FINGER_MOVEMENTS: usize = 416;
    /// PenDigits samples.
    pub const PENDIGITS: usize = 10_992;
    /// HAR samples.
    pub const HAR: usize = 10_299;
    /// Epilepsy samples.
    pub const EPILEPSY: usize = 11_500;
    /// WISDM samples.
    pub const WISDM: usize = 4_091;
}

/// All five classification datasets at a common reduced sample count (for
/// experiments) or their paper counts (`n = None`).
pub fn all_classify_datasets(n: Option<usize>, seed: u64) -> Vec<ClassifyDataset> {
    vec![
        finger_movements(n.unwrap_or(default_n::FINGER_MOVEMENTS), seed),
        pendigits(n.unwrap_or(default_n::PENDIGITS), seed),
        har(n.unwrap_or(default_n::HAR), seed),
        epilepsy(n.unwrap_or(default_n::EPILEPSY), seed),
        wisdm(n.unwrap_or(default_n::WISDM), seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_table_two() {
        let fm = finger_movements(default_n::FINGER_MOVEMENTS, 0);
        assert_eq!(fm.len(), 416);
        assert_eq!(fm.sample_len(), 50);
        assert_eq!(fm.features(), 28);
        assert_eq!(fm.n_classes, 2);
        let pd = pendigits(100, 0);
        assert_eq!((pd.sample_len(), pd.features(), pd.n_classes), (8, 2, 10));
        let h = har(60, 0);
        assert_eq!((h.sample_len(), h.features(), h.n_classes), (128, 9, 6));
        let ep = epilepsy(40, 0);
        assert_eq!((ep.sample_len(), ep.features(), ep.n_classes), (178, 1, 2));
        let w = wisdm(60, 0);
        assert_eq!((w.sample_len(), w.features(), w.n_classes), (256, 3, 6));
    }

    #[test]
    fn labels_are_balanced() {
        let ds = har(600, 1);
        for class in 0..6 {
            let count = ds.labels.iter().filter(|&&l| l == class).count();
            assert_eq!(count, 100);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = wisdm(20, 5);
        let b = wisdm(20, 5);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.samples[0], b.samples[0]);
    }

    #[test]
    fn epilepsy_seizure_has_higher_energy() {
        let ds = epilepsy(200, 2);
        let mut energy = [0.0f32; 2];
        let mut counts = [0usize; 2];
        for (s, &l) in ds.samples.iter().zip(&ds.labels) {
            energy[l] += s.data().iter().map(|v| v * v).sum::<f32>();
            counts[l] += 1;
        }
        let normal = energy[0] / counts[0] as f32;
        let seizure = energy[1] / counts[1] as f32;
        assert!(seizure > 2.0 * normal, "seizure {seizure} vs normal {normal}");
    }

    #[test]
    fn activity_classes_are_distinguishable_by_energy() {
        // Walking (0) must be far more energetic than sitting (3).
        let ds = har(120, 3);
        let avg_energy = |class: usize| {
            let (mut e, mut n) = (0.0f32, 0);
            for (s, &l) in ds.samples.iter().zip(&ds.labels) {
                if l == class {
                    e += s.data().iter().map(|v| v * v).sum::<f32>() / s.numel() as f32;
                    n += 1;
                }
            }
            e / n as f32
        };
        assert!(avg_energy(0) > 5.0 * avg_energy(3));
    }

    #[test]
    fn pendigits_prototypes_are_distinct() {
        // Mean trajectories of two different digits must differ clearly.
        let ds = pendigits(400, 4);
        let mean_traj = |class: usize| {
            let mut acc = NdArray::zeros(&[8, 2]);
            let mut n = 0;
            for (s, &l) in ds.samples.iter().zip(&ds.labels) {
                if l == class {
                    acc = acc.add(s);
                    n += 1;
                }
            }
            acc.scale(1.0 / n as f32)
        };
        let d0 = mean_traj(0);
        let d1 = mean_traj(1);
        assert!(d0.max_abs_diff(&d1) > 0.2);
    }

    #[test]
    fn finger_movements_lateralization() {
        // Class-conditional mean of (right-side minus left-side) late-window
        // activity should have opposite signs across classes.
        let ds = finger_movements(400, 6);
        let mut side_diff = [0.0f32; 2];
        let mut counts = [0usize; 2];
        for (s, &l) in ds.samples.iter().zip(&ds.labels) {
            let mut left = 0.0;
            let mut right = 0.0;
            for t in 40..50 {
                for ch in 0..14 {
                    left += s.at(&[t, ch]);
                }
                for ch in 14..28 {
                    right += s.at(&[t, ch]);
                }
            }
            side_diff[l] += right - left;
            counts[l] += 1;
        }
        let d0 = side_diff[0] / counts[0] as f32;
        let d1 = side_diff[1] / counts[1] as f32;
        assert!(d0 > 0.0 && d1 < 0.0, "lateralization d0={d0} d1={d1}");
    }
}
