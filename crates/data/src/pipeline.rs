//! Normalization: per-sample instance normalization (Eq. 1's `IN(x)`) and
//! train-statistics standardization.

use std::fmt;
use timedrl_tensor::NdArray;

/// A shape problem in the normalization pipeline, surfaced as a value
/// instead of the raw panic this module used to produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The input tensor's rank is outside what the operation accepts.
    BadRank {
        /// The operation that rejected the input.
        op: &'static str,
        /// Human-readable description of the accepted ranks.
        expected: &'static str,
        /// The shape actually supplied.
        got: Vec<usize>,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::BadRank { op, expected, got } => {
                write!(f, "{op} expects {expected}, got rank-{} shape {got:?}", got.len())
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// The ε added to the temporal variance before the square root, shared by
/// every instance-normalization consumer (batch, compiled serving, and
/// streaming paths).
pub const INSTANCE_NORM_EPS: f32 = 1e-5;

/// Per-channel temporal statistics of one `[T, C]` sample — the μ/σ pair
/// instance normalization divides by (Eq. 1).
///
/// This is the single definition of that arithmetic: the batch path
/// ([`instance_normalize`]), the compiled serving path, and the streaming
/// engine's periodic exact recompute all build their statistics here, so
/// "same window ⇒ same bits" holds across all three by construction
/// rather than by parallel-maintained copies.
#[derive(Debug, Clone)]
pub struct InstanceStats {
    /// Temporal mean per channel, `[1, C]`.
    pub mean: NdArray,
    /// `sqrt(var + ε)` per channel, `[1, C]` — the divisor, ε included.
    pub std: NdArray,
}

impl InstanceStats {
    /// Computes the statistics of a `[T, C]` sample with the exact batch
    /// arithmetic: time-ordered `f32` sums for mean and population
    /// variance, then `sqrt(var + ε)`.
    pub fn compute(x: &NdArray) -> Self {
        debug_assert_eq!(x.rank(), 2, "InstanceStats::compute expects [T, C]");
        let mean = x.mean_axis(0, true);
        let std = x.var_axis(0, true).add_scalar(INSTANCE_NORM_EPS).sqrt();
        Self { mean, std }
    }

    /// Applies the normalization `(x − μ) / σ` to a `[T, C]` sample (or
    /// anything broadcastable against `[1, C]`).
    pub fn apply(&self, x: &NdArray) -> NdArray {
        x.sub(&self.mean).div(&self.std)
    }
}

/// Per-sample, per-channel z-scoring over the time axis: the instance
/// normalization TimeDRL applies before patching (Eq. 1, following RevIN).
///
/// Input `[T, C]` (a single sample) or `[B, T, C]` (a batch); each
/// (sample, channel) pair is normalized by its own temporal mean/std.
///
/// # Errors
/// [`PipelineError::BadRank`] for any other rank.
pub fn instance_normalize(x: &NdArray) -> Result<NdArray, PipelineError> {
    match x.rank() {
        2 => Ok(instance_normalize_sample(x)),
        3 => {
            let b = x.shape()[0];
            let parts: Vec<NdArray> =
                (0..b).map(|i| instance_normalize_sample(&x.index_axis0(i))).collect();
            let refs: Vec<&NdArray> = parts.iter().collect();
            Ok(NdArray::stack(&refs))
        }
        _ => Err(PipelineError::BadRank {
            op: "instance_normalize",
            expected: "rank 2 [T, C] or rank 3 [B, T, C]",
            got: x.shape().to_vec(),
        }),
    }
}

fn instance_normalize_sample(x: &NdArray) -> NdArray {
    InstanceStats::compute(x).apply(x)
}

/// Per-channel statistics fitted on training data, applied everywhere —
/// the global scaler used before windowing long forecasting series.
#[derive(Debug, Clone)]
pub struct Standardizer {
    mean: NdArray,
    std: NdArray,
}

impl Standardizer {
    /// Fits per-channel mean/std on a `[T, C]` training series.
    pub fn fit(train: &NdArray) -> Self {
        assert_eq!(train.rank(), 2, "Standardizer fits [T, C] series");
        let mean = train.mean_axis(0, true);
        let std = train.var_axis(0, true).add_scalar(1e-8).sqrt();
        Self { mean, std }
    }

    /// Applies the fitted transform to `[T, C]` data.
    pub fn transform(&self, x: &NdArray) -> NdArray {
        x.sub(&self.mean).div(&self.std)
    }

    /// Inverts the transform (for reporting in original units).
    pub fn inverse(&self, x: &NdArray) -> NdArray {
        x.mul(&self.std).add(&self.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_tensor::Prng;

    #[test]
    fn instance_norm_zero_mean_unit_var() {
        let mut rng = Prng::new(0);
        let x = rng.randn(&[50, 3]).scale(4.0).add_scalar(7.0);
        let y = instance_normalize(&x).unwrap();
        let m = y.mean_axis(0, false);
        let v = y.var_axis(0, false);
        for c in 0..3 {
            assert!(m.data()[c].abs() < 1e-4);
            assert!((v.data()[c] - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn instance_norm_batch_is_per_sample() {
        let mut rng = Prng::new(1);
        // Two samples with very different offsets both normalize to ~0 mean.
        let a = rng.randn(&[20, 2]).add_scalar(100.0);
        let b = rng.randn(&[20, 2]).add_scalar(-100.0);
        let batch = NdArray::stack(&[&a, &b]);
        let y = instance_normalize(&batch).unwrap();
        for i in 0..2 {
            let m = y.index_axis0(i).mean();
            assert!(m.abs() < 1e-3, "sample {i} mean {m}");
        }
    }

    #[test]
    fn instance_norm_rejects_other_ranks_by_value() {
        let x = NdArray::from_fn(&[6], |i| i as f32);
        let err = instance_normalize(&x).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("instance_normalize"), "{msg}");
        assert!(msg.contains("rank-1"), "{msg}");
    }

    /// Regression pin: the exact bytes `instance_normalize` produces on a
    /// fixed input. The streaming engine's bit-exactness contract
    /// (DESIGN.md §14) builds on this arithmetic staying put, so the
    /// shared-stats refactor (and any future one) must not move a single
    /// bit. The golden CRC was captured from the pre-refactor code.
    #[test]
    fn instance_normalize_bytes_are_pinned() {
        let mut rng = Prng::new(0xD5EA);
        let x = rng.randn(&[3, 37, 4]).scale(3.5).add_scalar(-1.25);
        let y = instance_normalize(&x).unwrap();
        let mut bytes = Vec::with_capacity(y.numel() * 4);
        for &v in y.data() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(testkit::crc32::crc32(&bytes), 259_015_086, "batch-path bytes moved");
    }

    #[test]
    fn standardizer_roundtrip() {
        let mut rng = Prng::new(2);
        let train = rng.randn(&[100, 4]).scale(3.0).add_scalar(-2.0);
        let sc = Standardizer::fit(&train);
        let x = rng.randn(&[10, 4]);
        let back = sc.inverse(&sc.transform(&x));
        assert!(back.max_abs_diff(&x) < 1e-4);
    }

    #[test]
    fn standardizer_train_stats_not_test_stats() {
        let mut rng = Prng::new(3);
        let train = rng.randn(&[200, 1]);
        let sc = Standardizer::fit(&train);
        // Test data with a different offset keeps its shift after scaling.
        let test = rng.randn(&[200, 1]).add_scalar(5.0);
        let z = sc.transform(&test);
        assert!(z.mean() > 3.0, "test shift must survive train-fitted scaling");
    }
}
