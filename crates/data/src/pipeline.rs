//! Normalization: per-sample instance normalization (Eq. 1's `IN(x)`) and
//! train-statistics standardization.

use timedrl_tensor::NdArray;

/// Per-sample, per-channel z-scoring over the time axis: the instance
/// normalization TimeDRL applies before patching (Eq. 1, following RevIN).
///
/// Input `[T, C]` (a single sample) or `[B, T, C]` (a batch); each
/// (sample, channel) pair is normalized by its own temporal mean/std.
pub fn instance_normalize(x: &NdArray) -> NdArray {
    match x.rank() {
        2 => instance_normalize_sample(x),
        3 => {
            let b = x.shape()[0];
            let parts: Vec<NdArray> =
                (0..b).map(|i| instance_normalize_sample(&x.index_axis0(i))).collect();
            let refs: Vec<&NdArray> = parts.iter().collect();
            NdArray::stack(&refs)
        }
        r => panic!("instance_normalize expects rank 2 or 3, got {r}"),
    }
}

fn instance_normalize_sample(x: &NdArray) -> NdArray {
    let mean = x.mean_axis(0, true);
    let std = x.var_axis(0, true).add_scalar(1e-5).sqrt();
    x.sub(&mean).div(&std)
}

/// Per-channel statistics fitted on training data, applied everywhere —
/// the global scaler used before windowing long forecasting series.
#[derive(Debug, Clone)]
pub struct Standardizer {
    mean: NdArray,
    std: NdArray,
}

impl Standardizer {
    /// Fits per-channel mean/std on a `[T, C]` training series.
    pub fn fit(train: &NdArray) -> Self {
        assert_eq!(train.rank(), 2, "Standardizer fits [T, C] series");
        let mean = train.mean_axis(0, true);
        let std = train.var_axis(0, true).add_scalar(1e-8).sqrt();
        Self { mean, std }
    }

    /// Applies the fitted transform to `[T, C]` data.
    pub fn transform(&self, x: &NdArray) -> NdArray {
        x.sub(&self.mean).div(&self.std)
    }

    /// Inverts the transform (for reporting in original units).
    pub fn inverse(&self, x: &NdArray) -> NdArray {
        x.mul(&self.std).add(&self.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_tensor::Prng;

    #[test]
    fn instance_norm_zero_mean_unit_var() {
        let mut rng = Prng::new(0);
        let x = rng.randn(&[50, 3]).scale(4.0).add_scalar(7.0);
        let y = instance_normalize(&x);
        let m = y.mean_axis(0, false);
        let v = y.var_axis(0, false);
        for c in 0..3 {
            assert!(m.data()[c].abs() < 1e-4);
            assert!((v.data()[c] - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn instance_norm_batch_is_per_sample() {
        let mut rng = Prng::new(1);
        // Two samples with very different offsets both normalize to ~0 mean.
        let a = rng.randn(&[20, 2]).add_scalar(100.0);
        let b = rng.randn(&[20, 2]).add_scalar(-100.0);
        let batch = NdArray::stack(&[&a, &b]);
        let y = instance_normalize(&batch);
        for i in 0..2 {
            let m = y.index_axis0(i).mean();
            assert!(m.abs() < 1e-3, "sample {i} mean {m}");
        }
    }

    #[test]
    fn standardizer_roundtrip() {
        let mut rng = Prng::new(2);
        let train = rng.randn(&[100, 4]).scale(3.0).add_scalar(-2.0);
        let sc = Standardizer::fit(&train);
        let x = rng.randn(&[10, 4]);
        let back = sc.inverse(&sc.transform(&x));
        assert!(back.max_abs_diff(&x) < 1e-4);
    }

    #[test]
    fn standardizer_train_stats_not_test_stats() {
        let mut rng = Prng::new(3);
        let train = rng.randn(&[200, 1]);
        let sc = Standardizer::fit(&train);
        // Test data with a different offset keeps its shift after scaling.
        let test = rng.randn(&[200, 1]).add_scalar(5.0);
        let z = sc.transform(&test);
        assert!(z.mean() > 3.0, "test shift must survive train-fitted scaling");
    }
}
