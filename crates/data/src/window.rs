//! Sliding-window extraction and chronological splits for forecasting.

use crate::dataset::ForecastDataset;
use timedrl_tensor::NdArray;

/// A windowed forecasting set: inputs `[N, L, C]` and targets `[N, H, C]`.
#[derive(Debug, Clone)]
pub struct WindowedForecast {
    /// Input windows `[N, L, C]`.
    pub inputs: NdArray,
    /// Target horizons `[N, H, C]`.
    pub targets: NdArray,
}

impl WindowedForecast {
    /// Number of windows.
    pub fn len(&self) -> usize {
        self.inputs.shape()[0]
    }

    /// True when no windows fit.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Extracts all sliding windows of length `lookback` with a `horizon`-step
/// target from a `[T, C]` series. Windows step by `stride`.
pub fn sliding_windows(series: &NdArray, lookback: usize, horizon: usize, stride: usize) -> WindowedForecast {
    assert!(stride > 0, "stride must be positive");
    let t = series.shape()[0];
    let c = series.shape()[1];
    if t < lookback + horizon {
        return WindowedForecast {
            inputs: NdArray::zeros(&[0, lookback, c]),
            targets: NdArray::zeros(&[0, horizon, c]),
        };
    }
    let n = (t - lookback - horizon) / stride + 1;
    let mut inputs = Vec::with_capacity(n * lookback * c);
    let mut targets = Vec::with_capacity(n * horizon * c);
    for w in 0..n {
        let start = w * stride;
        inputs.extend_from_slice(&series.data()[start * c..(start + lookback) * c]);
        let tstart = start + lookback;
        targets.extend_from_slice(&series.data()[tstart * c..(tstart + horizon) * c]);
    }
    WindowedForecast {
        inputs: NdArray::from_vec(&[n, lookback, c], inputs).expect("window shape"),
        targets: NdArray::from_vec(&[n, horizon, c], targets).expect("target shape"),
    }
}

/// The paper's chronological 60/20/20 train/validation/test partition of a
/// long series (Section V.4).
#[derive(Debug, Clone)]
pub struct ChronoSplit {
    /// First 60% of the series.
    pub train: NdArray,
    /// Next 20%.
    pub val: NdArray,
    /// Final 20%.
    pub test: NdArray,
}

/// Splits a `[T, C]` series chronologically at 60% / 80%.
pub fn chrono_split(dataset: &ForecastDataset) -> ChronoSplit {
    let t = dataset.timesteps();
    let train_end = (t as f32 * 0.6) as usize;
    let val_end = (t as f32 * 0.8) as usize;
    ChronoSplit {
        train: dataset.series.slice(0, 0, train_end).expect("train slice"),
        val: dataset.series.slice(0, train_end, val_end - train_end).expect("val slice"),
        test: dataset.series.slice(0, val_end, t - val_end).expect("test slice"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_count_formula() {
        let s = NdArray::from_fn(&[20, 2], |i| i as f32);
        let w = sliding_windows(&s, 5, 3, 1);
        assert_eq!(w.len(), 20 - 5 - 3 + 1);
        assert_eq!(w.inputs.shape(), &[13, 5, 2]);
        assert_eq!(w.targets.shape(), &[13, 3, 2]);
    }

    #[test]
    fn window_contents_are_contiguous() {
        let s = NdArray::from_fn(&[10, 1], |i| i as f32);
        let w = sliding_windows(&s, 4, 2, 1);
        // Window 3: input = [3,4,5,6], target = [7,8].
        assert_eq!(w.inputs.at(&[3, 0, 0]), 3.0);
        assert_eq!(w.inputs.at(&[3, 3, 0]), 6.0);
        assert_eq!(w.targets.at(&[3, 0, 0]), 7.0);
        assert_eq!(w.targets.at(&[3, 1, 0]), 8.0);
    }

    #[test]
    fn strided_windows_skip() {
        let s = NdArray::from_fn(&[20, 1], |i| i as f32);
        let w = sliding_windows(&s, 4, 1, 5);
        assert_eq!(w.inputs.at(&[1, 0, 0]), 5.0);
    }

    #[test]
    fn too_short_series_yields_empty() {
        let s = NdArray::from_fn(&[5, 2], |i| i as f32);
        let w = sliding_windows(&s, 5, 3, 1);
        assert!(w.is_empty());
    }

    #[test]
    fn chrono_split_is_ordered_and_complete() {
        let ds = ForecastDataset {
            name: "t",
            series: NdArray::from_fn(&[100, 1], |i| i as f32),
            frequency: "1h",
            target_channel: 0,
        };
        let split = chrono_split(&ds);
        assert_eq!(split.train.shape()[0], 60);
        assert_eq!(split.val.shape()[0], 20);
        assert_eq!(split.test.shape()[0], 20);
        // Boundary values confirm chronology.
        assert_eq!(split.train.at(&[59, 0]), 59.0);
        assert_eq!(split.val.at(&[0, 0]), 60.0);
        assert_eq!(split.test.at(&[0, 0]), 80.0);
    }
}
