//! CSV loading for real benchmark data.
//!
//! The reproduction ships synthetic generators (no network access), but a
//! downstream user with the actual ETT/Exchange/Weather CSVs can load them
//! here and run every pipeline unchanged. The parser is deliberately
//! small: comma-separated, one header row, numeric columns; a leading
//! date/timestamp column is skipped automatically.

use crate::dataset::ForecastDataset;
use std::fmt;
use std::fs;
use std::path::Path;
use timedrl_tensor::NdArray;

/// Errors raised while loading a CSV series.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as a number.
    BadNumber {
        /// 1-based data row (excluding the header).
        row: usize,
        /// 0-based column.
        col: usize,
        /// The offending text.
        text: String,
    },
    /// A row had a different column count than the header.
    RaggedRow {
        /// 1-based data row.
        row: usize,
        /// Columns found.
        found: usize,
        /// Columns expected.
        expected: usize,
    },
    /// The file had no data rows or no numeric columns.
    Empty,
    /// The requested target channel does not exist in the parsed series.
    BadTargetChannel {
        /// The channel index requested.
        target_channel: usize,
        /// Numeric columns actually present.
        columns: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::BadNumber { row, col, text } => {
                write!(f, "row {row}, column {col}: cannot parse {text:?} as a number")
            }
            CsvError::RaggedRow { row, found, expected } => {
                write!(f, "row {row}: {found} columns, expected {expected}")
            }
            CsvError::Empty => write!(f, "no numeric data in file"),
            CsvError::BadTargetChannel { target_channel, columns } => {
                write!(f, "target channel {target_channel} out of range for {columns} columns")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parses CSV text into a `[T, C]` array. The first row is a header; a
/// first column that does not parse as a number (e.g. `date`) is skipped
/// in every row.
pub fn parse_csv_series(text: &str) -> Result<NdArray, CsvError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let Some(_header) = lines.next() else {
        return Err(CsvError::Empty);
    };
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut skip_first: Option<bool> = None;
    for (ri, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        // Decide once, from the first data row, whether column 0 is a
        // timestamp (non-numeric).
        let skip = *skip_first.get_or_insert_with(|| cells[0].parse::<f32>().is_err());
        let start = usize::from(skip);
        if cells.len() <= start {
            return Err(CsvError::RaggedRow { row: ri + 1, found: cells.len(), expected: start + 1 });
        }
        let mut row = Vec::with_capacity(cells.len() - start);
        for (ci, cell) in cells[start..].iter().enumerate() {
            let v: f32 = cell.parse().map_err(|_| CsvError::BadNumber {
                row: ri + 1,
                col: ci + start,
                text: (*cell).to_string(),
            })?;
            row.push(v);
        }
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(CsvError::RaggedRow {
                    row: ri + 1,
                    found: row.len() + start,
                    expected: first.len() + start,
                });
            }
        }
        rows.push(row);
    }
    if rows.is_empty() || rows[0].is_empty() {
        return Err(CsvError::Empty);
    }
    let t = rows.len();
    let c = rows[0].len();
    let data: Vec<f32> = rows.into_iter().flatten().collect();
    Ok(NdArray::from_vec(&[t, c], data).expect("rectangular by construction"))
}

/// Loads a forecasting dataset from a CSV file. `target_channel` selects
/// the univariate-forecasting target (e.g. the `OT` column index for ETT).
///
/// # Errors
/// Any [`CsvError`] from parsing, or [`CsvError::BadTargetChannel`] when
/// `target_channel` is out of range for the parsed columns (previously a
/// library-code `assert!` panic).
pub fn load_forecast_csv(
    path: impl AsRef<Path>,
    name: &'static str,
    frequency: &'static str,
    target_channel: usize,
) -> Result<ForecastDataset, CsvError> {
    let text = fs::read_to_string(path)?;
    let series = parse_csv_series(&text)?;
    if target_channel >= series.shape()[1] {
        return Err(CsvError::BadTargetChannel { target_channel, columns: series.shape()[1] });
    }
    Ok(ForecastDataset { name, series, frequency, target_channel })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ett_style_csv() {
        let text = "date,HUFL,HULL,OT\n\
                    2016-07-01 00:00:00,5.827,2.009,30.531\n\
                    2016-07-01 01:00:00,5.693,2.076,27.787\n";
        let arr = parse_csv_series(text).unwrap();
        assert_eq!(arr.shape(), &[2, 3]);
        assert!((arr.at(&[0, 2]) - 30.531).abs() < 1e-4);
        assert!((arr.at(&[1, 0]) - 5.693).abs() < 1e-4);
    }

    #[test]
    fn parses_headerless_numeric_first_column() {
        let text = "a,b\n1.0,2.0\n3.0,4.0\n";
        let arr = parse_csv_series(text).unwrap();
        assert_eq!(arr.shape(), &[2, 2]);
        assert_eq!(arr.at(&[1, 0]), 3.0);
    }

    #[test]
    fn reports_bad_number_location() {
        let text = "date,x\n2020-01-01,1.5\n2020-01-02,oops\n";
        match parse_csv_series(text) {
            Err(CsvError::BadNumber { row, col, text }) => {
                assert_eq!(row, 2);
                assert_eq!(col, 1);
                assert_eq!(text, "oops");
            }
            other => panic!("expected BadNumber, got {other:?}"),
        }
    }

    #[test]
    fn reports_ragged_rows() {
        let text = "date,x,y\n2020-01-01,1.0,2.0\n2020-01-02,3.0\n";
        assert!(matches!(parse_csv_series(text), Err(CsvError::RaggedRow { row: 2, .. })));
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!(matches!(parse_csv_series(""), Err(CsvError::Empty)));
        assert!(matches!(parse_csv_series("header,only\n"), Err(CsvError::Empty)));
    }

    #[test]
    fn out_of_range_target_channel_is_a_typed_error() {
        let dir = std::env::temp_dir().join("timedrl_csv_target");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.csv");
        std::fs::write(&path, "date,a,b\nd0,1,10\nd1,2,20\n").unwrap();
        match load_forecast_csv(&path, "Mini", "1 day", 2) {
            Err(CsvError::BadTargetChannel { target_channel: 2, columns: 2 }) => {}
            other => panic!("expected BadTargetChannel, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_from_disk_roundtrip() {
        let dir = std::env::temp_dir().join("timedrl_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.csv");
        std::fs::write(&path, "date,a,b\nd0,1,10\nd1,2,20\nd2,3,30\n").unwrap();
        let ds = load_forecast_csv(&path, "Mini", "1 day", 1).unwrap();
        assert_eq!(ds.timesteps(), 3);
        assert_eq!(ds.features(), 2);
        assert_eq!(ds.univariate().series.at(&[2, 0]), 30.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
