//! # timedrl-data
//!
//! Data infrastructure for the TimeDRL reproduction: synthetic generators
//! matching the statistics of the paper's 11 benchmark datasets (Tables I
//! and II), sliding-window extraction with the 60/20/20 chronological
//! split, instance normalization and patching (Eq. 1), and the six
//! augmentation families of the Table VI ablation.

#![warn(missing_docs)]

pub mod augment;
pub mod csv;
pub mod dataset;
pub mod patch;
pub mod pipeline;
pub mod shard;
pub mod synth;
pub mod ts_format;
pub mod window;

pub use augment::Augmentation;
pub use csv::{load_forecast_csv, parse_csv_series, CsvError};
pub use dataset::{
    gather_batch, split_index, BatchIndices, ClassifyDataset, DataError, ForecastDataset,
};
pub use patch::{patch_batch, patch_sample, unpatch_sample, PatchConfig};
pub use pipeline::{
    instance_normalize, InstanceStats, PipelineError, Standardizer, INSTANCE_NORM_EPS,
};
pub use shard::{
    read_shard, shard_path, ShardError, ShardMeta, ShardWriter, ShardedDataset, ShardedWindows,
};
pub use ts_format::{load_ts, parse_ts, TsFormatError};
pub use window::{chrono_split, sliding_windows, ChronoSplit, WindowedForecast};
