//! Property-based tests for the data pipeline: patching round-trips,
//! window extraction bounds, normalization statistics, and augmentation
//! invariants.

use testkit::{prop, prop_assert, prop_assert_eq, prop_assume};
use timedrl_data::synth::classify::pendigits;
use timedrl_data::{
    augment, instance_normalize, patch_sample, sliding_windows, unpatch_sample, Augmentation,
    PatchConfig, Standardizer,
};
use timedrl_tensor::{NdArray, Prng};

prop! {
    #![config(cases = 32)]

    fn nonoverlapping_patch_roundtrip(k in 1usize..6, p in 1usize..5, c in 1usize..4, seed in 0u64..1000) {
        // T divisible by P: patch then unpatch is the identity.
        let t = k * p;
        let x = Prng::new(seed).randn(&[t, c]);
        let cfg = PatchConfig::non_overlapping(p);
        let back = unpatch_sample(&patch_sample(&x, &cfg), &cfg, c);
        prop_assert_eq!(back, x);
    }

    fn patch_count_formula_holds(t in 4usize..40, p in 2usize..6, s in 1usize..4) {
        prop_assume!(t >= p);
        let cfg = PatchConfig { patch_len: p, stride: s };
        let x = NdArray::zeros(&[t, 2]);
        let patched = patch_sample(&x, &cfg);
        prop_assert_eq!(patched.shape()[0], (t - p) / s + 1);
        prop_assert_eq!(patched.shape()[1], 2 * p);
    }

    fn windows_never_leak_into_targets(t in 20usize..60, l in 3usize..8, h in 1usize..5, seed in 0u64..1000) {
        prop_assume!(t >= l + h);
        // Monotone series: every input value must be strictly less than
        // every corresponding target value (windows precede targets).
        let x = NdArray::from_fn(&[t, 1], |i| i as f32);
        let w = sliding_windows(&x, l, h, 1);
        let _ = seed;
        for wi in 0..w.len() {
            let last_in = w.inputs.at(&[wi, l - 1, 0]);
            let first_target = w.targets.at(&[wi, 0, 0]);
            prop_assert_eq!(first_target, last_in + 1.0);
        }
    }

    fn instance_norm_idempotent_up_to_eps(t in 8usize..30, c in 1usize..4, seed in 0u64..1000) {
        let x = Prng::new(seed).randn(&[t, c]).scale(3.0).add_scalar(5.0);
        let once = instance_normalize(&x).unwrap();
        let twice = instance_normalize(&once).unwrap();
        prop_assert!(once.max_abs_diff(&twice) < 1e-2);
    }

    fn standardizer_transform_inverse_identity(t in 10usize..40, c in 1usize..4, seed in 0u64..1000) {
        let mut rng = Prng::new(seed);
        let train = rng.randn(&[t, c]).scale(2.0).add_scalar(-1.0);
        let sc = Standardizer::fit(&train);
        let x = rng.randn(&[5, c]);
        prop_assert!(sc.inverse(&sc.transform(&x)).max_abs_diff(&x) < 1e-3);
    }

    fn augmentations_preserve_shape(seed in 0u64..1000, t in 6usize..30, c in 1usize..5) {
        let x = Prng::new(seed).randn(&[t, c]);
        let mut rng = Prng::new(seed ^ 1);
        for aug in Augmentation::ALL {
            let y = aug.apply(&x, &mut rng);
            prop_assert_eq!(y.shape(), x.shape(), "{} changed shape", aug.name());
            prop_assert!(!y.has_non_finite(), "{} produced non-finite values", aug.name());
        }
    }

    fn jitter_centred_on_original(seed in 0u64..1000) {
        let x = NdArray::zeros(&[200, 4]);
        let y = augment::jitter(&x, 0.1, &mut Prng::new(seed));
        prop_assert!(y.mean().abs() < 0.02);
    }

    fn permutation_preserves_multiset(seed in 0u64..1000, segs in 2usize..6) {
        let x = NdArray::from_fn(&[24, 1], |i| i as f32);
        let y = augment::permutation(&x, segs, &mut Prng::new(seed));
        let mut a: Vec<i64> = x.data().iter().map(|&v| v as i64).collect();
        let mut b: Vec<i64> = y.data().iter().map(|&v| v as i64).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    fn masking_only_zeroes(seed in 0u64..1000, p in 0.05f32..0.9) {
        let x = NdArray::full(&[30, 3], 2.5);
        let y = augment::masking(&x, p, &mut Prng::new(seed));
        for &v in y.data() {
            prop_assert!(v == 0.0 || v == 2.5);
        }
    }

    fn subsample_labels_respects_fraction(frac in 0.05f32..1.0, seed in 0u64..500) {
        let ds = pendigits(60, 0);
        let sub = ds.subsample_labels(frac, &mut Prng::new(seed)).unwrap();
        let expected = timedrl_data::split_index(60, frac);
        // Class-coverage backstop may add at most n_classes extras.
        prop_assert!(sub.len() >= expected && sub.len() <= expected + ds.n_classes);
    }

    fn split_preserves_samples(frac in 0.1f32..0.9, seed in 0u64..500) {
        let ds = pendigits(50, 1);
        let (a, b) = ds.train_test_split(frac, &mut Prng::new(seed)).unwrap();
        prop_assert_eq!(a.len() + b.len(), 50);
    }
}
