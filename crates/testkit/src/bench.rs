//! A wall-clock benchmark runner: warmup, N timed samples, and a
//! min/median/p95 report — the workspace's replacement for `criterion`.
//!
//! Each benchmark target is still a `harness = false` binary under
//! `benches/`; instead of criterion's statistical machinery it measures
//! batched wall-clock samples with `std::time::Instant` and prints one
//! report line per benchmark. Good enough to rank kernels and catch
//! order-of-magnitude regressions, with zero dependencies.
//!
//! Environment knobs:
//!
//! - `TESTKIT_BENCH_SAMPLES` — number of timed samples (default 20)
//! - `TESTKIT_BENCH_WARMUP_MS` — warmup duration per benchmark (default 300)
//! - `TESTKIT_BENCH_SAMPLE_MS` — target duration of one sample batch
//!   (default 50); short functions are looped enough times per sample to
//!   reach it, so timer resolution never dominates.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`Bench`] run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Number of timed samples per benchmark.
    pub samples: usize,
    /// Warmup duration before sampling starts.
    pub warmup: Duration,
    /// Target wall-clock duration of one sample batch.
    pub sample_time: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            samples: 20,
            warmup: Duration::from_millis(300),
            sample_time: Duration::from_millis(50),
        }
    }
}

impl BenchConfig {
    /// Default config with `TESTKIT_BENCH_*` environment overrides applied.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(n) = env_usize("TESTKIT_BENCH_SAMPLES") {
            cfg.samples = n.max(1);
        }
        if let Some(ms) = env_usize("TESTKIT_BENCH_WARMUP_MS") {
            cfg.warmup = Duration::from_millis(ms as u64);
        }
        if let Some(ms) = env_usize("TESTKIT_BENCH_SAMPLE_MS") {
            cfg.sample_time = Duration::from_millis(ms.max(1) as u64);
        }
        cfg
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Timing summary of one benchmark, in seconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct BenchReport {
    /// Fastest sample.
    pub min: f64,
    /// Median sample.
    pub median: f64,
    /// 95th-percentile sample.
    pub p95: f64,
    /// Slowest sample.
    pub max: f64,
    /// Iterations executed per sample batch.
    pub iters_per_sample: usize,
    /// Number of samples taken.
    pub samples: usize,
}

/// A benchmark suite: groups of named benchmarks sharing one config.
pub struct Bench {
    suite: String,
    config: BenchConfig,
}

impl Bench {
    /// Creates a suite with [`BenchConfig::from_env`] and prints its header.
    pub fn from_env(suite: &str) -> Self {
        let config = BenchConfig::from_env();
        println!(
            "# bench suite '{suite}' — {} samples, {:?} warmup, ~{:?} per sample",
            config.samples, config.warmup, config.sample_time
        );
        Self { suite: suite.to_string(), config }
    }

    /// Creates a suite with an explicit config.
    pub fn with_config(suite: &str, config: BenchConfig) -> Self {
        Self { suite: suite.to_string(), config }
    }

    /// Opens a named benchmark group (mirrors criterion's `benchmark_group`).
    pub fn group(&mut self, name: &str) -> Group<'_> {
        println!("\n## {}/{name}", self.suite);
        Group { bench: self, name: name.to_string() }
    }
}

/// A named group of benchmarks; see [`Bench::group`].
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
}

impl Group<'_> {
    /// Times `f` (warmup, then batched samples) and prints one report line.
    /// The closure's return value is passed through [`black_box`] so the
    /// optimizer cannot elide the work.
    pub fn bench<R>(&mut self, id: impl std::fmt::Display, mut f: impl FnMut() -> R) -> BenchReport {
        let cfg = &self.bench.config;

        // Warmup: run until the warmup budget elapses, counting iterations
        // to estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < cfg.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_sample =
            ((cfg.sample_time.as_secs_f64() / est_per_iter).ceil() as usize).max(1);

        let mut times = Vec::with_capacity(cfg.samples);
        for _ in 0..cfg.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            times.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        times.sort_by(f64::total_cmp);
        let report = BenchReport {
            min: times[0],
            median: times[times.len() / 2],
            p95: times[(times.len() * 95 / 100).min(times.len() - 1)],
            max: times[times.len() - 1],
            iters_per_sample,
            samples: times.len(),
        };
        println!(
            "{:<32} median {:>10}  p95 {:>10}  min {:>10}  ({} samples x {} iters)",
            format!("{}/{}", self.name, id),
            fmt_duration(report.median),
            fmt_duration(report.p95),
            fmt_duration(report.min),
            report.samples,
            report.iters_per_sample,
        );
        report
    }

    /// Alias keeping migrated criterion call sites readable.
    pub fn bench_function<R>(&mut self, id: impl std::fmt::Display, f: impl FnMut() -> R) -> BenchReport {
        self.bench(id, f)
    }

    /// Ends the group (purely cosmetic; mirrors criterion's API).
    pub fn finish(self) {}
}

/// Formats seconds human-readably (ns/µs/ms/s).
pub fn fmt_duration(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1}ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.1}µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{:.3}s", seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> BenchConfig {
        BenchConfig {
            samples: 5,
            warmup: Duration::from_millis(1),
            sample_time: Duration::from_millis(1),
        }
    }

    #[test]
    fn report_orders_quantiles() {
        let mut bench = Bench::with_config("unit", quick_config());
        let mut group = bench.group("smoke");
        let mut acc = 0u64;
        let report = group.bench("sum", || {
            acc = acc.wrapping_add((0..100u64).sum::<u64>());
            acc
        });
        group.finish();
        assert!(report.min <= report.median);
        assert!(report.median <= report.p95);
        assert!(report.p95 <= report.max);
        assert!(report.min > 0.0);
        assert_eq!(report.samples, 5);
    }

    #[test]
    fn fmt_duration_picks_sane_units() {
        assert!(fmt_duration(3.5e-9).ends_with("ns"));
        assert!(fmt_duration(3.5e-6).ends_with("µs"));
        assert!(fmt_duration(3.5e-3).ends_with("ms"));
        assert!(fmt_duration(2.0).ends_with('s'));
    }
}
