//! A small JSON value type with writer and parser — the workspace's
//! replacement for `serde`/`serde_json`.
//!
//! The experiment binaries only need four things: build records, write
//! `results/<experiment>.json` files, read them back, and pull out typed
//! fields. [`Json`] covers all four with an API shaped like
//! `serde_json::Value` (`get`, `as_f64`, `as_str`, …) so the render code
//! reads the same, and [`impl_to_json!`](crate::impl_to_json!) stands in
//! for `#[derive(Serialize)]` on plain record structs.
//!
//! Objects preserve insertion order (a `Vec` of pairs, not a map): record
//! files diff cleanly and field order matches the struct declaration.

use std::fmt;

/// A JSON document: the usual six variants. Numbers are `f64`, like
/// JavaScript (and `serde_json`'s default arithmetic type).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document. Strict enough for round-tripping our own
    /// output and ordinary hand-edited files: rejects trailing garbage,
    /// unterminated strings, and malformed numbers; accepts any whitespace
    /// layout and `\uXXXX` escapes (surrogate pairs included).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Serializes with two-space indentation and a trailing newline-free
    /// body (callers add their own final newline, as `writeln!` does).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_pretty())
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// JSON has no NaN/Infinity; non-finite metrics serialize as `null`
/// (matching what a lenient consumer expects from a missing measurement).
fn write_number(out: &mut String, n: f64) {
    use fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((unit - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: format!("invalid number {text:?}") })
    }
}

/// Conversion into [`Json`] — the stand-in for `serde::Serialize`.
/// Implemented for the primitive field types the record structs use;
/// derive-like struct support comes from
/// [`impl_to_json!`](crate::impl_to_json!).
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! to_json_via_f64 {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )+};
}

to_json_via_f64!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

/// Derives [`ToJson`] for a plain struct, serializing the listed fields in
/// order — the replacement for `#[derive(Serialize)]` on result records:
///
/// ```
/// use testkit::impl_to_json;
///
/// struct ForecastRecord {
///     dataset: String,
///     mse: f32,
/// }
/// impl_to_json!(ForecastRecord { dataset, mse });
///
/// let r = ForecastRecord { dataset: "ETTh1".into(), mse: 0.321 };
/// assert!(testkit::json::ToJson::to_json(&r).get("dataset").is_some());
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_reparses_records() {
        let doc = Json::Obj(vec![
            ("experiment".into(), Json::Str("table3".into())),
            (
                "records".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("dataset".into(), Json::Str("ETTh1".into())),
                    ("horizon".into(), Json::Num(24.0)),
                    ("mse".into(), Json::Num(0.321)),
                    ("converged".into(), Json::Bool(true)),
                ])]),
            ),
        ]);
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        let rec = &back.get("records").unwrap().as_array().unwrap()[0];
        assert_eq!(rec.get("dataset").unwrap().as_str(), Some("ETTh1"));
        assert_eq!(rec.get("horizon").unwrap().as_u64(), Some(24));
        assert_eq!(rec.get("mse").unwrap().as_f64(), Some(0.321));
        assert_eq!(rec.get("converged").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(24.0).to_string_pretty(), "24");
        assert_eq!(Json::Num(-3.0).to_string_pretty(), "-3");
        assert_eq!(Json::Num(0.5).to_string_pretty(), "0.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_pretty(), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline\"2\"\t\\end\u{1}";
        let doc = Json::Str(s.into());
        assert_eq!(Json::parse(&doc.to_string_pretty()).unwrap(), doc);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse("\"A\\u00e9\"").unwrap(), Json::Str("Aé".into()));
        // Surrogate pair for U+1F600, plus raw UTF-8 passthrough.
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert_eq!(Json::parse(r#""😀é""#).unwrap(), Json::Str("😀é".into()));
    }

    #[test]
    fn parses_nested_whitespace_heavy_input() {
        let text = "\n{ \"a\" : [ 1 , 2.5e1 , -3 ] ,\n \"b\" : { } , \"c\": null }\n";
        let v = Json::parse(text).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[1].as_f64(), Some(25.0));
        assert_eq!(a[2].as_f64(), Some(-3.0));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "01x", "[1] trailing", "tru"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = Json::Str("x".into());
        assert!(v.get("k").is_none());
        assert!(v.as_f64().is_none());
        assert!(v.as_bool().is_none());
        assert!(v.as_array().is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    struct Rec {
        name: String,
        score: f32,
        flag: bool,
    }
    crate::impl_to_json!(Rec { name, score, flag });

    #[test]
    fn impl_to_json_preserves_field_order() {
        let r = Rec { name: "m".into(), score: 1.25, flag: false };
        match r.to_json() {
            Json::Obj(pairs) => {
                let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["name", "score", "flag"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
