//! Minimal property-based testing: generator combinators plus a seeded,
//! shrinking-free case runner.
//!
//! ## Model
//!
//! A *generator* ([`Gen`]) turns a [`TestRng`] stream into a value; ranges
//! of primitive types are generators out of the box, and [`Gen::map`],
//! [`Gen::flat_map`], [`vec_of`], and [`from_fn`] compose them. The
//! [`prop!`](crate::prop!) macro wraps each property in a `#[test]` that
//! runs `cases` generated inputs through the body.
//!
//! ## Determinism and replay
//!
//! There is no shrinking. Instead every run is exactly reproducible:
//!
//! - Each property derives a **base seed** from a fixed workspace constant
//!   XOR an FNV-1a hash of its fully qualified test name, so the default
//!   run is deterministic per test and decorrelated across tests.
//! - Case `i` runs on `mix64(base_seed ^ i)`; a failure report prints both
//!   the base seed and the failing case seed.
//! - Setting `TESTKIT_SEED=<u64>` overrides the base seed for *all*
//!   properties: `TESTKIT_SEED=<reported base seed> cargo test -q <name>`
//!   replays a failure exactly; any other value explores a fresh case set
//!   (useful for scheduled deep runs).

use crate::rng::{mix64, TestRng};
use std::cell::Cell;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Fixed workspace-wide default seed (the digits of φ); combined with the
/// test-name hash so each property gets its own deterministic stream.
pub const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// A value generator: samples a `Value` from a seeded random stream.
pub trait Gen {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value. Named `prop_map` (as in
    /// proptest) so ranges keep their `Iterator::map` unambiguous.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds every generated value into a generator-producing `f` and
    /// samples from the result (proptest's `prop_flat_map`).
    fn prop_flat_map<G: Gen, F: Fn(Self::Value) -> G>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Gen::prop_map`].
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, U, F: Fn(G::Value) -> U> Gen for Map<G, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Gen::prop_flat_map`].
pub struct FlatMap<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, H: Gen, F: Fn(G::Value) -> H> Gen for FlatMap<G, F> {
    type Value = H::Value;
    fn sample(&self, rng: &mut TestRng) -> H::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Wraps a closure as a generator.
pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FromFn<F> {
    FromFn { f }
}

/// See [`from_fn`].
pub struct FromFn<F> {
    f: F,
}

impl<T, F: Fn(&mut TestRng) -> T> Gen for FromFn<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Always generates a clone of `value`.
pub fn just<T: Clone>(value: T) -> Just<T> {
    Just { value }
}

/// See [`just`].
pub struct Just<T> {
    value: T,
}

impl<T: Clone> Gen for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.value.clone()
    }
}

/// `Vec<T>` generator: element generator plus a length generator
/// (proptest's `prop::collection::vec`). A plain `usize` works as an exact
/// length.
pub fn vec_of<G: Gen, L: Gen<Value = usize>>(element: G, len: L) -> VecOf<G, L> {
    VecOf { element, len }
}

/// See [`vec_of`].
pub struct VecOf<G, L> {
    element: G,
    len: L,
}

impl<G: Gen, L: Gen<Value = usize>> Gen for VecOf<G, L> {
    type Value = Vec<G::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<G::Value> {
        let n = self.len.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

macro_rules! int_range_gen {
    ($($t:ty),+) => {$(
        impl Gen for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty generator range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Gen for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty generator range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_range_gen!(usize, u64, u32, i64, i32);

macro_rules! float_range_gen {
    ($t:ty, $uniform:ident) => {
        impl Gen for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty generator range");
                self.start + (self.end - self.start) * rng.$uniform()
            }
        }
    };
}

float_range_gen!(f32, uniform_f32);
float_range_gen!(f64, uniform_f64);

/// A bare `usize` is the constant-length generator (for [`vec_of`]).
impl Gen for usize {
    type Value = usize;
    fn sample(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

thread_local! {
    static CASE_REJECTED: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current case as rejected (used by
/// [`prop_assume!`](crate::prop_assume!)); the runner draws a replacement
/// case without counting this one.
pub fn mark_rejected() {
    CASE_REJECTED.with(|c| c.set(true));
}

/// FNV-1a, for mixing the test name into the base seed.
fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Resolves the base seed for a property: `TESTKIT_SEED` env override, or
/// the workspace default XOR the test-name hash.
pub fn base_seed(test_name: &str) -> u64 {
    match std::env::var("TESTKIT_SEED") {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .or_else(|_| u64::from_str_radix(s.trim().trim_start_matches("0x"), 16))
            .unwrap_or_else(|_| panic!("TESTKIT_SEED must be a u64 (decimal or 0x-hex), got {s:?}")),
        Err(_) => DEFAULT_SEED ^ fnv1a(test_name),
    }
}

/// Runs `cases` generated inputs through `body`. Called by the
/// [`prop!`](crate::prop!) macro — the body samples its own arguments from
/// the per-case [`TestRng`].
///
/// Rejected cases (via `prop_assume!`) are retried with fresh draws, up to
/// 16× the case budget. On failure the original panic is re-raised after
/// printing the base and case seeds needed for replay.
pub fn run(test_name: &str, cases: u32, body: impl Fn(&mut TestRng)) {
    let base = base_seed(test_name);
    let mut accepted = 0u32;
    let mut attempt = 0u32;
    while accepted < cases {
        if attempt >= cases.saturating_mul(16) {
            panic!(
                "property '{test_name}': too many rejected cases \
                 ({accepted}/{cases} accepted after {attempt} attempts) — \
                 loosen prop_assume! or the generator ranges"
            );
        }
        let case_seed = mix64(base ^ attempt as u64);
        attempt += 1;
        CASE_REJECTED.with(|c| c.set(false));
        let mut rng = TestRng::new(case_seed);
        match catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
            Ok(()) => {
                if !CASE_REJECTED.with(|c| c.get()) {
                    accepted += 1;
                }
            }
            Err(payload) => {
                eprintln!(
                    "testkit::prop: property '{test_name}' failed on case {accepted} \
                     (case seed {case_seed:#x}).\n\
                     Replay the whole run with: TESTKIT_SEED={base} cargo test -q"
                );
                resume_unwind(payload);
            }
        }
    }
}

/// Declares property tests. Each `fn` becomes a `#[test]` running `cases`
/// generated inputs (default 64) through its body:
///
/// ```
/// use testkit::{prop, prop_assert, prop_assert_eq, prop_assume};
///
/// prop! {
///     #![config(cases = 32)]
///
///     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop {
    (#![config(cases = $cases:expr)] $($rest:tt)*) => {
        $crate::prop!(@run $cases; $($rest)*);
    };
    (@run $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::prop::run(
                concat!(module_path!(), "::", stringify!($name)),
                $cases,
                |__testkit_rng| {
                    $(let $arg = $crate::prop::Gen::sample(&($gen), __testkit_rng);)+
                    $body
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::prop!(@run 64u32; $($rest)*);
    };
}

/// Property-scoped assertion (alias of `assert!`; kept so migrated
/// proptest suites read unchanged and failures carry the macro name).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-scoped equality assertion (alias of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when `cond` is false; the runner draws a fresh
/// case in its place (bounded by the rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            $crate::prop::mark_rejected();
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::prop! {
        #![config(cases = 50)]

        fn int_ranges_hit_bounds(a in 0usize..5, b in 3u64..=3) {
            prop_assert!(a < 5);
            prop_assert_eq!(b, 3);
        }

        fn float_range_contained(x in -2.5f32..7.5) {
            prop_assert!((-2.5..7.5).contains(&x));
        }

        fn vec_of_respects_length(v in vec_of(0i64..10, 2usize..=4)) {
            prop_assert!((2..=4).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        fn exact_length_vec(v in vec_of(0.0f64..1.0, 7usize)) {
            prop_assert_eq!(v.len(), 7);
        }

        fn map_and_flat_map_compose(v in (1usize..=4).prop_flat_map(|n| vec_of(0u32..100, n)).prop_map(|v| v.len())) {
            prop_assert!((1..=4).contains(&v));
        }

        fn assume_rejects_without_consuming(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn same_name_same_cases() {
        // The runner is deterministic: identical name + case budget =>
        // identical drawn values.
        let collect = || {
            let drawn = std::cell::RefCell::new(Vec::new());
            run("testkit::prop::determinism_probe", 10, |rng| {
                drawn.borrow_mut().push(rng.next_u64());
            });
            drawn.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn distinct_names_decorrelate() {
        if std::env::var("TESTKIT_SEED").is_ok() {
            return; // a global seed override intentionally erases per-name streams
        }
        let first_draw = |name: &str| {
            let v = Cell::new(0u64);
            run(name, 1, |rng| v.set(rng.next_u64()));
            v.get()
        };
        assert_ne!(first_draw("prop_a"), first_draw("prop_b"));
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn rejection_budget_is_enforced() {
        run("always_rejects", 4, |_rng| {
            mark_rejected();
        });
    }
}
