//! Seeded pseudo-random number generation: SplitMix64 for seeding and
//! xoshiro256++ for the main stream.
//!
//! The generator state is six machine words and every operation is a few
//! shifts and adds, so sampling is effectively free next to the f32 math it
//! feeds. Determinism guarantee: for a fixed seed the byte-for-byte output
//! sequence is stable across platforms, build profiles, and releases of
//! this workspace — checkpoints, experiment tables, and property-test
//! replays all rely on it.

/// SplitMix64 (Steele, Lea & Flood): a tiny 64-bit generator whose only
/// job here is turning one `u64` seed into well-mixed xoshiro256++ state.
/// Also usable on its own for cheap hash-like mixing.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One-shot SplitMix64 mix of a value — used to derive independent
/// sub-seeds (per test case, per fork) from a base seed.
pub fn mix64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// xoshiro256++ (Blackman & Vigna, 2019): the workspace's main PRNG.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush. Seeded through
/// SplitMix64 so that even adjacent integer seeds yield decorrelated
/// streams.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from an explicit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 random mantissa bits.
    pub fn uniform_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform integer in `[0, n)`. Uses rejection sampling (Lemire-style
    /// threshold on the modulus) so every value is exactly equiprobable.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Rejection zone: the low `2^64 % n` values of the raw stream.
        let zone = n.wrapping_neg() % n;
        loop {
            let v = self.next_u64();
            if v >= zone {
                return v % n;
            }
        }
    }

    /// Uniform usize in `[0, n)`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Standard normal sample via Box–Muller (computed in f64, one draw
    /// per call; the sine partner is discarded to keep the stream simple
    /// and stateless).
    pub fn normal_f64(&mut self) -> f64 {
        // u1 in (0, 1] keeps ln finite.
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        r * theta.cos()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// A uniform random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// A fresh generator seeded from this one, for forking independent
    /// streams (e.g. per-epoch shuffles).
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }

    /// The raw 256-bit generator state, for checkpointing a stream
    /// mid-flight. Restoring with [`TestRng::from_state`] resumes the
    /// output sequence at exactly the next draw.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`TestRng::state`].
    ///
    /// # Errors
    /// The all-zero state is xoshiro256++'s single fixed point (it only
    /// ever emits zeros), cannot be produced by seeding through SplitMix64,
    /// and therefore marks a corrupt checkpoint; it is rejected.
    pub fn from_state(s: [u64; 4]) -> Result<Self, &'static str> {
        if s == [0; 4] {
            return Err("all-zero xoshiro256++ state (degenerate; corrupt checkpoint?)");
        }
        Ok(Self { s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs of SplitMix64 seeded with 1234567, per the public
        // reference implementation.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = TestRng::new(7);
        for _ in 0..10_000 {
            let v = rng.uniform_f64();
            assert!((0.0..1.0).contains(&v));
            let f = rng.uniform_f32();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = TestRng::new(11);
        let mean: f64 = (0..100_000).map(|_| rng.uniform_f64()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = TestRng::new(13);
        let xs: Vec<f64> = (0..100_000).map(|_| rng.normal_f64()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn below_is_unbiased_across_buckets() {
        let mut rng = TestRng::new(17);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "bucket count {c}");
        }
    }

    #[test]
    fn permutation_covers_all_indices() {
        let mut rng = TestRng::new(19);
        let p = rng.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn state_roundtrip_resumes_stream_exactly() {
        let mut a = TestRng::new(99);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = TestRng::from_state(a.state()).unwrap();
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn all_zero_state_rejected() {
        assert!(TestRng::from_state([0; 4]).is_err());
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut root = TestRng::new(23);
        let mut a = root.fork();
        let mut b = root.fork();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
