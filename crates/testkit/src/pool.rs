//! A from-scratch, zero-dependency scoped thread pool with *deterministic
//! chunked fan-out* — the workspace's parallel compute runtime.
//!
//! # The determinism contract
//!
//! Every parallel entry point in this repository must produce results that
//! are **bit-identical** to a single-threaded run (`TIMEDRL_THREADS=1` ≡
//! `TIMEDRL_THREADS=N`). The pool guarantees this structurally:
//!
//! 1. **Fixed decomposition.** Work is split into consecutive, index-ordered
//!    chunks whose boundaries depend only on the input size and a chunk
//!    length chosen by the caller — never on the thread count. The thread
//!    count decides only *which OS thread* executes a chunk.
//! 2. **Disjoint outputs.** Each chunk owns an exclusive `&mut` slice of the
//!    output; no two workers ever write the same element, so no
//!    synchronization (and no nondeterministic interleaving) touches data.
//! 3. **No cross-chunk reductions inside the pool.** When a caller needs to
//!    combine chunk results (e.g. gradient accumulation), it collects them
//!    via [`map_indexed`] — which preserves chunk order — and reduces on the
//!    calling thread in ascending chunk index. The floating-point reduction
//!    order is therefore a pure function of the input, not of scheduling.
//!
//! Kernels keep their *per-element* accumulation order identical to the
//! serial kernel (chunking by output rows/batch entries never reorders the
//! additions that produce any single element), so serial ≡ parallel holds
//! bit-for-bit, not just approximately.
//!
//! # Scheduling
//!
//! Workers are `std::thread::scope` threads spawned per call: chunks are
//! dealt round-robin to `min(num_threads, n_chunks)` workers at spawn time
//! (static assignment — uniform chunks need no work stealing). A thread
//! spawn costs tens of microseconds, so kernels gate the parallel path on a
//! work estimate via [`should_parallelize`]; below the cutoff they pass a
//! chunk length covering the whole slice and the pool runs inline on the
//! calling thread. Workers that panic propagate the panic to the caller
//! when the scope joins.
//!
//! Nested use from inside a worker never deadlocks: a worker thread that
//! calls back into the pool runs the nested work inline (see
//! [`in_worker`]).
//!
//! # Knobs
//!
//! - `TIMEDRL_THREADS` (environment, read once) — worker count; defaults to
//!   the machine's available parallelism.
//! - [`with_threads`] — scoped, thread-local override (tests and benches
//!   compare thread counts inside one process).
//! - [`with_grain`] — scoped override of the work-per-chunk target so tests
//!   can force fine-grained fan-out on inputs far below the production
//!   cutoff.

use std::cell::Cell;
use std::sync::OnceLock;

/// Hard upper bound on worker threads (a safety clamp for absurd
/// `TIMEDRL_THREADS` values, not a tuning parameter).
pub const MAX_THREADS: usize = 256;

/// A kernel fans out only when its total work covers at least this many
/// grains; fewer would leave spawned threads idle or dominated by spawn
/// cost.
pub const MIN_PAR_CHUNKS: usize = 4;

thread_local! {
    static THREADS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static GRAIN_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// The worker-thread count in effect on this thread: the innermost
/// [`with_threads`] override, else `TIMEDRL_THREADS`, else the machine's
/// available parallelism. Always at least 1.
pub fn num_threads() -> usize {
    if let Some(n) = THREADS_OVERRIDE.with(Cell::get) {
        return n.clamp(1, MAX_THREADS);
    }
    *ENV_THREADS.get_or_init(|| {
        let from_env = std::env::var("TIMEDRL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok());
        let n = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        });
        n.clamp(1, MAX_THREADS)
    })
}

/// True while executing inside a pool worker. Nested pool calls check this
/// and run inline, so a kernel that itself uses the pool can be called from
/// a parallel region without deadlock or thread explosion.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

struct CellRestore {
    cell: &'static std::thread::LocalKey<Cell<Option<usize>>>,
    prev: Option<usize>,
}

impl Drop for CellRestore {
    fn drop(&mut self) {
        let prev = self.prev;
        self.cell.with(|c| c.set(prev));
    }
}

/// Runs `f` with the worker-thread count pinned to `n` on this thread
/// (nestable; restored on exit, including by panic). Parallel regions
/// entered by `f` use exactly `n` workers regardless of `TIMEDRL_THREADS`.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREADS_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let _restore = CellRestore { cell: &THREADS_OVERRIDE, prev };
    f()
}

/// Runs `f` with the work-per-chunk target pinned to `grain` work units
/// (nestable; restored on exit). Shrinking the grain forces kernels to
/// fan out — and to split into many chunks — on inputs far below their
/// production cutoffs, which is how the determinism suite exercises the
/// multi-chunk code paths on test-sized data.
pub fn with_grain<R>(grain: usize, f: impl FnOnce() -> R) -> R {
    let prev = GRAIN_OVERRIDE.with(|c| c.replace(Some(grain.max(1))));
    let _restore = CellRestore { cell: &GRAIN_OVERRIDE, prev };
    f()
}

/// The work-per-chunk target in effect: the innermost [`with_grain`]
/// override, else the caller's `default`. Units are caller-defined (the
/// kernels use multiply-adds or elements); the same value scales both the
/// fan-out cutoff and the per-chunk work.
pub fn grain(default: usize) -> usize {
    GRAIN_OVERRIDE.with(Cell::get).unwrap_or(default).max(1)
}

/// Decides whether a kernel with `cost` total work units (against a
/// `default_grain` per-chunk target) should take its parallel path.
///
/// False when this thread is already a pool worker, when only one thread is
/// configured, or when the work would not fill [`MIN_PAR_CHUNKS`] chunks.
/// The decision gates *scheduling only* — both paths compute bit-identical
/// results — so it may consult the thread count without breaking the
/// determinism contract.
pub fn should_parallelize(cost: usize, default_grain: usize) -> bool {
    !in_worker()
        && num_threads() > 1
        && cost >= grain(default_grain).saturating_mul(MIN_PAR_CHUNKS)
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the last
/// chunk may be shorter) and calls `f(start_offset, chunk)` for each, where
/// `start_offset` is the chunk's position in `data`.
///
/// Chunks are executed in index order on the calling thread when a single
/// worker suffices (one chunk, one configured thread, or a nested call from
/// a worker), otherwise dealt round-robin to scoped worker threads. Every
/// chunk is an exclusive sub-slice, so workers never alias. A panic in any
/// worker propagates to the caller after all workers have joined.
pub fn for_each_chunk<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "for_each_chunk: chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = num_threads().min(n_chunks);
    if workers <= 1 || in_worker() {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci * chunk_len, chunk);
        }
        return;
    }
    // Static round-robin assignment: chunk i goes to worker i % workers.
    // Deterministic results do not depend on this choice (chunks are
    // independent); it only balances load.
    let mut lanes: Vec<Vec<(usize, &mut [T])>> = Vec::with_capacity(workers);
    lanes.resize_with(workers, Vec::new);
    for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
        lanes[ci % workers].push((ci * chunk_len, chunk));
    }
    let f = &f;
    std::thread::scope(|scope| {
        for lane in lanes {
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (offset, chunk) in lane {
                    f(offset, chunk);
                }
            });
        }
    });
}

/// Applies `f(index, &item)` to every item, in parallel, returning results
/// in item order. The coarse-grained companion to [`for_each_chunk`]: each
/// item is one chunk of work (e.g. one micro-batch of a training step), and
/// the returned `Vec` preserves index order so the caller can reduce it
/// deterministically.
pub fn map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for_each_chunk(&mut out, 1, |i, slot| {
        slot[0] = Some(f(i, &items[i]));
    });
    out.into_iter().map(|r| r.expect("pool worker filled every slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_input_is_a_no_op() {
        let mut data: Vec<u32> = Vec::new();
        // Must not panic, spawn, or call f — even with chunk_len 0 the
        // empty check wins.
        for_each_chunk(&mut data, 0, |_, _| panic!("called on empty input"));
        let out: Vec<u32> = map_indexed(&data, |_, v| *v);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn zero_chunk_len_on_nonempty_input_panics() {
        let mut data = vec![1u8];
        for_each_chunk(&mut data, 0, |_, _| {});
    }

    #[test]
    fn chunk_len_larger_than_input_runs_one_chunk() {
        let mut data = vec![0u32; 5];
        let calls = std::sync::atomic::AtomicUsize::new(0);
        for_each_chunk(&mut data, 100, |offset, chunk| {
            assert_eq!(offset, 0);
            assert_eq!(chunk.len(), 5);
            calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            for v in chunk.iter_mut() {
                *v = 7;
            }
        });
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(data, vec![7; 5]);
    }

    #[test]
    fn offsets_and_boundaries_are_index_ordered() {
        for threads in [1usize, 2, 4] {
            let mut data = vec![0usize; 10];
            with_threads(threads, || {
                for_each_chunk(&mut data, 3, |offset, chunk| {
                    assert!(matches!(offset, 0 | 3 | 6 | 9));
                    assert_eq!(chunk.len(), if offset == 9 { 1 } else { 3 });
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = offset + i;
                    }
                });
            });
            let expect: Vec<usize> = (0..10).collect();
            assert_eq!(data, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_equals_serial_bitwise() {
        let compute = |threads: usize| -> Vec<f32> {
            let mut out = vec![0.0f32; 1000];
            with_threads(threads, || {
                for_each_chunk(&mut out, 17, |offset, chunk| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        let x = (offset + i) as f32;
                        *v = (x * 0.37).sin() * (x * 0.11).cos() + x.sqrt();
                    }
                });
            });
            out
        };
        let serial = compute(1);
        for threads in [2usize, 3, 4, 8] {
            assert_eq!(serial, compute(threads), "threads={threads}");
        }
    }

    #[test]
    fn map_indexed_preserves_order() {
        let items: Vec<usize> = (0..37).collect();
        let out = with_threads(4, || map_indexed(&items, |i, &v| {
            assert_eq!(i, v);
            v * 2
        }));
        assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_pool_use_runs_inline_without_deadlock() {
        let mut outer = vec![0usize; 8];
        with_threads(4, || {
            for_each_chunk(&mut outer, 2, |offset, chunk| {
                assert!(in_worker(), "outer closure must run on a worker");
                // Nested call from a worker: must complete inline.
                let inner = map_indexed(&[10usize, 20, 30], |i, &v| v + i);
                assert_eq!(inner, vec![10, 21, 32]);
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = offset + i + inner[0];
                }
            });
        });
        let expect: Vec<usize> = (0..8).map(|i| i + 10).collect();
        assert_eq!(outer, expect);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            let mut data = vec![0u32; 8];
            with_threads(2, || {
                for_each_chunk(&mut data, 2, |offset, _| {
                    if offset == 4 {
                        panic!("boom in worker");
                    }
                });
            });
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn overrides_nest_and_restore() {
        let outer = num_threads();
        with_threads(3, || {
            assert_eq!(num_threads(), 3);
            with_threads(5, || assert_eq!(num_threads(), 5));
            assert_eq!(num_threads(), 3);
            with_grain(64, || {
                assert_eq!(grain(1 << 18), 64);
                assert!(should_parallelize(64 * MIN_PAR_CHUNKS, 1 << 18));
                assert!(!should_parallelize(64 * MIN_PAR_CHUNKS - 1, 1 << 18));
            });
            assert_eq!(grain(1 << 18), 1 << 18);
        });
        assert_eq!(num_threads(), outer);
    }

    #[test]
    fn override_restored_after_panic() {
        let before = num_threads();
        let _ = std::panic::catch_unwind(|| {
            with_threads(7, || panic!("unwind through override"));
        });
        assert_eq!(num_threads(), before);
    }

    #[test]
    fn should_parallelize_is_false_inside_workers() {
        with_threads(2, || {
            let mut data = vec![0u8; 4];
            for_each_chunk(&mut data, 1, |_, _| {
                assert!(!should_parallelize(usize::MAX / 8, 1));
            });
        });
    }
}
