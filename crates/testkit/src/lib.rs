//! # testkit — the workspace's zero-dependency build & test substrate
//!
//! Everything that used to come from crates.io lives here, implemented on
//! pure `std` so the whole workspace builds and tests with an empty cargo
//! registry and no network:
//!
//! - [`rng`] — a seeded SplitMix64/xoshiro256++ PRNG with uniform, normal,
//!   integer, and permutation sampling (replaces `rand`). This is the
//!   *production* randomness source: `timedrl_tensor::Prng` wraps it, so
//!   every experiment in the repo is bit-reproducible given its seed.
//! - [`prop`] + the [`prop!`] macro — a minimal property-testing harness
//!   (replaces `proptest`): generator combinators, a fixed default seed
//!   derived per test, and seeded shrinking-free replay via the
//!   `TESTKIT_SEED` environment variable.
//! - [`json`] — a small JSON value type with writer and parser (replaces
//!   `serde`/`serde_json`), plus the [`impl_to_json!`] macro standing in
//!   for `#[derive(Serialize)]` on result-record structs.
//! - [`bench`] — a wall-clock benchmark runner (warmup + N samples +
//!   min/median/p95 report) that replaces the `criterion` benches.
//! - [`crc32`] — CRC-32 (IEEE) checksums guarding the checkpoint container
//!   format in `timedrl-tensor::serialize` against torn writes and bit rot.
//! - [`pool`] — a scoped thread pool with deterministic chunked fan-out
//!   (replaces `rayon`): fixed, index-ordered chunks writing to disjoint
//!   output slices, so parallel results are bit-identical to serial ones
//!   (`TIMEDRL_THREADS=1` ≡ `TIMEDRL_THREADS=N`). The tensor, nn, and
//!   trainer hot paths all fan out through it.
//!
//! The zero-dependency policy is deliberate: the tier-1 verify
//! (`cargo build --release && cargo test -q`) must pass on an offline
//! machine, so the substrate that generates randomness and checks
//! properties has to live in-repo. See DESIGN.md §7.

#![warn(missing_docs)]

pub mod alloc;
pub mod bench;
pub mod crc32;
pub mod json;
pub mod pool;
pub mod prop;
pub mod rng;

pub use bench::{Bench, BenchConfig};
pub use crc32::{crc32, Crc32};
pub use json::{Json, ToJson};
pub use rng::{SplitMix64, TestRng};

/// Workspace-wide counting allocator: every binary that links `testkit`
/// (all of them) can measure heap-allocation counts via [`alloc`]. See
/// DESIGN.md §10 — the steady-state training step is gated on this number.
#[global_allocator]
static GLOBAL_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;
