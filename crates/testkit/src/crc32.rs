//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) on pure `std`.
//!
//! The checkpoint container in `timedrl-tensor` frames every payload with
//! this checksum so a torn write, bit rot, or a truncated copy is detected
//! *before* any bytes are interpreted as tensor data. CRC-32 is not a
//! cryptographic digest — it guards against accidental corruption, which
//! is the checkpoint failure model (see DESIGN.md §11) — and it is
//! byte-order independent here because the input is already a defined
//! little-endian byte stream.
//!
//! The lookup table is computed in a `const` context, so the module stays
//! within the workspace's zero-dependency policy at zero runtime setup
//! cost.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Streaming CRC-32 state: feed bytes with [`Crc32::update`], read the
/// digest with [`Crc32::finish`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh checksum (all-ones initial state, per the standard).
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorbs `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The digest over everything absorbed so far (does not consume the
    /// state; more bytes may still be fed afterwards).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Standard check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        // IEEE test vector: 32 zero bytes.
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(17) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let data: Vec<u8> = (0..64u8).collect();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
