//! Counting global allocator: `std::alloc::System` plus relaxed atomic
//! tallies of every allocation.
//!
//! The workspace registers [`CountingAlloc`] as the `#[global_allocator]`
//! (see this crate's `lib.rs`), so every binary that links `testkit` —
//! which is all of them — can ask "how many heap allocations did this
//! region of code perform?". That number is the metric behind the
//! buffer-pool work in `timedrl-tensor`: a steady-state training step is
//! supposed to be near-allocation-free, and `ci.sh` gates on the count
//! (see DESIGN.md §10).
//!
//! Counting costs one relaxed `fetch_add` per allocation — far below the
//! cost of the allocation itself — so leaving the shim enabled everywhere
//! does not distort the wall-clock benches.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that forwards to [`System`] and counts calls.
///
/// `realloc` counts as one allocation event (it may move the block);
/// `dealloc` is not counted — the pool metric of interest is how many
/// *new* blocks a region requests, not its net balance.
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the counters have no effect on
// the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}


/// Total allocation events since process start (monotonic).
pub fn allocation_count() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// Total bytes requested since process start (monotonic; not reduced by
/// frees).
pub fn allocated_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}

/// Runs `f` and returns its result together with the number of allocation
/// events it performed on *this* thread's timeline.
///
/// The counters are process-global, so concurrent allocations on other
/// threads are attributed to `f` as well — measure single-threaded regions
/// for exact numbers.
pub fn count_allocations<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = allocation_count();
    let out = f();
    (out, allocation_count() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_a_vec_allocation() {
        let (_, n) = count_allocations(|| std::hint::black_box(Vec::<u64>::with_capacity(32)));
        assert!(n >= 1, "expected at least one allocation, saw {n}");
    }

    #[test]
    fn counts_nothing_for_pure_arithmetic() {
        // Warm any lazily-allocated test machinery first.
        let _ = count_allocations(|| ());
        let (sum, n) = count_allocations(|| (0u64..100).sum::<u64>());
        assert_eq!(sum, 4950);
        assert_eq!(n, 0, "pure arithmetic must not allocate");
    }

    #[test]
    fn bytes_grow_with_allocation_size() {
        let before = allocated_bytes();
        let v = std::hint::black_box(vec![0u8; 1 << 12]);
        assert!(allocated_bytes() - before >= v.len() as u64);
    }
}
