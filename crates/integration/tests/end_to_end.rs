//! Workspace-level integration tests: full user journeys spanning every
//! crate — load real-format data, pre-train, evaluate, checkpoint,
//! compare against a baseline.

use timedrl::{
    classification_linear_eval, forecast_linear_eval, prepare_forecast_data, pretrain,
    ForecastTask, TimeDrl, TimeDrlConfig,
};
use timedrl_baselines::{BaselineConfig, SslMethod, Ts2Vec};
use timedrl_data::{load_forecast_csv, parse_ts};
use timedrl_eval::{classification_report, KnnProbe, LogisticConfig};
use timedrl_tensor::Prng;

/// Journey 1: a user with a real ETT-style CSV loads it, runs the full
/// linear-evaluation pipeline, and checkpoints the encoder.
#[test]
fn csv_to_forecast_to_checkpoint() {
    // Write a synthetic "real CSV" (what a user would download).
    let dir = std::env::temp_dir().join("timedrl_e2e_csv");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ett_mini.csv");
    let mut csv = String::from("date,HUFL,HULL,OT\n");
    let mut rng = Prng::new(0);
    for t in 0..900 {
        let base = (t as f32 * 0.26).sin() + t as f32 * 0.002;
        csv.push_str(&format!(
            "2016-07-{:02} {:02}:00:00,{:.3},{:.3},{:.3}\n",
            1 + (t / 24) % 28,
            t % 24,
            base + rng.normal_with(0.0, 0.05),
            base * 0.5 + rng.normal_with(0.0, 0.05),
            base * 0.8 + rng.normal_with(0.0, 0.05),
        ));
    }
    std::fs::write(&path, csv).unwrap();

    let ds = load_forecast_csv(&path, "ETT-mini", "1 hour", 2).unwrap();
    assert_eq!(ds.features(), 3);
    let task = ForecastTask { lookback: 32, horizon: 8, stride: 8 };
    let data = prepare_forecast_data(&ds, &task);

    let mut cfg = TimeDrlConfig::forecasting(32);
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.epochs = 3;
    let (model, result, _) = forecast_linear_eval(&cfg, &data, 1.0);
    assert!(result.mse < 1.0, "periodic CSV series must beat the variance baseline: {}", result.mse);

    // Checkpoint and restore into a fresh model: identical predictions.
    let ckpt = dir.join("model.tdrl");
    model.save(&ckpt).unwrap();
    let mut cfg2 = TimeDrlConfig::forecasting(32);
    cfg2.d_model = 16;
    cfg2.d_ff = 32;
    cfg2.n_heads = 2;
    cfg2.seed = 12345; // different init...
    let restored = TimeDrl::new(cfg2);
    restored.load(&ckpt).unwrap(); // ...overwritten by the checkpoint
    let a = model.embed_instances(&data.test_inputs);
    let b = restored.embed_instances(&data.test_inputs);
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir).ok();
}

/// Journey 2: a user with a `.ts` classification archive trains TimeDRL
/// and probes with both the logistic and kNN probes.
#[test]
fn ts_archive_to_classification() {
    // Synthesize a .ts file with two separable classes.
    let mut text = String::from("@problemName mini\n@classLabel true 0 1\n@data\n");
    let mut rng = Prng::new(1);
    for i in 0..80 {
        let class = i % 2;
        let freq = if class == 0 { 0.3f32 } else { 1.1 };
        let vals: Vec<String> = (0..24)
            .map(|t| format!("{:.4}", (t as f32 * freq).sin() + rng.normal_with(0.0, 0.05)))
            .collect();
        text.push_str(&vals.join(","));
        text.push_str(&format!(" : {class}\n"));
    }
    let ds = parse_ts(&text, "mini").unwrap();
    assert_eq!(ds.n_classes, 2);

    let (train, test) = ds.train_test_split(0.6, &mut Prng::new(2)).unwrap();
    let mut cfg = TimeDrlConfig::classification(24, 1);
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.epochs = 4;
    let probe_cfg = LogisticConfig { epochs: 150, ..Default::default() };
    let (model, report) = classification_linear_eval(&cfg, &train, &test, &probe_cfg);
    assert!(report.accuracy > 0.8, "logistic probe accuracy {}", report.accuracy);

    // kNN probe on the same frozen embeddings must also separate classes.
    let train_emb = model.embed_instances(&train.to_batch());
    let test_emb = model.embed_instances(&test.to_batch());
    let knn = KnnProbe::fit(&train_emb, &train.labels, 5);
    let knn_report = classification_report(&knn.predict(&test_emb), &test.labels, 2);
    assert!(knn_report.accuracy > 0.8, "kNN probe accuracy {}", knn_report.accuracy);
}

/// Journey 3: TimeDRL and a baseline run on the *same* data through the
/// same probe — the comparison machinery the experiment harness relies on.
#[test]
fn timedrl_and_baseline_share_probe_protocol() {
    let ds = timedrl_data::synth::forecast::etth1(1200, 3);
    let task = ForecastTask { lookback: 32, horizon: 8, stride: 16 };
    let data = prepare_forecast_data(&ds, &task);

    let mut cfg = TimeDrlConfig::forecasting(32);
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.epochs = 2;
    let (_, timedrl_result, _) = forecast_linear_eval(&cfg, &data, 1.0);

    let mut baseline = Ts2Vec::new(BaselineConfig {
        epochs: 2,
        ..BaselineConfig::compact(32, 1)
    });
    baseline.pretrain(&data.train_inputs);
    let train_emb = baseline.embed_timestamps_flat(&data.train_inputs);
    let test_emb = baseline.embed_timestamps_flat(&data.test_inputs);
    let probe = timedrl_eval::RidgeProbe::fit(&train_emb, &data.train_targets, 1.0);
    let pred = probe.predict(&test_emb);
    let baseline_mse = timedrl_eval::mse(&pred, &data.test_targets);

    // Both pipelines produce sane numbers on the same data.
    assert!(timedrl_result.mse.is_finite() && timedrl_result.mse > 0.0);
    assert!(baseline_mse.is_finite() && baseline_mse > 0.0);
}

/// Journey 4: the anomaly-detection extension works end to end with the
/// schedule-driven optimizer API.
#[test]
fn anomaly_pipeline_with_lr_schedule() {
    use timedrl_nn::{LrSchedule, WarmupCosine};
    // (Schedules drive optimizers in user training loops; here we verify
    // the public API composes — the anomaly example covers detection
    // quality.)
    let schedule = WarmupCosine { peak: 1e-3, floor: 1e-5, warmup_steps: 10, total_steps: 100 };
    let windows = Prng::new(4).randn(&[32, 32, 1]);
    let mut cfg = TimeDrlConfig::forecasting(32);
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.epochs = 2;
    let model = TimeDrl::new(cfg);
    pretrain(&model, &windows).expect("pre-training failed");
    let scores = timedrl::anomaly_scores(&model, &windows);
    assert_eq!(scores.per_window.len(), 32);
    assert!(scores.per_window.iter().all(|s| s.is_finite() && *s >= 0.0));
    assert!(schedule.rate_at(5) < schedule.rate_at(9));
}
