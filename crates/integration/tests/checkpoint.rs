//! Crash-safety properties of the v2 checkpoint format (DESIGN.md §11):
//! any corruption — a single flipped byte, truncation at any offset — must
//! surface as `Err`, never a panic, and loading a corrupt file must never
//! allocate more than a small bound regardless of what the mangled header
//! claims. Plus the resume contract: optimizer + PRNG state round-trip
//! losslessly, and a resumed run's final state is bit-identical to an
//! uninterrupted run's on both gradient paths.

use std::path::PathBuf;
use std::sync::OnceLock;
use testkit::{prop, prop_assert, prop_assume};
use timedrl::{
    load_training_state, pretrain, save_training_state, TimeDrl, TimeDrlConfig, TrainingState,
};
use timedrl_nn::Module;
use timedrl_tensor::{load_parameters, NdArray, Prng, Var};

/// Fresh parameter `Var`s shaped like the master params checkpoint, for
/// `load_parameters` to (fail to) fill.
fn params_targets() -> Vec<Var> {
    let mut rng = Prng::new(77);
    vec![Var::parameter(rng.randn(&[4, 3])), Var::parameter(rng.randn(&[6]))]
}

/// Corrupt loads of tiny (< a few KiB) files must stay well under this
/// allocation bound even when a mangled header claims gigabytes.
const ALLOC_BOUND: u64 = 1 << 20;

fn unique_path(tag: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!("timedrl_it_ckpt_{tag}_{case}.tdrl"))
}

fn tiny_cfg() -> TimeDrlConfig {
    let mut cfg = TimeDrlConfig::forecasting(32);
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.batch_size = 8;
    cfg.seed = 21;
    cfg
}

fn sine_windows(n: usize) -> NdArray {
    NdArray::from_fn(&[n, 32, 1], |flat| {
        let (i, step) = (flat / 32, flat % 32);
        (step as f32 * 0.4 + i as f32 * 0.3).sin()
    })
}

/// The bytes of a valid parameter checkpoint, built once.
fn params_file_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = unique_path("params_master", 0);
        let mut rng = Prng::new(7);
        let params = vec![
            Var::parameter(rng.randn(&[4, 3])),
            Var::parameter(rng.randn(&[6])),
        ];
        timedrl_tensor::save_parameters(&path, &params).expect("write params");
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        bytes
    })
}

/// The bytes of a valid training-state snapshot, built once.
fn state_file_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = unique_path("state_master", 0);
        let mut rng = Prng::new(8);
        let params = vec![rng.randn(&[3, 2]), rng.randn(&[4])];
        let state = TrainingState {
            opt: timedrl_nn::OptimState {
                m: vec![rng.randn(&[3, 2]), rng.randn(&[4])],
                v: vec![rng.randn(&[3, 2]), rng.randn(&[4])],
                t: 9,
            },
            params,
            next_epoch: 3,
            step: 12,
            epoch_rng: [1, 2, 3, 4],
            ctx_rng: [5, 6, 7, 8],
            aug_rng: [9, 10, 11, 12],
            report: timedrl::PretrainReport {
                total: vec![2.0, 1.5, 1.2],
                predictive: vec![1.4, 1.0, 0.9],
                contrastive: vec![0.6, 0.5, 0.3],
                validation: vec![],
            },
        };
        save_training_state(&path, &state).expect("write state");
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        bytes
    })
}

prop! {
    #![config(cases = 128)]

    /// Flipping any byte of a parameter checkpoint yields `Err`, never a
    /// panic, and loading never balloons past the allocation bound.
    fn flipped_byte_in_params_is_err(pos in 0u64..1_000_000, bit in 0u32..8, case in 0u64..u64::MAX) {
        let master = params_file_bytes();
        let mut bytes = master.to_vec();
        let i = (pos % bytes.len() as u64) as usize;
        bytes[i] ^= 1 << bit;
        prop_assume!(bytes != master); // (never true after a real flip, but keeps the intent explicit)
        let path = unique_path("params_flip", case);
        std::fs::write(&path, &bytes).unwrap();
        let targets = params_targets();
        let before = testkit::alloc::allocated_bytes();
        let result = load_parameters(&path, &targets);
        let grew = testkit::alloc::allocated_bytes() - before;
        std::fs::remove_file(&path).ok();
        prop_assert!(result.is_err(), "flip at byte {i} bit {bit} loaded successfully");
        prop_assert!(grew < ALLOC_BOUND, "corrupt load allocated {grew} bytes");
    }

    /// Same property for full training-state snapshots.
    fn flipped_byte_in_state_is_err(pos in 0u64..1_000_000, bit in 0u32..8, case in 0u64..u64::MAX) {
        let master = state_file_bytes();
        let mut bytes = master.to_vec();
        let i = (pos % bytes.len() as u64) as usize;
        bytes[i] ^= 1 << bit;
        let path = unique_path("state_flip", case);
        std::fs::write(&path, &bytes).unwrap();
        let before = testkit::alloc::allocated_bytes();
        let result = load_training_state(&path);
        let grew = testkit::alloc::allocated_bytes() - before;
        std::fs::remove_file(&path).ok();
        prop_assert!(result.is_err(), "flip at byte {i} bit {bit} loaded successfully");
        prop_assert!(grew < ALLOC_BOUND, "corrupt load allocated {grew} bytes");
    }

    /// Truncating either kind of checkpoint at any prefix length yields
    /// `Err` within the allocation bound.
    fn truncation_at_any_offset_is_err(pos in 0u64..1_000_000, which in 0u32..2, case in 0u64..u64::MAX) {
        let master = if which == 0 { params_file_bytes() } else { state_file_bytes() };
        let cut = (pos % master.len() as u64) as usize; // strictly shorter than the file
        let path = unique_path("trunc", case);
        std::fs::write(&path, &master[..cut]).unwrap();
        let targets = params_targets();
        let before = testkit::alloc::allocated_bytes();
        let result = if which == 0 {
            load_parameters(&path, &targets)
        } else {
            load_training_state(&path).map(|_| ())
        };
        let grew = testkit::alloc::allocated_bytes() - before;
        std::fs::remove_file(&path).ok();
        prop_assert!(result.is_err(), "truncation to {cut} bytes loaded successfully");
        prop_assert!(grew < ALLOC_BOUND, "truncated load allocated {grew} bytes");
    }
}

/// Optimizer moments, counters, and all three PRNG streams survive a disk
/// round-trip exactly (the foundation of the bit-exact resume contract).
#[test]
fn optimizer_and_prng_state_roundtrip_exactly() {
    let path = unique_path("roundtrip", 0);
    let mut cfg = tiny_cfg();
    cfg.epochs = 2;
    cfg.checkpoint_every = Some(2);
    cfg.checkpoint_path = Some(path.clone());
    pretrain(&TimeDrl::new(cfg), &sine_windows(16)).unwrap();

    let state = load_training_state(&path).unwrap();
    assert_eq!(state.next_epoch, 2);
    assert!(state.step > 0);
    assert_eq!(state.opt.m.len(), state.params.len());
    assert_eq!(state.opt.v.len(), state.params.len());
    assert_eq!(state.opt.t as u64, state.step);
    for rng in [state.epoch_rng, state.ctx_rng, state.aug_rng] {
        assert_ne!(rng, [0; 4], "PRNG stream not captured");
    }

    // Re-saving the loaded state reproduces the file byte-for-byte.
    let copy = unique_path("roundtrip", 1);
    save_training_state(&copy, &state).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&copy).unwrap());
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&copy).ok();
}

fn run_straight(cfg_base: &TimeDrlConfig, windows: &NdArray) -> (Vec<f32>, Vec<NdArray>) {
    let mut cfg = cfg_base.clone();
    cfg.epochs = 4;
    let model = TimeDrl::new(cfg);
    let report = pretrain(&model, windows).unwrap();
    (report.total, model.parameters().iter().map(|p| p.to_array()).collect())
}

fn run_interrupted(cfg_base: &TimeDrlConfig, windows: &NdArray, tag: &str) -> (Vec<f32>, Vec<NdArray>) {
    let ckpt = unique_path(tag, 0);
    let mut cfg = cfg_base.clone();
    cfg.epochs = 2;
    cfg.checkpoint_every = Some(2);
    cfg.checkpoint_path = Some(ckpt.clone());
    pretrain(&TimeDrl::new(cfg), windows).unwrap();

    let mut cfg = cfg_base.clone();
    cfg.epochs = 4;
    cfg.resume_from = Some(ckpt.clone());
    let model = TimeDrl::new(cfg);
    let report = pretrain(&model, windows).unwrap();
    std::fs::remove_file(&ckpt).ok();
    (report.total, model.parameters().iter().map(|p| p.to_array()).collect())
}

#[test]
fn whole_batch_resume_is_bit_exact() {
    let windows = sine_windows(24);
    let cfg = tiny_cfg();
    let (loss_a, params_a) = run_straight(&cfg, &windows);
    let (loss_b, params_b) = run_interrupted(&cfg, &windows, "resume_whole");
    assert_eq!(loss_a, loss_b, "loss history diverged after resume");
    assert_eq!(params_a, params_b, "parameters diverged after resume");
}

#[test]
fn micro_batch_resume_is_bit_exact() {
    let windows = sine_windows(24);
    let mut cfg = tiny_cfg();
    cfg.micro_batch = Some(3);
    let (loss_a, params_a) = run_straight(&cfg, &windows);
    let (loss_b, params_b) = run_interrupted(&cfg, &windows, "resume_micro");
    assert_eq!(loss_a, loss_b, "loss history diverged after resume");
    assert_eq!(params_a, params_b, "parameters diverged after resume");
}
