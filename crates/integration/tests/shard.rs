//! Cross-crate shard suite: the sharded reader against the in-memory
//! window path (bitwise), the corruption/mismatch rejection contract, and
//! multi-worker sharded pretraining against the single-worker run
//! (byte-identical final checkpoints).

use std::path::PathBuf;
use timedrl::{run_shard_worker, ShardTrainPlan, TimeDrl, TimeDrlConfig, TrainError};
use timedrl_data::{sliding_windows, ShardError, ShardWriter, ShardedDataset};
use timedrl_tensor::NdArray;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("timedrl_it_shard_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn series(t: usize, c: usize, seed: u64) -> NdArray {
    NdArray::from_fn(&[t, c], |i| {
        let x = (i as u64).wrapping_mul(0x9e37_79b9).wrapping_add(seed) as f32;
        (x * 1e-6).sin() * 2.0 + (i as f32) * 0.001
    })
}

/// The tentpole equivalence property: every window streamed from shards is
/// bitwise-equal to the in-memory `sliding_windows` output — including
/// windows straddling shard boundaries, shards smaller than one window,
/// shards holding exactly one window, and strides that jump the read
/// position past entire shards.
#[test]
fn sharded_windows_are_bitwise_equal_to_in_memory_path() {
    let dir = tmp("equiv");
    // (t, c, rows_per_shard, lookback, horizon, stride)
    let cases = [
        (97, 2, 10, 8, 4, 1),   // windows straddle every boundary
        (64, 1, 64, 16, 0, 4),  // single shard — degenerate split
        (120, 3, 7, 12, 6, 5),  // shard far smaller than one window span
        (50, 1, 9, 8, 1, 9),    // stride == rows_per_shard: one window starts per shard
        (33, 2, 16, 24, 8, 2),  // only a couple of windows total
        (40, 1, 13, 40, 0, 1),  // exactly one window, spanning all shards
        (35, 1, 10, 5, 0, 25),  // stride jumps clean past an unloaded shard
        (100, 2, 7, 6, 2, 40),  // stride leaps several whole shards at once
    ];
    for (case, &(t, c, rps, lookback, horizon, stride)) in cases.iter().enumerate() {
        let s = series(t, c, case as u64);
        let sub = dir.join(format!("case{case}"));
        ShardWriter::new(rps).unwrap().write(&s, &sub).unwrap();
        let ds = ShardedDataset::open(&sub).unwrap();

        let reference = sliding_windows(&s, lookback, horizon, stride);
        let n = reference.inputs.shape()[0];
        assert_eq!(
            ds.window_count(lookback, horizon, stride),
            n,
            "case {case}: window count"
        );

        // Streaming iterator: global order, bitwise.
        let mut iter = ds.windows(lookback, horizon, stride).unwrap();
        for w in 0..n {
            let (input, target) = iter.next().unwrap().unwrap();
            let want_in = reference.inputs.slice(0, w, 1).unwrap();
            assert_eq!(
                input.data(),
                want_in.data(),
                "case {case}: window {w} input bytes"
            );
            let want_tg = reference.targets.slice(0, w, 1).unwrap();
            assert_eq!(
                target.data(),
                want_tg.data(),
                "case {case}: window {w} target bytes"
            );
        }
        assert!(iter.next().is_none(), "case {case}: extra windows");

        // Peak residency: the rolling buffer stays within one shard plus
        // one window span — the out-of-core bound.
        let bound = (rps + lookback + horizon) * c * std::mem::size_of::<f32>();
        assert!(
            iter.peak_buffer_bytes() <= bound,
            "case {case}: peak buffer {} exceeds one-shard bound {bound}",
            iter.peak_buffer_bytes()
        );

        // Per-shard materialization partitions the same windows.
        let mut seen = 0;
        for j in 0..ds.num_shards() {
            let wf = ds.shard_windows(j, lookback, horizon, stride).unwrap();
            let (w0, w1) = ds.shard_window_range(j, lookback, horizon, stride);
            assert_eq!(wf.inputs.shape()[0], w1 - w0, "case {case}: shard {j} count");
            for (k, w) in (w0..w1).enumerate() {
                assert_eq!(
                    wf.inputs.slice(0, k, 1).unwrap().data(),
                    reference.inputs.slice(0, w, 1).unwrap().data(),
                    "case {case}: shard {j} window {w} bytes"
                );
            }
            seen += w1 - w0;
        }
        assert_eq!(seen, n, "case {case}: shard ranges do not partition the windows");

        // Batch materialization — the trainer's per-step unit — is
        // bitwise too, in arbitrary index order.
        for j in 0..ds.num_shards() {
            let (w0, w1) = ds.shard_window_range(j, lookback, horizon, stride);
            if w0 == w1 {
                continue;
            }
            let idx: Vec<usize> = (0..w1 - w0).rev().collect();
            let wf = ds.shard_window_batch(j, lookback, horizon, stride, &idx).unwrap();
            for (k, &i) in idx.iter().enumerate() {
                assert_eq!(
                    wf.inputs.slice(0, k, 1).unwrap().data(),
                    reference.inputs.slice(0, w0 + i, 1).unwrap().data(),
                    "case {case}: shard {j} batch window {i} bytes"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Every byte flip and every truncation of a shard file is rejected with a
/// typed error (the PR-4 corruption contract, extended to `KIND_SHARD`).
#[test]
fn corrupted_shard_files_are_rejected_with_typed_errors() {
    let dir = tmp("corrupt");
    let s = series(23, 2, 7);
    let paths = ShardWriter::new(9).unwrap().write(&s, &dir).unwrap();
    let bytes = std::fs::read(&paths[1]).unwrap();

    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x20;
        std::fs::write(&paths[1], &bad).unwrap();
        let err = ShardedDataset::open(&dir).unwrap_err();
        assert!(
            matches!(err, ShardError::Corrupt { .. } | ShardError::ManifestMismatch { .. }),
            "byte flip at {i} produced {err:?}"
        );
    }
    for len in [0, 4, 11, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&paths[1], &bytes[..len]).unwrap();
        let err = ShardedDataset::open(&dir).unwrap_err();
        assert!(
            matches!(err, ShardError::Corrupt { .. }),
            "truncation to {len} bytes produced {err:?}"
        );
    }
    // Restore and confirm the set opens again.
    std::fs::write(&paths[1], &bytes).unwrap();
    ShardedDataset::open(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Manifest cross-checks: a missing shard, a duplicated index, and a shard
/// from a different split are all detected at open.
#[test]
fn inconsistent_shard_sets_are_rejected() {
    let base = tmp("manifest");
    let s = series(40, 1, 3);

    // Missing shard.
    let dir = base.join("missing");
    let paths = ShardWriter::new(10).unwrap().write(&s, &dir).unwrap();
    std::fs::remove_file(&paths[2]).unwrap();
    assert!(matches!(
        ShardedDataset::open(&dir),
        Err(ShardError::ManifestMismatch { .. })
    ));

    // Duplicated index: shard 1's file copied over shard 2's.
    let dir = base.join("dup");
    let paths = ShardWriter::new(10).unwrap().write(&s, &dir).unwrap();
    std::fs::copy(&paths[1], &paths[2]).unwrap();
    assert!(matches!(
        ShardedDataset::open(&dir),
        Err(ShardError::ManifestMismatch { .. })
    ));

    // Foreign shard: a file from a different split mixed in.
    let dir = base.join("foreign");
    ShardWriter::new(10).unwrap().write(&s, &dir).unwrap();
    let other = base.join("other");
    let other_paths = ShardWriter::new(8).unwrap().write(&series(40, 1, 9), &other).unwrap();
    std::fs::copy(&other_paths[3], dir.join("shard_00003.tdrl")).unwrap();
    assert!(matches!(
        ShardedDataset::open(&dir),
        Err(ShardError::ManifestMismatch { .. })
    ));

    std::fs::remove_dir_all(&base).ok();
}

fn probe_cfg() -> TimeDrlConfig {
    let mut cfg = TimeDrlConfig::forecasting(32);
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.batch_size = 8;
    cfg.epochs = 2;
    cfg.seed = 21;
    cfg
}

fn run_workers(shards: &PathBuf, run_dir: &PathBuf, n: usize) -> Vec<f32> {
    let cfg = probe_cfg();
    let mk_plan = |w: usize| {
        let mut plan = ShardTrainPlan::new(shards.clone(), run_dir.clone());
        plan.n_workers = n;
        plan.worker = w;
        plan.stride = 4;
        plan
    };
    // Followers on OS threads, coordinator on this one: the protocol only
    // ever touches the filesystem, so in-process threads exercise the same
    // code path the `shard_probe` binary drives across real processes.
    let handles: Vec<_> = (1..n)
        .map(|w| {
            let cfg = cfg.clone();
            let plan = mk_plan(w);
            std::thread::spawn(move || run_shard_worker(&cfg, &plan).map(|_| ()))
        })
        .collect();
    let report = run_shard_worker(&cfg, &mk_plan(0)).unwrap();
    for h in handles {
        h.join().unwrap().unwrap();
    }
    report.total
}

/// The process-invariance property at the library level: 1-, 2-, and
/// 3-worker runs produce byte-identical final checkpoints and identical
/// loss histories. (ci.sh re-proves this across real OS processes with
/// `shard_probe`, including kill-and-resume.)
#[test]
fn multi_worker_pretraining_matches_single_worker_byte_for_byte() {
    let dir = tmp("workers");
    let shards = dir.join("shards");
    ShardWriter::new(64)
        .unwrap()
        .write(
            &NdArray::from_fn(&[200, 1], |i| (i as f32 * 0.4).sin() + (i as f32 * 0.05).cos()),
            &shards,
        )
        .unwrap();

    let run1 = dir.join("run1");
    let loss1 = run_workers(&shards, &run1, 1);
    let bytes1 = std::fs::read(run1.join("model_final.tdrl")).unwrap();
    assert!(!loss1.is_empty());

    for n in [2usize, 3] {
        let run_n = dir.join(format!("run{n}"));
        let loss_n = run_workers(&shards, &run_n, n);
        assert_eq!(loss1, loss_n, "loss history diverged at {n} workers");
        let bytes_n = std::fs::read(run_n.join("model_final.tdrl")).unwrap();
        assert_eq!(bytes1, bytes_n, "final checkpoint diverged at {n} workers");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The trained artifact is loadable and the sharded run actually learned:
/// the loss history decreases.
#[test]
fn sharded_run_produces_a_loadable_model_that_learned() {
    let dir = tmp("loadable");
    let shards = dir.join("shards");
    ShardWriter::new(64)
        .unwrap()
        .write(
            &NdArray::from_fn(&[240, 1], |i| (i as f32 * 0.4).sin()),
            &shards,
        )
        .unwrap();
    let mut cfg = probe_cfg();
    cfg.epochs = 3;
    let mut plan = ShardTrainPlan::new(&shards, dir.join("run"));
    plan.stride = 2;
    let report = run_shard_worker(&cfg, &plan).unwrap();
    assert_eq!(report.total.len(), 3);
    assert!(
        report.total.last().unwrap() < &report.total[0],
        "sharded loss did not decrease: {:?}",
        report.total
    );
    let model = TimeDrl::new(cfg);
    model.load(dir.join("run/model_final.tdrl")).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A dead coordinator surfaces as a typed timeout in its followers, not a
/// hang.
#[test]
fn follower_times_out_without_a_coordinator() {
    let dir = tmp("timeout");
    let shards = dir.join("shards");
    ShardWriter::new(32)
        .unwrap()
        .write(&series(100, 1, 1), &shards)
        .unwrap();
    let mut plan = ShardTrainPlan::new(&shards, dir.join("run"));
    plan.n_workers = 2;
    plan.worker = 1;
    plan.timeout_ms = 50;
    let err = run_shard_worker(&probe_cfg(), &plan).unwrap_err();
    assert!(matches!(err, TrainError::ShardTimeout { .. }), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
