//! Determinism regression suite for the parallel compute runtime.
//!
//! The `testkit::pool` contract is that chunked fan-out never changes
//! results: every kernel must produce bit-identical output at any thread
//! count (`TIMEDRL_THREADS=1` ≡ `TIMEDRL_THREADS=N`), and a full
//! pre-training run must serialize to byte-identical checkpoints. These
//! properties pin that contract down against randomly generated shapes and
//! inputs; `pool::with_grain` forces multi-chunk fan-out on test-sized
//! tensors that the production grain thresholds would keep serial.

use testkit::pool;
use testkit::{prop, prop_assert, prop_assert_eq};
use timedrl::config::TimeDrlConfig;
use timedrl::model::TimeDrl;
use timedrl::trainer::pretrain;
use timedrl_nn::{Conv1d, Ctx, Module, MultiHeadAttention};
use timedrl_tensor::{
    attention_fused, attention_reference, matmul, with_composed_attention, write_arrays, NdArray,
    Prng, Var,
};

/// Checked thread counts: serial baseline plus two parallel settings.
const THREADS: [usize; 3] = [1, 2, 4];

/// Runs `f` at every thread count in [`THREADS`] (with a tiny grain so the
/// parallel path actually fans out) and asserts all results are identical
/// to the single-thread baseline.
fn assert_thread_invariant<R: PartialEq + std::fmt::Debug>(grain: usize, f: impl Fn() -> R) {
    let baseline = pool::with_threads(1, &f);
    for threads in &THREADS[1..] {
        let got = pool::with_threads(*threads, || pool::with_grain(grain, &f));
        assert_eq!(baseline, got, "result diverged at {threads} threads");
    }
}

fn randn(rng: &mut testkit::TestRng, shape: &[usize]) -> NdArray {
    NdArray::from_fn(shape, |_| rng.normal_f64() as f32)
}

prop! {
    #![config(cases = 16)]

    fn matmul_is_thread_count_invariant(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = testkit::TestRng::new(seed);
        let a = randn(&mut rng, &[m, k]);
        let b = randn(&mut rng, &[k, n]);
        assert_thread_invariant(16, || matmul(&a, &b).unwrap());
    }

    fn batched_matmul_is_thread_count_invariant(
        bs in 1usize..6,
        m in 1usize..10,
        k in 1usize..10,
        n in 1usize..10,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = testkit::TestRng::new(seed);
        let a = randn(&mut rng, &[bs, m, k]);
        let b = randn(&mut rng, &[bs, k, n]);
        assert_thread_invariant(8, || matmul(&a, &b).unwrap());
    }

    fn conv1d_forward_backward_is_thread_count_invariant(
        b in 1usize..4,
        c_in in 1usize..4,
        c_out in 1usize..5,
        t in 6usize..16,
        seed in 0u64..1_000_000,
    ) {
        let mut prng = Prng::new(seed);
        let conv = Conv1d::new(c_in, c_out, 3, 1, 1, 1, &mut prng);
        let x0 = prng.randn(&[b, c_in, t]);
        assert_thread_invariant(8, || {
            // The layer is shared across runs and backward() accumulates:
            // start each run from clean gradient slots.
            for p in conv.parameters() {
                p.zero_grad();
            }
            let x = Var::parameter(x0.clone());
            let y = conv.forward(&x);
            y.powf(2.0).sum().backward();
            let grads: Vec<NdArray> = conv
                .parameters()
                .iter()
                .chain(std::iter::once(&x))
                .map(|p| p.grad().expect("gradient"))
                .collect();
            (y.to_array(), grads)
        });
    }

    fn attention_forward_backward_is_thread_count_invariant(
        b in 1usize..3,
        t in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let mut prng = Prng::new(seed);
        let attn = MultiHeadAttention::new(8, 2, false, 0.0, &mut prng);
        let x0 = prng.randn(&[b, t, 8]);
        assert_thread_invariant(8, || {
            for p in attn.parameters() {
                p.zero_grad();
            }
            let x = Var::parameter(x0.clone());
            let y = attn.forward(&x, &mut Ctx::eval());
            y.powf(2.0).mean().backward();
            let grads: Vec<NdArray> = attn
                .parameters()
                .iter()
                .chain(std::iter::once(&x))
                .map(|p| p.grad().expect("gradient"))
                .collect();
            (y.to_array(), grads)
        });
    }
}

/// A 2-epoch data-parallel pre-training run, serialized to bytes.
fn pretrain_checkpoint_bytes(threads: usize) -> (Vec<f32>, Vec<u8>) {
    pool::with_threads(threads, || {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 2;
        cfg.batch_size = 8;
        cfg.seed = 42;
        cfg.micro_batch = Some(3);
        let model = TimeDrl::new(cfg);
        let windows = NdArray::from_fn(&[16, 32, 1], |flat| {
            let (i, step) = (flat / 32, flat % 32);
            (step as f32 * 0.4 + i as f32 * 0.3).sin()
        });
        let report = pretrain(&model, &windows).expect("pre-training failed");
        let params: Vec<NdArray> = model.parameters().iter().map(|p| p.to_array()).collect();
        let refs: Vec<&NdArray> = params.iter().collect();
        let mut bytes = Vec::new();
        write_arrays(&mut bytes, &refs).expect("in-memory serialize");
        (report.total, bytes)
    })
}

#[test]
fn pretrain_checkpoint_is_byte_identical_across_thread_counts() {
    let (loss1, bytes1) = pretrain_checkpoint_bytes(1);
    let (loss4, bytes4) = pretrain_checkpoint_bytes(4);
    prop_assert_eq!(loss1, loss4, "loss history diverged");
    prop_assert!(bytes1 == bytes4, "serialized checkpoints differ between 1 and 4 threads");
}

#[test]
fn pretrain_checkpoint_is_byte_identical_across_identical_runs() {
    let (loss_a, bytes_a) = pretrain_checkpoint_bytes(4);
    let (loss_b, bytes_b) = pretrain_checkpoint_bytes(4);
    prop_assert_eq!(loss_a, loss_b, "same-seed loss history not reproducible");
    prop_assert!(bytes_a == bytes_b, "same-seed checkpoints differ between runs");
}

/// The fused attention node (DESIGN.md §17) must leave training bits
/// unchanged: a 2-epoch pre-training run through the fused kernel must
/// serialize to exactly the bytes the composed
/// `matmul_t → mask → softmax → matmul` graph produces. At one thread the
/// whole run executes on the calling thread, so the thread-local
/// `with_composed_attention` hook covers every forward.
#[test]
fn pretrain_checkpoint_is_byte_identical_fused_vs_composed_attention() {
    let (loss_fused, bytes_fused) = pretrain_checkpoint_bytes(1);
    let (loss_composed, bytes_composed) = with_composed_attention(|| pretrain_checkpoint_bytes(1));
    prop_assert_eq!(loss_fused, loss_composed, "fused attention changed the loss history");
    prop_assert!(
        bytes_fused == bytes_composed,
        "fused attention changed the checkpoint bytes"
    );
}

/// The fused attention kernel across production-scale sequence lengths:
/// bit-equal to the materialized reference chain and invariant to the
/// thread count, causal and bidirectional.
#[test]
fn fused_attention_is_bitwise_and_thread_invariant_across_shapes() {
    for t in [16usize, 64, 256] {
        for causal in [false, true] {
            let mut prng = Prng::new(7 + t as u64);
            let (bh, dh) = (if t == 256 { 2 } else { 4 }, 8);
            let q = prng.randn(&[bh, t, dh]);
            let k = prng.randn(&[bh, t, dh]);
            let v = prng.randn(&[bh, t, dh]);
            let scale = 1.0 / (dh as f32).sqrt();
            let reference = attention_reference(&q, &k, &v, scale, causal, None).unwrap();
            assert_thread_invariant(1024, || {
                let out = attention_fused(&q, &k, &v, scale, causal, None).unwrap();
                for (i, (a, b)) in out.data().iter().zip(reference.data().iter()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "fused vs reference bit mismatch at {i} (t={t}, causal={causal})"
                    );
                }
                out.data().to_vec()
            });
        }
    }
}

/// The buffer pool (DESIGN.md §10) must be invisible to results: training
/// against a cold pool (every buffer fresh from the heap) and against a
/// warm pool (buffers recycled from a previous full run, carrying stale
/// bits) must produce byte-identical checkpoints. This is the pool's
/// determinism contract — checked-out storage is indistinguishable from
/// `vec![0.0; len]`.
#[test]
fn pretrain_checkpoint_is_byte_identical_cold_vs_warm_pool() {
    timedrl_tensor::bufpool::clear();
    let (loss_cold, bytes_cold) = pretrain_checkpoint_bytes(1);
    // The pool is now warm: the first run's buffers were recycled. A
    // second identical run recycles them, observing whatever the pool
    // hands back.
    let (recycled_before, _) = timedrl_tensor::bufpool::stats();
    let (loss_warm, bytes_warm) = pretrain_checkpoint_bytes(1);
    let (recycled_after, _) = timedrl_tensor::bufpool::stats();
    prop_assert!(
        recycled_after > recycled_before,
        "warm run must actually exercise recycled buffers"
    );
    prop_assert_eq!(loss_cold, loss_warm, "pool warmth changed the loss history");
    prop_assert!(bytes_cold == bytes_warm, "pool warmth changed the checkpoint bytes");
}
