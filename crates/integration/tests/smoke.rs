//! Pre-training smoke test: the fastest end-to-end signal that the whole
//! stack (patching → encoder → dual pretext heads → optimizer) learns.
//! Three epochs on tiny synthetic data must reduce the loss and produce
//! healthy (finite, non-collapsed) disentangled embeddings.

use timedrl::{pretrain, TimeDrl, TimeDrlConfig};
use timedrl_tensor::{NdArray, Prng};

/// Tiny synthetic pre-training set: noisy sines, `[n, t, 1]`.
fn windows(n: usize, t: usize) -> NdArray {
    let mut rng = Prng::new(9);
    NdArray::from_fn(&[n, t, 1], |flat| {
        let ti = flat % t;
        (ti as f32 * 0.4).sin() + rng.normal_with(0.0, 0.1)
    })
}

#[test]
fn three_epoch_pretrain_learns_and_embeds() {
    let t = 32;
    let w = windows(24, t);

    let mut cfg = TimeDrlConfig::forecasting(t);
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.epochs = 3;
    let model = TimeDrl::new(cfg);

    let report = pretrain(&model, &w).expect("pre-training failed");
    assert_eq!(report.total.len(), 3, "one total-loss entry per epoch");
    assert!(
        report.total.iter().all(|l| l.is_finite()),
        "loss must stay finite: {:?}",
        report.total
    );
    assert!(
        report.final_loss().unwrap() < report.total[0],
        "3 epochs must reduce the pretext loss: {:?}",
        report.total
    );

    // Instance-level embeddings z_i: finite, and not collapsed to a point.
    let z_i = model.embed_instances(&w);
    assert_eq!(z_i.shape()[0], 24);
    assert!(!z_i.has_non_finite(), "z_i contains NaN/inf");
    let zi_var = z_i.var_axis(0, false).mean();
    assert!(zi_var > 1e-6, "z_i collapsed: mean feature variance {zi_var}");

    // Timestamp-level embeddings z_t (flattened per window): same checks.
    let z_t = model.embed_timestamps_flat(&w);
    assert_eq!(z_t.shape()[0], 24);
    assert!(!z_t.has_non_finite(), "z_t contains NaN/inf");
    let zt_var = z_t.var_axis(0, false).mean();
    assert!(zt_var > 1e-6, "z_t collapsed: mean feature variance {zt_var}");
}
