//! This crate holds only workspace-level integration tests (see `tests/`);
//! it intentionally exports nothing.
