//! Typed streaming errors. The engine never panics on runtime input: a
//! malformed sample or a model execution failure is surfaced as a value
//! so a long-running stream consumer can decide how to recover.

use std::fmt;
use timedrl_serve::ServeError;
use timedrl_tensor::TensorError;

/// Any error the streaming stack can produce.
#[derive(Debug)]
pub enum StreamError {
    /// A pushed sample's channel count differs from the model's.
    BadSample {
        /// Channels the engine was built for.
        expected: usize,
        /// Channels the caller pushed.
        got: usize,
    },
    /// A constructor argument was invalid (zero capacity, zero recompute
    /// period, readout weight shape mismatch, ...).
    BadConfig(String),
    /// The compiled model failed while encoding a hop.
    Serve(ServeError),
    /// A tensor operation failed — indicates an engine bug, surfaced
    /// instead of panicking the stream.
    Exec(TensorError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::BadSample { expected, got } => {
                write!(f, "sample has {got} channels, model expects {expected}")
            }
            StreamError::BadConfig(msg) => write!(f, "bad stream config: {msg}"),
            StreamError::Serve(e) => write!(f, "model execution failed: {e}"),
            StreamError::Exec(e) => write!(f, "tensor op failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Serve(e) => Some(e),
            StreamError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for StreamError {
    fn from(e: ServeError) -> Self {
        StreamError::Serve(e)
    }
}

impl From<TensorError> for StreamError {
    fn from(e: TensorError) -> Self {
        StreamError::Exec(e)
    }
}
