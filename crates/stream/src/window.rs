//! Fixed-capacity sliding window over an unbounded sample stream.
//!
//! The window is a ring buffer of the last `capacity` samples plus
//! per-channel running statistics maintained incrementally in `f64`
//! (Welford's algorithm, extended with an exact remove-one update for
//! the evicted sample). Incremental stats drift by accumulated rounding
//! over many ticks, so [`SlidingWindow::reset_stats_from_buffer`]
//! recomputes them from the buffered samples — the engine calls it on a
//! configurable period to bound the drift, and uses
//! [`SlidingWindow::exact_stats`] (the *batch* `f32` arithmetic) on
//! those same ticks so its output is bitwise-identical to the batch
//! path there.

use timedrl_data::{InstanceStats, INSTANCE_NORM_EPS};
use timedrl_tensor::NdArray;

use crate::error::StreamError;

/// Ring buffer of the most recent `capacity` samples with incremental
/// per-channel normalization statistics.
pub struct SlidingWindow {
    /// `[capacity, channels]` ring storage; row `head` is the oldest.
    buf: NdArray,
    head: usize,
    len: usize,
    ticks: u64,
    /// Welford running mean per channel, over the current window.
    mean: Vec<f64>,
    /// Welford running sum of squared deviations per channel.
    m2: Vec<f64>,
}

impl SlidingWindow {
    /// Creates an empty window holding up to `capacity` samples of
    /// `channels` channels each.
    pub fn new(capacity: usize, channels: usize) -> Result<Self, StreamError> {
        if capacity == 0 || channels == 0 {
            return Err(StreamError::BadConfig(format!(
                "window must be non-empty, got capacity {capacity} x channels {channels}"
            )));
        }
        Ok(Self {
            buf: NdArray::zeros(&[capacity, channels]),
            head: 0,
            len: 0,
            ticks: 0,
            mean: vec![0.0; channels],
            m2: vec![0.0; channels],
        })
    }

    /// Samples the window can hold.
    pub fn capacity(&self) -> usize {
        self.buf.shape()[0]
    }

    /// Channels per sample.
    pub fn channels(&self) -> usize {
        self.buf.shape()[1]
    }

    /// Samples currently buffered (`<= capacity`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True until the first sample arrives.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once `capacity` samples are buffered.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// Total samples ever pushed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Pushes one sample, evicting the oldest when full. Panics if the
    /// sample's length differs from `channels` — the engine validates
    /// user input before it reaches this level.
    pub fn push(&mut self, sample: &[f32]) {
        let cap = self.capacity();
        assert_eq!(
            sample.len(),
            self.channels(),
            "sample channel count must match the window"
        );
        if self.len == cap {
            let cols = self.channels();
            let start = self.head * cols;
            // Split the borrow: remove the evicted row's contribution,
            // then overwrite it in place.
            let (mean, m2) = (&mut self.mean, &mut self.m2);
            let data = self.buf.data_mut();
            let evicted = &data[start..start + cols];
            welford_remove(mean, m2, self.len, evicted);
            data[start..start + cols].copy_from_slice(sample);
            self.head = (self.head + 1) % cap;
            welford_add(&mut self.mean, &mut self.m2, self.len, sample);
        } else {
            let cols = self.channels();
            let row = (self.head + self.len) % cap;
            self.buf.data_mut()[row * cols..(row + 1) * cols].copy_from_slice(sample);
            self.len += 1;
            welford_add(&mut self.mean, &mut self.m2, self.len, sample);
        }
        self.ticks += 1;
    }

    /// Materializes the buffered samples, oldest first, as `[len, C]`.
    pub fn materialize(&self) -> NdArray {
        self.buf
            .cyclic_rows(self.head, self.len)
            .expect("window geometry is validated at construction")
    }

    /// Copies `rows` samples starting at logical offset `offset`
    /// (0 = oldest buffered sample) into `out`, oldest first.
    pub fn copy_logical_rows_into(&self, offset: usize, rows: usize, out: &mut [f32]) {
        assert!(
            offset + rows <= self.len,
            "logical range {offset}..{} exceeds the {} buffered samples",
            offset + rows,
            self.len
        );
        let start = (self.head + offset) % self.capacity();
        self.buf
            .copy_cyclic_rows_into(start, rows, out)
            .expect("window geometry is validated at construction");
    }

    /// Writes the *incremental* per-channel mean and standard deviation
    /// (`sqrt(var + 1e-5)`, population variance — the same form as batch
    /// instance normalization) into the provided slices.
    pub fn write_running_stats(&self, mean: &mut [f32], std: &mut [f32]) {
        let n = self.len.max(1) as f64;
        for c in 0..self.channels() {
            mean[c] = self.mean[c] as f32;
            let var = (self.m2[c] / n) as f32;
            std[c] = (var + INSTANCE_NORM_EPS).sqrt();
        }
    }

    /// Recomputes the statistics with the *batch* arithmetic — `f32`
    /// reductions over the materialized window, exactly what
    /// `instance_normalize` computes. Bitwise-equal to the batch path.
    pub fn exact_stats(&self) -> InstanceStats {
        InstanceStats::compute(&self.materialize())
    }

    /// Re-derives the incremental `f64` accumulators from the buffered
    /// samples with an exact two-pass sweep, discarding any rounding
    /// drift the remove-one/add-one updates have accumulated.
    pub fn reset_stats_from_buffer(&mut self) {
        let cols = self.channels();
        self.mean.iter_mut().for_each(|m| *m = 0.0);
        self.m2.iter_mut().for_each(|m| *m = 0.0);
        if self.len == 0 {
            return;
        }
        let data = self.buf.data();
        let cap = self.capacity();
        for i in 0..self.len {
            let row = (self.head + i) % cap;
            for c in 0..cols {
                self.mean[c] += f64::from(data[row * cols + c]);
            }
        }
        let n = self.len as f64;
        self.mean.iter_mut().for_each(|m| *m /= n);
        for i in 0..self.len {
            let row = (self.head + i) % cap;
            for c in 0..cols {
                let d = f64::from(data[row * cols + c]) - self.mean[c];
                self.m2[c] += d * d;
            }
        }
    }
}

/// Standard Welford add-one update; `n` is the count *including* `x`.
fn welford_add(mean: &mut [f64], m2: &mut [f64], n: usize, x: &[f32]) {
    let n = n as f64;
    for c in 0..x.len() {
        let xc = f64::from(x[c]);
        let delta = xc - mean[c];
        mean[c] += delta / n;
        m2[c] += delta * (xc - mean[c]);
    }
}

/// Reverse Welford update removing `x`; `n` is the count *including*
/// `x` (so the window shrinks to `n - 1`).
fn welford_remove(mean: &mut [f64], m2: &mut [f64], n: usize, x: &[f32]) {
    if n == 1 {
        mean.iter_mut().for_each(|m| *m = 0.0);
        m2.iter_mut().for_each(|m| *m = 0.0);
        return;
    }
    let rest = (n - 1) as f64;
    for c in 0..x.len() {
        let xc = f64::from(x[c]);
        let old_mean = mean[c];
        mean[c] -= (xc - old_mean) / rest;
        // M2 shrinks by the removed point's deviation product; clamp at
        // zero so catastrophic cancellation can never produce a negative
        // variance.
        m2[c] = (m2[c] - (xc - mean[c]) * (xc - old_mean)).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_evicts_oldest_and_materializes_in_order() {
        let mut w = SlidingWindow::new(3, 2).unwrap();
        for i in 0..5 {
            w.push(&[i as f32, 10.0 + i as f32]);
        }
        assert!(w.is_full());
        assert_eq!(w.ticks(), 5);
        let m = w.materialize();
        assert_eq!(m.shape(), &[3, 2]);
        assert_eq!(m.data(), &[2.0, 12.0, 3.0, 13.0, 4.0, 14.0]);
    }

    #[test]
    fn running_stats_match_exact_stats_on_small_windows() {
        let mut w = SlidingWindow::new(4, 1).unwrap();
        for x in [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0] {
            w.push(&[x]);
        }
        // Window is [3,4,5,6]: mean 4.5, var 1.25.
        let mut mean = [0.0f32];
        let mut std = [0.0f32];
        w.write_running_stats(&mut mean, &mut std);
        assert!((mean[0] - 4.5).abs() < 1e-6);
        assert!((std[0] - (1.25f32 + INSTANCE_NORM_EPS).sqrt()).abs() < 1e-6);
        let exact = w.exact_stats();
        assert!((exact.mean.data()[0] - mean[0]).abs() < 1e-6);
        assert!((exact.std.data()[0] - std[0]).abs() < 1e-6);
    }

    #[test]
    fn copy_logical_rows_reads_across_the_wrap() {
        let mut w = SlidingWindow::new(4, 1).unwrap();
        for x in 0..6 {
            w.push(&[x as f32]);
        }
        // Logical window is [2,3,4,5]; rows 2..4 are [4,5].
        let mut out = [0.0f32; 2];
        w.copy_logical_rows_into(2, 2, &mut out);
        assert_eq!(out, [4.0, 5.0]);
    }

    #[test]
    fn rejects_empty_geometry() {
        assert!(matches!(
            SlidingWindow::new(0, 3),
            Err(StreamError::BadConfig(_))
        ));
        assert!(matches!(
            SlidingWindow::new(3, 0),
            Err(StreamError::BadConfig(_))
        ));
    }
}
