//! Rolling horizon forecasts from the latest timestamp embeddings.
//!
//! Mirrors the batch linear-evaluation readout (`probe_forecast`): a
//! ridge-fitted linear layer maps the flattened timestamp embeddings
//! `[1, T_p·D]` to an `H`-step horizon in the window's normalized
//! (RevIN) space, and predictions are de-normalized with that same
//! window's temporal mean/std. The streaming engine already maintains
//! exactly those statistics, so a forecast refresh is one matmul, one
//! bias add, and a scalar rescale — allocation-free from the pool.
//!
//! The readout is channel-independent (fit on `[T, 1]` windows), so the
//! de-normalizing helper applies to univariate streams; multivariate
//! consumers can fetch the normalized prediction and rescale per
//! channel themselves via [`StreamingEncoder::stats`].

use timedrl_eval::RidgeProbe;
use timedrl_tensor::{matmul, NdArray};

use crate::engine::{StreamUpdate, StreamingEncoder};
use crate::error::StreamError;

/// A frozen linear readout refreshed against the stream's latest hop.
pub struct RollingForecaster {
    /// `[T_p·D, H]` readout weight.
    weight: NdArray,
    /// `[H]` readout bias.
    bias: NdArray,
}

impl RollingForecaster {
    /// Builds a forecaster from an explicit readout. `weight` must be
    /// `[K, H]` and `bias` `[H]`.
    pub fn new(weight: NdArray, bias: NdArray) -> Result<Self, StreamError> {
        if weight.rank() != 2 || bias.rank() != 1 || weight.shape()[1] != bias.shape()[0] {
            return Err(StreamError::BadConfig(format!(
                "readout must be weight [K, H] with bias [H], got {:?} and {:?}",
                weight.shape(),
                bias.shape()
            )));
        }
        Ok(Self { weight, bias })
    }

    /// Builds a forecaster from a fitted ridge probe — the exact readout
    /// the batch `probe_forecast` evaluation uses.
    pub fn from_probe(probe: &RidgeProbe) -> Result<Self, StreamError> {
        Self::new(probe.weight().clone(), probe.bias().clone())
    }

    /// Horizon length `H`.
    pub fn horizon(&self) -> usize {
        self.bias.shape()[0]
    }

    /// Predicts the next `H` steps in the window's normalized space,
    /// `[1, H]` — the same `x W + b` arithmetic as `RidgeProbe::predict`.
    pub fn refresh(&self, update: &StreamUpdate) -> Result<NdArray, StreamError> {
        let t_p = update.z_t.shape()[1];
        let d = update.z_t.shape()[2];
        let flat = update.z_t.reshape(&[1, t_p * d])?;
        if flat.shape()[1] != self.weight.shape()[0] {
            return Err(StreamError::BadConfig(format!(
                "readout expects {} features, embeddings have {}",
                self.weight.shape()[0],
                flat.shape()[1]
            )));
        }
        Ok(matmul(&flat, &self.weight)?.add(&self.bias))
    }

    /// Predicts the next `H` steps de-normalized back to the input scale
    /// with the window statistics of `update`'s hop (RevIN). Univariate
    /// streams only — the readout is channel-independent.
    pub fn refresh_denormalized(
        &self,
        engine: &StreamingEncoder,
        update: &StreamUpdate,
    ) -> Result<NdArray, StreamError> {
        if engine.channels() != 1 {
            return Err(StreamError::BadConfig(format!(
                "de-normalized forecasts require a univariate stream, got {} channels",
                engine.channels()
            )));
        }
        let (mean, std) = engine.stats();
        Ok(self.refresh(update)?.scale(std[0]).add_scalar(mean[0]))
    }
}
