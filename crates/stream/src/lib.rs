//! # timedrl-stream
//!
//! Unbounded-stream inference for frozen TimeDRL encoders: push one
//! sample per tick, get embeddings, anomaly verdicts, and horizon
//! forecasts back — without re-encoding the whole window from scratch
//! every tick.
//!
//! * [`SlidingWindow`] — fixed-capacity ring of the last `T` samples
//!   with incremental (`f64` Welford remove/add) per-channel
//!   normalization statistics and a periodic exact recompute that
//!   bounds rounding drift.
//! * [`StreamingEncoder`] — encodes only on *hop* ticks (when a new
//!   patch completes), gathers just the newly-completed raw patch into
//!   a token ring, and reuses the compiled model's buffer-pool kernels,
//!   so steady-state ticks are allocation-free after
//!   [`StreamingEncoder::warm`].
//! * [`OnlineAnomalyScorer`] — reconstruction-error scoring with a
//!   rolling quantile threshold, calibrated over a scored warmup window
//!   with the same nearest-rank rule as the batch `AnomalyDetector`.
//! * [`RollingForecaster`] — refreshes horizon predictions from the
//!   latest timestamp embeddings with the batch ridge readout, RevIN
//!   de-normalized by the stream's own window statistics.
//!
//! **Equivalence contract** (property-tested in `tests/equivalence.rs`):
//! on hops where the statistics are exactly recomputed (`exact == true`,
//! period [`StreamingEncoder::new`]'s `recompute_every`), the streaming
//! output is **bitwise identical** to `CompiledModel::embed` of the
//! materialized window — across thread counts, window/patch alignments,
//! and cold or warm buffer pools. Between exact hops the incremental
//! statistics track the batch values to within a small ε.
//!
//! ```no_run
//! use timedrl::{decode_model_export, encode_model_export, TimeDrl, TimeDrlConfig};
//! use timedrl_serve::CompiledModel;
//! use timedrl_stream::{OnlineAnomalyScorer, StreamingEncoder};
//!
//! let model = TimeDrl::new(TimeDrlConfig::forecasting(64));
//! let payload = encode_model_export(&model);
//! let compiled = CompiledModel::from_export(decode_model_export(&payload[4..]).unwrap()).unwrap();
//! let mut engine = StreamingEncoder::new(compiled, 8).unwrap();
//! let mut scorer = OnlineAnomalyScorer::new(0.95, 32, None).unwrap();
//! engine.warm();
//! loop {
//!     let sample = [0.0f32]; // your live tick
//!     if let Some(update) = engine.push(&sample).unwrap() {
//!         let tick = scorer.observe(&engine, &update).unwrap();
//!         if tick.anomalous == Some(true) {
//!             println!("anomaly at tick {} (score {})", tick.tick, tick.score);
//!         }
//!     }
//! }
//! ```

#![warn(missing_docs)]

pub mod anomaly;
pub mod engine;
pub mod error;
pub mod forecast;
pub mod window;

pub use anomaly::{OnlineAnomalyScorer, TickScore};
pub use engine::{StreamUpdate, StreamingEncoder};
pub use error::StreamError;
pub use forecast::RollingForecaster;
pub use window::SlidingWindow;
