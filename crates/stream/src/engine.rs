//! Tick-by-tick streaming encoder on top of the compiled batch model.
//!
//! # Incremental model
//!
//! The batch path encodes a `[T, C]` window as: instance-normalize over
//! the window, patch into `T_p` tokens (patch length `P`, stride `S`),
//! then run the transformer plan. A stream that re-ran this from scratch
//! every tick would pay the full encode `T/S`-fold redundantly: after
//! `S` new samples, `T_p − 1` of the new window's *raw* patches are
//! byte-identical to the previous window's (patch `p` of the new window
//! is patch `p + 1` of the old).
//!
//! The engine therefore:
//!
//! 1. buffers samples in a [`SlidingWindow`] ring and only *encodes* on
//!    **hop ticks** — when the window is full and the newest sample
//!    completes a fresh patch (`(ticks − T) % S == 0`);
//! 2. keeps the **raw** (un-normalized) patch tokens in a second ring,
//!    gathering only the one newly-completed patch per hop;
//! 3. normalizes the cached tokens per-element with the window's
//!    current per-channel `(x − μ) / σ` — which produces the *same bits*
//!    as the batch normalize-then-patch order, given the same `μ, σ`;
//! 4. feeds the normalized tokens to [`CompiledModel::embed_patched`],
//!    the identical kernels the batch path runs after patching —
//!    attention included, which lowers to the fused tiled kernel
//!    (DESIGN.md §17): a hop never materializes `[B·H, T, T]` scores,
//!    and the warmed steady-state tick stays at zero heap allocations.
//!
//! # The ε contract
//!
//! Statistics come from two sources. On **exact hops** (the first hop,
//! and every `recompute_every`-th after), `μ, σ` are recomputed with
//! the batch `f32` arithmetic on the materialized window — the engine's
//! output is then **bitwise identical** to `CompiledModel::embed` of
//! that window, and the `f64` running accumulators are reseeded so
//! drift cannot compound across periods. Between exact hops, `μ, σ`
//! come from `f64` Welford remove/add updates — within rounding noise
//! of the batch values, so embeddings agree to a small ε (documented
//! and property-tested in `tests/equivalence.rs`).
//!
//! Steady-state ticks are allocation-free after [`StreamingEncoder::warm`]:
//! every intermediate lives in the process-wide tensor buffer pool, and
//! the engine's own rings and stat scratch are preallocated.

use timedrl_data::InstanceStats;
use timedrl_serve::{CompiledModel, Embeddings};
use timedrl_tensor::NdArray;

use crate::error::StreamError;
use crate::window::SlidingWindow;

/// One encoded hop: everything downstream consumers (anomaly scoring,
/// forecasting) need from the model at this tick.
pub struct StreamUpdate {
    /// Instance-level embedding `[1, D]` (`[1, T_p·D]` under `Pooling::All`).
    pub z_i: NdArray,
    /// Timestamp-level embeddings `[1, T_p, D]`.
    pub z_t: NdArray,
    /// The normalized patched input `[1, T_p, C·P]` the model saw —
    /// the reconstruction target for anomaly scoring.
    pub x_patched: NdArray,
    /// True when the window statistics were exactly recomputed this hop
    /// (output bitwise-equal to the batch path).
    pub exact: bool,
    /// Stream tick (total samples pushed) at which this hop fired.
    pub tick: u64,
}

/// Streaming encoder: owns the compiled model and the incremental state.
pub struct StreamingEncoder {
    model: CompiledModel,
    window: SlidingWindow,
    /// `[T_p, C·P]` ring of *raw* (un-normalized) patch tokens.
    raw_tokens: NdArray,
    /// Row index of logical patch 0 in `raw_tokens`.
    token_head: usize,
    /// False until the first hop gathers all `T_p` patches.
    tokens_primed: bool,
    /// Scratch for the normalized tokens, `[1, T_p, C·P]`.
    normed: NdArray,
    /// Current per-channel stats used to normalize.
    mean: Vec<f32>,
    std: Vec<f32>,
    recompute_every: usize,
    hops_since_exact: usize,
    hops: u64,
}

impl StreamingEncoder {
    /// Builds an engine over `model`. `recompute_every` is the exact-stats
    /// period in hops: `1` recomputes every hop (always bitwise with the
    /// batch path), `k` lets the cheap incremental stats run for `k − 1`
    /// hops between exact ones.
    pub fn new(model: CompiledModel, recompute_every: usize) -> Result<Self, StreamError> {
        if recompute_every == 0 {
            return Err(StreamError::BadConfig(
                "recompute_every must be at least 1".into(),
            ));
        }
        let t = model.input_len();
        let width = model.token_width();
        let channels = width / model.patch_len();
        let t_p = model.num_patches();
        Ok(Self {
            window: SlidingWindow::new(t, channels)?,
            raw_tokens: NdArray::zeros(&[t_p, width]),
            token_head: 0,
            tokens_primed: false,
            normed: NdArray::zeros(&[1, t_p, width]),
            mean: vec![0.0; channels],
            std: vec![0.0; channels],
            recompute_every,
            hops_since_exact: 0,
            hops: 0,
            model,
        })
    }

    /// Channels per sample.
    pub fn channels(&self) -> usize {
        self.window.channels()
    }

    /// Window length `T` in ticks.
    pub fn window_len(&self) -> usize {
        self.window.capacity()
    }

    /// Hops encoded so far.
    pub fn hops(&self) -> u64 {
        self.hops
    }

    /// Total samples pushed so far.
    pub fn ticks(&self) -> u64 {
        self.window.ticks()
    }

    /// The compiled model this engine encodes with.
    pub fn model(&self) -> &CompiledModel {
        &self.model
    }

    /// The exactness tier every update from this engine is computed under
    /// (see [`CompiledModel::precision`]): `Exact` hops are bitwise
    /// reproducible against the batch path, `Relaxed` hops run the int8
    /// quantized kernels and are only ε-comparable.
    pub fn precision(&self) -> timedrl::Precision {
        self.model.precision()
    }

    /// The per-channel `(mean, std)` the most recent hop normalized with.
    /// Forecast consumers use these to denormalize predictions back to
    /// the input scale (RevIN).
    pub fn stats(&self) -> (&[f32], &[f32]) {
        (&self.mean, &self.std)
    }

    /// Pushes one sample. Returns `Ok(Some(update))` on hop ticks — when
    /// the newest sample completes a fresh patch — and `Ok(None)` on
    /// buffering ticks.
    pub fn push(&mut self, sample: &[f32]) -> Result<Option<StreamUpdate>, StreamError> {
        if sample.len() != self.channels() {
            return Err(StreamError::BadSample {
                expected: self.channels(),
                got: sample.len(),
            });
        }
        self.window.push(sample);
        let t = self.window.capacity() as u64;
        let ticks = self.window.ticks();
        if ticks < t || (ticks - t) % self.model.patch_stride() as u64 != 0 {
            return Ok(None);
        }
        self.encode_hop(ticks).map(Some)
    }

    /// Encodes the current window incrementally; `push` calls this on
    /// hop ticks.
    fn encode_hop(&mut self, tick: u64) -> Result<StreamUpdate, StreamError> {
        let t_p = self.model.num_patches();
        let p = self.model.patch_len();
        let s = self.model.patch_stride();
        let width = self.model.token_width();

        // Refresh the raw-token ring: one new patch per hop, all of them
        // on the first.
        if self.tokens_primed {
            // Logical patch p of the new window is patch p + 1 of the
            // old, so the head advances and the dropped patch's row is
            // reused for the newly completed one.
            let reuse = self.token_head;
            self.token_head = (self.token_head + 1) % t_p;
            let dst = &mut self.raw_tokens.data_mut()[reuse * width..(reuse + 1) * width];
            self.window.copy_logical_rows_into((t_p - 1) * s, p, dst);
        } else {
            for patch in 0..t_p {
                let dst = &mut self.raw_tokens.data_mut()[patch * width..(patch + 1) * width];
                self.window.copy_logical_rows_into(patch * s, p, dst);
            }
            self.token_head = 0;
            self.tokens_primed = true;
        }

        // Refresh the normalization statistics. The first hop is always
        // exact so the stream starts bitwise-aligned with the batch path.
        let exact = self.hops == 0 || self.hops_since_exact + 1 >= self.recompute_every;
        if exact {
            let stats = self.window.exact_stats();
            self.mean.copy_from_slice(stats.mean.data());
            self.std.copy_from_slice(stats.std.data());
            self.window.reset_stats_from_buffer();
            self.hops_since_exact = 0;
        } else {
            self.window.write_running_stats(&mut self.mean, &mut self.std);
            self.hops_since_exact += 1;
        }

        // Normalize the cached raw tokens into the scratch in logical
        // order. Element j of a token is channel j % C, and per-element
        // `(x − μ) / σ` in f32 matches the batch broadcast sub-then-div
        // bit for bit.
        let channels = self.window.channels();
        {
            let raw = self.raw_tokens.data();
            let out = self.normed.data_mut();
            for patch in 0..t_p {
                let src = (self.token_head + patch) % t_p;
                for j in 0..width {
                    let c = j % channels;
                    out[patch * width + j] =
                        (raw[src * width + j] - self.mean[c]) / self.std[c];
                }
            }
        }

        let Embeddings { z_i, z_t } = self.model.embed_patched(&self.normed)?;
        self.hops += 1;
        Ok(StreamUpdate {
            z_i,
            z_t,
            x_patched: self.normed.clone(),
            exact,
            tick,
        })
    }

    /// Per-patch reconstruction errors and the window anomaly score for
    /// a hop: the compiled prediction head reconstructs the normalized
    /// patched input from `z_t`, scored exactly like the batch
    /// `anomaly_scores` path.
    pub fn reconstruction_error(
        &self,
        update: &StreamUpdate,
    ) -> Result<(NdArray, f32), StreamError> {
        let recon = self.model.reconstruct(&update.z_t)?;
        let per_patch = timedrl::patch_errors(&recon, &update.x_patched);
        let score = timedrl::window_score(per_patch.data());
        Ok((per_patch, score))
    }

    /// Pre-populates the tensor buffer pool with every intermediate the
    /// hop path uses, so steady-state ticks allocate nothing. Call once
    /// before entering the hot loop.
    pub fn warm(&mut self) {
        let t_p = self.model.num_patches();
        let d = self.model.d_model();
        let width = self.model.token_width();
        for _ in 0..2 {
            self.model.warm(1);
            let z = NdArray::zeros(&[1, t_p, d]);
            if let Ok(recon) = self.model.reconstruct(&z) {
                let _ = timedrl::patch_errors(&recon, &NdArray::zeros(&[1, t_p, width]));
            }
            // The exact-stats hop materializes a [T, C] window and runs
            // the batch f32 reductions on it.
            let full = NdArray::zeros(&[self.window.capacity(), self.window.channels()]);
            let _ = InstanceStats::compute(&full);
            let _ = self.normed.clone();
        }
    }
}
