//! Online anomaly scoring with a calibrated rolling threshold.
//!
//! Each hop is scored exactly like the batch `anomaly_scores` path: the
//! compiled prediction head reconstructs the normalized patched input
//! from `z_t`, the per-patch MSE is reduced to a window score by max,
//! and the score is compared against a threshold. The threshold is the
//! `q`-quantile (same nearest-rank rule as the batch
//! `AnomalyDetector::calibrate`) over a rolling ring of recent scores,
//! first calibrated after `warmup` scored hops and optionally
//! re-calibrated on a fixed period thereafter.
//!
//! All state — the score ring and the sorting scratch — is preallocated
//! at construction, so scoring a hop allocates nothing on the heap.

use timedrl::quantile_from_sorted;
use timedrl_tensor::NdArray;

use crate::engine::{StreamUpdate, StreamingEncoder};
use crate::error::StreamError;

/// One scored hop.
pub struct TickScore {
    /// Stream tick at which the hop fired.
    pub tick: u64,
    /// Window anomaly score: max per-patch reconstruction MSE.
    pub score: f32,
    /// Per-patch reconstruction errors, `[1, T_p]`.
    pub per_patch: NdArray,
    /// Threshold in effect when this hop was scored; `None` during the
    /// warmup period before the first calibration.
    pub threshold: Option<f32>,
    /// `Some(true)` if the score exceeded the threshold; `None` during
    /// warmup.
    pub anomalous: Option<bool>,
}

/// Rolling-threshold anomaly scorer over a stream of hops.
pub struct OnlineAnomalyScorer {
    quantile: f32,
    warmup: usize,
    recalibrate_every: Option<usize>,
    /// Rolling ring of the most recent `warmup` scores.
    ring: Vec<f32>,
    next: usize,
    filled: usize,
    /// Preallocated sort buffer for calibration.
    scratch: Vec<f32>,
    threshold: Option<f32>,
    scored_since_calibration: usize,
}

impl OnlineAnomalyScorer {
    /// Builds a scorer that calibrates the `quantile`-threshold from the
    /// first `warmup` scored hops, then re-calibrates from the rolling
    /// ring every `recalibrate_every` hops (never, if `None`).
    pub fn new(
        quantile: f32,
        warmup: usize,
        recalibrate_every: Option<usize>,
    ) -> Result<Self, StreamError> {
        if !(0.0..=1.0).contains(&quantile) {
            return Err(StreamError::BadConfig(format!(
                "quantile must be in [0, 1], got {quantile}"
            )));
        }
        if warmup == 0 {
            return Err(StreamError::BadConfig(
                "warmup must be at least 1 scored hop".into(),
            ));
        }
        if recalibrate_every == Some(0) {
            return Err(StreamError::BadConfig(
                "recalibrate_every must be at least 1 hop".into(),
            ));
        }
        Ok(Self {
            quantile,
            warmup,
            recalibrate_every,
            ring: Vec::with_capacity(warmup),
            next: 0,
            filled: 0,
            scratch: Vec::with_capacity(warmup),
            threshold: None,
            scored_since_calibration: 0,
        })
    }

    /// The current threshold, once calibrated.
    pub fn threshold(&self) -> Option<f32> {
        self.threshold
    }

    /// Scores one hop and updates the rolling state.
    pub fn observe(
        &mut self,
        engine: &StreamingEncoder,
        update: &StreamUpdate,
    ) -> Result<TickScore, StreamError> {
        let (per_patch, score) = engine.reconstruction_error(update)?;
        if self.ring.len() < self.warmup {
            self.ring.push(score);
        } else {
            self.ring[self.next] = score;
        }
        self.next = (self.next + 1) % self.warmup;
        self.filled = (self.filled + 1).min(self.warmup);
        self.scored_since_calibration += 1;

        let due = match (self.threshold, self.recalibrate_every) {
            (None, _) => self.filled >= self.warmup,
            (Some(_), Some(k)) => self.scored_since_calibration >= k,
            (Some(_), None) => false,
        };
        if due {
            self.calibrate();
        }
        Ok(TickScore {
            tick: update.tick,
            score,
            per_patch,
            threshold: self.threshold,
            anomalous: self.threshold.map(|t| score > t),
        })
    }

    /// Recomputes the threshold from the rolling ring — the same sort +
    /// nearest-rank quantile as the batch `AnomalyDetector::calibrate`.
    fn calibrate(&mut self) {
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.ring[..self.filled]);
        self.scratch.sort_unstable_by(f32::total_cmp);
        self.threshold = quantile_from_sorted(&self.scratch, self.quantile).ok();
        self.scored_since_calibration = 0;
    }
}
