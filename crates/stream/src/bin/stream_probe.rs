//! CI probe for the streaming engine (see `ci.sh`).
//!
//! Builds a deterministic fixture, warms the engine, then:
//!
//! 1. counts heap allocations across a full recompute period of
//!    steady-state ticks (including an exact-stats hop) and prints
//!    `allocs_per_tick=N` for the gate — must be 0;
//! 2. byte-compares an exact hop's embeddings and anomaly score against
//!    `CompiledModel::embed` + the tape-path `anomaly_scores` of the
//!    same materialized window, exiting nonzero on any mismatch.
//!
//! Run it with `TIMEDRL_THREADS=1`: the allocation counter is
//! process-global, so the measurement must be single-threaded.

use std::process::ExitCode;
use testkit::alloc::count_allocations;
use timedrl::{decode_model_export, encode_model_export, TimeDrl, TimeDrlConfig};
use timedrl_data::PatchConfig;
use timedrl_serve::CompiledModel;
use timedrl_stream::{OnlineAnomalyScorer, StreamUpdate, StreamingEncoder};
use timedrl_tensor::Prng;

const WINDOW: usize = 16;
const PATCH: usize = 4;
/// Exact-stats period in hops; the measured span crosses one exact hop.
const RECOMPUTE_EVERY: usize = 2;

fn fixture_model() -> TimeDrl {
    let mut cfg = TimeDrlConfig::forecasting(WINDOW);
    cfg.patch = PatchConfig::non_overlapping(PATCH);
    cfg.d_model = 8;
    cfg.n_heads = 2;
    cfg.d_ff = 16;
    cfg.n_layers = 2;
    cfg.seed = 7;
    TimeDrl::new(cfg)
}

fn compile(model: &TimeDrl) -> CompiledModel {
    let payload = encode_model_export(model);
    CompiledModel::from_export(decode_model_export(&payload[4..]).expect("fixture export"))
        .expect("fixture compile")
}

/// Feeds `n` ticks from `ticks` starting at `*next`, returning the last
/// hop (if any) with its anomaly score.
fn feed(
    engine: &mut StreamingEncoder,
    scorer: &mut OnlineAnomalyScorer,
    ticks: &[f32],
    next: &mut usize,
    n: usize,
) -> Option<(StreamUpdate, f32)> {
    let mut last = None;
    for _ in 0..n {
        let sample = [ticks[*next]];
        *next += 1;
        if let Some(update) = engine.push(&sample).expect("push") {
            let score = scorer.observe(engine, &update).expect("score");
            last = Some((update, score.score));
        }
    }
    last
}

fn main() -> ExitCode {
    let model = fixture_model();
    let compiled = compile(&model);
    let mut engine = StreamingEncoder::new(compile(&model), RECOMPUTE_EVERY).expect("engine");
    let mut scorer = OnlineAnomalyScorer::new(0.9, 4, Some(8)).expect("scorer");

    // A generous deterministic series: fill + warm hops + measured span.
    let series = Prng::new(11).randn(&[WINDOW + 16 * PATCH, 1]);
    let ticks = series.data();
    let mut next = 0usize;

    engine.warm();
    // Fill the window and run several hops so every pool bucket exists.
    feed(&mut engine, &mut scorer, ticks, &mut next, WINDOW + 4 * PATCH);

    // Steady state: one full recompute period of ticks must not allocate.
    let span = RECOMPUTE_EVERY * PATCH;
    let start_tick = next;
    let (_, allocs) = count_allocations(|| {
        feed(&mut engine, &mut scorer, ticks, &mut next, span)
    });
    assert_eq!(next, start_tick + span);
    println!("allocs_per_tick={allocs}");

    // Equivalence smoke on a fresh exact hop: bitwise against the
    // compiled batch path and the tape anomaly score.
    let (update, score) = loop {
        let hop = feed(&mut engine, &mut scorer, ticks, &mut next, PATCH)
            .expect("a hop fires every stride ticks once the window is full");
        if hop.0.exact {
            break hop;
        }
    };
    let start = (update.tick as usize) - WINDOW;
    let window = series
        .slice(0, start, WINDOW)
        .expect("window slice")
        .reshape(&[1, WINDOW, 1])
        .expect("window shape");
    let batch = compiled.embed(&window).expect("batch embed");
    if batch.z_i.data() != update.z_i.data() || batch.z_t.data() != update.z_t.data() {
        eprintln!("FAIL: exact hop embeddings differ from the batch path");
        return ExitCode::FAILURE;
    }
    let tape = timedrl::anomaly_scores(&model, &window);
    if tape.per_window[0].to_bits() != score.to_bits() {
        eprintln!(
            "FAIL: anomaly score {score} differs from tape path {}",
            tape.per_window[0]
        );
        return ExitCode::FAILURE;
    }
    let again = compiled
        .embed_patched(&update.x_patched)
        .expect("re-embed normalized tokens");
    if again.z_t.data() != update.z_t.data() {
        eprintln!("FAIL: x_patched does not reproduce the hop's embeddings");
        return ExitCode::FAILURE;
    }
    println!("equivalence=ok");
    ExitCode::SUCCESS
}
