//! The streaming engine's headline contract, property-tested: a random
//! tick stream produces the same embeddings and anomaly scores as the
//! batch path re-encoding every window from scratch.
//!
//! * **Bitwise** on exact-stats hops (`recompute_every = 1` makes every
//!   hop exact), at every thread count, for patch-aligned *and*
//!   misaligned window lengths, on cold and warm buffer pools.
//! * **Within ε** (`1e-3`, in practice far tighter) between exact hops
//!   when the cheap incremental statistics are in effect — and bitwise
//!   again the moment an exact hop recomputes.
//! * Online calibration matches the batch `AnomalyDetector` on the
//!   same scores, and the rolling forecaster matches the batch ridge
//!   readout's arithmetic.

use testkit::pool;
use testkit::prop;
use timedrl::{
    anomaly_scores, decode_model_export, encode_model_export, AnomalyDetector, Precision, TimeDrl,
    TimeDrlConfig,
};
use timedrl_data::PatchConfig;
use timedrl_eval::RidgeProbe;
use timedrl_serve::CompiledModel;
use timedrl_stream::{OnlineAnomalyScorer, RollingForecaster, StreamUpdate, StreamingEncoder};
use timedrl_tensor::{NdArray, Prng};

/// Window lengths exercised by the properties: patch-aligned (16 = 4·4)
/// and misaligned (18, 22 leave a ragged tail no patch covers).
const WINDOW_LENS: [usize; 3] = [16, 18, 22];

/// ε for hops normalized with incremental (f64 Welford) statistics.
const EPS: f32 = 1e-3;

fn fixture(input_len: usize, seed: u64) -> TimeDrl {
    let mut cfg = TimeDrlConfig::forecasting(input_len);
    cfg.patch = PatchConfig::non_overlapping(4);
    cfg.d_model = 8;
    cfg.n_heads = 2;
    cfg.d_ff = 16;
    cfg.n_layers = 2;
    cfg.seed = seed;
    TimeDrl::new(cfg)
}

fn compile(model: &TimeDrl) -> CompiledModel {
    let payload = encode_model_export(model);
    CompiledModel::from_export(decode_model_export(&payload[4..]).expect("export"))
        .expect("compile")
}

/// Streams `series` (`[N, 1]`) through a fresh engine, returning every
/// hop with its anomaly score.
fn run_stream(model: &TimeDrl, series: &NdArray, recompute_every: usize) -> Vec<(StreamUpdate, f32)> {
    let mut engine = StreamingEncoder::new(compile(model), recompute_every).expect("engine");
    let mut hops = Vec::new();
    for i in 0..series.shape()[0] {
        let sample = [series.data()[i]];
        if let Some(update) = engine.push(&sample).expect("push") {
            let (_, score) = engine.reconstruction_error(&update).expect("score");
            hops.push((update, score));
        }
    }
    hops
}

/// The batch reference for the window ending at `tick`: `[1, T, 1]`.
fn window_at(series: &NdArray, tick: u64, t: usize) -> NdArray {
    series
        .slice(0, tick as usize - t, t)
        .expect("window")
        .reshape(&[1, t, 1])
        .expect("shape")
}

/// The streaming contract holds *per exactness tier*: a relaxed engine
/// reports its tier, and its exact-stats hops are bitwise-identical to
/// the relaxed batch path (both run the same quantized compiled model).
#[test]
fn relaxed_engine_matches_the_relaxed_batch_path() {
    let t = 16;
    let model = fixture(t, 3);
    let payload = encode_model_export(&model);
    let export = decode_model_export(&payload[4..]).expect("export");
    let relaxed = CompiledModel::from_export_with(export, Precision::Relaxed).expect("compile");
    let reference = {
        let payload = encode_model_export(&model);
        let export = decode_model_export(&payload[4..]).expect("export");
        CompiledModel::from_export_with(export, Precision::Relaxed).expect("compile")
    };
    let mut engine = StreamingEncoder::new(relaxed, 1).expect("engine");
    assert_eq!(engine.precision(), Precision::Relaxed);
    let series = Prng::new(0x51).randn(&[t + 3 * 4, 1]);
    let mut hops = 0;
    for i in 0..series.shape()[0] {
        if let Some(update) = engine.push(&[series.data()[i]]).expect("push") {
            assert!(update.exact);
            let window = window_at(&series, update.tick, t);
            let batch = reference.embed(&window).expect("batch embed");
            assert_eq!(batch.z_i.data(), update.z_i.data(), "z_i bits at tick {}", update.tick);
            assert_eq!(batch.z_t.data(), update.z_t.data(), "z_t bits at tick {}", update.tick);
            hops += 1;
        }
    }
    assert_eq!(hops, 4, "one hop per completed patch stride");
}

/// An exact-tier engine reports the exact tier.
#[test]
fn exact_engine_reports_the_exact_tier() {
    let model = fixture(16, 1);
    let engine = StreamingEncoder::new(compile(&model), 1).expect("engine");
    assert_eq!(engine.precision(), Precision::Exact);
}

prop! {
    #![config(cases = 6)]

    /// With `recompute_every = 1` every hop recomputes exact statistics,
    /// so every hop must be bitwise-identical to the batch path — both
    /// the compiled embeddings and the tape anomaly score.
    fn streaming_is_bitwise_identical_to_batch_when_stats_are_exact(
        len_pick in 0usize..3,
        extra_hops in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let t = WINDOW_LENS[len_pick];
        let model = fixture(t, seed % 17);
        let compiled = compile(&model);
        let series = Prng::new(seed ^ 0xA5).randn(&[t + extra_hops * 4, 1]);
        let hops = run_stream(&model, &series, 1);
        assert_eq!(hops.len(), 1 + extra_hops, "one hop per completed patch stride");
        for (update, score) in &hops {
            assert!(update.exact);
            let window = window_at(&series, update.tick, t);
            let batch = compiled.embed(&window).expect("batch embed");
            assert_eq!(batch.z_i.data(), update.z_i.data(), "z_i bits at tick {}", update.tick);
            assert_eq!(batch.z_t.data(), update.z_t.data(), "z_t bits at tick {}", update.tick);
            let tape = anomaly_scores(&model, &window);
            assert_eq!(
                tape.per_window[0].to_bits(),
                score.to_bits(),
                "anomaly score bits at tick {}", update.tick
            );
        }
    }

    /// With a recompute period, intermediate hops normalize with the
    /// incremental f64 statistics: embeddings and scores stay within ε
    /// of the batch path, and exact hops snap back to bitwise equality.
    fn incremental_stats_stay_within_epsilon_and_exact_hops_restore_bits(
        len_pick in 0usize..3,
        recompute_every in 2usize..5,
        seed in 0u64..1_000_000,
    ) {
        let t = WINDOW_LENS[len_pick];
        let model = fixture(t, seed % 13);
        let compiled = compile(&model);
        let hops_total = 2 * recompute_every + 1;
        let series = Prng::new(seed ^ 0x3C).randn(&[t + hops_total * 4, 1]);
        let hops = run_stream(&model, &series, recompute_every);
        let mut saw_inexact = false;
        for (i, (update, score)) in hops.iter().enumerate() {
            assert_eq!(update.exact, i % recompute_every == 0, "exact cadence at hop {i}");
            let window = window_at(&series, update.tick, t);
            let batch = compiled.embed(&window).expect("batch embed");
            let tape = anomaly_scores(&model, &window);
            if update.exact {
                assert_eq!(batch.z_t.data(), update.z_t.data(), "exact hop {i} must be bitwise");
                assert_eq!(tape.per_window[0].to_bits(), score.to_bits());
            } else {
                saw_inexact = true;
                let max_diff = batch
                    .z_t
                    .data()
                    .iter()
                    .zip(update.z_t.data())
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f32, f32::max);
                assert!(max_diff <= EPS, "hop {i} drifted {max_diff} > {EPS}");
                assert!((tape.per_window[0] - score).abs() <= EPS);
            }
        }
        assert!(saw_inexact, "the property must exercise incremental hops");
    }

    /// The entire streaming pipeline is thread-count invariant: the same
    /// tick stream produces identical bytes at 1, 2, and 4 threads.
    fn streaming_bits_do_not_depend_on_thread_count(
        len_pick in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let t = WINDOW_LENS[len_pick];
        let model = fixture(t, seed % 11);
        let series = Prng::new(seed ^ 0x77).randn(&[t + 3 * 4, 1]);
        let run = || {
            run_stream(&model, &series, 2)
                .into_iter()
                .map(|(u, s)| (u.z_i.data().to_vec(), u.z_t.data().to_vec(), s.to_bits()))
                .collect::<Vec<_>>()
        };
        let baseline = pool::with_threads(1, run);
        for threads in [2usize, 4] {
            let got = pool::with_threads(threads, || pool::with_grain(16, run));
            assert_eq!(baseline, got, "stream diverged at {threads} threads");
        }
    }

    /// A cold buffer pool (first run in the process) and a warm one
    /// (every later run) produce identical bytes, warmed or not.
    fn cold_and_warm_arenas_produce_identical_streams(
        seed in 0u64..1_000_000,
    ) {
        let t = 16;
        let model = fixture(t, seed % 7);
        let series = Prng::new(seed ^ 0x5A).randn(&[t + 3 * 4, 1]);
        let reference = run_stream(&model, &series, 2);
        // Second engine: pool now warm from the first run. Third engine:
        // explicitly warmed before any tick arrives.
        let warm_pool = run_stream(&model, &series, 2);
        let mut warmed = StreamingEncoder::new(compile(&model), 2).expect("engine");
        warmed.warm();
        let mut explicit = Vec::new();
        for i in 0..series.shape()[0] {
            if let Some(update) = warmed.push(&[series.data()[i]]).expect("push") {
                let (_, score) = warmed.reconstruction_error(&update).expect("score");
                explicit.push((update, score));
            }
        }
        for (a, b) in reference.iter().zip(&warm_pool).chain(reference.iter().zip(&explicit)) {
            assert_eq!(a.0.z_i.data(), b.0.z_i.data());
            assert_eq!(a.0.z_t.data(), b.0.z_t.data());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    /// The online scorer's first calibration equals the batch
    /// `AnomalyDetector` calibrated on the same warmup scores, and its
    /// verdicts afterwards equal the batch `detect`.
    fn online_calibration_matches_the_batch_detector(
        warmup in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let t = 16;
        let model = fixture(t, seed % 5);
        let series = Prng::new(seed ^ 0xE1).randn(&[t + (warmup + 4) * 4, 1]);
        let mut engine = StreamingEncoder::new(compile(&model), 2).expect("engine");
        let mut scorer = OnlineAnomalyScorer::new(0.75, warmup, None).expect("scorer");
        let mut scores = Vec::new();
        let mut verdicts = Vec::new();
        for i in 0..series.shape()[0] {
            if let Some(update) = engine.push(&[series.data()[i]]).expect("push") {
                let tick = scorer.observe(&engine, &update).expect("observe");
                scores.push(tick.score);
                verdicts.push(tick.anomalous);
            }
        }
        let detector = AnomalyDetector::calibrate(&scores[..warmup], 0.75);
        assert_eq!(
            scorer.threshold().expect("calibrated after warmup").to_bits(),
            detector.threshold().to_bits()
        );
        let batch_verdicts = detector.detect(&scores[warmup..]);
        assert_eq!(&verdicts[warmup..], &batch_verdicts.iter().copied().map(Some).collect::<Vec<_>>()[..]);
    }

    /// The rolling forecaster reproduces the batch ridge readout bit for
    /// bit, and RevIN de-normalization uses the same window-stat
    /// arithmetic as the batch pipeline.
    fn rolling_forecaster_matches_the_batch_readout(
        horizon in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        let t = 16;
        let model = fixture(t, seed % 3);
        let series = Prng::new(seed ^ 0x9D).randn(&[t + 2 * 4, 1]);
        let hops = run_stream(&model, &series, 1);
        let (update, _) = hops.last().expect("at least one hop");
        let k = update.z_t.shape()[1] * update.z_t.shape()[2];
        // A ridge probe fitted on synthetic data stands in for the batch
        // readout — the contract is arithmetic, not accuracy.
        let feats = Prng::new(seed ^ 0x11).randn(&[8, k]);
        let targets = Prng::new(seed ^ 0x22).randn(&[8, horizon]);
        let probe = RidgeProbe::fit(&feats, &targets, 1.0);
        let forecaster = RollingForecaster::from_probe(&probe).expect("forecaster");
        assert_eq!(forecaster.horizon(), horizon);

        let flat = update.z_t.reshape(&[1, k]).expect("flatten");
        let batch_pred = probe.predict(&flat);
        let stream_pred = forecaster.refresh(update).expect("refresh");
        assert_eq!(batch_pred.data(), stream_pred.data(), "normalized-space bits");

        // De-normalized: the engine's exact-hop stats are the batch
        // window stats, so pred·σ + μ must match the batch arithmetic.
        let mut engine = StreamingEncoder::new(compile(&model), 1).expect("engine");
        let mut last = None;
        for i in 0..series.shape()[0] {
            if let Some(u) = engine.push(&[series.data()[i]]).expect("push") {
                last = Some(u);
            }
        }
        let last = last.expect("hop");
        let window = window_at(&series, last.tick, t).reshape(&[t, 1]).expect("2d");
        let stats = timedrl_data::InstanceStats::compute(&window);
        let denorm = forecaster.refresh_denormalized(&engine, &last).expect("denorm");
        let manual = forecaster
            .refresh(&last)
            .expect("refresh")
            .scale(stats.std.data()[0])
            .add_scalar(stats.mean.data()[0]);
        assert_eq!(manual.data(), denorm.data(), "RevIN de-normalization bits");
    }
}
