//! Edge cases for the sliding-window ring and its incremental
//! statistics: degenerate capacities, exact-wraparound ticks, streams
//! shorter than one patch, and the Welford drift bound under an
//! adversarial million-tick stream.

use timedrl::{decode_model_export, encode_model_export, TimeDrl, TimeDrlConfig};
use timedrl_data::{InstanceStats, PatchConfig};
use timedrl_serve::CompiledModel;
use timedrl_stream::{SlidingWindow, StreamError, StreamingEncoder};
use timedrl_tensor::Prng;

fn compile(model: &TimeDrl) -> CompiledModel {
    let payload = encode_model_export(model);
    CompiledModel::from_export(decode_model_export(&payload[4..]).expect("export"))
        .expect("compile")
}

#[test]
fn capacity_one_window_tracks_the_latest_sample() {
    let mut w = SlidingWindow::new(1, 2).unwrap();
    let mut mean = [0.0f32; 2];
    let mut std = [0.0f32; 2];
    for i in 0..10 {
        w.push(&[i as f32, -(i as f32)]);
        assert_eq!(w.len(), 1);
        assert!(w.is_full());
        let m = w.materialize();
        assert_eq!(m.data(), &[i as f32, -(i as f32)]);
        // A one-sample window has zero variance: mean is the sample,
        // std collapses to sqrt(eps) — for the incremental and the
        // exact path alike.
        w.write_running_stats(&mut mean, &mut std);
        let exact = w.exact_stats();
        assert_eq!(mean[0], i as f32);
        assert_eq!(exact.mean.data(), &[i as f32, -(i as f32)]);
        assert!((std[0] - exact.std.data()[0]).abs() < 1e-7);
    }
    assert_eq!(w.ticks(), 10);
}

#[test]
fn exact_wraparound_ticks_keep_logical_order() {
    let cap = 5;
    let mut w = SlidingWindow::new(cap, 1).unwrap();
    // Push exactly 2 and then 3 full revolutions of the ring; at every
    // multiple of the capacity, the head is back at physical row 0 and
    // the logical order must still be oldest-first.
    for i in 0..(2 * cap) {
        w.push(&[i as f32]);
    }
    let m = w.materialize();
    let expect: Vec<f32> = (cap..2 * cap).map(|i| i as f32).collect();
    assert_eq!(m.data(), &expect[..]);
    for i in (2 * cap)..(3 * cap) {
        w.push(&[i as f32]);
    }
    let m = w.materialize();
    let expect: Vec<f32> = (2 * cap..3 * cap).map(|i| i as f32).collect();
    assert_eq!(m.data(), &expect[..]);
    // One more push makes the window straddle the wrap again.
    w.push(&[99.0]);
    let m = w.materialize();
    assert_eq!(m.data(), &[11.0, 12.0, 13.0, 14.0, 99.0]);
}

#[test]
fn engine_stays_silent_until_one_full_window_arrived() {
    let mut cfg = TimeDrlConfig::forecasting(16);
    cfg.patch = PatchConfig::non_overlapping(4);
    cfg.d_model = 8;
    cfg.n_heads = 2;
    cfg.d_ff = 16;
    cfg.n_layers = 1;
    let model = TimeDrl::new(cfg);
    let mut engine = StreamingEncoder::new(compile(&model), 1).unwrap();
    let series = Prng::new(3).randn(&[16, 1]);
    // Fewer samples than one patch, then fewer than a window: no hops.
    for i in 0..15 {
        assert!(engine.push(&[series.data()[i]]).unwrap().is_none(), "tick {i} must buffer");
    }
    // The 16th sample completes the window and fires the first hop.
    let update = engine.push(&[series.data()[15]]).unwrap().expect("first hop");
    assert_eq!(update.tick, 16);
    assert!(update.exact);
    assert_eq!(engine.hops(), 1);
}

#[test]
fn engine_rejects_wrong_channel_count_as_a_value() {
    let mut cfg = TimeDrlConfig::forecasting(8);
    cfg.patch = PatchConfig::non_overlapping(4);
    cfg.d_model = 8;
    cfg.n_heads = 2;
    cfg.d_ff = 16;
    cfg.n_layers = 1;
    let model = TimeDrl::new(cfg);
    let mut engine = StreamingEncoder::new(compile(&model), 1).unwrap();
    let err = engine.push(&[1.0, 2.0]).err().expect("two channels must be rejected");
    match err {
        StreamError::BadSample { expected: 1, got: 2 } => {}
        other => panic!("expected BadSample, got: {other}"),
    }
    assert_eq!(engine.ticks(), 0, "a rejected sample must not advance the stream");
}

#[test]
fn welford_drift_stays_bounded_over_a_million_adversarial_ticks() {
    // Adversarial magnitudes: huge values alternating with tiny ones
    // maximize cancellation in the remove-one update. The incremental
    // stats may drift between recomputes, but a periodic
    // reset_stats_from_buffer must keep the error within ε of the
    // exact batch statistics at all times.
    let cap = 64;
    let mut w = SlidingWindow::new(cap, 2).unwrap();
    let mut rng = Prng::new(42);
    let noise = rng.randn(&[1024, 2]);
    let mut mean = [0.0f32; 2];
    let mut std = [0.0f32; 2];
    let mut max_rel = 0.0f32;
    const RESET_EVERY: u64 = 256;
    for i in 0u64..1_000_000 {
        let base = noise.data()[(i as usize % 1024) * 2];
        let spike = if i % 3 == 0 { 1e6 } else { 1e-3 };
        let x = [base * spike, base - spike];
        w.push(&x);
        if w.ticks() % RESET_EVERY == 0 {
            w.reset_stats_from_buffer();
        }
        if i % 1000 == 999 {
            w.write_running_stats(&mut mean, &mut std);
            let exact = w.exact_stats();
            for c in 0..2 {
                let rel = (std[c] - exact.std.data()[c]).abs() / exact.std.data()[c].max(1e-12);
                max_rel = max_rel.max(rel);
            }
        }
    }
    assert!(
        max_rel <= 1e-3,
        "incremental std drifted {max_rel} relative to exact stats"
    );
    // And immediately after a reset the accumulators agree to f32
    // rounding with the exact statistics.
    w.reset_stats_from_buffer();
    w.write_running_stats(&mut mean, &mut std);
    let exact = w.exact_stats();
    for c in 0..2 {
        let rel = (std[c] - exact.std.data()[c]).abs() / exact.std.data()[c].max(1e-12);
        assert!(rel <= 1e-5, "post-reset std still off by {rel}");
        let mean_err = (mean[c] - exact.mean.data()[c]).abs();
        let scale = exact.std.data()[c].max(1e-12);
        assert!(mean_err / scale <= 1e-5, "post-reset mean off by {mean_err}");
    }
    let _ = InstanceStats::compute(&w.materialize());
}
