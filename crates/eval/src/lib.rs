//! # timedrl-eval
//!
//! Evaluation infrastructure for the TimeDRL reproduction: the metrics of
//! Eqs. 20–27 (MSE, MAE, accuracy, macro-F1, Cohen's κ) and the linear
//! probes implementing the paper's linear-evaluation protocol — a
//! closed-form ridge readout for forecasting and a logistic readout for
//! classification, both over frozen encoder embeddings.

#![warn(missing_docs)]

pub mod anisotropy;
pub mod knn;
pub mod linalg;
pub mod metrics;
pub mod pca;
pub mod probe;

pub use anisotropy::{mean_pairwise_cosine, participation_ratio};
pub use knn::KnnProbe;
pub use linalg::cholesky_solve;
pub use metrics::{classification_report, mae, mse, ClassificationReport};
pub use pca::Pca;
pub use probe::{LogisticConfig, LogisticProbe, RidgeProbe};
