//! Linear probes implementing the paper's linear-evaluation protocol:
//! a frozen encoder's embeddings feed a single trainable linear layer.
//!
//! * Forecasting probes use **closed-form ridge regression** — the exact
//!   minimizer of the linear layer's MSE objective, removing SGD noise
//!   from the method comparison.
//! * Classification probes use **multinomial logistic regression** trained
//!   with AdamW on our own autograd (a softmax linear layer, exactly the
//!   "attach a linear layer" protocol of Section V-B).

use crate::linalg::cholesky_solve;
use timedrl_nn::{AdamW, Linear, Module, Optimizer};
use timedrl_tensor::{matmul, matmul_tn, NdArray, Prng, Var};

/// A fitted ridge-regression readout `y ≈ x W + b`.
#[derive(Debug, Clone)]
pub struct RidgeProbe {
    weight: NdArray,
    bias: NdArray,
}

impl RidgeProbe {
    /// Fits ridge regression on features `x` (`[N, D]`) and targets `y`
    /// (`[N, K]`) with L2 strength `lambda`. A bias column is handled by
    /// centering.
    pub fn fit(x: &NdArray, y: &NdArray, lambda: f32) -> Self {
        assert_eq!(x.rank(), 2, "features must be [N, D]");
        assert_eq!(y.rank(), 2, "targets must be [N, K]");
        assert_eq!(x.shape()[0], y.shape()[0], "sample count mismatch");
        let d = x.shape()[1];
        let x_mean = x.mean_axis(0, true);
        let y_mean = y.mean_axis(0, true);
        let xc = x.sub(&x_mean);
        let yc = y.sub(&y_mean);
        // W = (Xc^T Xc + λ I)^{-1} Xc^T Yc — both Xᵀ· products read Xc
        // through strided packing instead of materializing the transpose.
        let gram = matmul_tn(&xc, &xc).expect("gram");
        let reg = NdArray::eye(d).scale(lambda.max(1e-6));
        let rhs = matmul_tn(&xc, &yc).expect("xty");
        let weight = cholesky_solve(&gram.add(&reg), &rhs);
        // b = y_mean - x_mean W
        let bias = y_mean.sub(&matmul(&x_mean, &weight).expect("bias"));
        Self { weight, bias: bias.squeeze(0) }
    }

    /// Predicts targets for features `x` (`[N, D]`).
    pub fn predict(&self, x: &NdArray) -> NdArray {
        matmul(x, &self.weight).expect("predict").add(&self.bias)
    }

    /// Readout weight `[D, K]`.
    pub fn weight(&self) -> &NdArray {
        &self.weight
    }

    /// Readout bias `[K]`.
    pub fn bias(&self) -> &NdArray {
        &self.bias
    }
}

/// A multinomial logistic-regression readout trained with AdamW.
pub struct LogisticProbe {
    layer: Linear,
    n_classes: usize,
}

/// Training hyperparameters for [`LogisticProbe`].
#[derive(Debug, Clone, Copy)]
pub struct LogisticConfig {
    /// Optimizer learning rate.
    pub lr: f32,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// AdamW weight decay.
    pub weight_decay: f32,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self { lr: 0.05, epochs: 200, weight_decay: 1e-4 }
    }
}

impl LogisticProbe {
    /// Fits a softmax linear classifier on features `x` (`[N, D]`) and
    /// integer labels.
    pub fn fit(x: &NdArray, labels: &[usize], n_classes: usize, cfg: &LogisticConfig, seed: u64) -> Self {
        assert_eq!(x.shape()[0], labels.len(), "sample count mismatch");
        let mut rng = Prng::new(seed);
        let layer = Linear::new(x.shape()[1], n_classes, &mut rng);
        let mut opt = AdamW::new(layer.parameters(), cfg.lr, cfg.weight_decay);
        let xv = Var::constant(x.clone());
        for _ in 0..cfg.epochs {
            opt.zero_grad();
            let logits = layer.forward(&xv);
            logits.cross_entropy(labels).backward();
            opt.step();
        }
        Self { layer, n_classes }
    }

    /// Predicts class labels for features `x` (`[N, D]`).
    pub fn predict(&self, x: &NdArray) -> Vec<usize> {
        self.layer.forward(&Var::constant(x.clone())).to_array().argmax_lastdim()
    }

    /// Class-probability matrix `[N, K]`.
    pub fn predict_proba(&self, x: &NdArray) -> NdArray {
        self.layer.forward(&Var::constant(x.clone())).to_array().softmax_lastdim()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Consumes the probe, returning its trained linear layer (so a
    /// fine-tuning head can start from the linear-probe solution — the
    /// "LP" in LP-FT).
    pub fn into_linear(self) -> Linear {
        self.layer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{classification_report, mse};

    #[test]
    fn ridge_recovers_linear_map() {
        let mut rng = Prng::new(0);
        let x = rng.randn(&[200, 5]);
        let w_true = rng.randn(&[5, 3]);
        let y = matmul(&x, &w_true).unwrap().add_scalar(0.7);
        let probe = RidgeProbe::fit(&x, &y, 1e-4);
        let pred = probe.predict(&x);
        assert!(mse(&pred, &y) < 1e-4);
    }

    #[test]
    fn ridge_bias_handles_offsets() {
        let mut rng = Prng::new(1);
        let x = rng.randn(&[100, 2]);
        let y = NdArray::full(&[100, 1], 42.0); // constant target
        let probe = RidgeProbe::fit(&x, &y, 1.0);
        let pred = probe.predict(&rng.randn(&[10, 2]));
        for &v in pred.data() {
            assert!((v - 42.0).abs() < 1.0);
        }
    }

    #[test]
    fn heavier_regularization_shrinks_weights() {
        let mut rng = Prng::new(2);
        let x = rng.randn(&[50, 4]);
        let y = rng.randn(&[50, 2]);
        let light = RidgeProbe::fit(&x, &y, 1e-3);
        let heavy = RidgeProbe::fit(&x, &y, 1e3);
        assert!(heavy.weight().l2_norm() < light.weight().l2_norm() * 0.5);
    }

    #[test]
    fn ridge_generalizes_under_noise() {
        let mut rng = Prng::new(3);
        let w_true = rng.randn(&[6, 1]);
        let x_train = rng.randn(&[300, 6]);
        let noise = rng.randn(&[300, 1]).scale(0.1);
        let y_train = matmul(&x_train, &w_true).unwrap().add(&noise);
        let probe = RidgeProbe::fit(&x_train, &y_train, 0.1);
        let x_test = rng.randn(&[100, 6]);
        let y_test = matmul(&x_test, &w_true).unwrap();
        assert!(mse(&probe.predict(&x_test), &y_test) < 0.05);
    }

    #[test]
    fn logistic_separates_gaussian_blobs() {
        let mut rng = Prng::new(4);
        let n = 120;
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 3;
            let center = [(0.0f32, 0.0f32), (4.0, 0.0), (0.0, 4.0)][class];
            feats.push(center.0 + rng.normal_with(0.0, 0.5));
            feats.push(center.1 + rng.normal_with(0.0, 0.5));
            labels.push(class);
        }
        let x = NdArray::from_vec(&[n, 2], feats).unwrap();
        let probe = LogisticProbe::fit(&x, &labels, 3, &LogisticConfig::default(), 7);
        let pred = probe.predict(&x);
        let report = classification_report(&pred, &labels, 3);
        assert!(report.accuracy > 0.95, "accuracy {}", report.accuracy);
    }

    #[test]
    fn logistic_proba_rows_sum_to_one() {
        let mut rng = Prng::new(5);
        let x = rng.randn(&[20, 3]);
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let probe = LogisticProbe::fit(&x, &labels, 2, &LogisticConfig { epochs: 10, ..Default::default() }, 8);
        let proba = probe.predict_proba(&x);
        for row in proba.data().chunks(2) {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }
}
