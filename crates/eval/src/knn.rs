//! k-nearest-neighbour classification on frozen embeddings — the second
//! standard SSL evaluation protocol besides the linear probe (used across
//! the contrastive-learning literature as a hyperparameter-free check
//! that embedding *geometry*, not just linear separability, is good).

use timedrl_tensor::NdArray;

/// A fitted (memorized) kNN classifier over `[N, D]` embeddings.
pub struct KnnProbe {
    train: NdArray,
    labels: Vec<usize>,
    k: usize,
}

impl KnnProbe {
    /// Memorizes the training embeddings. `k` is clamped to the training
    /// size.
    pub fn fit(train: &NdArray, labels: &[usize], k: usize) -> Self {
        assert_eq!(train.rank(), 2, "expects [N, D] embeddings");
        assert_eq!(train.shape()[0], labels.len(), "label count mismatch");
        assert!(!labels.is_empty(), "empty training set");
        Self { train: train.clone(), labels: labels.to_vec(), k: k.clamp(1, labels.len()) }
    }

    /// Predicts by inverse-distance-weighted vote over the `k` nearest
    /// Euclidean neighbours.
    pub fn predict(&self, test: &NdArray) -> Vec<usize> {
        assert_eq!(test.rank(), 2, "expects [N, D] embeddings");
        let d = self.train.shape()[1];
        assert_eq!(test.shape()[1], d, "embedding width mismatch");
        let n_train = self.train.shape()[0];

        (0..test.shape()[0])
            .map(|ti| {
                let mut dists: Vec<(f32, usize)> = (0..n_train)
                    .map(|i| {
                        let sq: f32 = (0..d)
                            .map(|j| {
                                let diff =
                                    self.train.data()[i * d + j] - test.data()[ti * d + j];
                                diff * diff
                            })
                            .sum();
                        (sq, self.labels[i])
                    })
                    .collect();
                dists.sort_by(|a, b| a.0.total_cmp(&b.0));
                let mut votes: std::collections::HashMap<usize, f32> =
                    std::collections::HashMap::new();
                for &(sq, label) in dists.iter().take(self.k) {
                    *votes.entry(label).or_default() += 1.0 / (sq.sqrt() + 1e-6);
                }
                votes
                    .into_iter()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(label, _)| label)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// The configured neighbour count.
    pub fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::classification_report;
    use timedrl_tensor::Prng;

    fn blobs(per: usize, seed: u64) -> (NdArray, Vec<usize>) {
        let mut rng = Prng::new(seed);
        let centers = [(0.0f32, 0.0f32), (6.0, 0.0), (0.0, 6.0)];
        let n = per * 3;
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..per {
                data.push(cx + rng.normal_with(0.0, 0.4));
                data.push(cy + rng.normal_with(0.0, 0.4));
                labels.push(c);
            }
        }
        (NdArray::from_vec(&[n, 2], data).unwrap(), labels)
    }

    #[test]
    fn classifies_clean_blobs() {
        let (train, labels) = blobs(30, 0);
        let (test, truth) = blobs(10, 1);
        let probe = KnnProbe::fit(&train, &labels, 5);
        let pred = probe.predict(&test);
        let r = classification_report(&pred, &truth, 3);
        assert!(r.accuracy > 0.95, "accuracy {}", r.accuracy);
    }

    #[test]
    fn k_one_memorizes_training_set() {
        let (train, labels) = blobs(15, 2);
        let probe = KnnProbe::fit(&train, &labels, 1);
        let pred = probe.predict(&train);
        assert_eq!(pred, labels, "1-NN on the training set is exact");
    }

    #[test]
    fn k_clamped_to_training_size() {
        let (train, labels) = blobs(2, 3);
        let probe = KnnProbe::fit(&train, &labels, 999);
        assert_eq!(probe.k(), 6);
    }

    #[test]
    fn inverse_distance_weighting_prefers_closer_class() {
        // 1 very close neighbour of class 0 vs 2 far neighbours of class 1.
        let train = NdArray::from_vec(&[3, 1], vec![0.1, 5.0, 5.1]).unwrap();
        let probe = KnnProbe::fit(&train, &[0, 1, 1], 3);
        let test = NdArray::from_vec(&[1, 1], vec![0.0]).unwrap();
        assert_eq!(probe.predict(&test), vec![0]);
    }
}
