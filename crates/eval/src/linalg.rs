//! Dense linear-algebra support for the closed-form ridge probe: a
//! Cholesky solver for symmetric positive-definite systems.

use timedrl_tensor::NdArray;

/// Solves `A X = B` for symmetric positive-definite `A` (`[n, n]`) and
/// right-hand side `B` (`[n, m]`) via Cholesky decomposition.
///
/// # Panics
/// Panics if `A` is not SPD (within f64 working precision) or shapes
/// disagree.
pub fn cholesky_solve(a: &NdArray, b: &NdArray) -> NdArray {
    let n = a.shape()[0];
    assert_eq!(a.shape(), &[n, n], "A must be square");
    assert_eq!(b.shape()[0], n, "B row count mismatch");
    let m = b.shape()[1];

    // Factor A = L L^T in f64 for stability.
    let ad: Vec<f64> = a.data().iter().map(|&v| v as f64).collect();
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = ad[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                assert!(sum > 0.0, "matrix not positive definite at pivot {i} (sum {sum})");
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }

    // Solve L Y = B (forward), then L^T X = Y (backward), per column.
    let bd: Vec<f64> = b.data().iter().map(|&v| v as f64).collect();
    let mut x = vec![0.0f64; n * m];
    for col in 0..m {
        // Forward substitution.
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut sum = bd[i * m + col];
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        // Backward substitution with L^T.
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= l[k * n + i] * x[k * m + col];
            }
            x[i * m + col] = sum / l[i * n + i];
        }
    }
    NdArray::from_vec(&[n, m], x.into_iter().map(|v| v as f32).collect()).expect("solution shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_tensor::{matmul, matmul_nt, Prng};

    #[test]
    fn solves_identity() {
        let b = NdArray::from_fn(&[3, 2], |i| i as f32);
        let x = cholesky_solve(&NdArray::eye(3), &b);
        assert!(x.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn solves_random_spd_system() {
        let mut rng = Prng::new(0);
        let g = rng.randn(&[5, 5]);
        // A = G G^T + I is SPD.
        let a = matmul_nt(&g, &g).unwrap().add(&NdArray::eye(5));
        let x_true = rng.randn(&[5, 3]);
        let b = matmul(&a, &x_true).unwrap();
        let x = cholesky_solve(&a, &b);
        assert!(x.max_abs_diff(&x_true) < 1e-3, "err {}", x.max_abs_diff(&x_true));
    }

    #[test]
    fn residual_is_small() {
        let mut rng = Prng::new(1);
        let g = rng.randn(&[8, 8]);
        let a = matmul_nt(&g, &g).unwrap().add(&NdArray::eye(8).scale(0.5));
        let b = rng.randn(&[8, 4]);
        let x = cholesky_solve(&a, &b);
        let residual = matmul(&a, &x).unwrap().max_abs_diff(&b);
        assert!(residual < 1e-3, "residual {residual}");
    }

    #[test]
    #[should_panic(expected = "not positive definite")]
    fn rejects_indefinite_matrix() {
        let a = NdArray::from_vec(&[2, 2], vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, -1
        cholesky_solve(&a, &NdArray::ones(&[2, 1]));
    }
}
