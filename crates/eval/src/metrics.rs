//! Evaluation metrics, implementing Eqs. 20–27 of the paper.

use timedrl_tensor::NdArray;

/// Mean squared error (Eq. 20) between arrays of identical shape.
pub fn mse(pred: &NdArray, truth: &NdArray) -> f32 {
    assert_eq!(pred.shape(), truth.shape(), "mse shape mismatch");
    pred.zip_map(truth, |a, b| (a - b) * (a - b)).expect("mse shapes").mean()
}

/// Mean absolute error (Eq. 21).
pub fn mae(pred: &NdArray, truth: &NdArray) -> f32 {
    assert_eq!(pred.shape(), truth.shape(), "mae shape mismatch");
    pred.zip_map(truth, |a, b| (a - b).abs()).expect("mae shapes").mean()
}

/// Classification metrics bundle: accuracy, macro-F1, and Cohen's κ, as
/// reported in Table V (all in percent except κ which Table V also scales
/// to percent — see [`ClassificationReport::as_percentages`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassificationReport {
    /// Accuracy in `[0, 1]` (Eq. 22).
    pub accuracy: f32,
    /// Macro-averaged F1 in `[0, 1]` (Eqs. 23–25).
    pub macro_f1: f32,
    /// Cohen's kappa in `[-1, 1]` (Eqs. 26–27).
    pub kappa: f32,
}

impl ClassificationReport {
    /// Scales all three metrics by 100, matching the paper's table format.
    pub fn as_percentages(&self) -> (f32, f32, f32) {
        (self.accuracy * 100.0, self.macro_f1 * 100.0, self.kappa * 100.0)
    }
}

/// Computes accuracy, macro-F1, and Cohen's κ from predicted and true
/// integer labels.
///
/// # Panics
/// Panics on empty input, mismatched lengths, or labels `>= n_classes`.
#[allow(clippy::needless_range_loop)] // confusion-matrix loops read clearest indexed
pub fn classification_report(pred: &[usize], truth: &[usize], n_classes: usize) -> ClassificationReport {
    assert!(!pred.is_empty(), "empty prediction set");
    assert_eq!(pred.len(), truth.len(), "label count mismatch");
    let n = pred.len() as f64;

    // Confusion matrix: rows = truth, cols = prediction.
    let mut confusion = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &t) in pred.iter().zip(truth.iter()) {
        assert!(p < n_classes && t < n_classes, "label out of range");
        confusion[t][p] += 1;
    }

    let correct: usize = (0..n_classes).map(|c| confusion[c][c]).sum();
    let accuracy = correct as f64 / n;

    // Macro-F1: unweighted mean of per-class F1 (classes absent from both
    // pred and truth are skipped, matching scikit-learn's behaviour on
    // macro averaging over observed labels).
    let mut f1_sum = 0.0f64;
    let mut f1_classes = 0usize;
    for c in 0..n_classes {
        let tp = confusion[c][c] as f64;
        let fp: f64 = (0..n_classes).filter(|&t| t != c).map(|t| confusion[t][c] as f64).sum();
        let fn_: f64 = (0..n_classes).filter(|&p| p != c).map(|p| confusion[c][p] as f64).sum();
        if tp + fp + fn_ == 0.0 {
            continue;
        }
        let f1 = if tp == 0.0 { 0.0 } else { 2.0 * tp / (2.0 * tp + fp + fn_) };
        f1_sum += f1;
        f1_classes += 1;
    }
    let macro_f1 = if f1_classes > 0 { f1_sum / f1_classes as f64 } else { 0.0 };

    // Cohen's kappa via marginals (multi-class generalization of Eq. 27).
    let pe: f64 = (0..n_classes)
        .map(|c| {
            let row: usize = confusion[c].iter().sum();
            let col: usize = (0..n_classes).map(|t| confusion[t][c]).sum();
            (row as f64 / n) * (col as f64 / n)
        })
        .sum();
    let kappa = if (1.0 - pe).abs() < 1e-12 { 0.0 } else { (accuracy - pe) / (1.0 - pe) };

    ClassificationReport {
        accuracy: accuracy as f32,
        macro_f1: macro_f1 as f32,
        kappa: kappa as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_mae_known_values() {
        let p = NdArray::from_slice(&[1.0, 2.0, 3.0]);
        let t = NdArray::from_slice(&[1.0, 0.0, 0.0]);
        assert!((mse(&p, &t) - (0.0 + 4.0 + 9.0) / 3.0).abs() < 1e-6);
        assert!((mae(&p, &t) - (0.0 + 2.0 + 3.0) / 3.0).abs() < 1e-6);
    }

    #[test]
    fn perfect_prediction() {
        let r = classification_report(&[0, 1, 2, 1], &[0, 1, 2, 1], 3);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.macro_f1, 1.0);
        assert_eq!(r.kappa, 1.0);
    }

    #[test]
    fn chance_level_kappa_near_zero() {
        // Predicting a constant on a balanced binary problem: accuracy 0.5,
        // kappa exactly 0.
        let pred = vec![0; 100];
        let truth: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let r = classification_report(&pred, &truth, 2);
        assert!((r.accuracy - 0.5).abs() < 1e-6);
        assert!(r.kappa.abs() < 1e-6);
    }

    #[test]
    fn worse_than_chance_negative_kappa() {
        // Systematically inverted predictions.
        let truth: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let pred: Vec<usize> = truth.iter().map(|&t| 1 - t).collect();
        let r = classification_report(&pred, &truth, 2);
        assert_eq!(r.accuracy, 0.0);
        assert!((r.kappa + 1.0).abs() < 1e-6);
    }

    #[test]
    fn macro_f1_punishes_minority_failure() {
        // 90 of class 0 all correct; 10 of class 1 all wrong.
        let truth: Vec<usize> = (0..100).map(|i| usize::from(i >= 90)).collect();
        let pred = vec![0usize; 100];
        let r = classification_report(&pred, &truth, 2);
        assert!((r.accuracy - 0.9).abs() < 1e-6);
        // Class 0 F1 = 2*90/(180+10) ≈ 0.947; class 1 F1 = 0.
        assert!((r.macro_f1 - 0.947 / 2.0).abs() < 0.01);
        assert!(r.kappa.abs() < 1e-6, "constant predictor gets zero kappa");
    }

    #[test]
    fn kappa_matches_binary_formula() {
        // Hand-computed binary example (TP=40, FN=10, FP=20, TN=30).
        let mut pred = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..40 {
            pred.push(1);
            truth.push(1);
        }
        for _ in 0..10 {
            pred.push(0);
            truth.push(1);
        }
        for _ in 0..20 {
            pred.push(1);
            truth.push(0);
        }
        for _ in 0..30 {
            pred.push(0);
            truth.push(0);
        }
        let r = classification_report(&pred, &truth, 2);
        let acc = 0.7f64;
        let pe = (50.0 / 100.0) * (60.0 / 100.0) + (50.0 / 100.0) * (40.0 / 100.0);
        let expected = ((acc - pe) / (1.0 - pe)) as f32;
        assert!((r.kappa - expected).abs() < 1e-5);
    }

    #[test]
    fn percentages_scale() {
        let r = ClassificationReport { accuracy: 0.64, macro_f1: 0.6377, kappa: 0.2826 };
        let (a, f, k) = r.as_percentages();
        assert!((a - 64.0).abs() < 1e-4);
        assert!((f - 63.77).abs() < 1e-2);
        assert!((k - 28.26).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn mismatched_lengths_panic() {
        classification_report(&[0], &[0, 1], 2);
    }
}
