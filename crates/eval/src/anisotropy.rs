//! Anisotropy diagnostics for embedding spaces.
//!
//! The paper's central motivation (Section I, Fig. 1): deriving
//! instance-level embeddings from timestamp-level ones by pooling confines
//! them to "a narrow cone region in the embedding space". The standard
//! quantitative proxy for this — used by the representation-degeneration
//! literature the paper cites (refs. 18–20) — is the expected pairwise
//! cosine similarity: isotropic embeddings score near 0, collapsed cones
//! near 1.

use timedrl_tensor::NdArray;

/// Mean pairwise cosine similarity over all distinct row pairs of an
/// `[N, D]` embedding matrix. Returns 0 for fewer than two rows.
pub fn mean_pairwise_cosine(z: &NdArray) -> f32 {
    assert_eq!(z.rank(), 2, "expects [N, D] embeddings");
    let n = z.shape()[0];
    let d = z.shape()[1];
    if n < 2 {
        return 0.0;
    }
    // Normalize rows once, then the pair sum is ||Σ ẑ_i||² − n over n(n−1).
    let mut sum_vec = vec![0.0f64; d];
    for i in 0..n {
        let row = &z.data()[i * d..(i + 1) * d];
        let norm = row.iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt().max(1e-12);
        for (s, &v) in sum_vec.iter_mut().zip(row) {
            *s += v as f64 / norm;
        }
    }
    let total_sq: f64 = sum_vec.iter().map(|&v| v * v).sum();
    ((total_sq - n as f64) / (n as f64 * (n - 1) as f64)) as f32
}

/// Effective dimensionality via the participation ratio of per-dimension
/// variances: `(Σλ)² / Σλ²`, in `[1, D]`. Low values mean variance is
/// concentrated in few directions — another face of anisotropy.
pub fn participation_ratio(z: &NdArray) -> f32 {
    assert_eq!(z.rank(), 2, "expects [N, D] embeddings");
    let variances = z.var_axis(0, false);
    let sum: f64 = variances.data().iter().map(|&v| v as f64).sum();
    let sum_sq: f64 = variances.data().iter().map(|&v| (v as f64).powi(2)).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    ((sum * sum) / sum_sq) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_tensor::{NdArray, Prng};

    #[test]
    fn isotropic_gaussian_is_near_zero() {
        let z = Prng::new(0).randn(&[200, 16]);
        let c = mean_pairwise_cosine(&z);
        assert!(c.abs() < 0.05, "isotropic cosine {c}");
    }

    #[test]
    fn collapsed_cone_is_near_one() {
        // All rows = shared direction + tiny noise.
        let mut rng = Prng::new(1);
        let base = rng.randn(&[1, 16]);
        let z = base.broadcast_to(&[100, 16]).unwrap().add(&rng.randn(&[100, 16]).scale(0.01));
        let c = mean_pairwise_cosine(&z);
        assert!(c > 0.95, "cone cosine {c}");
    }

    #[test]
    fn matches_naive_computation() {
        let mut rng = Prng::new(2);
        let z = rng.randn(&[10, 4]);
        let fast = mean_pairwise_cosine(&z);
        let mut naive = 0.0f64;
        let mut pairs = 0usize;
        for i in 0..10 {
            for j in 0..10 {
                if i == j {
                    continue;
                }
                let a = &z.data()[i * 4..(i + 1) * 4];
                let b = &z.data()[j * 4..(j + 1) * 4];
                let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
                let na: f32 = a.iter().map(|&v| v * v).sum::<f32>().sqrt();
                let nb: f32 = b.iter().map(|&v| v * v).sum::<f32>().sqrt();
                naive += (dot / (na * nb)) as f64;
                pairs += 1;
            }
        }
        let naive = (naive / pairs as f64) as f32;
        assert!((fast - naive).abs() < 1e-4, "{fast} vs {naive}");
    }

    #[test]
    fn participation_ratio_bounds() {
        let mut rng = Prng::new(3);
        // Full-rank isotropic: PR near D.
        let iso = rng.randn(&[500, 8]);
        let pr = participation_ratio(&iso);
        assert!(pr > 6.0, "isotropic PR {pr}");
        // Variance concentrated in one coordinate: PR near 1. (The metric
        // is axis-aligned — it reads per-dimension variances, not
        // principal components — so the degenerate direction must be a
        // coordinate axis for the bound to be tight.)
        let coeffs = rng.randn(&[100, 1]);
        let mut axis = NdArray::zeros(&[1, 8]);
        axis.set(&[0, 0], 1.0);
        let rank1 = coeffs.mul(&axis);
        let pr1 = participation_ratio(&rank1);
        assert!(pr1 < 1.5, "rank-1 PR {pr1}");
    }

    #[test]
    fn single_row_is_zero() {
        let z = Prng::new(4).randn(&[1, 8]);
        assert_eq!(mean_pairwise_cosine(&z), 0.0);
    }
}
