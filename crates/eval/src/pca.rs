//! Principal-component projection of embeddings, via power iteration with
//! deflation — for inspecting representation spaces (e.g. projecting
//! `[CLS]` embeddings to 2-D and plotting with the bench crate's terminal
//! charts).

use timedrl_tensor::{matmul, matmul_nt, matmul_tn, NdArray, Prng};

/// A fitted PCA projection.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: NdArray,
    /// Components `[k, D]`, rows orthonormal, ordered by explained
    /// variance.
    components: NdArray,
    /// Variance captured by each component.
    explained: Vec<f32>,
}

impl Pca {
    /// Fits the top-`k` principal components of `[N, D]` data by power
    /// iteration on the covariance (via the Gram trick on centered data).
    pub fn fit(x: &NdArray, k: usize, rng: &mut Prng) -> Self {
        assert_eq!(x.rank(), 2, "PCA expects [N, D]");
        let n = x.shape()[0];
        let d = x.shape()[1];
        let k = k.min(d).max(1);
        assert!(n >= 2, "PCA needs at least 2 samples");
        let mean = x.mean_axis(0, true);
        let centered = x.sub(&mean);

        let mut components = NdArray::zeros(&[k, d]);
        let mut explained = Vec::with_capacity(k);
        // Deflated power iteration: repeatedly find the dominant direction
        // of the residual covariance.
        let mut residual = centered.clone();
        for comp in 0..k {
            let mut v = rng.randn(&[d, 1]);
            normalize(&mut v);
            for _ in 0..60 {
                // w = Xᵀ (X v) / n  ∝ covariance times v
                let xv = matmul(&residual, &v).expect("xv");
                let mut w = matmul_tn(&residual, &xv).expect("xtxv");
                normalize(&mut w);
                v = w;
            }
            // Explained variance along v.
            let proj = matmul(&residual, &v).expect("proj");
            let var = proj.data().iter().map(|&p| p * p).sum::<f32>() / n as f32;
            explained.push(var);
            for j in 0..d {
                components.set(&[comp, j], v.data()[j]);
            }
            // Deflate: remove the component from the residual.
            let coef = matmul(&residual, &v).expect("coef"); // [N, 1]
            residual = residual.sub(&matmul_nt(&coef, &v).expect("outer"));
        }
        Self { mean: mean.clone(), components, explained }
    }

    /// Projects `[N, D]` data to `[N, k]` component scores.
    pub fn transform(&self, x: &NdArray) -> NdArray {
        matmul_nt(&x.sub(&self.mean), &self.components).expect("pca transform")
    }

    /// Variance explained per component.
    pub fn explained_variance(&self) -> &[f32] {
        &self.explained
    }

    /// The fitted components `[k, D]`.
    pub fn components(&self) -> &NdArray {
        &self.components
    }
}

fn normalize(v: &mut NdArray) {
    let norm = v.l2_norm().max(1e-12);
    v.map_inplace(|x| x / norm);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data stretched along a known direction.
    fn anisotropic_data(n: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, 3], |flat| {
            let i = flat / 3;
            let j = flat % 3;
            let t = (i as f32 * 0.7).sin() * 10.0; // dominant factor
            match j {
                0 => t + rng.normal_with(0.0, 0.1),
                1 => -t + rng.normal_with(0.0, 0.1),
                _ => rng.normal_with(0.0, 0.1),
            }
        })
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        let x = anisotropic_data(200, 0);
        let pca = Pca::fit(&x, 2, &mut Prng::new(1));
        // The dominant direction is (1, -1, 0)/sqrt(2).
        let c0 = pca.components();
        let a = c0.at(&[0, 0]);
        let b = c0.at(&[0, 1]);
        let c = c0.at(&[0, 2]);
        assert!((a + b).abs() < 0.05, "components {a} {b} should be opposite");
        assert!(c.abs() < 0.1, "third axis near zero, got {c}");
        assert!(pca.explained_variance()[0] > 10.0 * pca.explained_variance()[1]);
    }

    #[test]
    fn components_are_orthonormal() {
        let x = Prng::new(2).randn(&[100, 5]);
        let pca = Pca::fit(&x, 3, &mut Prng::new(3));
        let c = pca.components();
        let gram = matmul_nt(c, c).unwrap();
        assert!(gram.max_abs_diff(&NdArray::eye(3)) < 0.05, "gram {:?}", gram.data());
    }

    #[test]
    fn transform_shape_and_centering() {
        let x = Prng::new(4).randn(&[50, 4]).add_scalar(100.0);
        let pca = Pca::fit(&x, 2, &mut Prng::new(5));
        let z = pca.transform(&x);
        assert_eq!(z.shape(), &[50, 2]);
        // Centered projection: near-zero mean per component.
        let m = z.mean_axis(0, false);
        assert!(m.data().iter().all(|v| v.abs() < 0.5), "means {:?}", m.data());
    }

    #[test]
    fn k_clamped_to_dimensionality() {
        let x = Prng::new(6).randn(&[20, 2]);
        let pca = Pca::fit(&x, 10, &mut Prng::new(7));
        assert_eq!(pca.components().shape()[0], 2);
    }

    #[test]
    fn explained_variance_is_monotone() {
        let x = anisotropic_data(150, 8);
        let pca = Pca::fit(&x, 3, &mut Prng::new(9));
        let ev = pca.explained_variance();
        assert!(ev[0] >= ev[1] && ev[1] >= ev[2], "not sorted: {ev:?}");
    }
}
