//! Property-based tests for metric bounds and probe behaviour.

use testkit::prop::{vec_of, Gen};
use testkit::{prop, prop_assert, prop_assert_eq};
use timedrl_eval::{classification_report, cholesky_solve, mae, mse, RidgeProbe};
use timedrl_tensor::{matmul, NdArray, Prng};

fn labels_strategy(n: usize, k: usize) -> impl Gen<Value = Vec<usize>> {
    vec_of(0usize..k, n)
}

prop! {
    #![config(cases = 48)]

    fn metric_bounds(pred in labels_strategy(40, 3), truth in labels_strategy(40, 3)) {
        let r = classification_report(&pred, &truth, 3);
        prop_assert!((0.0..=1.0).contains(&r.accuracy));
        prop_assert!((0.0..=1.0).contains(&r.macro_f1));
        prop_assert!((-1.0..=1.0).contains(&r.kappa));
    }

    fn perfect_agreement_maximizes_all(truth in labels_strategy(30, 4)) {
        let r = classification_report(&truth, &truth, 4);
        prop_assert_eq!(r.accuracy, 1.0);
        prop_assert_eq!(r.macro_f1, 1.0);
        // Kappa is 1 unless the label distribution is degenerate (single
        // observed class makes chance agreement 1).
        let distinct = {
            let mut v = truth.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        if distinct > 1 {
            prop_assert!((r.kappa - 1.0).abs() < 1e-6);
        }
    }

    fn kappa_never_exceeds_accuracy_rescaled(pred in labels_strategy(50, 2), truth in labels_strategy(50, 2)) {
        // kappa = (acc - pe) / (1 - pe) <= acc when acc <= 1.
        let r = classification_report(&pred, &truth, 2);
        prop_assert!(r.kappa <= r.accuracy + 1e-6);
    }

    fn mse_mae_zero_iff_equal(seed in 0u64..1000) {
        let x = Prng::new(seed).randn(&[4, 5]);
        prop_assert_eq!(mse(&x, &x), 0.0);
        prop_assert_eq!(mae(&x, &x), 0.0);
        let y = x.add_scalar(0.5);
        prop_assert!(mse(&x, &y) > 0.0);
        prop_assert!((mae(&x, &y) - 0.5).abs() < 1e-5);
    }

    fn mse_dominates_squared_mae(seed in 0u64..1000) {
        // Jensen: MSE >= MAE^2.
        let mut rng = Prng::new(seed);
        let a = rng.randn(&[6, 3]);
        let b = rng.randn(&[6, 3]);
        prop_assert!(mse(&a, &b) + 1e-6 >= mae(&a, &b).powi(2));
    }

    fn cholesky_solves_spd_systems(seed in 0u64..1000, n in 2usize..7) {
        let mut rng = Prng::new(seed);
        let g = rng.randn(&[n, n]);
        let a = matmul(&g, &g.transpose()).unwrap().add(&NdArray::eye(n));
        let x_true = rng.randn(&[n, 2]);
        let b = matmul(&a, &x_true).unwrap();
        let x = cholesky_solve(&a, &b);
        prop_assert!(x.max_abs_diff(&x_true) < 1e-2);
    }

    fn ridge_interpolates_exact_linear_data(seed in 0u64..500) {
        let mut rng = Prng::new(seed);
        let x = rng.randn(&[60, 4]);
        let w = rng.randn(&[4, 2]);
        let y = matmul(&x, &w).unwrap();
        let probe = RidgeProbe::fit(&x, &y, 1e-5);
        prop_assert!(mse(&probe.predict(&x), &y) < 1e-3);
    }
}
