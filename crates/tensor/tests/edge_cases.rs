//! Edge-case tests for the tensor substrate: degenerate shapes, numeric
//! extremes, and API misuse that must fail loudly rather than corrupt
//! training.

use timedrl_tensor::{matmul, NdArray, Prng, Var};

#[test]
fn scalar_arithmetic_broadcasts_everywhere() {
    let s = NdArray::scalar(3.0);
    let m = NdArray::from_fn(&[2, 2], |i| i as f32);
    assert_eq!(m.add(&s).data(), &[3.0, 4.0, 5.0, 6.0]);
    assert_eq!(s.add(&m).data(), &[3.0, 4.0, 5.0, 6.0]);
    assert_eq!(m.mul(&s).data(), &[0.0, 3.0, 6.0, 9.0]);
}

#[test]
fn size_one_axes_broadcast_both_ways() {
    let col = NdArray::from_fn(&[3, 1], |i| i as f32);
    let row = NdArray::from_fn(&[1, 4], |i| i as f32 * 10.0);
    let outer = col.add(&row);
    assert_eq!(outer.shape(), &[3, 4]);
    assert_eq!(outer.at(&[2, 3]), 32.0);
}

#[test]
fn empty_slice_len_zero() {
    let a = NdArray::from_fn(&[4, 2], |i| i as f32);
    let empty = a.slice(0, 2, 0).unwrap();
    assert_eq!(empty.shape(), &[0, 2]);
    assert_eq!(empty.numel(), 0);
    assert_eq!(empty.sum(), 0.0);
}

#[test]
fn single_element_reductions() {
    let a = NdArray::scalar(5.0);
    assert_eq!(a.sum(), 5.0);
    assert_eq!(a.mean(), 5.0);
    let one = NdArray::from_slice(&[7.0]);
    assert_eq!(one.max(), 7.0);
    assert_eq!(one.argmax_lastdim(), vec![0]);
}

#[test]
fn softmax_on_single_column_is_one() {
    let a = NdArray::from_fn(&[3, 1], |i| i as f32 * 100.0);
    let s = a.softmax_lastdim();
    assert_eq!(s.data(), &[1.0, 1.0, 1.0]);
}

#[test]
fn large_magnitude_values_stay_finite_through_losses() {
    let x = Var::parameter(NdArray::from_slice(&[1e4, -1e4, 0.0]));
    let t = NdArray::zeros(&[3]);
    let loss = x.mse_loss(&t);
    assert!(loss.item().is_finite());
    loss.backward();
    assert!(!x.grad().unwrap().has_non_finite());
}

#[test]
fn cross_entropy_handles_extreme_logits() {
    let logits = Var::parameter(NdArray::from_vec(&[1, 2], vec![1e4, -1e4]).unwrap());
    let loss = logits.cross_entropy(&[1]); // the wrong class, extremely confident
    assert!(loss.item().is_finite());
    assert!(loss.item() > 1e3, "hugely wrong prediction -> huge loss");
    loss.backward();
    assert!(!logits.grad().unwrap().has_non_finite());
}

#[test]
fn cosine_similarity_of_near_zero_vectors_is_stable() {
    let a = Var::parameter(NdArray::full(&[2, 4], 1e-20));
    let b = Var::constant(NdArray::full(&[2, 4], 1e-20));
    let sim = a.cosine_similarity_mean(&b);
    assert!(sim.item().is_finite());
    sim.backward();
    assert!(!a.grad().unwrap().has_non_finite());
}

#[test]
fn backward_twice_from_different_heads_accumulates() {
    // y = x^2 and z = 3x share the leaf; both backward passes accumulate.
    let x = Var::parameter(NdArray::from_slice(&[2.0]));
    x.mul(&x).sum().backward(); // grad 4
    x.scale(3.0).sum().backward(); // grad +3
    assert_eq!(x.grad().unwrap().data(), &[7.0]);
}

#[test]
fn zero_grad_resets_accumulation() {
    let x = Var::parameter(NdArray::from_slice(&[1.0]));
    x.mul(&x).sum().backward();
    x.zero_grad();
    assert!(x.grad().is_none());
    x.mul(&x).sum().backward();
    assert_eq!(x.grad().unwrap().data(), &[2.0]);
}

#[test]
#[should_panic(expected = "requires a scalar")]
fn backward_on_non_scalar_panics() {
    let x = Var::parameter(NdArray::ones(&[2, 2]));
    x.mul(&x).backward();
}

#[test]
#[should_panic(expected = "set_value must preserve shape")]
fn set_value_shape_mismatch_panics() {
    let x = Var::parameter(NdArray::ones(&[2]));
    x.set_value(NdArray::ones(&[3]));
}

#[test]
fn matmul_with_zero_rows() {
    let a = NdArray::zeros(&[0, 3]);
    let b = NdArray::zeros(&[3, 2]);
    let c = matmul(&a, &b).unwrap();
    assert_eq!(c.shape(), &[0, 2]);
}

#[test]
fn prng_streams_are_independent_of_call_interleaving() {
    // Drawing uniform/normal in different orders from distinct Prngs keeps
    // each stream deterministic.
    let mut a1 = Prng::new(9);
    let mut a2 = Prng::new(9);
    let u1 = a1.uniform();
    let n1 = a1.normal();
    let u2 = a2.uniform();
    let n2 = a2.normal();
    assert_eq!(u1, u2);
    assert_eq!(n1, n2);
}

#[test]
fn reduce_to_shape_identity_when_equal() {
    let a = Prng::new(1).randn(&[3, 4]);
    assert_eq!(a.reduce_to_shape(&[3, 4]), a);
}

#[test]
fn deep_diamond_graph_gradients_correct() {
    // x feeds two paths that rejoin many times; gradient must equal the
    // analytic derivative of f(x) = sum over k of (x + x)^1 applied k
    // times = 2^k * x  -> here: y = ((x+x)+(x+x)) = 4x, grad 4.
    let x = Var::parameter(NdArray::from_slice(&[1.5]));
    let a = x.add(&x);
    let y = a.add(&a);
    y.sum().backward();
    assert_eq!(x.grad().unwrap().data(), &[4.0]);
}

#[test]
fn zero_size_dims_through_elementwise_and_reductions() {
    // A [0, 3] array: elementwise ops and axis reductions over the
    // non-empty axis must produce consistent empty results, not panic.
    let empty = NdArray::zeros(&[0, 3]);
    assert_eq!(empty.numel(), 0);
    assert_eq!(empty.add(&empty).shape(), &[0, 3]);
    assert_eq!(empty.scale(2.0).numel(), 0);
    assert_eq!(empty.sum(), 0.0);
    let reduced = empty.sum_axis(0, false);
    assert_eq!(reduced.shape(), &[3]);
    assert_eq!(reduced.data(), &[0.0, 0.0, 0.0]);
}

#[test]
fn zero_size_inner_dim_matmul_gives_zeros() {
    // [2, 0] x [0, 3]: an empty contraction axis is a valid product whose
    // every entry is the empty sum, i.e. exactly zero.
    let a = NdArray::zeros(&[2, 0]);
    let b = NdArray::zeros(&[0, 3]);
    let c = matmul(&a, &b).unwrap();
    assert_eq!(c.shape(), &[2, 3]);
    assert!(c.data().iter().all(|&v| v == 0.0));
}

#[test]
fn length_one_axis_broadcast_matches_explicit_expansion() {
    // [2, 1, 4] + [2, 3, 1] -> [2, 3, 4], checked element by element
    // against the hand-expanded computation.
    let a = NdArray::from_fn(&[2, 1, 4], |i| i as f32);
    let b = NdArray::from_fn(&[2, 3, 1], |i| i as f32 * 10.0);
    let c = a.add(&b);
    assert_eq!(c.shape(), &[2, 3, 4]);
    for i in 0..2 {
        for j in 0..3 {
            for k in 0..4 {
                assert_eq!(c.at(&[i, j, k]), a.at(&[i, 0, k]) + b.at(&[i, j, 0]));
            }
        }
    }
}

#[test]
fn broadcast_to_then_reduce_roundtrip() {
    let v = NdArray::from_fn(&[1, 4], |i| i as f32 + 1.0);
    let big = v.broadcast_to(&[3, 4]).unwrap();
    assert_eq!(big.shape(), &[3, 4]);
    // Every broadcast row is the source row; reducing back recovers 3x it.
    assert_eq!(big.sum_axis(0, false).data(), &[3.0, 6.0, 9.0, 12.0]);
}

/// Reference three-loop matmul for the strided-view checks below.
fn naive_matmul(a: &NdArray, b: &NdArray) -> NdArray {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    NdArray::from_fn(&[m, n], |flat| {
        let (i, j) = (flat / n, flat % n);
        (0..k).map(|p| a.at(&[i, p]) * b.at(&[p, j])).sum()
    })
}

#[test]
fn transposed_view_through_matmul_matches_naive() {
    // transpose() produces a view-derived array; feeding it straight into
    // matmul must agree with the naive product of the materialized layout.
    let mut rng = Prng::new(31);
    let a = rng.randn(&[3, 5]);
    let b = rng.randn(&[3, 4]);
    let got = matmul(&a.transpose(), &b).unwrap(); // [5,3] x [3,4]
    let want = naive_matmul(&a.transpose(), &b);
    assert_eq!(got.shape(), &[5, 4]);
    assert!(got.max_abs_diff(&want) < 1e-5);
}

#[test]
fn permuted_view_through_matmul_matches_naive() {
    // A rank-3 permute collapsed to 2-D exercises the stride remapping on
    // both operands at once.
    let mut rng = Prng::new(32);
    let a3 = rng.randn(&[2, 3, 4]);
    let a = a3.permute(&[1, 0, 2]).reshape(&[3, 8]).unwrap(); // [3, 2*4]
    let b = rng.randn(&[8, 2]);
    let got = matmul(&a, &b).unwrap();
    assert!(got.max_abs_diff(&naive_matmul(&a, &b)) < 1e-5);
}

#[test]
fn double_transpose_is_identity_through_matmul() {
    let mut rng = Prng::new(33);
    let a = rng.randn(&[4, 3]);
    let b = rng.randn(&[3, 2]);
    let direct = matmul(&a, &b).unwrap();
    let via_views = matmul(&a.transpose().transpose(), &b).unwrap();
    assert_eq!(direct, via_views);
}

#[test]
fn broadcast_view_through_matmul_matches_naive() {
    // A row broadcast to a full matrix, then used as a matmul operand.
    let mut rng = Prng::new(34);
    let row = rng.randn(&[1, 3]);
    let a = row.broadcast_to(&[4, 3]).unwrap();
    let b = rng.randn(&[3, 2]);
    let got = matmul(&a, &b).unwrap();
    assert!(got.max_abs_diff(&naive_matmul(&a, &b)) < 1e-5);
    // All output rows identical, since all input rows are.
    for j in 0..2 {
        let first = got.at(&[0, j]);
        for i in 1..4 {
            assert_eq!(got.at(&[i, j]), first);
        }
    }
}
