//! Property-based tests for the tensor substrate: algebraic laws that must
//! hold for arbitrary shapes and values, checked with `testkit::prop!`
//! (seeded, replayable via `TESTKIT_SEED`).

use testkit::prop::{vec_of, Gen};
use testkit::{prop, prop_assert, prop_assert_eq};
use timedrl_tensor::{matmul, NdArray, Prng, Var};

/// Generator: a small shape (1-3 axes, each 1-5 wide).
fn shape_strategy() -> impl Gen<Value = Vec<usize>> {
    vec_of(1usize..=5, 1usize..=3)
}

/// Generator: an array of the given shape with bounded values.
fn array_for(shape: Vec<usize>) -> impl Gen<Value = NdArray> {
    let n: usize = shape.iter().product();
    vec_of(-10.0f32..10.0, n).prop_map(move |data| NdArray::from_vec(&shape, data).unwrap())
}

fn arb_array() -> impl Gen<Value = NdArray> {
    shape_strategy().prop_flat_map(array_for)
}

prop! {
    fn add_commutes(a in arb_array()) {
        let b = a.map(|v| v * 0.5 + 1.0);
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    fn add_zero_is_identity(a in arb_array()) {
        let z = NdArray::zeros(a.shape());
        prop_assert_eq!(a.add(&z), a.clone());
    }

    fn mul_distributes_over_add(a in arb_array()) {
        let b = a.map(|v| v - 1.0);
        let c = a.map(|v| -v * 0.3);
        let lhs = a.mul(&b.add(&c));
        let rhs = a.mul(&b).add(&a.mul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    fn double_negation(a in arb_array()) {
        prop_assert_eq!(a.neg().neg(), a.clone());
    }

    fn transpose_is_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let a = Prng::new(seed).randn(&[rows, cols]);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    fn reshape_preserves_sum(a in arb_array()) {
        let flat = a.flatten();
        prop_assert!((a.sum() - flat.sum()).abs() < 1e-3);
    }

    fn sum_axis_totals_match(a in arb_array()) {
        for axis in 0..a.rank() {
            prop_assert!((a.sum_axis(axis, false).sum() - a.sum()).abs() < 1e-2);
        }
    }

    fn broadcast_then_reduce_scales_by_factor(n in 1usize..5, m in 1usize..5, seed in 0u64..1000) {
        let a = Prng::new(seed).randn(&[m]);
        let b = a.broadcast_to(&[n, m]).unwrap();
        let back = b.reduce_to_shape(&[m]);
        prop_assert!(back.max_abs_diff(&a.scale(n as f32)) < 1e-4);
    }

    fn softmax_rows_are_distributions(rows in 1usize..5, cols in 1usize..6, seed in 0u64..1000) {
        let a = Prng::new(seed).randn(&[rows, cols]).scale(5.0);
        let s = a.softmax_lastdim();
        for row in s.data().chunks(cols) {
            let total: f32 = row.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    fn matmul_identity_left(n in 1usize..5, m in 1usize..5, seed in 0u64..1000) {
        let a = Prng::new(seed).randn(&[n, m]);
        let out = matmul(&NdArray::eye(n), &a).unwrap();
        prop_assert!(out.max_abs_diff(&a) < 1e-5);
    }

    fn matmul_associative(seed in 0u64..1000) {
        let mut rng = Prng::new(seed);
        let a = rng.randn(&[3, 4]);
        let b = rng.randn(&[4, 2]);
        let c = rng.randn(&[2, 5]);
        let lhs = matmul(&matmul(&a, &b).unwrap(), &c).unwrap();
        let rhs = matmul(&a, &matmul(&b, &c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    fn slice_concat_roundtrip(rows in 2usize..6, cols in 1usize..5, seed in 0u64..1000) {
        let a = Prng::new(seed).randn(&[rows, cols]);
        let cut = rows / 2;
        let top = a.slice(0, 0, cut).unwrap();
        let bottom = a.slice(0, cut, rows - cut).unwrap();
        prop_assert_eq!(NdArray::concat(&[&top, &bottom], 0), a);
    }

    fn autograd_sum_gradient_is_ones(a in arb_array()) {
        let x = Var::parameter(a.clone());
        x.sum().backward();
        prop_assert_eq!(x.grad().unwrap(), NdArray::ones(a.shape()));
    }

    fn autograd_linear_scaling(a in arb_array(), k in -3.0f32..3.0) {
        // d/dx sum(k*x) = k everywhere.
        let x = Var::parameter(a.clone());
        x.scale(k).sum().backward();
        let g = x.grad().unwrap();
        prop_assert!(g.max_abs_diff(&NdArray::full(a.shape(), k)) < 1e-4);
    }

    fn detach_never_receives_gradient(a in arb_array()) {
        let x = Var::parameter(a);
        let y = x.detach();
        let z = y.mul(&y).sum();
        if z.requires_grad() {
            z.backward();
        }
        prop_assert!(x.grad().is_none());
    }

    fn gradient_accumulates_linearly(seed in 0u64..1000) {
        // Two backward passes accumulate exactly twice the gradient.
        let a = Prng::new(seed).randn(&[4]);
        let x1 = Var::parameter(a.clone());
        x1.mul(&x1).sum().backward();
        let single = x1.grad().unwrap();
        let x2 = Var::parameter(a);
        x2.mul(&x2).sum().backward();
        x2.mul(&x2).sum().backward();
        prop_assert!(x2.grad().unwrap().max_abs_diff(&single.scale(2.0)) < 1e-4);
    }

    fn prng_uniform_in_unit_interval(seed in 0u64..10_000) {
        let mut rng = Prng::new(seed);
        for _ in 0..100 {
            let v = rng.uniform();
            prop_assert!((0.0..1.0).contains(&v));
        }
    }
}
