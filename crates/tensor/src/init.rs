//! Seeded random number generation and weight initializers.
//!
//! Everything random in the workspace flows through [`Prng`], a thin wrapper
//! over the in-repo [`testkit::rng::TestRng`] (xoshiro256++ seeded through
//! SplitMix64 — pure `std`, no external crates). Gaussian sampling is
//! implemented via Box–Muller so no distribution dependency is needed.
//!
//! # Determinism guarantee
//!
//! For a fixed seed, every sample sequence produced by [`Prng`] is
//! byte-for-byte identical across runs, platforms, and build profiles:
//! the generator is an explicit integer recurrence with no
//! platform-dependent state, and every floating-point conversion is a
//! single exactly-rounded multiply. TimeDRL's training recipe leans on
//! this — dropout-view randomness (the paper's two-view trick), weight
//! init, batch shuffling, and augmentation sampling all replay exactly
//! given the experiment seed, which is what makes checkpoints and the
//! EXPERIMENTS.md tables reproducible.

use crate::array::NdArray;
use testkit::rng::TestRng;

/// Seeded pseudo-random number generator used by initializers, dropout,
/// data generators, and samplers.
#[derive(Debug, Clone)]
pub struct Prng {
    rng: TestRng,
}

impl Prng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: TestRng::new(seed) }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.rng.uniform_f32()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal sample via Box–Muller (computed in f64).
    pub fn normal(&mut self) -> f32 {
        self.rng.normal_f64() as f32
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.below_usize(n)
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A fresh generator seeded from this one (for forking independent
    /// random streams, e.g. per-epoch shuffles).
    pub fn fork(&mut self) -> Self {
        Self { rng: self.rng.fork() }
    }

    /// The raw 256-bit xoshiro state, for checkpointing this stream
    /// mid-run (see `timedrl-tensor::serialize` / DESIGN.md §11).
    pub fn state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuilds a generator from a state captured by [`Prng::state`],
    /// resuming the sample sequence at exactly the next draw.
    ///
    /// # Errors
    /// Rejects the degenerate all-zero state (a corrupt checkpoint).
    pub fn from_state(state: [u64; 4]) -> Result<Self, &'static str> {
        Ok(Self { rng: TestRng::from_state(state)? })
    }

    /// Array of iid standard-normal samples.
    pub fn randn(&mut self, shape: &[usize]) -> NdArray {
        NdArray::from_fn(shape, |_| self.normal())
    }

    /// Array of iid uniform samples in `[lo, hi)`.
    pub fn rand_uniform(&mut self, shape: &[usize], lo: f32, hi: f32) -> NdArray {
        NdArray::from_fn(shape, |_| self.uniform_in(lo, hi))
    }

    /// Xavier/Glorot uniform initialization for a `[fan_out, fan_in]`-shaped
    /// weight (or any shape whose first two axes are the fans).
    pub fn xavier_uniform(&mut self, shape: &[usize]) -> NdArray {
        let (fan_in, fan_out) = fans(shape);
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.rand_uniform(shape, -limit, limit)
    }

    /// Kaiming/He normal initialization (for ReLU networks).
    pub fn kaiming_normal(&mut self, shape: &[usize]) -> NdArray {
        let (fan_in, _) = fans(shape);
        let std = (2.0 / fan_in as f32).sqrt();
        NdArray::from_fn(shape, |_| self.normal_with(0.0, std))
    }
}

/// Derives `(fan_in, fan_out)` from a weight shape. For rank-2 `[out, in]`
/// weights these are `(in, out)`; higher ranks multiply in the receptive
/// field (e.g. conv kernels `[out, in, k]`).
fn fans(shape: &[usize]) -> (usize, usize) {
    match shape.len() {
        0 => (1, 1),
        1 => (shape[0], shape[0]),
        _ => {
            let receptive: usize = shape[2..].iter().product();
            (shape[1] * receptive, shape[0] * receptive)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Prng::new(42);
        let xs = rng.randn(&[20_000]);
        assert!(xs.mean().abs() < 0.03, "mean {}", xs.mean());
        let var = xs.var_axis(0, false).to_scalar();
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_range() {
        let mut rng = Prng::new(3);
        for _ in 0..1000 {
            let v = rng.uniform_in(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn below_bounds() {
        let mut rng = Prng::new(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::new(5);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = Prng::new(11);
        let w = rng.xavier_uniform(&[16, 64]);
        let limit = (6.0f32 / 80.0).sqrt();
        assert!(w.max() <= limit && w.min() >= -limit);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = Prng::new(13);
        let w = rng.kaiming_normal(&[8, 512]);
        let std = w.var_axis(0, false).mean().sqrt();
        let expected = (2.0f32 / 512.0).sqrt();
        assert!((std - expected).abs() < expected * 0.5);
    }

    #[test]
    fn state_roundtrip_resumes_sampling_exactly() {
        let mut a = Prng::new(77);
        let _ = a.randn(&[13]); // advance mid-stream
        let mut b = Prng::from_state(a.state()).unwrap();
        for _ in 0..100 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn fork_streams_independent() {
        let mut root = Prng::new(100);
        let mut f1 = root.fork();
        let mut f2 = root.fork();
        assert_ne!(f1.uniform(), f2.uniform());
    }
}
