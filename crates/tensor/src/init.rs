//! Seeded random number generation and weight initializers.
//!
//! Everything random in the workspace flows through [`Prng`], a thin wrapper
//! over a seeded [`rand::rngs::StdRng`]. Gaussian sampling is implemented
//! via Box–Muller so the crate needs no distribution dependency; every
//! experiment in the repo is bit-reproducible given its seed.

use crate::array::NdArray;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Seeded pseudo-random number generator used by initializers, dropout,
/// data generators, and samplers.
#[derive(Debug, Clone)]
pub struct Prng {
    rng: StdRng,
}

impl Prng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.rng.gen::<f32>()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        // Draw u1 in (0,1] to keep ln finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * (u1 as f64).ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2 as f64;
        (r * theta.cos()) as f32
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        self.rng.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A fresh generator seeded from this one (for forking independent
    /// random streams, e.g. per-epoch shuffles).
    pub fn fork(&mut self) -> Self {
        Self::new(self.rng.gen::<u64>())
    }

    /// Array of iid standard-normal samples.
    pub fn randn(&mut self, shape: &[usize]) -> NdArray {
        NdArray::from_fn(shape, |_| self.normal())
    }

    /// Array of iid uniform samples in `[lo, hi)`.
    pub fn rand_uniform(&mut self, shape: &[usize], lo: f32, hi: f32) -> NdArray {
        NdArray::from_fn(shape, |_| self.uniform_in(lo, hi))
    }

    /// Xavier/Glorot uniform initialization for a `[fan_out, fan_in]`-shaped
    /// weight (or any shape whose first two axes are the fans).
    pub fn xavier_uniform(&mut self, shape: &[usize]) -> NdArray {
        let (fan_in, fan_out) = fans(shape);
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.rand_uniform(shape, -limit, limit)
    }

    /// Kaiming/He normal initialization (for ReLU networks).
    pub fn kaiming_normal(&mut self, shape: &[usize]) -> NdArray {
        let (fan_in, _) = fans(shape);
        let std = (2.0 / fan_in as f32).sqrt();
        NdArray::from_fn(shape, |_| self.normal_with(0.0, std))
    }
}

/// Derives `(fan_in, fan_out)` from a weight shape. For rank-2 `[out, in]`
/// weights these are `(in, out)`; higher ranks multiply in the receptive
/// field (e.g. conv kernels `[out, in, k]`).
fn fans(shape: &[usize]) -> (usize, usize) {
    match shape.len() {
        0 => (1, 1),
        1 => (shape[0], shape[0]),
        _ => {
            let receptive: usize = shape[2..].iter().product();
            (shape[1] * receptive, shape[0] * receptive)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Prng::new(42);
        let xs = rng.randn(&[20_000]);
        assert!(xs.mean().abs() < 0.03, "mean {}", xs.mean());
        let var = xs.var_axis(0, false).to_scalar();
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_range() {
        let mut rng = Prng::new(3);
        for _ in 0..1000 {
            let v = rng.uniform_in(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn below_bounds() {
        let mut rng = Prng::new(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::new(5);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = Prng::new(11);
        let w = rng.xavier_uniform(&[16, 64]);
        let limit = (6.0f32 / 80.0).sqrt();
        assert!(w.max() <= limit && w.min() >= -limit);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = Prng::new(13);
        let w = rng.kaiming_normal(&[8, 512]);
        let std = w.var_axis(0, false).mean().sqrt();
        let expected = (2.0f32 / 512.0).sqrt();
        assert!((std - expected).abs() < expected * 0.5);
    }

    #[test]
    fn fork_streams_independent() {
        let mut root = Prng::new(100);
        let mut f1 = root.fork();
        let mut f2 = root.fork();
        assert_ne!(f1.uniform(), f2.uniform());
    }
}
