//! Reverse-mode automatic differentiation.
//!
//! [`Var`] is a differentiable tensor: a reference-counted node in a
//! define-by-run computation graph. Each operation eagerly computes its
//! value and records a backward closure that maps the node's output gradient
//! to gradients for each parent. [`Var::backward`] topologically sorts the
//! reachable graph and accumulates gradients leaf-ward.
//!
//! Design notes:
//! * Nodes whose inputs all have `requires_grad == false` record neither
//!   parents nor a closure, so inference-mode graphs cost nothing extra.
//! * `stop_gradient` (Eq. 16–17 of the TimeDRL paper) is [`Var::detach`],
//!   which re-roots a value as a constant leaf.
//! * Graphs are freed when the last `Var` referencing them drops; training
//!   loops simply rebuild the graph every step.

use std::cell::{Ref, RefCell};
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::array::NdArray;
use crate::attention::{attention_fused, attention_fused_backward};
use crate::error::Result;
use crate::init::Prng;
use crate::matmul::{matmul, matmul_nt, matmul_tn, matmul_tn_fold};
use crate::shape::Dims;

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// The backward rule of a graph node. Built-in ops store their saved
/// state inline in the enum — no boxed closure, so recording a node costs
/// exactly one allocation (the `Rc`). Saved tensors (`sqrt`/`exp`/softmax
/// outputs, dropout masks) move in by value; ops whose rule needs a parent
/// *input* read it through the node's parent list at backward time, which
/// is sound because node values are never mutated between forward and
/// backward. Only [`Var::custom`] pays for a boxed closure.
enum Backward {
    Add { ls: Dims, rs: Dims },
    Sub { ls: Dims, rs: Dims },
    Mul { ls: Dims, rs: Dims },
    Div { ls: Dims, rs: Dims },
    Neg,
    Scale(f32),
    AddScalar,
    Powf(f32),
    Sqrt { saved: NdArray },
    Exp { saved: NdArray },
    Ln,
    Relu,
    Sigmoid { s: NdArray },
    Tanh { t: NdArray },
    Gelu,
    Matmul { ls: Dims, rs: Dims },
    MatmulNT { ls: Dims, rs: Dims },
    MatmulTN { ls: Dims, rs: Dims },
    Transpose,
    Permute { inverse: Dims },
    Reshape { from: Dims },
    BroadcastTo { from: Dims },
    Slice { full: Dims, axis: usize, start: usize, len: usize },
    Concat { axis: usize, sizes: Dims },
    Sum { from: Dims },
    SumAxis { from: Dims, axis: usize, keepdim: bool },
    MaxAxis { from: Dims, axis: usize },
    Softmax { s: NdArray, last: usize },
    CrossEntropy { probs: NdArray, targets: Vec<usize> },
    Dropout { mask: NdArray },
    Attention { scale: f32, causal: bool, mask: Option<NdArray> },
    MaeLoss { target: NdArray, n: f32 },
    Custom(Box<dyn Fn(&NdArray) -> Vec<NdArray>>),
}

/// Inline parent list. Every primitive op has one or two parents, so the
/// common cases carry them without a heap allocation; only variadic ops
/// ([`Var::concat`], [`Var::custom`]) spill to a `Vec`. One fewer
/// allocation per graph node (DESIGN.md §10).
enum Parents {
    None,
    One([Var; 1]),
    Two([Var; 2]),
    Many(Vec<Var>),
}

impl Parents {
    fn one(p: Var) -> Self {
        Parents::One([p])
    }

    fn two(a: Var, b: Var) -> Self {
        Parents::Two([a, b])
    }

    fn as_slice(&self) -> &[Var] {
        match self {
            Parents::None => &[],
            Parents::One(a) => a,
            Parents::Two(a) => a,
            Parents::Many(v) => v,
        }
    }
}

/// Inline gradient list returned by backward closures — the by-value
/// counterpart of [`Parents`]: one or two gradients ride inline, variadic
/// ops spill. An empty `spill` vec never allocates, so the per-node
/// `Vec<NdArray>` of the old signature is gone.
pub struct Grads {
    a: Option<NdArray>,
    b: Option<NdArray>,
    spill: Vec<NdArray>,
}

impl Grads {
    /// A single parent gradient.
    pub fn one(g: NdArray) -> Self {
        Self { a: Some(g), b: None, spill: Vec::new() }
    }

    /// Two parent gradients, in parent order.
    pub fn two(ga: NdArray, gb: NdArray) -> Self {
        Self { a: Some(ga), b: Some(gb), spill: Vec::new() }
    }

    /// Arbitrarily many parent gradients, in parent order.
    pub fn many(gs: Vec<NdArray>) -> Self {
        Self { a: None, b: None, spill: gs }
    }

    fn len(&self) -> usize {
        usize::from(self.a.is_some()) + usize::from(self.b.is_some()) + self.spill.len()
    }

    fn into_iter(self) -> impl Iterator<Item = NdArray> {
        self.a.into_iter().chain(self.b).chain(self.spill)
    }
}

/// Broadcast-reduces an *owned* gradient to `target`, skipping the
/// full-array copy [`NdArray::reduce_to_shape`] makes when the shapes
/// already match — the common case for every matmul gradient on the
/// training hot path.
fn reduce_owned(g: NdArray, target: &Dims) -> NdArray {
    if g.shape() == target.as_slice() {
        g
    } else {
        g.reduce_to_shape(target)
    }
}

impl Backward {
    /// Computes the parent gradients for a node with output gradient `g`.
    /// Each arm is the former boxed closure's body, verbatim; arms that
    /// need a parent's *input* value borrow it from `parents` in place.
    ///
    /// # Errors
    /// The matmul family propagates shape mismatches as
    /// [`TensorError::MatmulMismatch`](crate::TensorError::MatmulMismatch)
    /// instead of panicking mid-backward, consistent with the trainer's
    /// panic-free contract (DESIGN.md §11).
    fn apply(&self, parents: &Parents, g: &NdArray) -> Result<Grads> {
        let parent = |i: usize| parents.as_slice()[i].value();
        Ok(match self {
            Backward::Add { ls, rs } => {
                Grads::two(g.reduce_to_shape(ls), g.reduce_to_shape(rs))
            }
            Backward::Sub { ls, rs } => {
                Grads::two(g.reduce_to_shape(ls), g.neg().reduce_to_shape(rs))
            }
            Backward::Mul { ls, rs } => {
                let (a, b) = (parent(0), parent(1));
                Grads::two(g.mul(&b).reduce_to_shape(ls), g.mul(&a).reduce_to_shape(rs))
            }
            Backward::Div { ls, rs } => {
                let (a, b) = (parent(0), parent(1));
                let ga = g.div(&b).reduce_to_shape(ls);
                // d/db (a/b) = -a / b^2
                let gb = g.mul(&a.neg().div(&b.mul(&b))).reduce_to_shape(rs);
                Grads::two(ga, gb)
            }
            Backward::Neg => Grads::one(g.neg()),
            Backward::Scale(s) => Grads::one(g.scale(*s)),
            Backward::AddScalar => Grads::one(g.clone()),
            Backward::Powf(p) => Grads::one(g.mul(&parent(0).powf(p - 1.0).scale(*p))),
            Backward::Sqrt { saved } => Grads::one(g.div(&saved.scale(2.0))),
            Backward::Exp { saved } => Grads::one(g.mul(saved)),
            Backward::Ln => Grads::one(g.div(&parent(0))),
            Backward::Relu => Grads::one(
                g.zip_map(&parent(0), |gv, xv| if xv > 0.0 { gv } else { 0.0 })
                    .expect("relu grad"),
            ),
            Backward::Sigmoid { s } => {
                Grads::one(g.mul(&s.zip_map(s, |a, _| a * (1.0 - a)).expect("sigmoid grad")))
            }
            Backward::Tanh { t } => Grads::one(g.mul(&t.map(|v| 1.0 - v * v))),
            Backward::Gelu => {
                const C: f32 = 0.797_884_6; // sqrt(2/pi)
                const A: f32 = 0.044_715;
                let dx = parent(0).map(|v| {
                    let u = C * (v + A * v * v * v);
                    let t = u.tanh();
                    0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * C * (1.0 + 3.0 * A * v * v)
                });
                Grads::one(g.mul(&dx))
            }
            Backward::Matmul { ls, rs } => {
                let (a, b) = (parent(0), parent(1));
                // dL/dA = G @ B^T ; dL/dB = A^T @ G, reduced over any
                // batch-broadcast axes. Both products run through the
                // transpose-aware kernels (DESIGN.md §12), which pack the
                // transposed operand from strides: bit-identical to the old
                // materialize-then-matmul path, minus the transposed copies.
                let ga = reduce_owned(matmul_nt(g, &b)?, ls);
                let gb = if a.rank() == 3 && b.rank() == 2 {
                    // [b,m,k]^T fold: sum over batch. Both folds are already
                    // contiguous [b*m, _] matrices, so this is one 2-D GEMM
                    // over the raw data — no reshape copies.
                    matmul_tn_fold(&a, g)?
                } else {
                    reduce_owned(matmul_tn(&a, g)?, rs)
                };
                Grads::two(ga, gb)
            }
            Backward::MatmulNT { ls, rs } => {
                let (a, b) = (parent(0), parent(1));
                // c = A @ B^T: dL/dA = G @ B ; dL/dB = G^T @ A.
                let ga = reduce_owned(matmul(g, &b)?, ls);
                let gb = if a.rank() == 3 && b.rank() == 2 {
                    // Shared (broadcast) right operand: sum over batch.
                    matmul_tn_fold(g, &a)?
                } else {
                    reduce_owned(matmul_tn(g, &a)?, rs)
                };
                Grads::two(ga, gb)
            }
            Backward::MatmulTN { ls, rs } => {
                let (a, b) = (parent(0), parent(1));
                // c = A^T @ B: dL/dA = B @ G^T ; dL/dB = A @ G.
                let ga = reduce_owned(matmul_nt(&b, g)?, ls);
                let gb = reduce_owned(matmul(&a, g)?, rs);
                Grads::two(ga, gb)
            }
            Backward::Transpose => Grads::one(g.transpose()),
            Backward::Permute { inverse } => Grads::one(g.permute(inverse)),
            Backward::Reshape { from } => Grads::one(g.reshape(from).expect("reshape grad")),
            Backward::BroadcastTo { from } => Grads::one(g.reduce_to_shape(from)),
            Backward::Slice { full, axis, start, len } => {
                let (axis, start) = (*axis, *start);
                let mut parts: Vec<NdArray> = Vec::new();
                if start > 0 {
                    let mut s = full.clone();
                    s[axis] = start;
                    parts.push(NdArray::zeros(&s));
                }
                parts.push(g.clone());
                let tail = full[axis] - start - len;
                if tail > 0 {
                    let mut s = full.clone();
                    s[axis] = tail;
                    parts.push(NdArray::zeros(&s));
                }
                let refs: Vec<&NdArray> = parts.iter().collect();
                Grads::one(NdArray::concat(&refs, axis))
            }
            Backward::Concat { axis, sizes } => {
                let mut grads = Vec::with_capacity(sizes.len());
                let mut offset = 0;
                for &sz in sizes.as_slice() {
                    grads.push(g.slice(*axis, offset, sz).expect("concat grad split"));
                    offset += sz;
                }
                Grads::many(grads)
            }
            Backward::Sum { from } => Grads::one(NdArray::full(from, g.to_scalar())),
            Backward::SumAxis { from, axis, keepdim } => {
                let g_keep = if *keepdim { g.clone() } else { g.unsqueeze(*axis) };
                Grads::one(g_keep.broadcast_to(from).expect("sum_axis grad"))
            }
            Backward::MaxAxis { from, axis } => {
                let x = parent(0);
                let axis = *axis;
                let outer: usize = from[..axis].iter().product();
                let dim = from[axis];
                let inner: usize = from[axis + 1..].iter().product();
                let mut grad = NdArray::zeros(from);
                // g is the reduced-shape gradient; iterate groups.
                for o in 0..outer {
                    for i in 0..inner {
                        let mut best = (0usize, f32::NEG_INFINITY);
                        for d in 0..dim {
                            let v = x.data()[(o * dim + d) * inner + i];
                            if v > best.1 {
                                best = (d, v);
                            }
                        }
                        grad.data_mut()[(o * dim + best.0) * inner + i] = g.data()[o * inner + i];
                    }
                }
                Grads::one(grad)
            }
            Backward::Softmax { s, last } => {
                let gs = g.mul(s);
                let dot = gs.sum_axis(*last, true);
                Grads::one(s.mul(&g.sub(&dot.broadcast_to(g.shape()).expect("softmax grad"))))
            }
            Backward::CrossEntropy { probs, targets } => {
                let n = probs.shape()[0];
                let k = probs.shape()[1];
                let scale = g.to_scalar() / n as f32;
                let mut grad = probs.clone();
                for (i, &t) in targets.iter().enumerate() {
                    grad.data_mut()[i * k + t] -= 1.0;
                }
                Grads::one(grad.scale(scale))
            }
            Backward::Dropout { mask } => Grads::one(g.mul(mask)),
            Backward::Attention { scale, causal, mask } => {
                // Recomputes probability tiles from q/k — no saved [t, t]
                // probabilities live on the tape (DESIGN.md §17). The only
                // quadratic tensor the fused node retains is the dropout
                // mask, and only in training.
                let (q, k, v) = (parent(0), parent(1), parent(2));
                let (dq, dk, dv) =
                    attention_fused_backward(&q, &k, &v, g, *scale, *causal, mask.as_ref())?;
                Grads::many(vec![dq, dk, dv])
            }
            Backward::MaeLoss { target, n } => {
                let s = g.to_scalar() / n;
                Grads::one(
                    parent(0)
                        .zip_map(target, |a, b| if a >= b { s } else { -s })
                        .expect("mae grad"),
                )
            }
            Backward::Custom(f) => Grads::many(f(g)),
        })
    }
}

struct VarNode {
    id: u64,
    value: RefCell<NdArray>,
    grad: RefCell<Option<NdArray>>,
    requires_grad: bool,
    parents: Parents,
    backward: Option<Backward>,
}

/// A differentiable tensor node. Cheap to clone (reference-counted).
#[derive(Clone)]
pub struct Var(Rc<VarNode>);

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.0.id)
            .field("shape", &self.shape())
            .field("requires_grad", &self.0.requires_grad)
            .finish()
    }
}

impl Var {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn leaf(value: NdArray, requires_grad: bool) -> Self {
        Var(Rc::new(VarNode {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            requires_grad,
            parents: Parents::None,
            backward: None,
        }))
    }

    /// A trainable parameter leaf.
    pub fn parameter(value: NdArray) -> Self {
        Self::leaf(value, true)
    }

    /// A constant (non-differentiable) leaf.
    pub fn constant(value: NdArray) -> Self {
        Self::leaf(value, false)
    }

    /// A rank-0 constant.
    pub fn scalar(v: f32) -> Self {
        Self::constant(NdArray::scalar(v))
    }

    fn op(value: NdArray, parents: Parents, backward: Backward) -> Self {
        let requires_grad = parents.as_slice().iter().any(|p| p.0.requires_grad);
        if !requires_grad {
            return Self::leaf(value, false);
        }
        Var(Rc::new(VarNode {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            requires_grad,
            parents,
            backward: Some(backward),
        }))
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Borrows the node's value.
    pub fn value(&self) -> Ref<'_, NdArray> {
        self.0.value.borrow()
    }

    /// Clones the node's value out.
    pub fn to_array(&self) -> NdArray {
        self.0.value.borrow().clone()
    }

    /// The node's shape (copied out; values are behind a `RefCell`).
    /// [`Dims`] stores tensor-rank shapes inline, so this never allocates.
    pub fn shape(&self) -> Dims {
        Dims::from(self.0.value.borrow().shape())
    }

    /// Scalar value of a single-element node.
    pub fn item(&self) -> f32 {
        self.0.value.borrow().to_scalar()
    }

    /// Whether gradients flow into this node.
    pub fn requires_grad(&self) -> bool {
        self.0.requires_grad
    }

    /// The accumulated gradient, if any.
    pub fn grad(&self) -> Option<NdArray> {
        self.0.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.borrow_mut() = None;
    }

    /// Mutates the accumulated gradient in place, if present — lets
    /// optimizers and gradient clipping rescale without cloning the array
    /// out and writing it back.
    pub fn update_grad(&self, f: impl FnOnce(&mut NdArray)) {
        if let Some(g) = self.0.grad.borrow_mut().as_mut() {
            f(g);
        }
    }

    /// Borrows the accumulated gradient without cloning. `None` when no
    /// gradient has been accumulated.
    pub fn grad_ref(&self) -> Option<Ref<'_, NdArray>> {
        Ref::filter_map(self.0.grad.borrow(), Option::as_ref).ok()
    }

    /// Replaces the node's value (optimizer updates on parameter leaves).
    pub fn set_value(&self, value: NdArray) {
        assert_eq!(
            self.0.value.borrow().shape(),
            value.shape(),
            "set_value must preserve shape"
        );
        *self.0.value.borrow_mut() = value;
    }

    /// Mutates the node's value in place.
    pub fn update_value(&self, f: impl FnOnce(&mut NdArray)) {
        f(&mut self.0.value.borrow_mut());
    }

    /// Re-roots this value as a constant leaf: the stop-gradient operation.
    pub fn detach(&self) -> Var {
        Self::constant(self.to_array())
    }

    /// Builds a custom differentiable operation from a precomputed `value`,
    /// its `parents`, and a closure mapping the output gradient to one
    /// gradient per parent (in order).
    ///
    /// Downstream crates use this for fused kernels (e.g. 1-D convolution)
    /// whose gradients are cheaper hand-written than composed from
    /// primitives. The closure must return exactly `parents.len()` arrays,
    /// each shaped like the corresponding parent.
    pub fn custom(
        value: NdArray,
        parents: Vec<Var>,
        backward: impl Fn(&NdArray) -> Vec<NdArray> + 'static,
    ) -> Var {
        Self::op(value, Parents::Many(parents), Backward::Custom(Box::new(backward)))
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic (broadcasting)
    // ------------------------------------------------------------------

    /// Broadcasting addition.
    pub fn add(&self, other: &Var) -> Var {
        let out = self.value().add(&other.value());
        let (ls, rs) = (self.shape(), other.shape());
        Var::op(
            out,
            Parents::two(self.clone(), other.clone()),
            Backward::Add { ls, rs },
        )
    }

    /// Broadcasting subtraction.
    pub fn sub(&self, other: &Var) -> Var {
        let out = self.value().sub(&other.value());
        let (ls, rs) = (self.shape(), other.shape());
        Var::op(
            out,
            Parents::two(self.clone(), other.clone()),
            Backward::Sub { ls, rs },
        )
    }

    /// Broadcasting multiplication.
    pub fn mul(&self, other: &Var) -> Var {
        let out = self.value().mul(&other.value());
        let (ls, rs) = (self.shape(), other.shape());
        // The backward rule reads the parent values through the node's
        // parent list: no copies saved, no extra captures. Node values are
        // never mutated between forward and backward, so this is the same
        // data the old full-tensor snapshots held.
        Var::op(out, Parents::two(self.clone(), other.clone()), Backward::Mul { ls, rs })
    }

    /// Broadcasting division.
    pub fn div(&self, other: &Var) -> Var {
        let out = self.value().div(&other.value());
        let (ls, rs) = (self.shape(), other.shape());
        Var::op(out, Parents::two(self.clone(), other.clone()), Backward::Div { ls, rs })
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        Var::op(
            self.value().neg(),
            Parents::one(self.clone()),
            Backward::Neg,
        )
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Var {
        Var::op(
            self.value().scale(s),
            Parents::one(self.clone()),
            Backward::Scale(s),
        )
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Var {
        Var::op(
            self.value().add_scalar(s),
            Parents::one(self.clone()),
            Backward::AddScalar,
        )
    }

    /// Elementwise power `x^p` (for `x > 0` when `p` is fractional).
    pub fn powf(&self, p: f32) -> Var {
        let out = self.value().powf(p);
        Var::op(out, Parents::one(self.clone()), Backward::Powf(p))
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var {
        let out = self.value().sqrt();
        let saved = out.clone();
        Var::op(out, Parents::one(self.clone()), Backward::Sqrt { saved })
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let out = self.value().exp();
        let saved = out.clone();
        Var::op(out, Parents::one(self.clone()), Backward::Exp { saved })
    }

    /// Elementwise natural log.
    pub fn ln(&self) -> Var {
        let out = self.value().ln();
        Var::op(out, Parents::one(self.clone()), Backward::Ln)
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let out = self.value().map(|v| v.max(0.0));
        Var::op(out, Parents::one(self.clone()), Backward::Relu)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let out = self.value().map(|v| 1.0 / (1.0 + (-v).exp()));
        let s = out.clone();
        Var::op(out, Parents::one(self.clone()), Backward::Sigmoid { s })
    }

    /// Hyperbolic tangent.
    pub fn tanh_act(&self) -> Var {
        let out = self.value().map(f32::tanh);
        let t = out.clone();
        Var::op(out, Parents::one(self.clone()), Backward::Tanh { t })
    }

    /// Gaussian error linear unit (tanh approximation, as in BERT/PatchTST).
    pub fn gelu(&self) -> Var {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        const A: f32 = 0.044_715;
        let out = self.value().map(|v| {
            let u = C * (v + A * v * v * v);
            0.5 * v * (1.0 + u.tanh())
        });
        Var::op(out, Parents::one(self.clone()), Backward::Gelu)
    }

    // ------------------------------------------------------------------
    // Linear algebra / shape ops
    // ------------------------------------------------------------------

    /// Matrix product (rank dispatch follows [`matmul`]).
    pub fn matmul(&self, other: &Var) -> Var {
        let out = matmul(&self.value(), &other.value()).expect("matmul: incompatible shapes");
        let (ls, rs) = (self.shape(), other.shape());
        Var::op(out, Parents::two(self.clone(), other.clone()), Backward::Matmul { ls, rs })
    }

    /// `self @ otherᵀ` with `other` passed untransposed — equivalent to
    /// `self.matmul(&other.transpose())` (bit-for-bit, including the
    /// backward pass) but never materializes the transposed copy or its
    /// graph node. Rank dispatch follows [`matmul_nt`].
    pub fn matmul_t(&self, other: &Var) -> Var {
        let out = matmul_nt(&self.value(), &other.value()).expect("matmul_t: incompatible shapes");
        let (ls, rs) = (self.shape(), other.shape());
        Var::op(out, Parents::two(self.clone(), other.clone()), Backward::MatmulNT { ls, rs })
    }

    /// `selfᵀ @ other` with `self` passed untransposed — equivalent to
    /// `self.transpose().matmul(other)` but never materializes the
    /// transposed copy or its graph node. Rank dispatch follows
    /// [`matmul_tn`]; gradients flow for the `(2,2)` and `(3,3)` rank
    /// combinations (the `(3,2)` shared-rhs form is forward-only).
    pub fn matmul_tn(&self, other: &Var) -> Var {
        let out = matmul_tn(&self.value(), &other.value()).expect("matmul_tn: incompatible shapes");
        let (ls, rs) = (self.shape(), other.shape());
        Var::op(out, Parents::two(self.clone(), other.clone()), Backward::MatmulTN { ls, rs })
    }

    /// Fused tiled attention node: `softmax(q·kᵀ·scale + mask)·v` over
    /// `[bh, t, dh]` operands via
    /// [`attention_fused`](crate::attention_fused) — never materializing
    /// the `[bh, t, t]` score tensor, forward or backward. Bit-identical
    /// (value and gradients) to the composed graph
    /// `q.matmul_t(k).scale(scale) [+ causal mask] .softmax_lastdim()
    /// [.mul(drop_mask)] .matmul(v)`; the backward recomputes probability
    /// tiles instead of reading saved probabilities. `drop_mask` is the
    /// inverted-dropout multiplier drawn by the caller (so the RNG stream
    /// matches [`Var::dropout`] exactly); it is the only `[t, t]`-sized
    /// state the node keeps, and only in training.
    pub fn attention(
        q: &Var,
        k: &Var,
        v: &Var,
        scale: f32,
        causal: bool,
        drop_mask: Option<NdArray>,
    ) -> Var {
        let out = attention_fused(&q.value(), &k.value(), &v.value(), scale, causal, drop_mask.as_ref())
            .expect("attention: incompatible shapes");
        Var::op(
            out,
            Parents::Many(vec![q.clone(), k.clone(), v.clone()]),
            Backward::Attention { scale, causal, mask: drop_mask },
        )
    }

    /// Swaps the last two axes.
    pub fn transpose(&self) -> Var {
        Var::op(
            self.value().transpose(),
            Parents::one(self.clone()),
            Backward::Transpose,
        )
    }

    /// General axis permutation.
    pub fn permute(&self, axes: &[usize]) -> Var {
        let mut inverse = Dims::zeros(axes.len());
        for (i, &a) in axes.iter().enumerate() {
            inverse[a] = i;
        }
        Var::op(
            self.value().permute(axes),
            Parents::one(self.clone()),
            Backward::Permute { inverse },
        )
    }

    /// Reshape preserving element count.
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let from = self.shape();
        Var::op(
            self.value().reshape(shape).expect("reshape: element count mismatch"),
            Parents::one(self.clone()),
            Backward::Reshape { from },
        )
    }

    /// Materialized broadcast to `target`.
    pub fn broadcast_to(&self, target: &[usize]) -> Var {
        let from = self.shape();
        Var::op(
            self.value().broadcast_to(target).expect("broadcast_to: incompatible"),
            Parents::one(self.clone()),
            Backward::BroadcastTo { from },
        )
    }

    /// Half-open slice `[start, start+len)` along `axis`; the gradient
    /// scatters back into a zero array of the original shape.
    pub fn slice(&self, axis: usize, start: usize, len: usize) -> Var {
        let full = self.shape();
        let out = self.value().slice(axis, start, len).expect("slice out of bounds");
        Var::op(out, Parents::one(self.clone()), Backward::Slice { full, axis, start, len })
    }

    /// Concatenates along `axis`; gradients split back to each part.
    pub fn concat(parts: &[Var], axis: usize) -> Var {
        assert!(!parts.is_empty(), "concat of zero Vars");
        let arrays: Vec<NdArray> = parts.iter().map(|p| p.to_array()).collect();
        let refs: Vec<&NdArray> = arrays.iter().collect();
        let out = NdArray::concat(&refs, axis);
        let sizes: Dims = arrays.iter().map(|a| a.shape()[axis]).collect();
        Var::op(out, Parents::Many(parts.to_vec()), Backward::Concat { axis, sizes })
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (rank-0 result).
    pub fn sum(&self) -> Var {
        let from = self.shape();
        Var::op(NdArray::scalar(self.value().sum()), Parents::one(self.clone()), Backward::Sum { from })
    }

    /// Mean of all elements (rank-0 result).
    pub fn mean(&self) -> Var {
        let n = self.value().numel() as f32;
        self.sum().scale(1.0 / n)
    }

    /// Sum along one axis.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Var {
        let from = self.shape();
        Var::op(
            self.value().sum_axis(axis, keepdim),
            Parents::one(self.clone()),
            Backward::SumAxis { from, axis, keepdim },
        )
    }

    /// Mean along one axis.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Var {
        let dim = self.shape()[axis] as f32;
        self.sum_axis(axis, keepdim).scale(1.0 / dim)
    }

    /// Maximum along one axis; the gradient routes to the (first) argmax
    /// position of each reduced group — the standard max-pool gradient.
    pub fn max_axis(&self, axis: usize, keepdim: bool) -> Var {
        let from = self.shape();
        let out = self.value().max_axis(axis, keepdim);
        Var::op(out, Parents::one(self.clone()), Backward::MaxAxis { from, axis })
    }

    // ------------------------------------------------------------------
    // Fused neural-network ops
    // ------------------------------------------------------------------

    /// Softmax over the last axis, with the standard fused Jacobian-vector
    /// product `s * (g - sum(g*s))`.
    pub fn softmax_lastdim(&self) -> Var {
        let out = self.value().softmax_lastdim();
        let s = out.clone();
        let last = self.shape().len() - 1;
        Var::op(out, Parents::one(self.clone()), Backward::Softmax { s, last })
    }

    /// Cross-entropy of `self` (logits, shape `[N, K]`) against integer
    /// class `targets`. Returns the mean loss as a rank-0 node.
    pub fn cross_entropy(&self, targets: &[usize]) -> Var {
        let logits = self.value();
        assert_eq!(logits.rank(), 2, "cross_entropy expects [N, K] logits");
        let n = logits.shape()[0];
        let k = logits.shape()[1];
        assert_eq!(targets.len(), n, "cross_entropy target count mismatch");
        let log_probs = logits.log_softmax_lastdim();
        let mut loss = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < k, "target class {t} out of range");
            loss -= log_probs.data()[i * k + t];
        }
        loss /= n as f32;
        let probs = logits.softmax_lastdim();
        drop(logits);
        Var::op(
            NdArray::scalar(loss),
            Parents::one(self.clone()),
            Backward::CrossEntropy { probs, targets: targets.to_vec() },
        )
    }

    /// Inverted dropout. During training each element is zeroed with
    /// probability `p` and survivors are scaled by `1/(1-p)`; in eval mode
    /// it is the identity. This randomness is the *only* source of view
    /// variation in TimeDRL's instance-contrastive task.
    pub fn dropout(&self, p: f32, training: bool, rng: &mut Prng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        if !training || p == 0.0 {
            return self.clone();
        }
        let keep = 1.0 - p;
        let mask = NdArray::from_fn(&self.shape(), |_| {
            if rng.bernoulli(keep) {
                1.0 / keep
            } else {
                0.0
            }
        });
        let out = self.value().mul(&mask);
        // The mask moves into the node — no second copy of it exists.
        Var::op(out, Parents::one(self.clone()), Backward::Dropout { mask })
    }

    /// Mean-squared error against a constant target (rank-0 result).
    pub fn mse_loss(&self, target: &NdArray) -> Var {
        let t = Var::constant(target.clone());
        let diff = self.sub(&t);
        diff.mul(&diff).mean()
    }

    /// Mean absolute error against a constant target (rank-0 result).
    pub fn mae_loss(&self, target: &NdArray) -> Var {
        let t = target.clone();
        let n = self.value().numel() as f32;
        let loss = self.value().zip_map(&t, |a, b| (a - b).abs()).expect("mae shapes").mean();
        Var::op(NdArray::scalar(loss), Parents::one(self.clone()), Backward::MaeLoss { target: t, n })
    }

    /// Row-wise cosine similarity between `self` and `other`, both
    /// `[N, D]`; returns the mean similarity as a rank-0 node. TimeDRL's
    /// contrastive loss is the *negative* of this (Eq. 16–18).
    pub fn cosine_similarity_mean(&self, other: &Var) -> Var {
        const EPS: f32 = 1e-8;
        let dot = self.mul(other).sum_axis(1, false);
        let na = self.mul(self).sum_axis(1, false).add_scalar(EPS).sqrt();
        let nb = other.mul(other).sum_axis(1, false).add_scalar(EPS).sqrt();
        dot.div(&na.mul(&nb)).mean()
    }

    // ------------------------------------------------------------------
    // Backward pass
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from this (scalar) node, seeding
    /// with gradient 1.
    ///
    /// # Panics
    /// Panics if the node holds more than one element, or if a backward
    /// rule fails (see [`Var::try_backward`] for the fallible form).
    pub fn backward(&self) {
        self.try_backward().expect("backward failed");
    }

    /// Runs reverse-mode differentiation seeding this node with `grad`.
    ///
    /// # Panics
    /// Panics if a backward rule fails (see [`Var::try_backward_with`]).
    pub fn backward_with(&self, grad: NdArray) {
        self.try_backward_with(grad).expect("backward failed");
    }

    /// Fallible form of [`Var::backward`]: shape mismatches inside matmul
    /// backward rules surface as a typed
    /// [`TensorError`](crate::TensorError) instead of aborting a long
    /// training run mid-backward.
    ///
    /// # Errors
    /// Propagates the first backward-rule failure, leaving already-written
    /// gradients in place (callers should `zero_grad` before retrying).
    ///
    /// # Panics
    /// Panics if the node holds more than one element — that is a misuse of
    /// the API, not a data-dependent failure.
    pub fn try_backward(&self) -> Result<()> {
        assert_eq!(
            self.value().numel(),
            1,
            "backward() requires a scalar; use backward_with for other shapes"
        );
        self.try_backward_with(NdArray::full(&self.shape(), 1.0))
    }

    /// Fallible form of [`Var::backward_with`].
    ///
    /// # Errors
    /// Propagates the first backward-rule failure (see
    /// [`Var::try_backward`]).
    pub fn try_backward_with(&self, grad: NdArray) -> Result<()> {
        assert_eq!(grad.shape(), self.shape().as_slice(), "seed gradient shape mismatch");
        if !self.0.requires_grad {
            return Ok(());
        }
        let order = self.topo_order();
        {
            let mut g = self.0.grad.borrow_mut();
            match g.as_mut() {
                Some(existing) => existing.add_assign(&grad),
                None => *g = Some(grad),
            }
        }
        for node in order.iter().rev() {
            let Some(backward) = node.0.backward.as_ref() else { continue };
            // Borrow the output gradient in place for the closure — no
            // clone. The closure only touches *parent* grad cells, which
            // are distinct `RefCell`s (a node is never its own parent), so
            // holding this borrow across the call is safe. Accumulation
            // into parents is in-place (`add_assign`); the first
            // contribution moves the array into the slot.
            let out_grad = node.0.grad.borrow();
            let Some(out_grad) = out_grad.as_ref() else { continue };
            let parent_grads = backward.apply(&node.0.parents, out_grad)?;
            debug_assert_eq!(parent_grads.len(), node.0.parents.as_slice().len());
            for (parent, pg) in node.0.parents.as_slice().iter().zip(parent_grads.into_iter()) {
                if !parent.0.requires_grad {
                    continue;
                }
                let mut slot = parent.0.grad.borrow_mut();
                match slot.as_mut() {
                    Some(existing) => existing.add_assign(&pg),
                    None => *slot = Some(pg),
                }
            }
        }
        Ok(())
    }

    /// Post-order (parents before children) topological ordering of the
    /// graph reachable from `self` through grad-requiring nodes.
    fn topo_order(&self) -> Vec<Var> {
        let mut order: Vec<Var> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        // Iterative post-order DFS to avoid stack overflow on deep tapes.
        enum Frame {
            Enter(Var),
            Exit(Var),
        }
        let mut stack = vec![Frame::Enter(self.clone())];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    if !v.0.requires_grad || visited.contains(&v.0.id) {
                        continue;
                    }
                    visited.insert(v.0.id);
                    stack.push(Frame::Exit(v.clone()));
                    for p in v.0.parents.as_slice() {
                        stack.push(Frame::Enter(p.clone()));
                    }
                }
                Frame::Exit(v) => order.push(v),
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_of(v: &Var) -> NdArray {
        v.grad().expect("gradient missing")
    }

    fn assert_bits_eq(a: &NdArray, b: &NdArray, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
        for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn attention_node_matches_composed_graph_bitwise() {
        let mut rng = Prng::new(41);
        for (causal, with_drop) in [(false, false), (true, false), (false, true), (true, true)] {
            let (bh, t, dh) = (3usize, 9usize, 6usize);
            let q0 = rng.randn(&[bh, t, dh]);
            let k0 = rng.randn(&[bh, t, dh]);
            let v0 = rng.randn(&[bh, t, dh]);
            let g0 = rng.randn(&[bh, t, dh]);
            let scale = 1.0 / (dh as f32).sqrt();
            let keep = 0.8f32;
            let mask = with_drop.then(|| {
                NdArray::from_fn(&[bh, t, t], |_| {
                    if rng.bernoulli(keep) {
                        1.0 / keep
                    } else {
                        0.0
                    }
                })
            });

            // Composed graph — the seed tape's exact op chain.
            let (qc, kc, vc) =
                (Var::parameter(q0.clone()), Var::parameter(k0.clone()), Var::parameter(v0.clone()));
            let mut scores = qc.matmul_t(&kc).scale(scale);
            if causal {
                let m2 = NdArray::from_fn(&[t, t], |f| if f % t > f / t { -1e9 } else { 0.0 });
                scores = scores.add(&Var::constant(m2));
            }
            let probs = scores.softmax_lastdim();
            let attn = match &mask {
                Some(m) => probs.mul(&Var::constant(m.clone())),
                None => probs,
            };
            let composed = attn.matmul(&vc);
            composed.backward_with(g0.clone());

            // Fused node.
            let (qf, kf, vf) =
                (Var::parameter(q0), Var::parameter(k0), Var::parameter(v0));
            let fused = Var::attention(&qf, &kf, &vf, scale, causal, mask);
            fused.backward_with(g0);

            let what = format!("causal={causal} drop={with_drop}");
            assert_bits_eq(&fused.to_array(), &composed.to_array(), &format!("value {what}"));
            assert_bits_eq(&grad_of(&qf), &grad_of(&qc), &format!("dq {what}"));
            assert_bits_eq(&grad_of(&kf), &grad_of(&kc), &format!("dk {what}"));
            assert_bits_eq(&grad_of(&vf), &grad_of(&vc), &format!("dv {what}"));
        }
    }

    #[test]
    fn attention_node_without_grad_parents_is_leaf() {
        let mut rng = Prng::new(43);
        let q = Var::constant(rng.randn(&[2, 5, 4]));
        let k = Var::constant(rng.randn(&[2, 5, 4]));
        let v = Var::constant(rng.randn(&[2, 5, 4]));
        let out = Var::attention(&q, &k, &v, 0.5, true, None);
        assert!(!out.requires_grad());
    }

    #[test]
    fn add_mul_grads() {
        let x = Var::parameter(NdArray::from_slice(&[2.0, 3.0]));
        let y = Var::parameter(NdArray::from_slice(&[5.0, 7.0]));
        let z = x.mul(&y).add(&x).sum(); // z = sum(x*y + x)
        z.backward();
        assert_eq!(grad_of(&x).data(), &[6.0, 8.0]); // y + 1
        assert_eq!(grad_of(&y).data(), &[2.0, 3.0]); // x
    }

    #[test]
    fn reuse_accumulates() {
        let x = Var::parameter(NdArray::from_slice(&[3.0]));
        let z = x.mul(&x).sum(); // x^2 -> grad 2x
        z.backward();
        assert_eq!(grad_of(&x).data(), &[6.0]);
    }

    #[test]
    fn broadcast_grad_reduces() {
        let x = Var::parameter(NdArray::from_slice(&[1.0, 2.0])); // [2]
        let y = Var::parameter(NdArray::zeros(&[3, 2]));
        let z = x.add(&y).sum();
        z.backward();
        assert_eq!(grad_of(&x).data(), &[3.0, 3.0]);
        assert_eq!(grad_of(&y).shape(), &[3, 2]);
    }

    #[test]
    fn matmul_grads_match_formula() {
        let a = Var::parameter(NdArray::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap());
        let b = Var::parameter(NdArray::from_vec(&[3, 2], vec![1., 0., 0., 1., 1., 1.]).unwrap());
        let z = a.matmul(&b).sum();
        z.backward();
        // dz/dA = ones(2,2) @ B^T
        let expected_a = matmul(&NdArray::ones(&[2, 2]), &b.to_array().transpose()).unwrap();
        assert_eq!(grad_of(&a), expected_a);
        let expected_b = matmul(&a.to_array().transpose(), &NdArray::ones(&[2, 2])).unwrap();
        assert_eq!(grad_of(&b), expected_b);
    }

    #[test]
    fn matmul_t_matches_transpose_composition() {
        // Zero-free data: value AND both gradients of x.matmul_t(&w) must
        // equal the explicit x.matmul(&w.transpose()) composition.
        let a0 = NdArray::from_fn(&[3, 4], |i| (i as f32 * 0.31).sin() + 1.5);
        let b0 = NdArray::from_fn(&[5, 4], |i| (i as f32 * 0.17).cos() + 1.5);
        let (a, b) = (Var::parameter(a0.clone()), Var::parameter(b0.clone()));
        let c = a.matmul_t(&b);
        c.sum().backward();
        let (a2, b2) = (Var::parameter(a0), Var::parameter(b0));
        let c2 = a2.matmul(&b2.transpose());
        c2.sum().backward();
        assert_eq!(c.to_array(), c2.to_array());
        assert_eq!(grad_of(&a), grad_of(&a2));
        assert_eq!(grad_of(&b), grad_of(&b2));
    }

    #[test]
    fn matmul_tn_matches_transpose_composition() {
        let a0 = NdArray::from_fn(&[4, 3], |i| (i as f32 * 0.23).sin() + 1.5);
        let b0 = NdArray::from_fn(&[4, 5], |i| (i as f32 * 0.41).cos() + 1.5);
        let (a, b) = (Var::parameter(a0.clone()), Var::parameter(b0.clone()));
        let c = a.matmul_tn(&b);
        c.sum().backward();
        let (a2, b2) = (Var::parameter(a0), Var::parameter(b0));
        let c2 = a2.transpose().matmul(&b2);
        c2.sum().backward();
        assert_eq!(c.to_array(), c2.to_array());
        assert_eq!(grad_of(&a), grad_of(&a2));
        assert_eq!(grad_of(&b), grad_of(&b2));
    }

    #[test]
    fn matmul_t_batched_shared_rhs_grads() {
        // (3,2) rank pair: x [bs,m,k] times shared wᵀ [n,k]; the weight
        // gradient folds the batch. Compare against the composition.
        let x0 = NdArray::from_fn(&[2, 3, 4], |i| (i as f32 * 0.19).sin() + 1.2);
        let w0 = NdArray::from_fn(&[5, 4], |i| (i as f32 * 0.37).cos() + 1.2);
        let (x, w) = (Var::parameter(x0.clone()), Var::parameter(w0.clone()));
        x.matmul_t(&w).sum().backward();
        let (x2, w2) = (Var::parameter(x0), Var::parameter(w0));
        x2.matmul(&w2.transpose()).sum().backward();
        assert_eq!(grad_of(&x), grad_of(&x2));
        assert_eq!(grad_of(&w), grad_of(&w2));
    }

    #[test]
    fn try_backward_surfaces_matmul_mismatch() {
        // Build a graph whose backward must fail: a (3,2)-rank matmul_tn is
        // forward-only, so its dA rule hits an unsupported rank pair. The
        // error must surface as Err, not a panic.
        let a = Var::parameter(NdArray::ones(&[2, 3, 4]));
        let b = Var::parameter(NdArray::ones(&[3, 5]));
        let c = a.matmul_tn(&b); // [2,4,5] forward is fine
        assert_eq!(c.shape().as_slice(), &[2, 4, 5]);
        let err = c.sum().try_backward().unwrap_err();
        assert!(err.to_string().contains("matmul"), "unexpected error: {err}");
    }

    #[test]
    fn detach_blocks_gradient() {
        let x = Var::parameter(NdArray::from_slice(&[2.0]));
        let z = x.detach().mul(&x).sum(); // only the non-detached path flows
        z.backward();
        assert_eq!(grad_of(&x).data(), &[2.0]); // d/dx (c * x) = c = 2
    }

    #[test]
    fn slice_grad_scatters() {
        let x = Var::parameter(NdArray::from_slice(&[1.0, 2.0, 3.0, 4.0]));
        let z = x.slice(0, 1, 2).sum();
        z.backward();
        assert_eq!(grad_of(&x).data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn concat_grad_splits() {
        let a = Var::parameter(NdArray::from_slice(&[1.0, 2.0]));
        let b = Var::parameter(NdArray::from_slice(&[3.0]));
        let z = Var::concat(&[a.clone(), b.clone()], 0).scale(2.0).sum();
        z.backward();
        assert_eq!(grad_of(&a).data(), &[2.0, 2.0]);
        assert_eq!(grad_of(&b).data(), &[2.0]);
    }

    #[test]
    fn softmax_grad_sums_to_zero() {
        let x = Var::parameter(NdArray::from_vec(&[1, 3], vec![0.2, -0.3, 0.8]).unwrap());
        let s = x.softmax_lastdim();
        // Pick out the first component as loss.
        let z = s.slice(1, 0, 1).sum();
        z.backward();
        let g = grad_of(&x);
        // Softmax Jacobian rows sum to zero.
        assert!(g.sum().abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_perfect_prediction_small_loss() {
        let logits = Var::parameter(
            NdArray::from_vec(&[2, 3], vec![10.0, 0.0, 0.0, 0.0, 10.0, 0.0]).unwrap(),
        );
        let loss = logits.cross_entropy(&[0, 1]);
        assert!(loss.item() < 1e-3);
        loss.backward();
        assert!(grad_of(&logits).l2_norm() < 1e-3);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut rng = Prng::new(0);
        let x = Var::parameter(NdArray::ones(&[4, 4]));
        let y = x.dropout(0.5, false, &mut rng);
        assert_eq!(y.to_array(), x.to_array());
    }

    #[test]
    fn dropout_train_scales_survivors() {
        let mut rng = Prng::new(0);
        let x = Var::parameter(NdArray::ones(&[100, 100]));
        let y = x.dropout(0.5, true, &mut rng);
        let vals = y.to_array();
        for &v in vals.data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
        // Expectation preserved within tolerance.
        assert!((vals.mean() - 1.0).abs() < 0.05);
    }

    #[test]
    fn two_dropout_passes_differ() {
        let mut rng = Prng::new(1);
        let x = Var::parameter(NdArray::ones(&[8, 8]));
        let a = x.dropout(0.3, true, &mut rng).to_array();
        let b = x.dropout(0.3, true, &mut rng).to_array();
        assert_ne!(a, b, "dropout must give distinct views (TimeDRL's two-pass trick)");
    }

    #[test]
    fn cosine_similarity_of_identical_rows_is_one() {
        let a = Var::parameter(NdArray::from_vec(&[2, 3], vec![1., 2., 3., -1., 0., 2.]).unwrap());
        let sim = a.cosine_similarity_mean(&a.detach());
        assert!((sim.item() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn mse_loss_value_and_grad() {
        let x = Var::parameter(NdArray::from_slice(&[1.0, 2.0]));
        let t = NdArray::from_slice(&[0.0, 0.0]);
        let loss = x.mse_loss(&t); // (1 + 4)/2
        assert!((loss.item() - 2.5).abs() < 1e-6);
        loss.backward();
        assert_eq!(grad_of(&x).data(), &[1.0, 2.0]); // 2(x-t)/n
    }

    #[test]
    fn mae_loss_grad_is_sign() {
        let x = Var::parameter(NdArray::from_slice(&[2.0, -3.0]));
        let t = NdArray::zeros(&[2]);
        let loss = x.mae_loss(&t);
        assert!((loss.item() - 2.5).abs() < 1e-6);
        loss.backward();
        assert_eq!(grad_of(&x).data(), &[0.5, -0.5]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let x = Var::parameter(NdArray::from_slice(&[1.0]));
        let mut y = x.clone();
        for _ in 0..5000 {
            y = y.add_scalar(0.0);
        }
        y.sum().backward();
        assert_eq!(grad_of(&x).data(), &[1.0]);
    }

    #[test]
    fn inference_graph_records_nothing() {
        let c = Var::constant(NdArray::ones(&[2, 2]));
        let out = c.mul(&c).relu();
        assert!(!out.requires_grad());
    }

    #[test]
    fn permute_grad_roundtrips() {
        let x = Var::parameter(NdArray::from_fn(&[2, 3, 4], |i| i as f32));
        let z = x.permute(&[2, 0, 1]).scale(3.0).sum();
        z.backward();
        assert_eq!(grad_of(&x), NdArray::full(&[2, 3, 4], 3.0));
    }
}
