//! Shape arithmetic: row-major strides, broadcasting rules, and index math.
//!
//! Shapes, strides, and coordinate vectors are [`Dims`]: a small inline
//! array (up to [`INLINE_RANK`] axes) that spills to the heap only for
//! deeper ranks. Every tensor in this repo is rank <= 4, so in practice
//! shape handling never allocates — a prerequisite for the steady-state
//! allocation budget of DESIGN.md §10.

use crate::error::{Result, TensorError};
use std::ops::{Deref, DerefMut};

/// Maximum rank stored inline (no heap) by [`Dims`].
pub const INLINE_RANK: usize = 6;

/// A shape / strides / coordinates vector with inline storage.
///
/// Behaves like a `Vec<usize>` for everything tensor code needs: derefs to
/// `&[usize]` (indexing, slicing, iteration), supports `push` / `insert` /
/// `remove`, and compares against slices and `Vec<usize>`.
#[derive(Clone, Debug, Default)]
pub struct Dims {
    len: u8,
    inline: [usize; INLINE_RANK],
    /// Spill storage for rank > INLINE_RANK; `len`/`inline` are unused
    /// whenever this is `Some`.
    spill: Option<Vec<usize>>,
}

impl Dims {
    /// An empty (rank-0) dims vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A dims vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        if n <= INLINE_RANK {
            Self { len: n as u8, inline: [0; INLINE_RANK], spill: None }
        } else {
            Self { len: 0, inline: [0; INLINE_RANK], spill: Some(vec![0; n]) }
        }
    }

    /// The dims as a plain slice.
    pub fn as_slice(&self) -> &[usize] {
        self
    }

    /// Appends an axis.
    pub fn push(&mut self, dim: usize) {
        match &mut self.spill {
            Some(v) => v.push(dim),
            None => {
                if (self.len as usize) < INLINE_RANK {
                    self.inline[self.len as usize] = dim;
                    self.len += 1;
                } else {
                    let mut v = self.inline.to_vec();
                    v.push(dim);
                    self.spill = Some(v);
                }
            }
        }
    }

    /// Inserts an axis at `index`, shifting later axes right.
    pub fn insert(&mut self, index: usize, dim: usize) {
        match &mut self.spill {
            Some(v) => v.insert(index, dim),
            None => {
                let n = self.len as usize;
                assert!(index <= n, "insert index {index} out of range for rank {n}");
                if n < INLINE_RANK {
                    self.inline.copy_within(index..n, index + 1);
                    self.inline[index] = dim;
                    self.len += 1;
                } else {
                    let mut v = self.inline.to_vec();
                    v.insert(index, dim);
                    self.spill = Some(v);
                }
            }
        }
    }

    /// Removes and returns the axis at `index`, shifting later axes left.
    pub fn remove(&mut self, index: usize) -> usize {
        match &mut self.spill {
            Some(v) => v.remove(index),
            None => {
                let n = self.len as usize;
                assert!(index < n, "remove index {index} out of range for rank {n}");
                let out = self.inline[index];
                self.inline.copy_within(index + 1..n, index);
                self.len -= 1;
                out
            }
        }
    }

    /// Copies the dims into a `Vec<usize>`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.as_slice().to_vec()
    }
}

impl Deref for Dims {
    type Target = [usize];
    fn deref(&self) -> &[usize] {
        match &self.spill {
            Some(v) => v,
            None => &self.inline[..self.len as usize],
        }
    }
}

impl DerefMut for Dims {
    fn deref_mut(&mut self) -> &mut [usize] {
        match &mut self.spill {
            Some(v) => v,
            None => &mut self.inline[..self.len as usize],
        }
    }
}

impl From<&[usize]> for Dims {
    fn from(slice: &[usize]) -> Self {
        if slice.len() <= INLINE_RANK {
            let mut inline = [0usize; INLINE_RANK];
            inline[..slice.len()].copy_from_slice(slice);
            Self { len: slice.len() as u8, inline, spill: None }
        } else {
            Self { len: 0, inline: [0; INLINE_RANK], spill: Some(slice.to_vec()) }
        }
    }
}

impl<const N: usize> From<[usize; N]> for Dims {
    fn from(arr: [usize; N]) -> Self {
        Self::from(&arr[..])
    }
}

impl From<Vec<usize>> for Dims {
    fn from(v: Vec<usize>) -> Self {
        Self::from(&v[..])
    }
}

impl FromIterator<usize> for Dims {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut out = Self::new();
        for d in iter {
            out.push(d);
        }
        out
    }
}

impl PartialEq for Dims {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Dims {}

impl PartialEq<[usize]> for Dims {
    fn eq(&self, other: &[usize]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[usize]> for Dims {
    fn eq(&self, other: &&[usize]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[usize; N]> for Dims {
    fn eq(&self, other: &[usize; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[usize; N]> for Dims {
    fn eq(&self, other: &&[usize; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<usize>> for Dims {
    fn eq(&self, other: &Vec<usize>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Dims> for Vec<usize> {
    fn eq(&self, other: &Dims) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Dims> for [usize] {
    fn eq(&self, other: &Dims) -> bool {
        self == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a Dims {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Computes row-major (C-order) strides for `shape`.
///
/// The stride of the last axis is 1; each earlier axis strides over the
/// product of all later dimensions. An empty shape (scalar) yields an empty
/// stride vector.
pub fn row_major_strides(shape: &[usize]) -> Dims {
    let mut strides = Dims::zeros(shape.len());
    let mut acc = 1usize;
    for (s, &dim) in strides.iter_mut().zip(shape.iter()).rev() {
        *s = acc;
        acc *= dim;
    }
    strides
}

/// Total number of elements implied by `shape`.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Computes the broadcast result shape of `lhs` and `rhs` following NumPy
/// rules: align trailing axes; each pair of dims must be equal or one of them
/// must be 1.
pub fn broadcast_shape(lhs: &[usize], rhs: &[usize]) -> Result<Dims> {
    let rank = lhs.len().max(rhs.len());
    let mut out = Dims::zeros(rank);
    for i in 0..rank {
        let l = if i < rank - lhs.len() { 1 } else { lhs[i - (rank - lhs.len())] };
        let r = if i < rank - rhs.len() { 1 } else { rhs[i - (rank - rhs.len())] };
        out[i] = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::BroadcastMismatch { lhs: lhs.to_vec(), rhs: rhs.to_vec() });
        };
    }
    Ok(out)
}

/// Returns `true` if `from` can be broadcast to `to`.
pub fn broadcastable_to(from: &[usize], to: &[usize]) -> bool {
    if from.len() > to.len() {
        return false;
    }
    let offset = to.len() - from.len();
    from.iter().enumerate().all(|(i, &d)| d == 1 || d == to[i + offset])
}

/// Strides for reading an array of shape `from` as if it had shape `to`
/// (broadcasting): broadcast axes get stride 0.
///
/// Precondition: `broadcastable_to(from, to)`.
pub fn broadcast_strides(from: &[usize], to: &[usize]) -> Dims {
    debug_assert!(broadcastable_to(from, to));
    let base = row_major_strides(from);
    let offset = to.len() - from.len();
    let mut out = Dims::zeros(to.len());
    for i in 0..from.len() {
        out[i + offset] = if from[i] == 1 && to[i + offset] != 1 { 0 } else { base[i] };
    }
    out
}

/// Converts a flat row-major index into multi-dimensional coordinates.
pub fn unravel(mut flat: usize, shape: &[usize]) -> Dims {
    let mut coords = Dims::zeros(shape.len());
    for i in (0..shape.len()).rev() {
        coords[i] = flat % shape[i];
        flat /= shape[i];
    }
    coords
}

/// Converts multi-dimensional coordinates to a flat offset given `strides`.
pub fn ravel(coords: &[usize], strides: &[usize]) -> usize {
    coords.iter().zip(strides.iter()).map(|(&c, &s)| c * s).sum()
}

/// Validates an axis against a rank, returning it unchanged if in range.
pub fn check_axis(axis: usize, rank: usize) -> Result<usize> {
    if axis < rank {
        Ok(axis)
    } else {
        Err(TensorError::AxisOutOfRange { axis, rank })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(row_major_strides(&[5]), vec![1]);
        assert_eq!(row_major_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shape(&[2, 3], &[3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shape(&[2, 1, 4], &[3, 1]).unwrap(), vec![2, 3, 4]);
        assert_eq!(broadcast_shape(&[], &[2, 2]).unwrap(), vec![2, 2]);
        assert!(broadcast_shape(&[2, 3], &[4]).is_err());
    }

    #[test]
    fn broadcast_strides_zeroes_expanded_axes() {
        assert_eq!(broadcast_strides(&[3], &[2, 3]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[2, 1], &[2, 5]), vec![1, 0]);
    }

    #[test]
    fn ravel_unravel_roundtrip() {
        let shape = [2, 3, 4];
        let strides = row_major_strides(&shape);
        for flat in 0..numel(&shape) {
            let coords = unravel(flat, &shape);
            assert_eq!(ravel(&coords, &strides), flat);
        }
    }

    #[test]
    fn axis_check() {
        assert!(check_axis(1, 2).is_ok());
        assert!(check_axis(2, 2).is_err());
    }

    #[test]
    fn dims_inline_edits() {
        let mut d = Dims::from([2, 3, 4]);
        assert_eq!(d.len(), 3);
        assert_eq!(d[1], 3);
        d[1] = 7;
        assert_eq!(d, [2, 7, 4]);
        d.insert(0, 9);
        assert_eq!(d, [9, 2, 7, 4]);
        assert_eq!(d.remove(2), 7);
        assert_eq!(d, [9, 2, 4]);
        d.push(5);
        assert_eq!(d, vec![9, 2, 4, 5]);
        assert_eq!(&d[..2], &[9, 2]);
        assert_eq!(d.iter().product::<usize>(), 360);
    }

    #[test]
    fn dims_never_allocates_at_tensor_ranks() {
        let (_, n) = testkit::alloc::count_allocations(|| {
            let mut d = Dims::from([4, 8, 16, 32]);
            d.insert(2, 1);
            d.remove(0);
            d.push(2);
            std::hint::black_box(ravel(&d, &row_major_strides(&d)))
        });
        assert_eq!(n, 0, "rank <= {INLINE_RANK} shape math must stay inline");
    }

    #[test]
    fn dims_spills_beyond_inline_rank() {
        let deep: Vec<usize> = (1..=INLINE_RANK + 2).collect();
        let mut d = Dims::from(&deep[..]);
        assert_eq!(d, deep);
        d.push(99);
        assert_eq!(d[INLINE_RANK + 1], INLINE_RANK + 2);
        assert_eq!(*d.last().unwrap(), 99);
        // Growing an inline Dims past the boundary spills correctly too.
        let mut g = Dims::from([1, 2, 3, 4, 5, 6]);
        g.push(7);
        assert_eq!(g, vec![1, 2, 3, 4, 5, 6, 7]);
        g.insert(0, 0);
        assert_eq!(g, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }
}
