//! Shape arithmetic: row-major strides, broadcasting rules, and index math.

use crate::error::{Result, TensorError};

/// Computes row-major (C-order) strides for `shape`.
///
/// The stride of the last axis is 1; each earlier axis strides over the
/// product of all later dimensions. An empty shape (scalar) yields an empty
/// stride vector.
pub fn row_major_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0usize; shape.len()];
    let mut acc = 1usize;
    for (s, &dim) in strides.iter_mut().zip(shape.iter()).rev() {
        *s = acc;
        acc *= dim;
    }
    strides
}

/// Total number of elements implied by `shape`.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Computes the broadcast result shape of `lhs` and `rhs` following NumPy
/// rules: align trailing axes; each pair of dims must be equal or one of them
/// must be 1.
pub fn broadcast_shape(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let l = if i < rank - lhs.len() { 1 } else { lhs[i - (rank - lhs.len())] };
        let r = if i < rank - rhs.len() { 1 } else { rhs[i - (rank - rhs.len())] };
        out[i] = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::BroadcastMismatch { lhs: lhs.to_vec(), rhs: rhs.to_vec() });
        };
    }
    Ok(out)
}

/// Returns `true` if `from` can be broadcast to `to`.
pub fn broadcastable_to(from: &[usize], to: &[usize]) -> bool {
    if from.len() > to.len() {
        return false;
    }
    let offset = to.len() - from.len();
    from.iter().enumerate().all(|(i, &d)| d == 1 || d == to[i + offset])
}

/// Strides for reading an array of shape `from` as if it had shape `to`
/// (broadcasting): broadcast axes get stride 0.
///
/// Precondition: `broadcastable_to(from, to)`.
pub fn broadcast_strides(from: &[usize], to: &[usize]) -> Vec<usize> {
    debug_assert!(broadcastable_to(from, to));
    let base = row_major_strides(from);
    let offset = to.len() - from.len();
    let mut out = vec![0usize; to.len()];
    for i in 0..from.len() {
        out[i + offset] = if from[i] == 1 && to[i + offset] != 1 { 0 } else { base[i] };
    }
    out
}

/// Converts a flat row-major index into multi-dimensional coordinates.
pub fn unravel(mut flat: usize, shape: &[usize]) -> Vec<usize> {
    let mut coords = vec![0usize; shape.len()];
    for i in (0..shape.len()).rev() {
        coords[i] = flat % shape[i];
        flat /= shape[i];
    }
    coords
}

/// Converts multi-dimensional coordinates to a flat offset given `strides`.
pub fn ravel(coords: &[usize], strides: &[usize]) -> usize {
    coords.iter().zip(strides.iter()).map(|(&c, &s)| c * s).sum()
}

/// Validates an axis against a rank, returning it unchanged if in range.
pub fn check_axis(axis: usize, rank: usize) -> Result<usize> {
    if axis < rank {
        Ok(axis)
    } else {
        Err(TensorError::AxisOutOfRange { axis, rank })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(row_major_strides(&[5]), vec![1]);
        assert_eq!(row_major_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shape(&[2, 3], &[3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shape(&[2, 1, 4], &[3, 1]).unwrap(), vec![2, 3, 4]);
        assert_eq!(broadcast_shape(&[], &[2, 2]).unwrap(), vec![2, 2]);
        assert!(broadcast_shape(&[2, 3], &[4]).is_err());
    }

    #[test]
    fn broadcast_strides_zeroes_expanded_axes() {
        assert_eq!(broadcast_strides(&[3], &[2, 3]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[2, 1], &[2, 5]), vec![1, 0]);
    }

    #[test]
    fn ravel_unravel_roundtrip() {
        let shape = [2, 3, 4];
        let strides = row_major_strides(&shape);
        for flat in 0..numel(&shape) {
            let coords = unravel(flat, &shape);
            assert_eq!(ravel(&coords, &strides), flat);
        }
    }

    #[test]
    fn axis_check() {
        assert!(check_axis(1, 2).is_ok());
        assert!(check_axis(2, 2).is_err());
    }
}
