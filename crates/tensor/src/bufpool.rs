//! Size-bucketed buffer pool for `f32` tensor storage.
//!
//! Every [`NdArray`](crate::NdArray) owns its data through a [`Buffer`]: a
//! `Vec<f32>` that, when dropped, returns to a thread-local free-list
//! instead of the heap. Steady-state training steps therefore recycle the
//! same handful of blocks over and over and perform near-zero new heap
//! allocations (measured by `testkit::alloc`, gated by `ci.sh`; see
//! DESIGN.md §10).
//!
//! Determinism contract: a checked-out buffer is indistinguishable from a
//! fresh `vec![0.0; len]` — [`take_zeroed`] re-zeroes recycled storage, and
//! [`take_empty`] hands back a cleared `Vec` for push-style construction.
//! No stale data is ever observable, so warm-pool and cold-pool runs are
//! bit-identical (property-tested in the determinism suite).
//!
//! The pool is thread-local. Worker threads spawned by `testkit::pool`
//! recycle into their own (short-lived) pools; that only affects reuse
//! efficiency, never values. Buffers freed during thread teardown, when
//! the thread-local may already be gone, fall back to a plain heap free.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Buckets are powers of two: bucket `i` stores vectors with
/// `capacity == 1 << i`. 2^27 floats = 512 MiB of f32 — anything larger
/// is not pooled.
const MAX_BUCKET: usize = 27;

/// Per-bucket retention limit. A live autograd graph holds one value and
/// one gradient block per node, and most nodes in a transformer step share
/// a single size class — so the simultaneous-live count per bucket reaches
/// several hundred before the graph drops. The cap must exceed that peak,
/// or the overflow is freed at graph teardown and re-allocated every step.
const MAX_PER_BUCKET: usize = 2048;

struct Pool {
    buckets: Vec<Vec<Vec<f32>>>,
    recycled: u64,
    misses: u64,
}

impl Pool {
    fn new() -> Self {
        Self { buckets: Vec::new(), recycled: 0, misses: 0 }
    }

    fn bucket_index(len: usize) -> usize {
        // Smallest power-of-two capacity holding `len` elements.
        len.max(1).next_power_of_two().trailing_zeros() as usize
    }

    /// Pops a recycled vector with capacity >= len, or allocates one with
    /// the bucket's power-of-two capacity.
    fn take(&mut self, len: usize) -> Vec<f32> {
        let idx = Self::bucket_index(len);
        if idx <= MAX_BUCKET {
            if let Some(v) = self.buckets.get_mut(idx).and_then(Vec::pop) {
                self.recycled += 1;
                return v;
            }
            self.misses += 1;
            return Vec::with_capacity(1usize << idx);
        }
        self.misses += 1;
        Vec::with_capacity(len)
    }

    fn recycle(&mut self, v: Vec<f32>) {
        let cap = v.capacity();
        if cap == 0 {
            return;
        }
        // Only pool exact power-of-two capacities so `take` can rely on
        // bucket i ⇒ capacity >= 1 << i.
        if !cap.is_power_of_two() {
            return;
        }
        let idx = cap.trailing_zeros() as usize;
        if idx > MAX_BUCKET {
            return;
        }
        if self.buckets.len() <= idx {
            self.buckets.resize_with(idx + 1, Vec::new);
        }
        let bucket = &mut self.buckets[idx];
        if bucket.len() < MAX_PER_BUCKET {
            bucket.push(v);
        }
    }

    fn clear(&mut self) {
        self.buckets.clear();
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::new());
}

fn with_pool<R>(f: impl FnOnce(&mut Pool) -> R) -> Option<R> {
    // `try_with` so drops during thread teardown degrade to plain frees.
    POOL.try_with(|p| f(&mut p.borrow_mut())).ok()
}

/// An `f32` storage block that returns to the thread-local pool on drop.
///
/// Dereferences to `Vec<f32>`, so existing `Vec` code (push, resize,
/// slicing) works unchanged. Cloning copies the data into another pooled
/// block.
#[derive(Default)]
pub(crate) struct Buffer {
    vec: Vec<f32>,
}

impl Buffer {
    /// A pooled buffer of `len` zeros — indistinguishable from
    /// `vec![0.0; len]`.
    pub fn zeroed(len: usize) -> Self {
        Self::filled(len, 0.0)
    }

    /// A pooled buffer of `len` copies of `value` — indistinguishable from
    /// `vec![value; len]`.
    pub fn filled(len: usize, value: f32) -> Self {
        let mut vec = with_pool(|p| p.take(len)).unwrap_or_else(|| Vec::with_capacity(len));
        vec.clear();
        vec.resize(len, value);
        Self { vec }
    }

    /// A pooled, empty buffer with capacity for at least `len` elements,
    /// for push-style construction.
    pub fn with_capacity(len: usize) -> Self {
        let mut vec = with_pool(|p| p.take(len)).unwrap_or_else(|| Vec::with_capacity(len));
        vec.clear();
        Self { vec }
    }

    /// A pooled copy of `src`.
    pub fn copied_from(src: &[f32]) -> Self {
        let mut b = Self::with_capacity(src.len());
        b.vec.extend_from_slice(src);
        b
    }

    /// Wraps an existing `Vec` (e.g. caller-provided data). Its capacity
    /// joins the pool when the buffer drops, if it fits a bucket.
    pub fn from_vec(vec: Vec<f32>) -> Self {
        Self { vec }
    }

    /// Detaches the underlying `Vec` (nothing returns to the pool).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.vec)
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        let v = std::mem::take(&mut self.vec);
        if v.capacity() > 0 {
            with_pool(|p| p.recycle(v));
        }
    }
}

impl Deref for Buffer {
    type Target = Vec<f32>;
    fn deref(&self) -> &Vec<f32> {
        &self.vec
    }
}

impl DerefMut for Buffer {
    fn deref_mut(&mut self) -> &mut Vec<f32> {
        &mut self.vec
    }
}

impl Clone for Buffer {
    fn clone(&self) -> Self {
        Self::copied_from(&self.vec)
    }
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.vec.fmt(f)
    }
}

impl PartialEq for Buffer {
    fn eq(&self, other: &Self) -> bool {
        self.vec == other.vec
    }
}

/// Drops every buffer retained by this thread's pool (memory-pressure
/// relief and test isolation).
pub fn clear() {
    with_pool(Pool::clear);
}

/// Pre-sizes this thread's pool: deposits `count` blocks able to hold
/// `len` elements each into the matching size bucket. An inference arena
/// built on the pool calls this (or runs one warm-up pass) so that the
/// first real request is already allocation-free; buffers are `Buffer`
/// round-trips, so they behave exactly like recycled storage.
pub fn reserve(len: usize, count: usize) {
    if len == 0 {
        return;
    }
    // Hold all blocks live at once, then drop: each drop routes through
    // `recycle`, so the bucket ends up `count` deep (taking and dropping
    // one at a time would recycle the same block repeatedly).
    let held: Vec<Buffer> = (0..count).map(|_| Buffer::with_capacity(len)).collect();
    drop(held);
}

/// `(recycled, misses)` counters for this thread's pool: checkouts served
/// from the free-list vs. fresh heap allocations.
pub fn stats() -> (u64, u64) {
    with_pool(|p| (p.recycled, p.misses)).unwrap_or((0, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_storage() {
        clear();
        let b = Buffer::zeroed(100);
        let ptr = b.as_ptr();
        drop(b);
        let b2 = Buffer::zeroed(100);
        assert_eq!(b2.as_ptr(), ptr, "second checkout must reuse the block");
        assert!(b2.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn recycled_buffers_are_rezeroed() {
        clear();
        let mut b = Buffer::zeroed(16);
        b.iter_mut().for_each(|v| *v = 7.0);
        drop(b);
        let b2 = Buffer::zeroed(16);
        assert!(b2.iter().all(|&v| v == 0.0), "stale data leaked through the pool");
    }

    #[test]
    fn with_capacity_starts_empty() {
        clear();
        let mut b = Buffer::zeroed(8);
        b.iter_mut().for_each(|v| *v = 3.0);
        drop(b);
        let b2 = Buffer::with_capacity(8);
        assert!(b2.is_empty());
        assert!(b2.capacity() >= 8);
    }

    #[test]
    fn bucket_serves_smaller_requests() {
        clear();
        drop(Buffer::zeroed(100)); // capacity 128 -> bucket 7
        let (r0, _) = stats();
        let b = Buffer::zeroed(70); // also bucket 7
        assert!(b.capacity() >= 70);
        let (r1, _) = stats();
        assert_eq!(r1, r0 + 1, "70-element request should hit the 128 bucket");
    }

    #[test]
    fn steady_state_is_allocation_free() {
        clear();
        // Warm the bucket, then check that checkout/return cycles do not
        // touch the heap at all.
        drop(Buffer::zeroed(1000));
        let (_, n) = testkit::alloc::count_allocations(|| {
            for _ in 0..100 {
                let mut b = Buffer::zeroed(1000);
                b[0] = 1.0;
            }
        });
        assert_eq!(n, 0, "warm pool cycles must not allocate, saw {n}");
    }

    #[test]
    fn reserve_makes_subsequent_checkouts_allocation_free() {
        clear();
        reserve(500, 3);
        let (_, n) = testkit::alloc::count_allocations(|| {
            let a = Buffer::zeroed(500);
            let b = Buffer::zeroed(500);
            let c = Buffer::zeroed(400); // same bucket (512)
            (a[0], b[0], c[0])
        });
        assert_eq!(n, 0, "reserved buckets must serve checkouts without the heap, saw {n}");
    }

    #[test]
    fn into_vec_detaches_without_pool_interaction() {
        clear();
        let mut b = Buffer::zeroed(4);
        b[2] = 9.0;
        let v = b.into_vec();
        assert_eq!(v, vec![0.0, 0.0, 9.0, 0.0]);
    }

    #[test]
    fn oversized_and_odd_capacities_are_not_pooled() {
        clear();
        // Odd capacity: wrap a Vec whose capacity is not a power of two.
        let mut v = Vec::with_capacity(100);
        v.push(1.0f32);
        drop(Buffer::from_vec(v));
        let (_, m0) = stats();
        let _ = Buffer::zeroed(100); // must miss (bucket 7 is empty)
        let (_, m1) = stats();
        assert_eq!(m1, m0 + 1);
    }
}
