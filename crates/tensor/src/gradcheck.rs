//! Finite-difference gradient checking.
//!
//! The single most important invariant in this repository: for every
//! differentiable operation, the analytic gradient produced by the tape must
//! match a central-difference estimate. Layer and op tests throughout the
//! workspace call [`check_gradients`].

use crate::array::NdArray;
use crate::var::Var;

/// Result of a gradient check: the worst relative error over all checked
/// parameter elements.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// max |analytic - numeric| / max(1, |analytic|, |numeric|)
    pub max_rel_err: f32,
    /// Number of elements compared.
    pub checked: usize,
}

/// Verifies the autograd gradient of a scalar-valued function `f` with
/// respect to `input` by central finite differences.
///
/// `f` must be a pure function of the parameter values (re-invoked many
/// times). `eps` is the probe step; `1e-2` works well in f32 for smooth
/// functions, use larger for functions with higher curvature.
pub fn check_gradients(
    input: &NdArray,
    eps: f32,
    f: impl Fn(&Var) -> Var,
) -> GradCheckReport {
    // Analytic gradient.
    let x = Var::parameter(input.clone());
    let loss = f(&x);
    assert_eq!(loss.value().numel(), 1, "gradient check requires a scalar loss");
    loss.backward();
    let analytic = x.grad().unwrap_or_else(|| NdArray::zeros(input.shape()));

    // Numeric gradient, element by element.
    let mut max_rel_err = 0.0f32;
    let n = input.numel();
    for i in 0..n {
        let mut plus = input.clone();
        plus.data_mut()[i] += eps;
        let mut minus = input.clone();
        minus.data_mut()[i] -= eps;
        let fp = f(&Var::parameter(plus)).item() as f64;
        let fm = f(&Var::parameter(minus)).item() as f64;
        let numeric = ((fp - fm) / (2.0 * eps as f64)) as f32;
        let a = analytic.data()[i];
        let denom = 1.0f32.max(a.abs()).max(numeric.abs());
        let rel = (a - numeric).abs() / denom;
        if rel > max_rel_err {
            max_rel_err = rel;
        }
    }
    GradCheckReport { max_rel_err, checked: n }
}

/// Asserts that the autograd gradient matches finite differences within
/// `tol` relative error.
pub fn assert_gradients_close(input: &NdArray, eps: f32, tol: f32, f: impl Fn(&Var) -> Var) {
    let report = check_gradients(input, eps, f);
    assert!(
        report.max_rel_err <= tol,
        "gradient check failed: max relative error {} > tol {tol} over {} elements",
        report.max_rel_err,
        report.checked
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Prng;

    #[test]
    fn checks_simple_ops() {
        let mut rng = Prng::new(0);
        let x = rng.randn(&[3, 4]);
        assert_gradients_close(&x, 1e-2, 1e-2, |v| v.mul(v).sum());
        // ReLU is non-smooth at 0: keep probe points clear of the kink.
        let x_off = x.map(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
        assert_gradients_close(&x_off, 1e-2, 1e-2, |v| v.relu().sum());
        assert_gradients_close(&x, 1e-2, 1e-2, |v| v.sigmoid().mean());
        assert_gradients_close(&x, 1e-2, 1e-2, |v| v.tanh_act().mean());
        assert_gradients_close(&x, 1e-2, 1e-2, |v| v.gelu().sum());
        assert_gradients_close(&x, 1e-2, 1e-2, |v| v.exp().mean());
        assert_gradients_close(&x, 1e-2, 1e-2, |v| v.softmax_lastdim().powf(2.0).sum());
    }

    #[test]
    fn checks_matmul_chain() {
        let mut rng = Prng::new(1);
        let x = rng.randn(&[4, 3]);
        let w = rng.randn(&[3, 5]);
        assert_gradients_close(&x, 1e-2, 1e-2, |v| {
            v.matmul(&Var::constant(w.clone())).relu().sum()
        });
    }

    #[test]
    fn checks_batched_matmul() {
        let mut rng = Prng::new(2);
        let x = rng.randn(&[2, 3, 4]);
        let w = rng.randn(&[4, 3]);
        assert_gradients_close(&x, 1e-2, 1e-2, |v| {
            v.matmul(&Var::constant(w.clone())).gelu().mean()
        });
        // Also check gradient w.r.t. the shared rhs of a [b,m,k] x [k,n].
        let xc = rng.randn(&[2, 3, 4]);
        assert_gradients_close(&w, 1e-2, 1e-2, |v| {
            Var::constant(xc.clone()).matmul(v).mul(&Var::constant(xc.clone()).matmul(v)).sum()
        });
    }

    #[test]
    fn checks_reductions_and_shapes() {
        let mut rng = Prng::new(3);
        let x = rng.randn(&[2, 3, 4]);
        assert_gradients_close(&x, 1e-2, 1e-2, |v| v.sum_axis(1, false).powf(2.0).sum());
        assert_gradients_close(&x, 1e-2, 1e-2, |v| v.mean_axis(2, true).mul(v).sum());
        assert_gradients_close(&x, 1e-2, 1e-2, |v| v.slice(1, 1, 2).sum());
        assert_gradients_close(&x, 1e-2, 1e-2, |v| v.reshape(&[6, 4]).transpose().powf(2.0).sum());
        assert_gradients_close(&x, 1e-2, 1e-2, |v| v.permute(&[1, 2, 0]).mul(&v.permute(&[1, 2, 0])).sum());
    }

    #[test]
    fn checks_cosine_and_losses() {
        let mut rng = Prng::new(4);
        let x = rng.randn(&[3, 5]);
        let other = rng.randn(&[3, 5]);
        assert_gradients_close(&x, 1e-2, 1e-2, |v| {
            v.cosine_similarity_mean(&Var::constant(other.clone())).neg()
        });
        let target = rng.randn(&[3, 5]);
        assert_gradients_close(&x, 1e-2, 1e-2, |v| v.mse_loss(&target));
    }

    #[test]
    fn checks_cross_entropy() {
        let mut rng = Prng::new(5);
        let logits = rng.randn(&[4, 3]);
        assert_gradients_close(&logits, 1e-2, 1e-2, |v| v.cross_entropy(&[0, 2, 1, 1]));
    }

    #[test]
    fn checks_division() {
        let mut rng = Prng::new(6);
        // Keep denominators away from zero.
        let x = rng.randn(&[3, 3]).map(|v| v + if v >= 0.0 { 2.0 } else { -2.0 });
        let num = rng.randn(&[3, 3]);
        assert_gradients_close(&x, 1e-2, 1e-2, |v| Var::constant(num.clone()).div(v).sum());
        assert_gradients_close(&num, 1e-2, 1e-2, |v| v.div(&Var::constant(x.clone())).sum());
    }
}

#[cfg(test)]
mod max_axis_tests {
    use super::*;
    use crate::init::Prng;

    #[test]
    fn max_axis_gradcheck() {
        // All values distinct with spacing >> probe step, so the argmax is
        // stable under the finite-difference perturbation.
        let mut order: Vec<usize> = (0..24).collect();
        Prng::new(7).shuffle(&mut order);
        let x = NdArray::from_fn(&[2, 4, 3], |i| order[i] as f32 * 0.5);
        for axis in 0..3 {
            assert_gradients_close(&x, 1e-3, 2e-2, |v| v.max_axis(axis, false).sum());
        }
    }

    #[test]
    fn max_axis_values_match_kernel() {
        let mut rng = Prng::new(8);
        let x = rng.randn(&[3, 5]);
        let v = crate::var::Var::constant(x.clone());
        assert_eq!(v.max_axis(1, false).to_array(), x.max_axis(1, false));
        assert_eq!(v.max_axis(0, true).to_array(), x.max_axis(0, true));
    }

    #[test]
    fn max_axis_gradient_goes_to_argmax_only() {
        let x = crate::NdArray::from_vec(&[1, 3], vec![1.0, 5.0, 2.0]).unwrap();
        let v = crate::var::Var::parameter(x);
        v.max_axis(1, false).sum().backward();
        assert_eq!(v.grad().unwrap().data(), &[0.0, 1.0, 0.0]);
    }
}
