//! Error types for tensor operations.
//!
//! Most kernel-level entry points in this crate panic on shape mismatch (the
//! shapes of a neural network are static per configuration, so a mismatch is
//! a programming error, not a recoverable condition). The fallible
//! counterparts used at API boundaries return [`TensorError`].

use std::fmt;

/// Error raised by fallible tensor constructors and shape-checked entry
/// points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count implied by a shape does not match the data length.
    ShapeDataMismatch {
        /// Requested shape.
        shape: Vec<usize>,
        /// Number of elements actually provided.
        data_len: usize,
    },
    /// Two shapes cannot be broadcast together.
    BroadcastMismatch {
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// An axis index is out of range for the array's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The rank of the array.
        rank: usize,
    },
    /// Matrix-multiplication inner dimensions disagree.
    MatmulMismatch {
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// Per-channel quantization was asked for a non-rank-2 array.
    QuantizeRank {
        /// Shape of the offending array.
        shape: Vec<usize>,
    },
    /// A reshape changes the total element count.
    ReshapeMismatch {
        /// Source shape.
        from: Vec<usize>,
        /// Target shape.
        to: Vec<usize>,
    },
    /// A slice range is out of bounds.
    SliceOutOfBounds {
        /// Axis being sliced.
        axis: usize,
        /// Start of the slice.
        start: usize,
        /// Length of the slice.
        len: usize,
        /// Size of the axis.
        dim: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, data_len } => write!(
                f,
                "shape {shape:?} implies {} elements but {data_len} were provided",
                shape.iter().product::<usize>()
            ),
            TensorError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "cannot broadcast shapes {lhs:?} and {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::MatmulMismatch { lhs, rhs } => {
                write!(f, "matmul shape mismatch: {lhs:?} x {rhs:?}")?;
                // Name the offending dims when both operands are matrices
                // (possibly batched): `[.., m, k] x [.., k', n]`.
                if lhs.len() >= 2 && rhs.len() >= 2 {
                    let (m, k) = (lhs[lhs.len() - 2], lhs[lhs.len() - 1]);
                    let (k2, n) = (rhs[rhs.len() - 2], rhs[rhs.len() - 1]);
                    write!(f, ": ({m},{k}) x ({k2},{n})")?;
                    if k != k2 {
                        write!(f, " — inner dimensions {k} vs {k2} differ")?;
                    } else if lhs.len() == 3 && rhs.len() == 3 && lhs[0] != rhs[0] {
                        write!(f, " — batch dimensions {} vs {} differ", lhs[0], rhs[0])?;
                    }
                }
                Ok(())
            }
            TensorError::QuantizeRank { shape } => {
                write!(f, "per-channel quantization requires a rank-2 matrix, got shape {shape:?}")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(f, "cannot reshape {from:?} into {to:?}: element counts differ")
            }
            TensorError::SliceOutOfBounds { axis, start, len, dim } => write!(
                f,
                "slice [{start}, {start}+{len}) out of bounds for axis {axis} of size {dim}"
            ),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
