//! # timedrl-tensor
//!
//! A from-scratch, dependency-light tensor + reverse-mode autograd engine
//! for the TimeDRL (ICDE 2024) reproduction.
//!
//! The crate provides three layers:
//!
//! 1. [`NdArray`] — a contiguous row-major f32 n-dimensional array with
//!    broadcasting, reductions, slicing, and matrix multiplication.
//! 2. [`Var`] — a differentiable tensor node; operations build a
//!    define-by-run tape and [`Var::backward`] accumulates gradients.
//! 3. [`Prng`] — a seeded RNG powering initializers, dropout masks, and
//!    every synthetic data generator in the workspace, keeping all
//!    experiments bit-reproducible.
//!
//! ```
//! use timedrl_tensor::{NdArray, Var};
//!
//! let x = Var::parameter(NdArray::from_slice(&[1.0, 2.0, 3.0]));
//! let loss = x.mul(&x).sum(); // sum(x^2)
//! loss.backward();
//! assert_eq!(x.grad().unwrap().data(), &[2.0, 4.0, 6.0]);
//! ```

#![warn(missing_docs)]

mod array;
mod attention;
pub mod bufpool;
mod error;
pub mod gradcheck;
mod init;
mod matmul;
mod quant;
pub mod serialize;
pub mod shape;
mod var;

pub use array::NdArray;
pub use attention::{
    attention_fused, attention_fused_backward, attention_fused_relaxed, attention_reference,
    composed_attention_forced, with_composed_attention,
};
pub use error::{Result, TensorError};
pub use init::Prng;
pub use matmul::{
    matmul, matmul_fma, matmul_nt, matmul_nt_fma, matmul_reference, matmul_tn,
    with_materialized_transposes,
};
pub use quant::{matmul_q8, quantize_per_channel, QuantizedMatrix};
pub use serialize::{
    decode_arrays, encode_arrays, load_parameters, read_arrays, read_file, save_parameters,
    write_arrays, write_file_atomic, ByteReader, KIND_ARRAYS, KIND_MODEL, KIND_TRAIN_STATE,
};
pub use var::Var;
