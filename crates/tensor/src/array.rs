//! [`NdArray`]: a contiguous, row-major, f32 n-dimensional array.
//!
//! This is the numeric workhorse underneath the autograd layer. It favours
//! simplicity and predictability over generality: storage is always
//! contiguous C-order `Vec<f32>`, so every view-producing operation
//! (`transpose`, `slice`, `broadcast_to`, ...) materializes a fresh array.
//! At the model sizes used by the TimeDRL reproduction this is never the
//! bottleneck, and it eliminates the entire class of stride-aliasing bugs.

use crate::bufpool::Buffer;
use crate::error::{Result, TensorError};
use crate::shape::{
    broadcast_shape, broadcast_strides, broadcastable_to, check_axis, numel, ravel,
    row_major_strides, unravel, Dims,
};
use testkit::pool;

/// Work-per-chunk target for parallel elementwise kernels, in elements.
/// Elementwise work is cheap per element, so the grain is large: fanning
/// out below it would be dominated by thread-spawn cost. Chunk boundaries
/// never change per-element results, so the gate affects scheduling only.
const ELEMWISE_GRAIN: usize = 1 << 17;

/// Work-per-chunk target for row-fused kernels (softmax family), in
/// elements; lower than [`ELEMWISE_GRAIN`] because each element costs an
/// `exp`.
const ROWWISE_GRAIN: usize = 1 << 15;

/// A dense, row-major, f32 n-dimensional array.
///
/// The empty shape `[]` denotes a scalar holding exactly one element.
/// Storage draws from the thread-local buffer pool ([`crate::bufpool`]):
/// temporaries created and dropped inside a training step recycle the same
/// blocks instead of hitting the heap, and the shape itself is an inline
/// [`Dims`] (no allocation at rank <= 6). See DESIGN.md §10.
#[derive(Debug, Clone, PartialEq)]
pub struct NdArray {
    shape: Dims,
    data: Buffer,
}

impl NdArray {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates an array from a shape and backing data.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not
    /// equal the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self> {
        if numel(shape) != data.len() {
            return Err(TensorError::ShapeDataMismatch { shape: shape.to_vec(), data_len: data.len() });
        }
        Ok(Self { shape: Dims::from(shape), data: Buffer::from_vec(data) })
    }

    /// Creates an array filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self { shape: Dims::from(shape), data: Buffer::filled(numel(shape), value) }
    }

    /// Creates a zero-filled array.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a one-filled array.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a rank-0 scalar.
    pub fn scalar(value: f32) -> Self {
        Self { shape: Dims::new(), data: Buffer::filled(1, value) }
    }

    /// Creates a 1-D array from a slice.
    pub fn from_slice(values: &[f32]) -> Self {
        Self { shape: Dims::from([values.len()]), data: Buffer::copied_from(values) }
    }

    /// Creates an array by evaluating `f` at every flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = numel(shape);
        let mut data = Buffer::with_capacity(n);
        data.extend((0..n).map(&mut f));
        Self { shape: Dims::from(shape), data }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut out = Self::zeros(&[n, n]);
        for i in 0..n {
            out.data[i * n + i] = 1.0;
        }
        out
    }

    /// 1-D array of `n` evenly spaced values from `start` to `end` inclusive.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        assert!(n >= 2, "linspace needs at least two points");
        let step = (end - start) / (n as f32 - 1.0);
        Self::from_fn(&[n], |i| start + step * i as f32)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The array's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the backing data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the array, returning its backing data (detached from the
    /// buffer pool).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_vec()
    }

    /// Reads the element at multi-dimensional coordinates `idx`.
    ///
    /// # Panics
    /// Panics if `idx.len() != self.rank()` or any coordinate is out of range.
    pub fn at(&self, idx: &[usize]) -> f32 {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        for (i, (&c, &d)) in idx.iter().zip(self.shape.iter()).enumerate() {
            assert!(c < d, "index {c} out of bounds for axis {i} of size {d}");
        }
        self.data[ravel(idx, &row_major_strides(&self.shape))]
    }

    /// Writes the element at multi-dimensional coordinates `idx`.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let flat = ravel(idx, &row_major_strides(&self.shape));
        self.data[flat] = value;
    }

    /// Returns the single element of a rank-0 or single-element array.
    ///
    /// # Panics
    /// Panics if the array holds more than one element.
    pub fn to_scalar(&self) -> f32 {
        assert_eq!(self.numel(), 1, "to_scalar on array with {} elements", self.numel());
        self.data[0]
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a copy with a new shape holding the same elements.
    ///
    /// # Errors
    /// Returns [`TensorError::ReshapeMismatch`] if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        if numel(shape) != self.numel() {
            return Err(TensorError::ReshapeMismatch { from: self.shape.to_vec(), to: shape.to_vec() });
        }
        Ok(Self { shape: Dims::from(shape), data: self.data.clone() })
    }

    /// Flattens to 1-D.
    pub fn flatten(&self) -> Self {
        Self { shape: Dims::from([self.numel()]), data: self.data.clone() }
    }

    /// Generalized axis permutation; `axes` must be a permutation of
    /// `0..rank`.
    pub fn permute(&self, axes: &[usize]) -> Self {
        assert_eq!(axes.len(), self.rank(), "permutation rank mismatch");
        // Bitmask duplicate check (rank is always < 32): keeps the hot
        // serving path free of a per-call heap allocation.
        let mut seen = 0u32;
        for &a in axes {
            assert!(a < self.rank() && seen & (1 << a) == 0, "axes must be a permutation");
            seen |= 1 << a;
        }
        let new_shape: Dims = axes.iter().map(|&a| self.shape[a]).collect();
        let src_strides = row_major_strides(&self.shape);
        let perm_strides: Dims = axes.iter().map(|&a| src_strides[a]).collect();
        let n = self.numel();
        let mut data = Buffer::zeroed(n);
        // Walk the output row-major, gathering whole innermost-axis runs at
        // a time: the run's source offsets form an arithmetic sequence with
        // stride `perm_strides[last]`, and the run's base offset updates
        // incrementally as the outer coordinates tick over — no per-element
        // `ravel`. Pure data movement, so this is exactly the permutation
        // the naive per-element walk produces.
        if n > 0 && new_shape.is_empty() {
            data[0] = self.data[0];
        } else if n > 0 {
            let r = new_shape.len();
            let inner = new_shape[r - 1];
            let inner_stride = perm_strides[r - 1];
            let outer = r - 1;
            let mut coords = Dims::zeros(outer);
            let mut base = 0usize;
            let mut written = 0usize;
            'rows: loop {
                let dst = &mut data[written..written + inner];
                if inner_stride == 1 {
                    dst.copy_from_slice(&self.data[base..base + inner]);
                } else {
                    let mut src = base;
                    for d in dst {
                        *d = self.data[src];
                        src += inner_stride;
                    }
                }
                written += inner;
                // Increment the outer coordinates (row-major order of the
                // new shape), keeping `base` equal to their raveled offset.
                let mut ax = outer;
                loop {
                    if ax == 0 {
                        break 'rows;
                    }
                    ax -= 1;
                    coords[ax] += 1;
                    base += perm_strides[ax];
                    if coords[ax] < new_shape[ax] {
                        break;
                    }
                    base -= coords[ax] * perm_strides[ax];
                    coords[ax] = 0;
                }
            }
        }
        Self { shape: new_shape, data }
    }

    /// Swaps the last two axes (matrix transpose for rank >= 2).
    ///
    /// # Panics
    /// Panics on rank < 2.
    pub fn transpose(&self) -> Self {
        assert!(self.rank() >= 2, "transpose requires rank >= 2");
        let mut axes: Vec<usize> = (0..self.rank()).collect();
        let r = self.rank();
        axes.swap(r - 1, r - 2);
        self.permute(&axes)
    }

    /// Inserts a size-1 axis at `axis`.
    pub fn unsqueeze(&self, axis: usize) -> Self {
        assert!(axis <= self.rank(), "unsqueeze axis out of range");
        let mut shape = self.shape.clone();
        shape.insert(axis, 1);
        Self { shape, data: self.data.clone() }
    }

    /// Removes a size-1 axis at `axis`.
    ///
    /// # Panics
    /// Panics if the axis does not have size 1.
    pub fn squeeze(&self, axis: usize) -> Self {
        assert!(axis < self.rank() && self.shape[axis] == 1, "squeeze needs a size-1 axis");
        let mut shape = self.shape.clone();
        shape.remove(axis);
        Self { shape, data: self.data.clone() }
    }

    /// Materializes a broadcast of `self` to `target` shape.
    ///
    /// # Errors
    /// Returns [`TensorError::BroadcastMismatch`] if not broadcastable.
    pub fn broadcast_to(&self, target: &[usize]) -> Result<Self> {
        if !broadcastable_to(&self.shape, target) {
            return Err(TensorError::BroadcastMismatch { lhs: self.shape.to_vec(), rhs: target.to_vec() });
        }
        if self.shape == target {
            return Ok(self.clone());
        }
        let strides = broadcast_strides(&self.shape, target);
        let n = numel(target);
        let mut data = Buffer::with_capacity(n);
        let mut coords = Dims::zeros(target.len());
        for _ in 0..n {
            data.push(self.data[ravel(&coords, &strides)]);
            for ax in (0..target.len()).rev() {
                coords[ax] += 1;
                if coords[ax] < target[ax] {
                    break;
                }
                coords[ax] = 0;
            }
        }
        Ok(Self { shape: Dims::from(target), data })
    }

    /// Sums `self` down to `target` shape (the adjoint of `broadcast_to`).
    ///
    /// Used to push gradients of broadcast operands back to their original
    /// shapes.
    pub fn reduce_to_shape(&self, target: &[usize]) -> Self {
        if self.shape == target {
            return self.clone();
        }
        assert!(
            broadcastable_to(target, &self.shape),
            "reduce_to_shape: {target:?} is not broadcastable to {:?}",
            self.shape
        );
        let mut out = NdArray::zeros(target);
        let strides = broadcast_strides(target, &self.shape);
        let mut coords = Dims::zeros(self.rank());
        for &v in self.data.iter() {
            out.data[ravel(&coords, &strides)] += v;
            for ax in (0..self.shape.len()).rev() {
                coords[ax] += 1;
                if coords[ax] < self.shape[ax] {
                    break;
                }
                coords[ax] = 0;
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Elementwise operations
    // ------------------------------------------------------------------

    /// Applies `f` to every element, producing a new array. Large arrays
    /// fan out over the pool in fixed element chunks (bit-exact vs serial).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Self {
        let n = self.data.len();
        let mut data = Buffer::zeroed(n);
        let chunk_len = if pool::should_parallelize(n, ELEMWISE_GRAIN) {
            pool::grain(ELEMWISE_GRAIN)
        } else {
            n.max(1)
        };
        let src = &self.data;
        pool::for_each_chunk(&mut data, chunk_len, |offset, chunk| {
            let len = chunk.len();
            for (o, &v) in chunk.iter_mut().zip(&src[offset..offset + len]) {
                *o = f(v);
            }
        });
        Self { shape: self.shape.clone(), data }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        let n = self.data.len();
        let chunk_len = if pool::should_parallelize(n, ELEMWISE_GRAIN) {
            pool::grain(ELEMWISE_GRAIN)
        } else {
            n.max(1)
        };
        pool::for_each_chunk(&mut self.data, chunk_len, |_, chunk| {
            for v in chunk.iter_mut() {
                *v = f(*v);
            }
        });
    }

    /// Broadcasting binary map: `f(self, other)` elementwise over the
    /// broadcast shape. Large outputs fan out over the pool in fixed
    /// element chunks; each chunk unravels its start offset into
    /// coordinates and walks them independently, so the parallel result is
    /// bit-identical to the serial one.
    ///
    /// # Errors
    /// Returns [`TensorError::BroadcastMismatch`] if shapes are incompatible.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32 + Sync) -> Result<Self> {
        let chunk_for = |n: usize| {
            if pool::should_parallelize(n, ELEMWISE_GRAIN) {
                pool::grain(ELEMWISE_GRAIN)
            } else {
                n.max(1)
            }
        };
        if self.shape == other.shape {
            // fast path: identical shapes
            let n = self.data.len();
            let mut data = Buffer::zeroed(n);
            let (lhs, rhs) = (&self.data, &other.data);
            pool::for_each_chunk(&mut data, chunk_for(n), |offset, chunk| {
                for (i, o) in chunk.iter_mut().enumerate() {
                    *o = f(lhs[offset + i], rhs[offset + i]);
                }
            });
            return Ok(Self { shape: self.shape.clone(), data });
        }
        let out_shape = broadcast_shape(&self.shape, &other.shape)?;
        let ls = broadcast_strides(&self.shape, &out_shape);
        let rs = broadcast_strides(&other.shape, &out_shape);
        let n = numel(&out_shape);
        let mut data = Buffer::zeroed(n);
        let (lhs, rhs) = (&self.data, &other.data);
        let shape_ref = &out_shape;
        pool::for_each_chunk(&mut data, chunk_for(n), |offset, chunk| {
            let mut coords = unravel(offset, shape_ref);
            for o in chunk.iter_mut() {
                *o = f(lhs[ravel(&coords, &ls)], rhs[ravel(&coords, &rs)]);
                for ax in (0..shape_ref.len()).rev() {
                    coords[ax] += 1;
                    if coords[ax] < shape_ref[ax] {
                        break;
                    }
                    coords[ax] = 0;
                }
            }
        });
        Ok(Self { shape: out_shape, data })
    }

    /// Broadcasting addition. Panics on incompatible shapes.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a + b).expect("add: incompatible shapes")
    }

    /// Broadcasting subtraction. Panics on incompatible shapes.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a - b).expect("sub: incompatible shapes")
    }

    /// Broadcasting multiplication. Panics on incompatible shapes.
    pub fn mul(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a * b).expect("mul: incompatible shapes")
    }

    /// Broadcasting division. Panics on incompatible shapes.
    pub fn div(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a / b).expect("div: incompatible shapes")
    }

    /// Adds `other` into `self` in place (shapes must match exactly).
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|v| v + s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Self {
        self.map(|v| -v)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Self {
        self.map(f32::exp)
    }

    /// Elementwise natural log.
    pub fn ln(&self) -> Self {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Self {
        self.map(f32::sqrt)
    }

    /// Elementwise power.
    pub fn powf(&self, p: f32) -> Self {
        self.map(|v| v.powf(p))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty arrays).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Panics
    /// Panics on an empty array.
    pub fn max(&self) -> f32 {
        assert!(!self.data.is_empty(), "max of empty array");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        assert!(!self.data.is_empty(), "min of empty array");
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sums along `axis`. When `keepdim` the reduced axis stays with size 1,
    /// otherwise it is removed.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Self {
        check_axis(axis, self.rank()).expect("sum_axis: axis out of range");
        let mut out_shape = self.shape.clone();
        out_shape[axis] = 1;
        let outer: usize = self.shape[..axis].iter().product();
        let dim = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut data = Buffer::zeroed(outer * inner);
        for o in 0..outer {
            for d in 0..dim {
                let base = (o * dim + d) * inner;
                let out_base = o * inner;
                for i in 0..inner {
                    data[out_base + i] += self.data[base + i];
                }
            }
        }
        let mut out = Self { shape: out_shape, data };
        if !keepdim {
            out = out.squeeze(axis);
        }
        out
    }

    /// Mean along `axis`.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Self {
        let dim = self.shape[axis] as f32;
        self.sum_axis(axis, keepdim).scale(1.0 / dim)
    }

    /// Maximum along `axis`.
    pub fn max_axis(&self, axis: usize, keepdim: bool) -> Self {
        self.fold_axis(axis, keepdim, f32::NEG_INFINITY, f32::max)
    }

    /// Minimum along `axis`.
    pub fn min_axis(&self, axis: usize, keepdim: bool) -> Self {
        self.fold_axis(axis, keepdim, f32::INFINITY, f32::min)
    }

    fn fold_axis(&self, axis: usize, keepdim: bool, init: f32, f: impl Fn(f32, f32) -> f32) -> Self {
        check_axis(axis, self.rank()).expect("fold_axis: axis out of range");
        let mut out_shape = self.shape.clone();
        out_shape[axis] = 1;
        let outer: usize = self.shape[..axis].iter().product();
        let dim = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut data = Buffer::filled(outer * inner, init);
        for o in 0..outer {
            for d in 0..dim {
                let base = (o * dim + d) * inner;
                let out_base = o * inner;
                for i in 0..inner {
                    data[out_base + i] = f(data[out_base + i], self.data[base + i]);
                }
            }
        }
        let mut out = Self { shape: out_shape, data };
        if !keepdim {
            out = out.squeeze(axis);
        }
        out
    }

    /// Index of the maximum along the last axis; result drops that axis.
    pub fn argmax_lastdim(&self) -> Vec<usize> {
        assert!(self.rank() >= 1, "argmax on scalar");
        let dim = *self.shape.last().unwrap();
        assert!(dim > 0, "argmax along empty axis");
        self.data
            .chunks(dim)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Population variance along `axis`.
    pub fn var_axis(&self, axis: usize, keepdim: bool) -> Self {
        let mean = self.mean_axis(axis, true);
        let centered = self.sub(&mean);
        let sq = centered.mul(&centered);
        sq.mean_axis(axis, keepdim)
    }

    // ------------------------------------------------------------------
    // Slicing / joining
    // ------------------------------------------------------------------

    /// Extracts the half-open range `[start, start+len)` along `axis`.
    ///
    /// # Errors
    /// Returns [`TensorError::SliceOutOfBounds`] on out-of-range slices.
    pub fn slice(&self, axis: usize, start: usize, len: usize) -> Result<Self> {
        check_axis(axis, self.rank())?;
        let dim = self.shape[axis];
        if start + len > dim {
            return Err(TensorError::SliceOutOfBounds { axis, start, len, dim });
        }
        let outer: usize = self.shape[..axis].iter().product();
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out_shape = self.shape.clone();
        out_shape[axis] = len;
        let mut data = Buffer::with_capacity(outer * len * inner);
        for o in 0..outer {
            let base = (o * dim + start) * inner;
            data.extend_from_slice(&self.data[base..base + len * inner]);
        }
        Ok(Self { shape: out_shape, data })
    }

    /// Materializes `len` cyclically-consecutive rows of a rank-2 array:
    /// rows `start, start+1, …` taken modulo the row count, wrapping past
    /// the end at most once. This is the sub-window view a ring buffer
    /// needs — the streaming engine stores samples (and patch tokens) in
    /// rotation and reads logical windows out of them without ever
    /// rotating storage. At most two contiguous copies, into a pooled
    /// buffer.
    ///
    /// # Errors
    /// [`TensorError::AxisOutOfRange`] for non-rank-2 input,
    /// [`TensorError::SliceOutOfBounds`] when `start` is not a valid row
    /// or `len` exceeds the row count.
    pub fn cyclic_rows(&self, start: usize, len: usize) -> Result<Self> {
        let cols = self.check_cyclic_rows(start, len)?;
        let mut data = Buffer::with_capacity(len * cols);
        let rows = self.shape[0];
        let first = (rows - start).min(len);
        data.extend_from_slice(&self.data[start * cols..(start + first) * cols]);
        data.extend_from_slice(&self.data[..(len - first) * cols]);
        Ok(Self { shape: Dims::from([len, cols]), data })
    }

    /// The into-slice form of [`NdArray::cyclic_rows`]: copies the same
    /// `len × cols` window into `out` without creating an array — the
    /// zero-allocation path for per-tick ring reads.
    ///
    /// # Errors
    /// As [`NdArray::cyclic_rows`], plus [`TensorError::ShapeDataMismatch`]
    /// when `out` is not exactly `len * cols` long.
    pub fn copy_cyclic_rows_into(&self, start: usize, len: usize, out: &mut [f32]) -> Result<()> {
        let cols = self.check_cyclic_rows(start, len)?;
        if out.len() != len * cols {
            return Err(TensorError::ShapeDataMismatch {
                shape: vec![len, cols],
                data_len: out.len(),
            });
        }
        let rows = self.shape[0];
        let first = (rows - start).min(len);
        out[..first * cols].copy_from_slice(&self.data[start * cols..(start + first) * cols]);
        out[first * cols..].copy_from_slice(&self.data[..(len - first) * cols]);
        Ok(())
    }

    fn check_cyclic_rows(&self, start: usize, len: usize) -> Result<usize> {
        if self.rank() != 2 {
            return Err(TensorError::AxisOutOfRange { axis: 2, rank: self.rank() });
        }
        let rows = self.shape[0];
        if start >= rows || len > rows {
            return Err(TensorError::SliceOutOfBounds { axis: 0, start, len, dim: rows });
        }
        Ok(self.shape[1])
    }

    /// Concatenates arrays along `axis`. All other dimensions must agree.
    ///
    /// # Panics
    /// Panics on empty input or mismatched shapes.
    pub fn concat(parts: &[&Self], axis: usize) -> Self {
        assert!(!parts.is_empty(), "concat of zero arrays");
        let rank = parts[0].rank();
        assert!(axis < rank, "concat axis out of range");
        for p in parts {
            assert_eq!(p.rank(), rank, "concat rank mismatch");
            for a in 0..rank {
                if a != axis {
                    assert_eq!(p.shape[a], parts[0].shape[a], "concat shape mismatch on axis {a}");
                }
            }
        }
        let mut out_shape = parts[0].shape.clone();
        out_shape[axis] = parts.iter().map(|p| p.shape[axis]).sum();
        let outer: usize = out_shape[..axis].iter().product();
        let inner: usize = out_shape[axis + 1..].iter().product();
        let mut data = Buffer::with_capacity(numel(&out_shape));
        for o in 0..outer {
            for p in parts {
                let d = p.shape[axis];
                let base = o * d * inner;
                data.extend_from_slice(&p.data[base..base + d * inner]);
            }
        }
        Self { shape: out_shape, data }
    }

    /// Stacks arrays of identical shape along a new leading axis.
    pub fn stack(parts: &[&Self]) -> Self {
        assert!(!parts.is_empty(), "stack of zero arrays");
        let unsqueezed: Vec<Self> = parts.iter().map(|p| p.unsqueeze(0)).collect();
        let refs: Vec<&Self> = unsqueezed.iter().collect();
        Self::concat(&refs, 0)
    }

    /// Row `i` of a rank >= 1 array (drops the leading axis).
    pub fn index_axis0(&self, i: usize) -> Self {
        self.slice(0, i, 1).expect("index_axis0 out of bounds").squeeze(0)
    }

    // ------------------------------------------------------------------
    // Fused numeric kernels (used by autograd ops with bespoke gradients)
    // ------------------------------------------------------------------

    /// Row-chunked fan-out shared by the softmax family: each output row is
    /// a pure function of the matching input row, so chunking along row
    /// boundaries leaves every per-row reduction order untouched.
    fn rowwise_lastdim(&self, per_row: impl Fn(&[f32], &mut [f32]) + Sync) -> Self {
        assert!(self.rank() >= 1, "rowwise op on scalar");
        let dim = (*self.shape.last().unwrap()).max(1);
        let n = self.data.len();
        let mut data = Buffer::zeroed(n);
        let rows_per_chunk = if pool::should_parallelize(n, ROWWISE_GRAIN) {
            (pool::grain(ROWWISE_GRAIN) / dim).max(1)
        } else {
            (n / dim).max(1)
        };
        let src = &self.data;
        pool::for_each_chunk(&mut data, rows_per_chunk * dim, |offset, chunk| {
            for (li, orow) in chunk.chunks_mut(dim).enumerate() {
                let base = offset + li * dim;
                per_row(&src[base..base + dim], orow);
            }
        });
        Self { shape: self.shape.clone(), data }
    }

    /// Numerically stable softmax over the last axis.
    pub fn softmax_lastdim(&self) -> Self {
        self.rowwise_lastdim(|row, out| {
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o = (v - m).exp();
            }
            let s: f32 = out.iter().sum();
            for o in out.iter_mut() {
                *o /= s;
            }
        })
    }

    /// Numerically stable log-softmax over the last axis.
    pub fn log_softmax_lastdim(&self) -> Self {
        self.rowwise_lastdim(|row, out| {
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o = v - lse;
            }
        })
    }

    /// Frobenius / L2 norm of all elements.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Maximum absolute difference against `other` (shapes must match).
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr2(rows: &[&[f32]]) -> NdArray {
        let r = rows.len();
        let c = rows[0].len();
        let data: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        NdArray::from_vec(&[r, c], data).unwrap()
    }

    #[test]
    fn constructors() {
        assert_eq!(NdArray::zeros(&[2, 3]).numel(), 6);
        assert_eq!(NdArray::scalar(5.0).to_scalar(), 5.0);
        assert!(NdArray::from_vec(&[2, 2], vec![1.0; 3]).is_err());
        let e = NdArray::eye(3);
        assert_eq!(e.at(&[1, 1]), 1.0);
        assert_eq!(e.at(&[0, 1]), 0.0);
    }

    #[test]
    fn cyclic_rows_wraps_once() {
        let x = arr2(&[&[0.0, 1.0], &[10.0, 11.0], &[20.0, 21.0], &[30.0, 31.0]]);
        // No wrap: plain sub-window.
        let w = x.cyclic_rows(1, 2).unwrap();
        assert_eq!(w.data(), &[10.0, 11.0, 20.0, 21.0]);
        // Wrap: rows 3, 0, 1.
        let w = x.cyclic_rows(3, 3).unwrap();
        assert_eq!(w.shape(), &[3, 2]);
        assert_eq!(w.data(), &[30.0, 31.0, 0.0, 1.0, 10.0, 11.0]);
        // Full rotation from every start reproduces a rolled copy.
        let full = x.cyclic_rows(2, 4).unwrap();
        assert_eq!(full.data(), &[20.0, 21.0, 30.0, 31.0, 0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn copy_cyclic_rows_into_matches_materialized() {
        let x = arr2(&[&[1.0], &[2.0], &[3.0]]);
        let mut out = [0.0f32; 3];
        x.copy_cyclic_rows_into(2, 3, &mut out).unwrap();
        assert_eq!(out, [3.0, 1.0, 2.0]);
        assert!(x.copy_cyclic_rows_into(0, 2, &mut out).is_err(), "length mismatch");
    }

    #[test]
    fn cyclic_rows_rejects_bad_shapes() {
        let x = NdArray::zeros(&[4]);
        assert!(x.cyclic_rows(0, 1).is_err(), "rank-1 rejected");
        let x = NdArray::zeros(&[4, 2]);
        assert!(x.cyclic_rows(4, 1).is_err(), "start past the end");
        assert!(x.cyclic_rows(0, 5).is_err(), "len beyond the row count");
        // Capacity-1 ring: the degenerate window is still well-formed.
        let one = NdArray::from_vec(&[1, 2], vec![7.0, 8.0]).unwrap();
        assert_eq!(one.cyclic_rows(0, 1).unwrap().data(), &[7.0, 8.0]);
    }

    #[test]
    fn linspace_endpoints() {
        let l = NdArray::linspace(0.0, 1.0, 5);
        assert_eq!(l.data(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn broadcasting_add() {
        let a = arr2(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = NdArray::from_slice(&[10.0, 20.0]);
        let c = a.add(&b);
        assert_eq!(c.data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn broadcast_to_and_reduce_roundtrip() {
        let a = NdArray::from_slice(&[1.0, 2.0]);
        let b = a.broadcast_to(&[3, 2]).unwrap();
        assert_eq!(b.shape(), &[3, 2]);
        let r = b.reduce_to_shape(&[2]);
        assert_eq!(r.data(), &[3.0, 6.0]);
    }

    #[test]
    fn transpose_2d() {
        let a = arr2(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(&[0, 1]), 4.0);
        assert_eq!(t.at(&[2, 0]), 3.0);
    }

    #[test]
    fn permute_3d() {
        let a = NdArray::from_fn(&[2, 3, 4], |i| i as f32);
        let p = a.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), a.at(&[0, 2, 1]));
    }

    #[test]
    fn sum_axis_middle() {
        let a = NdArray::from_fn(&[2, 3, 2], |i| i as f32);
        let s = a.sum_axis(1, false);
        assert_eq!(s.shape(), &[2, 2]);
        // a[0,:,0] = 0,2,4 -> 6 ; a[0,:,1] = 1,3,5 -> 9
        assert_eq!(s.data()[0], 6.0);
        assert_eq!(s.data()[1], 9.0);
    }

    #[test]
    fn mean_and_var() {
        let a = arr2(&[&[1.0, 3.0], &[2.0, 4.0]]);
        let m = a.mean_axis(0, false);
        assert_eq!(m.data(), &[1.5, 3.5]);
        let v = a.var_axis(0, false);
        assert_eq!(v.data(), &[0.25, 0.25]);
    }

    #[test]
    fn slicing_and_concat() {
        let a = NdArray::from_fn(&[4, 2], |i| i as f32);
        let s = a.slice(0, 1, 2).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[2.0, 3.0, 4.0, 5.0]);
        let c = NdArray::concat(&[&s, &s], 1);
        assert_eq!(c.shape(), &[2, 4]);
        assert_eq!(c.data(), &[2.0, 3.0, 2.0, 3.0, 4.0, 5.0, 4.0, 5.0]);
        assert!(a.slice(0, 3, 2).is_err());
    }

    #[test]
    fn stack_adds_axis() {
        let a = NdArray::from_slice(&[1.0, 2.0]);
        let s = NdArray::stack(&[&a, &a, &a]);
        assert_eq!(s.shape(), &[3, 2]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = arr2(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let s = a.softmax_lastdim();
        for row in s.data().chunks(3) {
            let total: f32 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-6);
        }
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let a = arr2(&[&[0.5, -1.0, 2.0]]);
        let ls = a.log_softmax_lastdim();
        let s = a.softmax_lastdim();
        assert!(ls.exp().max_abs_diff(&s) < 1e-6);
    }

    #[test]
    fn argmax_lastdim_picks_largest() {
        let a = arr2(&[&[0.1, 0.9, 0.2], &[5.0, 1.0, 2.0]]);
        assert_eq!(a.argmax_lastdim(), vec![1, 0]);
    }

    #[test]
    fn softmax_extreme_values_stable() {
        let a = NdArray::from_slice(&[1000.0, 1000.0, -1000.0]).reshape(&[1, 3]).unwrap();
        let s = a.softmax_lastdim();
        assert!(!s.has_non_finite());
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn parallel_elementwise_ops_are_bit_exact() {
        let a = NdArray::from_fn(&[7, 11, 5], |i| (i as f32 * 0.37).sin());
        let b = NdArray::from_fn(&[7, 11, 5], |i| (i as f32 * 0.53).cos());
        let bias = NdArray::from_fn(&[5], |i| i as f32 * 0.11 - 0.2);
        let run = || {
            let mapped = a.map(|v| (v * 1.7).tanh());
            let zipped = a.zip_map(&b, |x, y| x * y + 0.25).unwrap();
            let broad = a.zip_map(&bias, |x, y| x + y).unwrap();
            let soft = a.softmax_lastdim();
            let logsoft = a.log_softmax_lastdim();
            let mut inplace = a.clone();
            inplace.map_inplace(|v| v.exp() - 1.0);
            (mapped, zipped, broad, soft, logsoft, inplace)
        };
        let serial = pool::with_threads(1, run);
        for threads in [2usize, 4] {
            let par = pool::with_threads(threads, || pool::with_grain(16, run));
            assert_eq!(serial, par, "threads={threads}");
        }
    }
}
