//! Crash-safe, dependency-free binary serialization for arrays, parameter
//! sets, and (via [`write_file_atomic`]/[`read_file`]) arbitrary framed
//! payloads such as full training-state snapshots.
//!
//! # Container format v2 (`TDRL` magic, little-endian)
//!
//! ```text
//! "TDRL"  u32-version(2)  u64-payload-len  u32-crc32(payload)  payload
//! ```
//!
//! The payload starts with a `u32` *kind* tag ([`KIND_ARRAYS`] for plain
//! array lists, [`KIND_TRAIN_STATE`] for the trainer's full snapshot) and
//! is covered end-to-end by an IEEE CRC-32 ([`testkit::crc32`]). An array
//! list is encoded as:
//!
//! ```text
//! u32-count   per array: u32-rank, rank × u64-dim, numel × f32-le
//! ```
//!
//! # Failure model
//!
//! Readers must survive *any* byte stream without panicking or allocating
//! beyond the data actually present:
//!
//! - the payload is read incrementally in small chunks, so a header that
//!   advertises a huge length on a truncated file fails with `InvalidData`
//!   after reading only what exists;
//! - the checksum is verified *before* any payload byte is interpreted;
//! - every count/rank/dim is validated against the number of bytes
//!   remaining, so no corrupt header can request a gigabyte
//!   `Vec::with_capacity`;
//! - trailing bytes after the framed payload are rejected.
//!
//! Writers are atomic: the container is written to a sibling temp file,
//! fsynced, and renamed over the destination, so a crash mid-write leaves
//! either the old checkpoint or the new one — never a torn file.

use crate::array::NdArray;
use crate::var::Var;
use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::path::Path;
use testkit::crc32::Crc32;

const MAGIC: &[u8; 4] = b"TDRL";
const VERSION: u32 = 2;

/// Payload kind tag: a plain list of arrays (model parameters).
pub const KIND_ARRAYS: u32 = 1;
/// Payload kind tag: a full training-state snapshot (parameters, optimizer
/// moments, counters, PRNG streams — composed by `timedrl-core`).
pub const KIND_TRAIN_STATE: u32 = 2;
/// Payload kind tag: a self-describing model export — an inference-config
/// header followed by the parameter arrays (composed by `timedrl-core`,
/// consumed by `timedrl-serve`'s compiled inference path).
pub const KIND_MODEL: u32 = 3;
/// Payload kind tag: one dataset shard — a manifest header (shard index,
/// total shards, global row offset, channel count, total rows) followed by
/// a contiguous `[T_shard, C]` f32 slab (composed and consumed by
/// `timedrl-data`'s out-of-core shard reader/writer).
pub const KIND_SHARD: u32 = 4;
/// Payload kind tag: one shard's gradient contribution to a sharded
/// pre-training step — shard index, step, sample count, loss breakdown,
/// then the gradient arrays in stable `parameters()` order (composed and
/// consumed by `timedrl-core`'s multi-process shard trainer).
pub const KIND_SHARD_GRAD: u32 = 5;

/// Incremental read chunk: bounds per-step allocation so a lying
/// `payload_len` cannot trigger a huge up-front reservation.
const READ_CHUNK: usize = 64 * 1024;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------------------
// Container framing
// ---------------------------------------------------------------------------

/// Writes one framed container (header + checksum + payload) to `w`. The
/// payload must already begin with its `u32` kind tag — use
/// [`encode_arrays`] or a caller-composed buffer.
pub fn write_container(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut crc = Crc32::new();
    crc.update(payload);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(&crc.finish().to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one framed container from `r`, verifies the checksum, checks the
/// kind tag, and requires EOF right after the payload (no trailing bytes).
/// Returns the payload with the kind tag already consumed.
///
/// `size_hint` bounds the up-front payload reservation (pass the file size
/// when known); the read itself is incremental either way, so memory never
/// exceeds the bytes actually present plus one chunk.
///
/// # Errors
/// `InvalidData` on bad magic, unsupported version, checksum mismatch,
/// wrong kind, truncation, or trailing bytes.
pub fn read_container(
    r: &mut impl Read,
    expect_kind: u32,
    size_hint: Option<u64>,
) -> io::Result<Vec<u8>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("not a TDRL checkpoint"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(invalid(format!(
            "unsupported checkpoint version {version} (this build reads v{VERSION})"
        )));
    }
    let payload_len = read_u64(r)?;
    let declared_crc = read_u32(r)?;
    if let Some(limit) = size_hint {
        // 20-byte header; a payload longer than the file is a lie.
        if payload_len > limit.saturating_sub(20) {
            return Err(invalid(format!(
                "payload length {payload_len} exceeds container size {limit}"
            )));
        }
    }
    // Incremental, bounded read: allocation tracks bytes actually received.
    let reserve = payload_len.min(size_hint.unwrap_or(READ_CHUNK as u64)) as usize;
    let mut payload: Vec<u8> = Vec::with_capacity(reserve.min(1 << 20));
    let mut chunk = [0u8; READ_CHUNK];
    let mut remaining = payload_len;
    while remaining > 0 {
        let want = (remaining as usize).min(READ_CHUNK);
        let got = r.read(&mut chunk[..want])?;
        if got == 0 {
            return Err(invalid(format!(
                "truncated payload: header declares {payload_len} bytes, stream ended {remaining} short"
            )));
        }
        payload.extend_from_slice(&chunk[..got]);
        remaining -= got as u64;
    }
    let mut crc = Crc32::new();
    crc.update(&payload);
    if crc.finish() != declared_crc {
        return Err(invalid(format!(
            "checksum mismatch: stored {declared_crc:#010x}, computed {:#010x}",
            crc.finish()
        )));
    }
    if r.read(&mut chunk[..1])? != 0 {
        return Err(invalid("trailing bytes after checkpoint payload"));
    }
    if payload.len() < 4 {
        return Err(invalid("payload too short for its kind tag"));
    }
    let kind = u32::from_le_bytes(payload[..4].try_into().unwrap());
    if kind != expect_kind {
        return Err(invalid(format!(
            "checkpoint kind {kind} where kind {expect_kind} was expected"
        )));
    }
    payload.drain(..4);
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Bounds-checked payload decoding
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over a decoded payload: every getter validates
/// the remaining length, so corrupt counts fail with `InvalidData` instead
/// of a slice panic or an over-sized allocation.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(invalid(format!(
                "truncated payload: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `n` little-endian `f32`s; `n` is validated against the
    /// remaining length *before* any allocation.
    pub fn f32_vec(&mut self, n: usize) -> io::Result<Vec<f32>> {
        let bytes = n
            .checked_mul(4)
            .ok_or_else(|| invalid("f32 count overflows"))?;
        let raw = self.take(bytes)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Requires every byte to have been consumed (rejects trailing bytes
    /// after the last decoded section).
    pub fn finish(self) -> io::Result<()> {
        if self.remaining() != 0 {
            return Err(invalid(format!(
                "{} trailing bytes after final section",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Appends an array-list section (`u32-count`, then each array) to `buf`.
pub fn encode_arrays(buf: &mut Vec<u8>, arrays: &[&NdArray]) {
    buf.extend_from_slice(&(arrays.len() as u32).to_le_bytes());
    for a in arrays {
        buf.extend_from_slice(&(a.rank() as u32).to_le_bytes());
        for &dim in a.shape() {
            buf.extend_from_slice(&(dim as u64).to_le_bytes());
        }
        for &v in a.data() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Decodes an array-list section. Every rank, dim, and element count is
/// checked against the bytes remaining in `r` before anything is
/// allocated.
pub fn decode_arrays(r: &mut ByteReader) -> io::Result<Vec<NdArray>> {
    let count = r.u32()? as usize;
    // Each array needs at least its 4-byte rank word.
    if count > r.remaining() / 4 {
        return Err(invalid(format!(
            "array count {count} impossible in {} remaining bytes",
            r.remaining()
        )));
    }
    let mut arrays = Vec::with_capacity(count);
    for i in 0..count {
        let rank = r.u32()? as usize;
        if rank > 16 {
            return Err(invalid(format!("array {i}: implausible rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        let mut numel: usize = 1;
        for _ in 0..rank {
            let dim = r.u64()?;
            let dim = usize::try_from(dim)
                .map_err(|_| invalid(format!("array {i}: dimension {dim} overflows")))?;
            numel = numel
                .checked_mul(dim)
                .ok_or_else(|| invalid(format!("array {i}: element count overflows")))?;
            shape.push(dim);
        }
        // The cap that makes corrupt headers harmless: the elements must
        // actually be present in the payload before any buffer is sized.
        let data = r.f32_vec(numel).map_err(|_| {
            invalid(format!(
                "array {i}: {numel} elements declared but only {} bytes remain",
                r.remaining()
            ))
        })?;
        arrays.push(
            NdArray::from_vec(&shape, data).map_err(|e| invalid(e.to_string()))?,
        );
    }
    Ok(arrays)
}

// ---------------------------------------------------------------------------
// Stream-level array API (v1-compatible signatures)
// ---------------------------------------------------------------------------

/// Writes a sequence of arrays to `w` as one framed v2 container.
pub fn write_arrays(w: &mut impl Write, arrays: &[&NdArray]) -> io::Result<()> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&KIND_ARRAYS.to_le_bytes());
    encode_arrays(&mut payload, arrays);
    write_container(w, &payload)
}

/// Reads a sequence of arrays from a framed v2 container.
///
/// # Errors
/// Returns `InvalidData` on a bad magic number, unsupported version,
/// checksum mismatch, truncated or over-long payload, corrupt shape
/// metadata, or trailing bytes.
pub fn read_arrays(r: &mut impl Read) -> io::Result<Vec<NdArray>> {
    let payload = read_container(r, KIND_ARRAYS, None)?;
    let mut reader = ByteReader::new(&payload);
    let arrays = decode_arrays(&mut reader)?;
    reader.finish()?;
    Ok(arrays)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

// ---------------------------------------------------------------------------
// Atomic file API
// ---------------------------------------------------------------------------

/// Atomically writes a framed container to `path`: the bytes go to a
/// sibling `.tmp` file which is fsynced and then renamed over the
/// destination. A crash at any point leaves either the previous file or
/// the complete new one.
pub fn write_file_atomic(path: impl AsRef<Path>, payload: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = match path.file_name() {
        Some(name) => {
            let mut n = name.to_os_string();
            n.push(".tmp");
            path.with_file_name(n)
        }
        None => return Err(invalid(format!("invalid checkpoint path {path:?}"))),
    };
    let result = (|| {
        let mut f = File::create(&tmp)?;
        write_container(&mut f, payload)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable; failure to fsync the directory
        // (exotic filesystems) only weakens durability, not atomicity.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads and validates a framed container from `path`, returning the
/// payload body (kind tag consumed). The file size bounds every
/// allocation, so a corrupt header can never over-allocate.
pub fn read_file(path: impl AsRef<Path>, expect_kind: u32) -> io::Result<Vec<u8>> {
    let f = File::open(path.as_ref())?;
    let size = f.metadata()?.len();
    read_container(&mut BufReader::new(f), expect_kind, Some(size))
}

/// Saves a parameter set (in its stable `parameters()` order) to `path`,
/// atomically (temp file + fsync + rename).
pub fn save_parameters(path: impl AsRef<Path>, params: &[Var]) -> io::Result<()> {
    let arrays: Vec<NdArray> = params.iter().map(|p| p.to_array()).collect();
    let refs: Vec<&NdArray> = arrays.iter().collect();
    let mut payload = Vec::new();
    payload.extend_from_slice(&KIND_ARRAYS.to_le_bytes());
    encode_arrays(&mut payload, &refs);
    write_file_atomic(path, &payload)
}

/// Loads a checkpoint from `path` into an existing parameter set. Count
/// and shapes must match exactly — a mismatch means the checkpoint belongs
/// to a different configuration.
pub fn load_parameters(path: impl AsRef<Path>, params: &[Var]) -> io::Result<()> {
    let payload = read_file(path, KIND_ARRAYS)?;
    let mut reader = ByteReader::new(&payload);
    let arrays = decode_arrays(&mut reader)?;
    reader.finish()?;
    if arrays.len() != params.len() {
        return Err(invalid(format!(
            "checkpoint has {} arrays, model has {} parameters",
            arrays.len(),
            params.len()
        )));
    }
    for (p, a) in params.iter().zip(&arrays) {
        if p.shape() != a.shape() {
            return Err(invalid(format!(
                "parameter shape {:?} vs checkpoint {:?}",
                p.shape(),
                a.shape()
            )));
        }
    }
    for (p, a) in params.iter().zip(arrays) {
        p.set_value(a);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Prng;

    #[test]
    fn roundtrip_in_memory() {
        let mut rng = Prng::new(0);
        let a = rng.randn(&[3, 4]);
        let b = NdArray::scalar(7.5);
        let c = rng.randn(&[2, 2, 2]);
        let mut buf = Vec::new();
        write_arrays(&mut buf, &[&a, &b, &c]).unwrap();
        let back = read_arrays(&mut buf.as_slice()).unwrap();
        assert_eq!(back, vec![a, b, c]);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOPE\x02\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00".to_vec();
        assert!(read_arrays(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut rng = Prng::new(1);
        let a = rng.randn(&[4, 4]);
        let mut buf = Vec::new();
        write_arrays(&mut buf, &[&a]).unwrap();
        buf.truncate(buf.len() - 7);
        assert!(read_arrays(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut rng = Prng::new(5);
        let a = rng.randn(&[2, 2]);
        let mut buf = Vec::new();
        write_arrays(&mut buf, &[&a]).unwrap();
        buf.push(0);
        assert!(read_arrays(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_any_single_byte_flip() {
        let mut rng = Prng::new(6);
        let a = rng.randn(&[3, 3]);
        let mut buf = Vec::new();
        write_arrays(&mut buf, &[&a]).unwrap();
        for i in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[i] ^= 0x40;
            let res = read_arrays(&mut corrupt.as_slice());
            assert!(res.is_err(), "flip at byte {i}/{} went undetected", buf.len());
        }
    }

    #[test]
    fn corrupt_header_cannot_over_allocate() {
        // Handcraft a payload claiming a 2^32-element array with no data
        // behind it: the reader must fail on the length check, not attempt
        // the allocation.
        let mut payload = Vec::new();
        payload.extend_from_slice(&KIND_ARRAYS.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes()); // count = 1
        payload.extend_from_slice(&2u32.to_le_bytes()); // rank = 2
        payload.extend_from_slice(&(1u64 << 16).to_le_bytes());
        payload.extend_from_slice(&(1u64 << 16).to_le_bytes());
        let mut buf = Vec::new();
        write_container(&mut buf, &payload).unwrap();
        let before = testkit::alloc::allocated_bytes();
        assert!(read_arrays(&mut buf.as_slice()).is_err());
        let grown = testkit::alloc::allocated_bytes() - before;
        assert!(grown < 1 << 20, "reader allocated {grown} bytes on a corrupt header");
    }

    #[test]
    fn rejects_v1_and_future_versions() {
        for version in [1u32, 3] {
            let mut buf = Vec::new();
            buf.extend_from_slice(MAGIC);
            buf.extend_from_slice(&version.to_le_bytes());
            buf.extend_from_slice(&0u64.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            let err = read_arrays(&mut buf.as_slice()).unwrap_err();
            assert!(err.to_string().contains("version"), "{err}");
        }
    }

    #[test]
    fn save_load_parameters_roundtrip() {
        let mut rng = Prng::new(2);
        let p1 = Var::parameter(rng.randn(&[5]));
        let p2 = Var::parameter(rng.randn(&[2, 3]));
        let dir = std::env::temp_dir().join("timedrl_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.tdrl");
        save_parameters(&path, &[p1.clone(), p2.clone()]).unwrap();
        let orig1 = p1.to_array();
        let orig2 = p2.to_array();
        // Perturb, then restore.
        p1.set_value(NdArray::zeros(&[5]));
        p2.set_value(NdArray::zeros(&[2, 3]));
        load_parameters(&path, &[p1.clone(), p2.clone()]).unwrap();
        assert_eq!(p1.to_array(), orig1);
        assert_eq!(p2.to_array(), orig2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_save_leaves_no_temp_file() {
        let mut rng = Prng::new(4);
        let p = Var::parameter(rng.randn(&[4]));
        let dir = std::env::temp_dir().join("timedrl_ckpt_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.tdrl");
        save_parameters(&path, &[p.clone()]).unwrap();
        // Overwrite in place: the previous file must be replaced, and no
        // .tmp sibling may survive.
        save_parameters(&path, &[p]).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let mut rng = Prng::new(3);
        let p = Var::parameter(rng.randn(&[4]));
        let dir = std::env::temp_dir().join("timedrl_ckpt_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.tdrl");
        save_parameters(&path, &[p]).unwrap();
        let wrong = Var::parameter(rng.randn(&[5]));
        assert!(load_parameters(&path, &[wrong]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
