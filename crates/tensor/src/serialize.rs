//! Minimal, dependency-free binary serialization for arrays and parameter
//! sets (model checkpoints).
//!
//! Format (`TDRL` magic, version 1, little-endian):
//!
//! ```text
//! "TDRL" u32-version u32-count
//!   per array: u32-rank, rank × u64-dim, numel × f32-le
//! ```

use crate::array::NdArray;
use crate::var::Var;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"TDRL";
const VERSION: u32 = 1;

/// Writes a sequence of arrays to `w`.
pub fn write_arrays(w: &mut impl Write, arrays: &[&NdArray]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(arrays.len() as u32).to_le_bytes())?;
    for a in arrays {
        w.write_all(&(a.rank() as u32).to_le_bytes())?;
        for &dim in a.shape() {
            w.write_all(&(dim as u64).to_le_bytes())?;
        }
        for &v in a.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a sequence of arrays from `r`.
///
/// # Errors
/// Returns `InvalidData` on a bad magic number, unsupported version, or
/// truncated payload.
pub fn read_arrays(r: &mut impl Read) -> io::Result<Vec<NdArray>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a TDRL checkpoint"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let count = read_u32(r)? as usize;
    let mut arrays = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = read_u32(r)? as usize;
        if rank > 16 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible rank"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            shape.push(u64::from_le_bytes(b) as usize);
        }
        let numel: usize = shape.iter().product();
        let mut data = Vec::with_capacity(numel);
        let mut buf = [0u8; 4];
        for _ in 0..numel {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        arrays.push(
            NdArray::from_vec(&shape, data)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
        );
    }
    Ok(arrays)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Saves a parameter set (in its stable `parameters()` order) to `path`.
pub fn save_parameters(path: impl AsRef<Path>, params: &[Var]) -> io::Result<()> {
    let arrays: Vec<NdArray> = params.iter().map(|p| p.to_array()).collect();
    let refs: Vec<&NdArray> = arrays.iter().collect();
    let mut w = BufWriter::new(File::create(path)?);
    write_arrays(&mut w, &refs)?;
    w.flush()
}

/// Loads a checkpoint from `path` into an existing parameter set. Count
/// and shapes must match exactly — a mismatch means the checkpoint belongs
/// to a different configuration.
pub fn load_parameters(path: impl AsRef<Path>, params: &[Var]) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let arrays = read_arrays(&mut r)?;
    if arrays.len() != params.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint has {} arrays, model has {} parameters", arrays.len(), params.len()),
        ));
    }
    for (p, a) in params.iter().zip(&arrays) {
        if p.shape() != a.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("parameter shape {:?} vs checkpoint {:?}", p.shape(), a.shape()),
            ));
        }
    }
    for (p, a) in params.iter().zip(arrays) {
        p.set_value(a);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Prng;

    #[test]
    fn roundtrip_in_memory() {
        let mut rng = Prng::new(0);
        let a = rng.randn(&[3, 4]);
        let b = NdArray::scalar(7.5);
        let c = rng.randn(&[2, 2, 2]);
        let mut buf = Vec::new();
        write_arrays(&mut buf, &[&a, &b, &c]).unwrap();
        let back = read_arrays(&mut buf.as_slice()).unwrap();
        assert_eq!(back, vec![a, b, c]);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00".to_vec();
        assert!(read_arrays(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut rng = Prng::new(1);
        let a = rng.randn(&[4, 4]);
        let mut buf = Vec::new();
        write_arrays(&mut buf, &[&a]).unwrap();
        buf.truncate(buf.len() - 7);
        assert!(read_arrays(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn save_load_parameters_roundtrip() {
        let mut rng = Prng::new(2);
        let p1 = Var::parameter(rng.randn(&[5]));
        let p2 = Var::parameter(rng.randn(&[2, 3]));
        let dir = std::env::temp_dir().join("timedrl_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.tdrl");
        save_parameters(&path, &[p1.clone(), p2.clone()]).unwrap();
        let orig1 = p1.to_array();
        let orig2 = p2.to_array();
        // Perturb, then restore.
        p1.set_value(NdArray::zeros(&[5]));
        p2.set_value(NdArray::zeros(&[2, 3]));
        load_parameters(&path, &[p1.clone(), p2.clone()]).unwrap();
        assert_eq!(p1.to_array(), orig1);
        assert_eq!(p2.to_array(), orig2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let mut rng = Prng::new(3);
        let p = Var::parameter(rng.randn(&[4]));
        let dir = std::env::temp_dir().join("timedrl_ckpt_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.tdrl");
        save_parameters(&path, &[p]).unwrap();
        let wrong = Var::parameter(rng.randn(&[5]));
        assert!(load_parameters(&path, &[wrong]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
