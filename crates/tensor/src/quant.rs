//! Int8 per-channel quantized GEMM for the relaxed-exactness serving tier
//! (DESIGN.md §15).
//!
//! Training and exact-tier serving are locked to the strict bit-exactness
//! contract of `matmul.rs` (§10/§12); this module deliberately steps outside
//! it for inference only. A weight matrix is quantized **once at model-load
//! time** by [`quantize_per_channel`]: each output channel (column) `j` gets
//! a symmetric scale `s_j = max|b[:, j]| / 127` and its values are rounded to
//! signed 8-bit integers. Activations are quantized **per row, per call**
//! with the same symmetric scheme. The product accumulates exactly in `i32`
//! (8-bit × 8-bit products cannot overflow it within a [`KC_PAIRS`]-deep
//! block), flushes to an `f32` accumulator every block, and dequantizes each
//! output element with one `acc * sa_i * sb_j` multiply — so the error is
//! bounded by the quantization steps alone, never by integer wrap-around.
//!
//! ## Packed layout
//!
//! [`matmul_q8`] reuses the panel blocking of the f32 microkernel: `b` is
//! packed into [`NR`]-wide column panels, zero-padded on the right edge. The
//! twist is that each panel row holds a **pair** of `k` steps interleaved
//! per lane (`panel[kk2][c] = (q[2*kk2][j0+c], q[2*kk2+1][j0+c])`, odd tail
//! zero-padded), stored as `i16`. That is exactly the operand shape of the
//! AVX2 `vpmaddwd` instruction (`_mm256_madd_epi16`), which multiplies two
//! `i16` pairs and adds them into one `i32` lane — two multiply-adds per
//! lane per instruction, on half-width operands. The portable fallback
//! performs the *same* integer pair-sums and the same per-block `i32 → f32`
//! conversions, so both instantiations produce bit-identical output and the
//! runtime dispatch is invisible in results (property-tested below).
//!
//! ## Determinism within the tier
//!
//! Integer accumulation is exact, block boundaries are fixed along `k`, and
//! the parallel fan-out splits only output rows — so relaxed-tier results
//! are bit-identical at any `TIMEDRL_THREADS`, merely *different* (within an
//! analytic bound) from the f32 exact tier.

use crate::array::NdArray;
use crate::bufpool::Buffer;
use crate::error::{Result, TensorError};
use crate::matmul::{MATMUL_GRAIN, NR};
use testkit::pool;

/// `k`-pairs per `i32` accumulation block. Products are at most
/// `127 * 127 = 16129`, so a block contributes at most
/// `2 * 16129 * KC_PAIRS < 2^28` per lane — comfortably inside `i32` — and
/// the accumulator is flushed to `f32` at every block boundary.
const KC_PAIRS: usize = 4096;

/// Work-per-chunk target for the parallel fan-out. The quantized kernel
/// retires multiply-adds roughly twice as fast as the f32 one, so chunks
/// carry twice the grain to keep per-chunk dispatch cost equally amortized.
const Q8_GRAIN: usize = MATMUL_GRAIN * 2;

/// A weight matrix quantized to signed 8-bit with per-output-channel scales,
/// packed for [`matmul_q8`]. Built once at model-load time; the packed
/// panels and scales are plain owned allocations (not pooled) because they
/// live for the whole model lifetime, off every request hot path.
pub struct QuantizedMatrix {
    /// Contraction length (rows of the source matrix).
    k: usize,
    /// Output channels (columns of the source matrix).
    n: usize,
    /// `k.div_ceil(2)`: pair-steps per panel column.
    k2: usize,
    /// Panel-packed quantized values: panel `p` spans
    /// `[p * k2 * NR * 2, (p+1) * k2 * NR * 2)`; within it, pair-row `kk2`
    /// holds `NR` lanes of `(q[2*kk2][j], q[2*kk2+1][j])`, right edge and
    /// odd-`k` tail zero-padded. Values are int8-ranged but stored as `i16`,
    /// the operand width of `vpmaddwd`.
    packed: Vec<i16>,
    /// Per-channel dequantization scales, zero-padded to `panels * NR` so
    /// the kernel can always load a full lane of scales.
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Contraction length of the source matrix (`b.shape()[0]`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output channels of the source matrix (`b.shape()[1]`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-output-channel scales (length [`Self::n`]).
    pub fn scales(&self) -> &[f32] {
        &self.scales[..self.n]
    }

    /// Number of `NR`-wide column panels.
    fn panels(&self) -> usize {
        self.n.div_ceil(NR)
    }

    /// The packed pair-rows of panel `p`.
    fn panel(&self, p: usize) -> &[i16] {
        let per = self.k2 * NR * 2;
        &self.packed[p * per..(p + 1) * per]
    }

    /// Reconstructs the dequantized `[k, n]` matrix `q[i][j] * s_j` — the
    /// values [`matmul_q8`] effectively multiplies against. Used by the
    /// round-trip property tests and error diagnostics, not on hot paths.
    pub fn dequantize(&self) -> NdArray {
        let mut out = NdArray::zeros(&[self.k, self.n]);
        let data = out.data_mut();
        for p in 0..self.panels() {
            let j0 = p * NR;
            let w = NR.min(self.n - j0);
            let panel = self.panel(p);
            for kk2 in 0..self.k2 {
                for c in 0..w {
                    let j = j0 + c;
                    let q0 = panel[kk2 * NR * 2 + c * 2];
                    data[(2 * kk2) * self.n + j] = q0 as f32 * self.scales[j];
                    if 2 * kk2 + 1 < self.k {
                        let q1 = panel[kk2 * NR * 2 + c * 2 + 1];
                        data[(2 * kk2 + 1) * self.n + j] = q1 as f32 * self.scales[j];
                    }
                }
            }
        }
        out
    }
}

/// Rounds one value to the symmetric int8 grid: `round(v / s)` (nearest,
/// ties-to-even), clamped to
/// `[-127, 127]` (`-128` is never produced, keeping negation lossless and
/// `vpmaddwd` far from its saturation corner). `inv` is `1/s`, or `0.0` for
/// an all-zero (or non-finite) channel, which maps everything to `0`.
/// Magic number for nearest-even rounding without libm: adding `1.5 * 2^23`
/// pushes the fraction out of the mantissa so the FPU's round-to-nearest
/// does the work in two adds (`f32::round` would lower to a libm call on
/// the baseline x86-64 target — far too slow for the per-request activation
/// pass). Exact for magnitudes up to `2^22`; operands here are clamped to
/// ±127 first.
const ROUND_MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23

#[inline(always)]
fn quant_one(v: f32, inv: f32) -> i16 {
    // Clamping before rounding gives the same grid point as after for
    // every in-range value. NaN inputs propagate through the clamp and the
    // adds, then the saturating cast sends them to 0.
    let t = (v * inv).clamp(-127.0, 127.0);
    ((t + ROUND_MAGIC) - ROUND_MAGIC) as i16
}

/// Packs an int8 pair into the `u32` bit pattern the kernels broadcast,
/// stored in the pooled `f32` scratch via `from_bits` (the value is never
/// interpreted as a float).
#[inline(always)]
fn pack_pair(q0: i16, q1: i16) -> f32 {
    f32::from_bits((q0 as u16 as u32) | ((q1 as u16 as u32) << 16))
}

/// Largest finite absolute value of `vals` (`0.0` if empty or all-NaN).
/// `max` over the non-negative finite images is order-independent, so the
/// vectorized variant below computes the identical value.
#[inline(always)]
fn absmax(vals: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: gated on runtime AVX2 detection.
        return unsafe { x86::absmax_avx2(vals) };
    }
    absmax_scalar(vals)
}

#[inline(always)]
fn absmax_scalar(vals: &[f32]) -> f32 {
    vals.iter().fold(0.0f32, |acc, v| {
        let a = v.abs();
        if a.is_finite() { acc.max(a) } else { acc }
    })
}

/// Symmetric scale for a channel with absolute maximum `amax`, and its
/// reciprocal: `(amax / 127, 127 / amax)`, or `(0, 0)` for a degenerate
/// channel so every value quantizes to `0`.
#[inline(always)]
fn scale_for(amax: f32) -> (f32, f32) {
    if amax > 0.0 {
        let s = amax / 127.0;
        (s, s.recip())
    } else {
        (0.0, 0.0)
    }
}

/// Quantizes a rank-2 weight matrix `b` (`[k, n]`) to int8 with one
/// symmetric scale per output channel (column), packed into the
/// pair-interleaved panel layout of [`matmul_q8`]. Intended to run once at
/// model-load time; see the module docs for the scheme and error bound
/// (per element, `|b - dequantize(quantize(b))| <= s_j / 2 = amax_j / 254`).
///
/// # Errors
/// Returns [`TensorError::QuantizeRank`] if `b` is not rank-2.
pub fn quantize_per_channel(b: &NdArray) -> Result<QuantizedMatrix> {
    if b.rank() != 2 {
        return Err(TensorError::QuantizeRank { shape: b.shape().to_vec() });
    }
    let (k, n) = (b.shape()[0], b.shape()[1]);
    let data = b.data();
    let panels = n.div_ceil(NR);
    let k2 = k.div_ceil(2);

    // One row-major pass accumulates every channel's absolute maximum.
    let mut amax = vec![0.0f32; n];
    for row in data.chunks_exact(n.max(1)) {
        for (m, &v) in amax.iter_mut().zip(row) {
            let a = v.abs();
            if a.is_finite() && a > *m {
                *m = a;
            }
        }
    }
    let mut scales = vec![0.0f32; panels * NR];
    let mut inv = vec![0.0f32; n];
    for j in 0..n {
        let (s, i) = scale_for(amax[j]);
        scales[j] = s;
        inv[j] = i;
    }

    let mut packed = vec![0i16; panels * k2 * NR * 2];
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let panel = &mut packed[p * k2 * NR * 2..(p + 1) * k2 * NR * 2];
        for kk2 in 0..k2 {
            let row = &mut panel[kk2 * NR * 2..(kk2 + 1) * NR * 2];
            for c in 0..w {
                let j = j0 + c;
                row[c * 2] = quant_one(data[(2 * kk2) * n + j], inv[j]);
                if 2 * kk2 + 1 < k {
                    row[c * 2 + 1] = quant_one(data[(2 * kk2 + 1) * n + j], inv[j]);
                }
            }
        }
    }
    Ok(QuantizedMatrix { k, n, k2, packed, scales })
}

/// Quantizes `m` activation rows (`a` is `[m, k]` row-major) with one
/// symmetric scale per row. Pairs `(q[2*kk2], q[2*kk2+1])` are bit-packed
/// into one `u32` per pair-step and stored *as raw bit patterns* in the
/// pooled `f32` scratch (`f32::from_bits` on write, `to_bits` on read; the
/// values are never interpreted as floats) so the request hot path stays on
/// the existing buffer pool and allocation-free once warm.
fn quantize_rows(a: &[f32], m: usize, k: usize, k2: usize, aq: &mut [f32], scales: &mut [f32]) {
    debug_assert_eq!(aq.len(), m * k2);
    debug_assert_eq!(scales.len(), m);
    for i in 0..m {
        let row = &a[i * k..(i + 1) * k];
        let (s, inv) = scale_for(absmax(row));
        scales[i] = s;
        let out = &mut aq[i * k2..(i + 1) * k2];
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: gated on runtime AVX2 detection.
            unsafe { x86::quantize_row_avx2(row, inv, out) };
            continue;
        }
        quantize_row_tail(row, inv, out, 0);
    }
}

/// Quantizes the trailing (possibly partial) pairs of one row, starting at
/// pair index `from`. Bit-identical arithmetic to the vectorized pass (the
/// SIMD lane ops are the same IEEE operations in the same order).
fn quantize_row_tail(row: &[f32], inv: f32, out: &mut [f32], from: usize) {
    let k = row.len();
    let full = k / 2;
    for (kk2, o) in out[from..full].iter_mut().enumerate() {
        let kk2 = kk2 + from;
        *o = pack_pair(quant_one(row[2 * kk2], inv), quant_one(row[2 * kk2 + 1], inv));
    }
    if k % 2 == 1 {
        out[full] = pack_pair(quant_one(row[k - 1], inv), 0);
    }
}

/// Portable row-range core: for each output element, the exact integer
/// pair-sums and per-[`KC_PAIRS`]-block `i32 → f32` flushes of the AVX2
/// kernel (`as f32` is the same round-to-nearest conversion as
/// `vcvtdq2ps`), then one `(acc * sa) * sb` dequantization — bit-identical
/// to [`q8_rows_avx2`] by construction, property-tested below.
fn q8_rows_portable(
    aq: &[f32],
    a_scales: &[f32],
    qb: &QuantizedMatrix,
    out_chunk: &mut [f32],
    row0: usize,
) {
    let (k2, n) = (qb.k2, qb.n);
    let m_chunk = out_chunk.len() / n.max(1);
    for li in 0..m_chunk {
        let i = row0 + li;
        let arow = &aq[i * k2..(i + 1) * k2];
        let sa = a_scales[i];
        let orow = &mut out_chunk[li * n..(li + 1) * n];
        for p in 0..qb.panels() {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = qb.panel(p);
            let mut accf = [0.0f32; NR];
            let mut kk2 = 0;
            while kk2 < k2 {
                let kend = (kk2 + KC_PAIRS).min(k2);
                let mut acci = [0i32; NR];
                for kx in kk2..kend {
                    let pair = arow[kx].to_bits();
                    let lo = (pair as u16 as i16) as i32;
                    let hi = ((pair >> 16) as u16 as i16) as i32;
                    let prow = &panel[kx * NR * 2..(kx + 1) * NR * 2];
                    for c in 0..NR {
                        acci[c] += lo * prow[c * 2] as i32 + hi * prow[c * 2 + 1] as i32;
                    }
                }
                for c in 0..NR {
                    accf[c] += acci[c] as f32;
                }
                kk2 = kend;
            }
            for c in 0..w {
                orow[j0 + c] = accf[c] * sa * qb.scales[j0 + c];
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{quantize_row_tail, QuantizedMatrix, KC_PAIRS, NR, ROUND_MAGIC};
    use std::arch::x86_64::{
        __m256, __m256i, _mm256_add_epi32, _mm256_add_ps, _mm256_and_ps, _mm256_andnot_si256,
        _mm256_castps_si256, _mm256_castsi256_ps, _mm256_cmp_ps, _mm256_cvtepi32_ps,
        _mm256_cvtps_epi32, _mm256_loadu_ps, _mm256_loadu_si256, _mm256_madd_epi16,
        _mm256_max_ps, _mm256_min_ps, _mm256_mul_ps, _mm256_packs_epi32,
        _mm256_permute4x64_epi64, _mm256_set1_epi32, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_setzero_si256, _mm256_storeu_ps, _mm256_storeu_si256, _mm256_sub_ps, _mm512_add_ps,
        _mm512_cvtepi32_ps, _mm512_dpwssd_epi32, _mm512_loadu_ps, _mm512_loadu_si512,
        _mm512_mul_ps, _mm512_set1_epi32, _mm512_set1_ps, _mm512_setzero_ps, _mm512_setzero_si512,
        _mm512_storeu_ps, _CMP_LT_OQ, _CMP_UNORD_Q,
    };

    /// Vectorized [`super::absmax_scalar`]: non-finite lanes map to `0.0`
    /// (exactly the scalar filter) and `max` over the resulting
    /// non-negative finite values is order-independent, so the lane split
    /// changes no bits.
    #[target_feature(enable = "avx2")]
    pub(super) fn absmax_avx2(vals: &[f32]) -> f32 {
        let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
        let inf = _mm256_set1_ps(f32::INFINITY);
        let mut acc = _mm256_setzero_ps();
        let mut chunks = vals.chunks_exact(8);
        for c in chunks.by_ref() {
            // SAFETY: `c` is exactly one 256-bit load wide.
            let v = unsafe { _mm256_loadu_ps(c.as_ptr()) };
            let a = _mm256_and_ps(v, abs_mask);
            // `a < inf` is false for both NaN (unordered) and infinity.
            let finite = _mm256_cmp_ps::<_CMP_LT_OQ>(a, inf);
            acc = _mm256_max_ps(acc, _mm256_and_ps(a, finite));
        }
        let mut lanes = [0.0f32; 8];
        // SAFETY: `lanes` is exactly one 256-bit store wide.
        unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), acc) };
        let mut m = lanes.iter().fold(0.0f32, |x, &y| x.max(y));
        for &v in chunks.remainder() {
            let a = v.abs();
            if a.is_finite() {
                m = m.max(a);
            }
        }
        m
    }

    /// Quantizes 8 activations at once: the same multiply, clamp,
    /// magic-number round, and NaN→0 mapping as [`super::quant_one`], lane
    /// for lane (`vcvtps2dq` of an integral value is exact; NaN lanes
    /// become the integer-indefinite and are masked back to `0`).
    #[target_feature(enable = "avx2")]
    #[inline]
    fn quant8(v: __m256, inv: __m256, lo: __m256, hi: __m256, magic: __m256) -> __m256i {
        let t = _mm256_mul_ps(v, inv);
        // Operand order makes min/max return their *second* source on NaN,
        // so a NaN `t` propagates — matching scalar `clamp`.
        let c = _mm256_min_ps(hi, _mm256_max_ps(lo, t));
        let r = _mm256_sub_ps(_mm256_add_ps(c, magic), magic);
        let q = _mm256_cvtps_epi32(r);
        let nan = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_UNORD_Q>(t, t));
        _mm256_andnot_si256(nan, q)
    }

    /// Vectorized one-row activation quantization: 16 inputs per step
    /// narrow to 16 i8-ranged i16 values — exactly the 8 packed pair words
    /// the kernels broadcast (`vpackssdw` interleaves 128-bit lanes, the
    /// `vpermq` restores element order). Bit-identical to
    /// [`super::quantize_row_tail`] for every input, including NaN and
    /// ±infinity.
    #[target_feature(enable = "avx2")]
    pub(super) fn quantize_row_avx2(row: &[f32], inv: f32, out: &mut [f32]) {
        let k = row.len();
        let blocks = k / 16;
        debug_assert!(out.len() >= blocks * 8);
        let invv = _mm256_set1_ps(inv);
        let lo = _mm256_set1_ps(-127.0);
        let hi = _mm256_set1_ps(127.0);
        let magic = _mm256_set1_ps(ROUND_MAGIC);
        for b in 0..blocks {
            // SAFETY: 16 f32 reads at `row[b * 16..]` and one 256-bit
            // store at `out[b * 8..]` are inside the bounds checked above.
            unsafe {
                let p = row.as_ptr().add(b * 16);
                let q0 = quant8(_mm256_loadu_ps(p), invv, lo, hi, magic);
                let q1 = quant8(_mm256_loadu_ps(p.add(8)), invv, lo, hi, magic);
                let packed =
                    _mm256_permute4x64_epi64::<0b1101_1000>(_mm256_packs_epi32(q0, q1));
                _mm256_storeu_si256(out.as_mut_ptr().add(b * 8) as *mut __m256i, packed);
            }
        }
        quantize_row_tail(row, inv, out, blocks * 8);
    }

    /// Rows per register block of the quantized kernel. Larger than the f32
    /// kernel's `MR = 4` because each instruction retires two multiply-adds
    /// per lane: six rows share each pair of panel loads (6 rows × 2 halves
    /// of `i32` accumulators plus two panel vectors and one broadcast fit
    /// the 16 YMM registers; the `f32` accumulators are touched once per
    /// `KC_PAIRS` block, so spilling them costs nothing).
    const QMR: usize = 6;

    /// One accumulate step, AVX2: `acc += vpmaddwd(a, b)` — the pairwise
    /// `i16 × i16 → i32` multiply-add plus a separate lane add.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn step_madd(acc: __m256i, a: __m256i, b: __m256i) -> __m256i {
        _mm256_add_epi32(acc, _mm256_madd_epi16(a, b))
    }

    /// Generates one SIMD instantiation of the row-range core: a rows
    /// driver plus `QMR`-row and 1-row register blocks, parameterized on
    /// the accumulate step. All instantiations perform identical integer
    /// arithmetic and identical per-block `i32 → f32` flushes, so they are
    /// bit-identical to each other and to [`super::q8_rows_portable`].
    macro_rules! q8_instantiation {
        ($rows:ident, $block_main:ident, $block_edge:ident, $step:ident,
         [$($feat:literal),+]) => {
            #[target_feature($(enable = $feat),+)]
            pub(super) fn $rows(
                aq: &[f32],
                a_scales: &[f32],
                qb: &QuantizedMatrix,
                out_chunk: &mut [f32],
                row0: usize,
            ) {
                let n = qb.n;
                let m_chunk = out_chunk.len() / n.max(1);
                let mut i = 0;
                while i < m_chunk {
                    let mr = QMR.min(m_chunk - i);
                    if mr == QMR {
                        $block_main(aq, a_scales, qb, out_chunk, row0, i);
                    } else {
                        // Edge rows one at a time: every output element's
                        // arithmetic is independent of row blocking, so
                        // this changes no bits.
                        for r in 0..mr {
                            $block_edge(aq, a_scales, qb, out_chunk, row0, i + r);
                        }
                    }
                    i += mr;
                }
            }

            q8_block_impl!($block_main, QMR, $step, [$($feat),+]);
            q8_block_impl!($block_edge, 1, $step, [$($feat),+]);
        };
    }

    /// `R`-row × one-panel register block. Activation pairs broadcast with
    /// the memory-form `vpbroadcastd` (the scratch holds them bit-packed as
    /// one `u32` per pair); weight pairs stream from the packed panel; the
    /// step instruction multiplies `i16` pairs into exact `i32` lane sums.
    macro_rules! q8_block_impl {
        ($name:ident, $r:expr, $step:ident, [$($feat:literal),+]) => {
            #[target_feature($(enable = $feat),+)]
            #[inline]
            fn $name(
                aq: &[f32],
                a_scales: &[f32],
                qb: &QuantizedMatrix,
                out_chunk: &mut [f32],
                row0: usize,
                i: usize,
            ) {
                const R: usize = $r;
                let (k2, n) = (qb.k2, qb.n);
                // Hot-loop reads go through raw pointers so no bounds check
                // lands between the SIMD ops; validate the extents once.
                assert!((row0 + i + R) * k2 <= aq.len());
                assert!(row0 + i + R <= a_scales.len());
                let aqp = aq.as_ptr() as *const i32;
                let arow0 = (row0 + i) * k2;
                for p in 0..qb.panels() {
                    let j0 = p * NR;
                    let w = NR.min(n - j0);
                    let panel = qb.panel(p);
                    let pp = panel.as_ptr();
                    let mut accf = [[_mm256_setzero_ps(); 2]; R];
                    let mut kk2 = 0;
                    while kk2 < k2 {
                        let kend = (kk2 + KC_PAIRS).min(k2);
                        let mut acci = [[_mm256_setzero_si256(); 2]; R];
                        for kx in kk2..kend {
                            // SAFETY: pair-row `kx` of the panel spans
                            // `NR * 2 = 32` i16 — exactly two 256-bit
                            // loads; activation reads are inside the
                            // extent asserted above (f32 scratch read as
                            // raw `i32` bits, same size and alignment).
                            unsafe {
                                let pb = pp.add(kx * NR * 2);
                                let b0 = _mm256_loadu_si256(pb as *const __m256i);
                                let b1 = _mm256_loadu_si256(pb.add(16) as *const __m256i);
                                let mut r = 0;
                                while r < R {
                                    let av =
                                        _mm256_set1_epi32(*aqp.add(arow0 + r * k2 + kx));
                                    acci[r][0] = $step(acci[r][0], av, b0);
                                    acci[r][1] = $step(acci[r][1], av, b1);
                                    r += 1;
                                }
                            }
                        }
                        for (fa, ia) in accf.iter_mut().zip(acci.iter()) {
                            fa[0] = _mm256_add_ps(fa[0], _mm256_cvtepi32_ps(ia[0]));
                            fa[1] = _mm256_add_ps(fa[1], _mm256_cvtepi32_ps(ia[1]));
                        }
                        kk2 = kend;
                    }
                    // SAFETY: scales are zero-padded to `panels * NR`, so a
                    // full 16-lane load at `j0` is always in bounds.
                    let (sb0, sb1) = unsafe {
                        let sp = qb.scales.as_ptr().add(j0);
                        (_mm256_loadu_ps(sp), _mm256_loadu_ps(sp.add(8)))
                    };
                    for (r, fa) in accf.iter().enumerate() {
                        let sa = _mm256_set1_ps(a_scales[row0 + i + r]);
                        let lo = _mm256_mul_ps(_mm256_mul_ps(fa[0], sa), sb0);
                        let hi = _mm256_mul_ps(_mm256_mul_ps(fa[1], sa), sb1);
                        let mut tmp = [0.0f32; NR];
                        // SAFETY: `tmp` is exactly two 256-bit stores wide.
                        unsafe {
                            _mm256_storeu_ps(tmp.as_mut_ptr(), lo);
                            _mm256_storeu_ps(tmp.as_mut_ptr().add(8), hi);
                        }
                        let o0 = (i + r) * n + j0;
                        out_chunk[o0..o0 + w].copy_from_slice(&tmp[..w]);
                    }
                }
            }
        };
    }

    q8_instantiation!(q8_rows_avx2, q8_block6_avx2, q8_block1_avx2, step_madd, ["avx2"]);

    /// Rows per register block of the 512-bit VNNI kernel. One pair-row of
    /// a panel is exactly one 512-bit load (`NR * 2 = 32` i16) and the 16
    /// `i32` column sums fill one ZMM accumulator per row, so more rows
    /// amortize each panel load; 8 accumulators plus operands sit far
    /// inside the 32 ZMM registers.
    const QMR_Z: usize = 8;

    /// AVX-512 VNNI row-range core: `vpdpwssd` fuses the pairwise
    /// `i16 × i16 → i32` multiply-add *and* the accumulator add into one
    /// instruction (saturation cannot fire for int8-ranged operands), and
    /// the broadcast folds into its memory operand — the same exact integer
    /// arithmetic as [`q8_rows_avx2`] at a fraction of the port pressure.
    #[target_feature(enable = "avx512f", enable = "avx512vnni")]
    pub(super) fn q8_rows_vnni(
        aq: &[f32],
        a_scales: &[f32],
        qb: &QuantizedMatrix,
        out_chunk: &mut [f32],
        row0: usize,
    ) {
        let n = qb.n;
        let m_chunk = out_chunk.len() / n.max(1);
        let mut i = 0;
        while i < m_chunk {
            let mr = QMR_Z.min(m_chunk - i);
            if mr == QMR_Z {
                q8_block8_vnni(aq, a_scales, qb, out_chunk, row0, i);
            } else {
                // Edge rows one at a time: every output element's
                // arithmetic is independent of row blocking, so this
                // changes no bits.
                for r in 0..mr {
                    q8_block1_vnni(aq, a_scales, qb, out_chunk, row0, i + r);
                }
            }
            i += mr;
        }
    }

    /// `R`-row × one-panel ZMM register block of the VNNI core. Identical
    /// integer arithmetic and identical per-[`KC_PAIRS`]-block `i32 → f32`
    /// flushes as the other cores, so bit-identical output.
    macro_rules! q8_block_zmm {
        ($name:ident, $r:expr) => {
            #[target_feature(enable = "avx512f", enable = "avx512vnni")]
            #[inline]
            fn $name(
                aq: &[f32],
                a_scales: &[f32],
                qb: &QuantizedMatrix,
                out_chunk: &mut [f32],
                row0: usize,
                i: usize,
            ) {
                const R: usize = $r;
                let (k2, n) = (qb.k2, qb.n);
                // Hot-loop reads go through raw pointers so no bounds check
                // lands between the SIMD ops; validate the extents once.
                assert!((row0 + i + R) * k2 <= aq.len());
                assert!(row0 + i + R <= a_scales.len());
                let aqp = aq.as_ptr() as *const i32;
                let arow0 = (row0 + i) * k2;
                for p in 0..qb.panels() {
                    let j0 = p * NR;
                    let w = NR.min(n - j0);
                    let panel = qb.panel(p);
                    let pp = panel.as_ptr();
                    let mut accf = [_mm512_setzero_ps(); R];
                    let mut kk2 = 0;
                    while kk2 < k2 {
                        let kend = (kk2 + KC_PAIRS).min(k2);
                        let mut acci = [_mm512_setzero_si512(); R];
                        for kx in kk2..kend {
                            // SAFETY: pair-row `kx` of the panel spans
                            // `NR * 2 = 32` i16 — exactly one 512-bit load;
                            // activation reads are inside the extent
                            // asserted above (f32 scratch read as raw
                            // `i32` bits, same size and alignment).
                            unsafe {
                                let b = _mm512_loadu_si512(pp.add(kx * NR * 2) as *const _);
                                let mut r = 0;
                                while r < R {
                                    let av = _mm512_set1_epi32(*aqp.add(arow0 + r * k2 + kx));
                                    acci[r] = _mm512_dpwssd_epi32(acci[r], av, b);
                                    r += 1;
                                }
                            }
                        }
                        for (fa, ia) in accf.iter_mut().zip(acci.iter()) {
                            *fa = _mm512_add_ps(*fa, _mm512_cvtepi32_ps(*ia));
                        }
                        kk2 = kend;
                    }
                    // SAFETY: scales are zero-padded to `panels * NR`, so a
                    // full 16-lane load at `j0` is always in bounds.
                    let sb = unsafe { _mm512_loadu_ps(qb.scales.as_ptr().add(j0)) };
                    for (r, fa) in accf.iter().enumerate() {
                        let sa = _mm512_set1_ps(a_scales[row0 + i + r]);
                        let prod = _mm512_mul_ps(_mm512_mul_ps(*fa, sa), sb);
                        let mut tmp = [0.0f32; NR];
                        // SAFETY: `tmp` is exactly one 512-bit store wide.
                        unsafe {
                            _mm512_storeu_ps(tmp.as_mut_ptr(), prod);
                        }
                        let o0 = (i + r) * n + j0;
                        out_chunk[o0..o0 + w].copy_from_slice(&tmp[..w]);
                    }
                }
            }
        };
    }

    q8_block_zmm!(q8_block8_vnni, QMR_Z);
    q8_block_zmm!(q8_block1_vnni, 1);
}

/// Runtime-dispatched row-range core. Every instantiation produces
/// bit-identical output (exact integer arithmetic, identical block flushes),
/// so the choice never shows up in results — only in speed.
fn q8_rows(aq: &[f32], a_scales: &[f32], qb: &QuantizedMatrix, out_chunk: &mut [f32], row0: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY (both arms): gated on runtime feature detection; the fns
        // are safe Rust bodies that only need the features to be legal to
        // execute.
        if std::arch::is_x86_feature_detected!("avx512vnni")
            && std::arch::is_x86_feature_detected!("avx512f")
        {
            unsafe {
                return x86::q8_rows_vnni(aq, a_scales, qb, out_chunk, row0);
            }
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            unsafe {
                return x86::q8_rows_avx2(aq, a_scales, qb, out_chunk, row0);
            }
        }
    }
    q8_rows_portable(aq, a_scales, qb, out_chunk, row0);
}

/// Quantized matrix product `a · dequantize(b)` over `m = rows(a)` output
/// rows, writing `out` (`[m, n]` row-major). Quantizes activations per row,
/// then fans output-row chunks across the pool; chunk boundaries never touch
/// `k`, so the result is bit-identical at any thread count.
fn q8_fold(a: &[f32], m: usize, qb: &QuantizedMatrix, out: &mut [f32]) {
    let (k, k2, n) = (qb.k, qb.k2, qb.n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(out.len(), m * n);
    if out.is_empty() {
        return;
    }
    let mut aq = Buffer::zeroed(m * k2);
    let mut a_scales = Buffer::zeroed(m);
    quantize_rows(a, m, k, k2, &mut aq, &mut a_scales);
    let (aq, a_scales) = (&aq[..], &a_scales[..]);
    let rows_per_chunk = if pool::should_parallelize(m * k * n, Q8_GRAIN) {
        (pool::grain(Q8_GRAIN) / (k * n).max(1)).clamp(1, m)
    } else {
        m
    };
    pool::for_each_chunk(out, rows_per_chunk * n, |offset, chunk| {
        q8_rows(aq, a_scales, qb, chunk, offset / n);
    });
}

/// Int8 quantized matrix product against a pre-quantized weight matrix:
/// numerically `a · dequantize(b)` within the rounding of dynamic per-row
/// activation quantization (see the module docs for the bound).
///
/// Rank dispatch mirrors the shared-right-operand forms of [`crate::matmul`]
/// — the shapes a weight matrix is applied in:
///
/// * `[m, k] x (k, n) -> [m, n]`
/// * `[bs, m, k] x (k, n) -> [bs, m, n]` (batch folded into the rows)
///
/// # Errors
/// Returns [`TensorError::MatmulMismatch`] for other ranks or a contraction
/// mismatch, naming the same `(m,k) x (k',n)` dims as the f32 path would.
pub fn matmul_q8(a: &NdArray, b: &QuantizedMatrix) -> Result<NdArray> {
    let err =
        || TensorError::MatmulMismatch { lhs: a.shape().to_vec(), rhs: vec![b.k, b.n] };
    // Stack-array shapes: the steady-state serving path counts on this
    // function allocating nothing beyond pooled buffers.
    let (rows, k, mut out) = match a.rank() {
        2 => (a.shape()[0], a.shape()[1], NdArray::zeros(&[a.shape()[0], b.n])),
        3 => (
            a.shape()[0] * a.shape()[1],
            a.shape()[2],
            NdArray::zeros(&[a.shape()[0], a.shape()[1], b.n]),
        ),
        _ => return Err(err()),
    };
    if k != b.k {
        return Err(err());
    }
    q8_fold(a.data(), rows, b, out.data_mut());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul_reference;
    use testkit::{prop, prop_assert, prop_assert_eq};

    /// The transpose-suite shape grid: zero-size, both sides of the
    /// `MIN_PACKED_DIM` boundary, odd, power-of-two, and multi-chunk sizes.
    const DIMS: [usize; 9] = [0, 1, 3, 4, 5, 7, 17, 64, 129];

    fn grid_array(shape: &[usize], salt: u64) -> NdArray {
        NdArray::from_fn(shape, |i| {
            let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt);
            match x % 7 {
                0 => 0.0,
                1 => -0.0,
                _ => (x % 1000) as f32 / 61.0 - 8.0,
            }
        })
    }

    #[test]
    fn quantize_rejects_non_matrix() {
        assert!(matches!(
            quantize_per_channel(&NdArray::zeros(&[3])),
            Err(TensorError::QuantizeRank { .. })
        ));
        assert!(matches!(
            quantize_per_channel(&NdArray::zeros(&[2, 3, 4])),
            Err(TensorError::QuantizeRank { .. })
        ));
    }

    #[test]
    fn matmul_q8_rejects_mismatch() {
        let qb = quantize_per_channel(&grid_array(&[5, 4], 1)).unwrap();
        assert!(matmul_q8(&NdArray::zeros(&[3, 6]), &qb).is_err());
        assert!(matmul_q8(&NdArray::zeros(&[5]), &qb).is_err());
        let msg = matmul_q8(&NdArray::zeros(&[3, 6]), &qb).unwrap_err().to_string();
        assert!(msg.contains("(3,6) x (5,4)"), "message: {msg}");
    }

    #[test]
    fn zero_and_constant_channels_are_exact() {
        // An all-zero channel gets scale 0 and contributes exactly 0; a
        // constant channel quantizes with zero rounding error (±127 grid).
        let b = NdArray::from_fn(&[8, 3], |i| match i % 3 {
            0 => 0.0,
            1 => 2.5,
            _ => -1.25,
        });
        let qb = quantize_per_channel(&b).unwrap();
        let dq = qb.dequantize();
        for (x, y) in b.data().iter().zip(dq.data()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
        assert_eq!(qb.scales()[0], 0.0);
    }

    prop! {
        #![config(cases = 48)]

        /// Satellite: per-channel quantize→dequantize round-trip stays
        /// within half a quantization step per element
        /// (`s_j / 2 = amax_j / 254`, with a hair of f32 slack).
        fn round_trip_error_is_bounded(
            ki in 0usize..9,
            ni in 0usize..9,
            salt in 0u64..1000
        ) {
            let (k, n) = (DIMS[ki], DIMS[ni]);
            let b = grid_array(&[k, n], salt);
            let qb = quantize_per_channel(&b).unwrap();
            let dq = qb.dequantize();
            for j in 0..n {
                let amax = (0..k).fold(0.0f32, |m, i| m.max(b.at(&[i, j]).abs()));
                let bound = amax / 253.0 + 1e-6;
                for i in 0..k {
                    let diff = (b.at(&[i, j]) - dq.at(&[i, j])).abs();
                    prop_assert!(
                        diff <= bound,
                        "({i},{j}): |{} - {}| = {diff} > {bound}",
                        b.at(&[i, j]),
                        dq.at(&[i, j])
                    );
                }
            }
        }

        /// Satellite: int8 GEMM vs the f32 reference within the analytic
        /// tolerance of the two symmetric quantizations, across shapes
        /// including zero-size and `MIN_PACKED_DIM` edges.
        fn q8_matches_f32_within_analytic_bound(
            mi in 0usize..9,
            ki in 0usize..9,
            ni in 0usize..9,
            salt in 0u64..1000
        ) {
            let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
            let a = grid_array(&[m, k], salt);
            let b = grid_array(&[k, n], salt ^ 0xbeef);
            let qb = quantize_per_channel(&b).unwrap();
            let got = matmul_q8(&a, &qb).unwrap();
            let want = matmul_reference(&a, &b).unwrap();
            prop_assert_eq!(got.shape(), want.shape());
            for i in 0..m {
                let sa = {
                    let amax = (0..k).fold(0.0f32, |mx, kk| mx.max(a.at(&[i, kk]).abs()));
                    amax / 127.0
                };
                let arow_abs: f32 = (0..k).map(|kk| a.at(&[i, kk]).abs()).sum();
                for j in 0..n {
                    let sb = qb.scales()[j];
                    let bcol_abs: f32 = (0..k).map(|kk| b.at(&[kk, j]).abs()).sum();
                    // a = sa·qa + da (|da| ≤ sa/2), b = sb·qb + db: the
                    // product error is Σ|a|·sb/2 + Σ|b|·sa/2 + k·sa·sb/4,
                    // plus slack for f32 accumulation differences.
                    let bound = (arow_abs * sb / 2.0 + bcol_abs * sa / 2.0
                        + k as f32 * sa * sb / 4.0)
                        * 1.05
                        + 1e-4;
                    let diff = (got.at(&[i, j]) - want.at(&[i, j])).abs();
                    prop_assert!(
                        diff <= bound,
                        "({i},{j}): |{} - {}| = {diff} > {bound}",
                        got.at(&[i, j]),
                        want.at(&[i, j])
                    );
                }
            }
        }

        /// Satellite: bit-identical results at threads {1, 2, 4} — the
        /// relaxed tier is deterministic *within itself* even though it is
        /// not bit-equal to the exact tier. Also covers the batched fold.
        fn q8_is_thread_deterministic(
            mi in 0usize..9,
            ki in 0usize..9,
            ni in 0usize..9,
            bs in 1usize..4
        ) {
            let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
            let a2 = grid_array(&[m, k], 3);
            let a3 = grid_array(&[bs, m, k], 5);
            let qb = quantize_per_channel(&grid_array(&[k, n], 7)).unwrap();
            let want2 = pool::with_threads(1, || matmul_q8(&a2, &qb).unwrap());
            let want3 = pool::with_threads(1, || matmul_q8(&a3, &qb).unwrap());
            for threads in [2usize, 4] {
                let (got2, got3) = pool::with_threads(threads, || {
                    pool::with_grain(64, || {
                        (matmul_q8(&a2, &qb).unwrap(), matmul_q8(&a3, &qb).unwrap())
                    })
                });
                prop_assert!(got2.data().iter().zip(want2.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits()), "2-D t{}", threads);
                prop_assert!(got3.data().iter().zip(want3.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits()), "3-D t{}", threads);
            }
        }

        /// Every SIMD core (AVX2 `vpmaddwd`, AVX-512 VNNI `vpdpwssd`) is
        /// bit-identical to the portable core (exact integer arithmetic +
        /// identical block flushes), so runtime dispatch can never change
        /// results.
        fn portable_and_simd_cores_agree_bitwise(
            mi in 0usize..9,
            ki in 0usize..9,
            ni in 0usize..9,
            salt in 0u64..1000
        ) {
            let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
            if n == 0 {
                return;
            }
            let a = grid_array(&[m, k], salt);
            let qb = quantize_per_channel(&grid_array(&[k, n], salt ^ 0x5a5a)).unwrap();
            let k2 = qb.k2;
            let mut aq = vec![0.0f32; m * k2];
            let mut scales = vec![0.0f32; m];
            quantize_rows(a.data(), m, k, k2, &mut aq, &mut scales);
            let mut portable = vec![0.0f32; m * n];
            q8_rows_portable(&aq, &scales, &qb, &mut portable, 0);
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut simd = vec![0.0f32; m * n];
                    // SAFETY: gated on runtime AVX2 detection.
                    unsafe { x86::q8_rows_avx2(&aq, &scales, &qb, &mut simd, 0) };
                    prop_assert!(portable.iter().zip(&simd)
                        .all(|(x, y)| x.to_bits() == y.to_bits()), "avx2 core");
                }
                if std::arch::is_x86_feature_detected!("avx512vnni")
                    && std::arch::is_x86_feature_detected!("avx512f")
                {
                    let mut simd = vec![0.0f32; m * n];
                    // SAFETY: gated on runtime VNNI + AVX-512F detection.
                    unsafe { x86::q8_rows_vnni(&aq, &scales, &qb, &mut simd, 0) };
                    prop_assert!(portable.iter().zip(&simd)
                        .all(|(x, y)| x.to_bits() == y.to_bits()), "vnni core");
                }
            }
            let _ = portable;
        }
    }

    #[test]
    fn deep_k_blocks_flush_without_overflow() {
        // k > KC_PAIRS * 2 forces multiple i32 → f32 flushes; with all-max
        // values every product is 127 * 127, the worst case for overflow.
        let k = KC_PAIRS * 2 + 3;
        let a = NdArray::from_fn(&[1, k], |_| 1.0);
        let b = NdArray::from_fn(&[k, 2], |i| if i % 2 == 0 { 1.0 } else { -1.0 });
        let qb = quantize_per_channel(&b).unwrap();
        let got = matmul_q8(&a, &qb).unwrap();
        // Every quantized product is exactly ±127 * 127 · (1/127)² = ±1.
        assert!((got.at(&[0, 0]) - k as f32).abs() / k as f32 <= 1e-3);
        assert!((got.at(&[0, 1]) + k as f32).abs() / k as f32 <= 1e-3);
    }
}
