//! Matrix multiplication kernels.
//!
//! The 2-D core is a blocked, B-panel-packed microkernel in the GEBP
//! style: `b` is packed once per call into contiguous [`NR`]-wide column
//! panels, and an [`MR`]×[`NR`] register-blocked inner kernel walks the
//! `k` axis keeping all `MR * NR` partial sums in registers. That removes
//! the per-`k` load/store traffic on the output array that bounded the
//! seed kernel and lets the compiler vectorize the `NR`-wide accumulator
//! updates.
//!
//! Bit-exactness contract (DESIGN.md §9–§10): for every output element the
//! microkernel performs *the same `f32` additions in the same ascending-`k`
//! order* as [`matmul_rows_reference`], including the reference kernel's
//! skip of `a`-entries that equal `0.0`. The packed path is therefore
//! bit-identical to the reference loop (property-tested in this module and
//! in the determinism suite), and results do not depend on whether the
//! packed or reference path ran.
//!
//! Large products fan out over `testkit::pool`: the output is split into
//! fixed, index-ordered row (or batch-entry) chunks, each computed into its
//! own disjoint slice. `b` is packed *before* the fan-out and shared
//! read-only, and chunk boundaries never touch the `k` axis, so the
//! parallel result is bit-identical to the serial one at any thread count
//! (`TIMEDRL_THREADS=1` ≡ `TIMEDRL_THREADS=N`).

use crate::array::NdArray;
use crate::bufpool::Buffer;
use crate::error::{Result, TensorError};
use std::cell::Cell;
use testkit::pool;

/// Work-per-chunk target for the parallel path, in multiply-adds. One grain
/// is roughly a quarter millisecond of serial kernel time — large enough
/// that per-chunk dispatch cost vanishes, small enough to load-balance.
pub(crate) const MATMUL_GRAIN: usize = 1 << 18;

/// Rows per register block of the microkernel.
pub(crate) const MR: usize = 4;

/// Columns per packed panel / register block of the microkernel. Two
/// 256-bit vectors per row: wide enough that the per-row scalar load,
/// zero-test, and branch amortize over 16 columns, small enough that the
/// `MR * NR/8` accumulator vectors still fit the 16 AVX registers.
pub(crate) const NR: usize = 16;

/// Minimum `m` and `n` for the packed path. Below this the packing pass
/// and the zero-padded panel arithmetic cost more than they save, so tiny
/// products keep the reference loop (identical results either way).
const MIN_PACKED_DIM: usize = 4;

/// Reference row-range core — the seed repo's `i-k-j` loop, kept verbatim.
/// Computes `out_chunk = a[row0.., :] * b` for the `out_chunk.len() / n`
/// rows starting at `row0`. The packed microkernel is property-tested to be
/// bit-identical to this loop; it also still serves tiny products where
/// packing does not pay.
pub(crate) fn matmul_rows_reference(
    a: &[f32],
    b: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    out_chunk.fill(0.0);
    if n == 0 {
        return; // zero-width rows: nothing to compute
    }
    // i-k-j order: the inner loop walks both b and out contiguously.
    for (li, orow) in out_chunk.chunks_mut(n).enumerate() {
        let i = row0 + li;
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Number of [`NR`]-wide column panels covering `n` columns.
pub(crate) fn panel_count(n: usize) -> usize {
    n.div_ceil(NR)
}

/// Packs `b` (`k x n`, row-major) into `NR`-wide column panels: panel `p`
/// holds columns `[p*NR, p*NR+NR)` as `k` contiguous `NR`-element rows,
/// zero-padded on the right edge. Packing reorders *memory*, never values:
/// `packed[p][kk][c] == b[kk][p*NR + c]`.
pub(crate) fn pack_b_panels(b: &[f32], k: usize, n: usize, packed: &mut [f32]) {
    debug_assert_eq!(packed.len(), panel_count(n) * k * NR);
    if k == 0 {
        return; // zero-size inner axis: nothing to pack, output stays 0
    }
    for (p, panel) in packed.chunks_mut(k * NR).enumerate() {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        for (kk, dst) in panel.chunks_mut(NR).enumerate() {
            dst[..w].copy_from_slice(&b[kk * n + j0..kk * n + j0 + w]);
            dst[w..].fill(0.0);
        }
    }
}

/// One row's `NR`-wide accumulator update for a single `k` step — the
/// exact per-element operation of [`matmul_rows_reference`]: skip when the
/// `a`-entry equals `0.0`, otherwise `acc[c] += av * bp[c]`.
///
/// The skip uses an integer bit test instead of a float compare:
/// `to_bits() & 0x7FFF_FFFF == 0` holds exactly for `+0.0`/`-0.0` and for
/// no other `f32` (NaN compares unequal to zero *and* has nonzero payload
/// bits), so the condition is identical to `av == 0.0` for every input —
/// it just compiles to one predictable branch instead of a two-branch
/// NaN-aware `ucomiss`.
#[inline(always)]
fn lane_update(av: f32, bp: &[f32; NR], acc: &mut [f32; NR]) {
    if av.to_bits() & 0x7FFF_FFFF != 0 {
        for c in 0..NR {
            acc[c] += av * bp[c];
        }
    }
}

/// Register-blocked inner kernel, full `MR`-row case: accumulates the
/// `MR x NR` output block for rows starting at `a_base` against one packed
/// panel, walking `k` ascending with the exact per-element operation
/// sequence of [`matmul_rows_reference`]. Zipped iterators (rather than
/// indexed loads) keep the hot loop free of bounds checks.
#[inline(always)]
fn micro_block_main(a: &[f32], a_base: usize, k: usize, panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let row = |r: usize| &a[a_base + r * k..a_base + (r + 1) * k];
    let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
    let (bps, _) = panel.as_chunks::<NR>();
    for ((((bp, &v0), &v1), &v2), &v3) in bps.iter().zip(r0).zip(r1).zip(r2).zip(r3) {
        lane_update(v0, bp, &mut acc[0]);
        lane_update(v1, bp, &mut acc[1]);
        lane_update(v2, bp, &mut acc[2]);
        lane_update(v3, bp, &mut acc[3]);
    }
}

/// Branch-free variant of [`micro_block_main`] for row blocks proven to
/// hold no `0.0` entries (checked once per block by [`any_zero`], amortized
/// over every panel): with no zeros present the reference skip is vacuous,
/// so the four row updates run unconditionally as straight-line vector
/// code — identical operations, minus the per-`k` taken branches that
/// otherwise bound the loop.
#[inline(always)]
fn micro_block_dense(a: &[f32], a_base: usize, k: usize, panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let row = |r: usize| &a[a_base + r * k..a_base + (r + 1) * k];
    let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
    let (bps, _) = panel.as_chunks::<NR>();
    for ((((bp, &v0), &v1), &v2), &v3) in bps.iter().zip(r0).zip(r1).zip(r2).zip(r3) {
        for c in 0..NR {
            acc[0][c] += v0 * bp[c];
        }
        for c in 0..NR {
            acc[1][c] += v1 * bp[c];
        }
        for c in 0..NR {
            acc[2][c] += v2 * bp[c];
        }
        for c in 0..NR {
            acc[3][c] += v3 * bp[c];
        }
    }
}

/// Whether `row` contains an exact `0.0`/`-0.0` — the same bit-level
/// predicate as [`lane_update`]'s skip, vectorized by the compiler into a
/// cheap integer scan.
#[inline(always)]
fn any_zero(row: &[f32]) -> bool {
    row.iter().any(|v| v.to_bits() & 0x7FFF_FFFF == 0)
}

/// Single-row edge kernel: same operation sequence, partial register block.
#[inline(always)]
fn micro_block_edge(arow: &[f32], panel: &[f32], acc: &mut [f32; NR]) {
    let (bps, _) = panel.as_chunks::<NR>();
    for (bp, &av) in bps.iter().zip(arow) {
        lane_update(av, bp, acc);
    }
}

/// Packed row-range core: same contract as [`matmul_rows_reference`] but
/// reads `b` through its packed panels and blocks `m`/`n` into `MR x NR`
/// register tiles. Bit-identical to the reference loop by construction
/// (same `k` order, same zero-skip, same `mul`+`add` per element).
#[inline(always)]
fn matmul_rows_packed_impl(
    a: &[f32],
    packed: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    let m_chunk = out_chunk.len() / n.max(1);
    let panels = panel_count(n);
    let mut i = 0;
    while i < m_chunk {
        let mr = MR.min(m_chunk - i);
        let a_base = (row0 + i) * k;
        // One zero-scan per row block, reused across all its panels: picks
        // the branch-free kernel when the reference skip cannot fire.
        let dense = mr == MR
            && !(0..MR).any(|r| any_zero(&a[a_base + r * k..a_base + (r + 1) * k]));
        for p in 0..panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = &packed[p * k * NR..(p + 1) * k * NR];
            let mut acc = [[0.0f32; NR]; MR];
            if dense {
                micro_block_dense(a, a_base, k, panel, &mut acc);
            } else if mr == MR {
                micro_block_main(a, a_base, k, panel, &mut acc);
            } else {
                // Edge rows: same kernel, partial register block.
                for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                    let base = a_base + r * k;
                    micro_block_edge(&a[base..base + k], panel, accr);
                }
            }
            for (r, accr) in acc.iter().enumerate().take(mr) {
                let o0 = (i + r) * n + j0;
                out_chunk[o0..o0 + w].copy_from_slice(&accr[..w]);
            }
        }
        i += mr;
    }
}

/// Portable instantiation of the packed core (baseline target features).
fn matmul_rows_packed_portable(
    a: &[f32],
    packed: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    matmul_rows_packed_impl(a, packed, out_chunk, row0, k, n);
}

/// AVX2 instantiation: the same Rust body compiled with 256-bit vectors
/// enabled, so the `NR`-wide accumulator updates become one-register ops.
/// Vectorization only spans the `NR` independent output lanes — the `k`
/// sum stays sequential per element and `mul`/`add` stay separate
/// instructions (rustc never contracts them into FMA) — so this is
/// bit-identical to the portable build; the dispatch below is invisible
/// in results.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn matmul_rows_packed_avx2(
    a: &[f32],
    packed: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    matmul_rows_packed_impl(a, packed, out_chunk, row0, k, n);
}

/// Runtime-dispatched packed core: picks the widest instantiation the host
/// supports. Both produce bit-identical output, so the choice never shows
/// up in results — only in speed.
pub(crate) fn matmul_rows_packed(
    a: &[f32],
    packed: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: gated on runtime AVX2 detection; the fn is a safe Rust
        // body that only needs the feature to be *legal to execute*.
        unsafe {
            return matmul_rows_packed_avx2(a, packed, out_chunk, row0, k, n);
        }
    }
    matmul_rows_packed_portable(a, packed, out_chunk, row0, k, n);
}

/// Whether the packed microkernel pays for `m x k * n`: both output
/// dimensions must be big enough to amortize packing and panel padding.
pub(crate) fn use_packed(m: usize, n: usize) -> bool {
    m >= MIN_PACKED_DIM && n >= MIN_PACKED_DIM
}

/// Single-matrix core with kernel dispatch: packs `b` (from the buffer
/// pool) and runs the microkernel, or falls back to the reference loop for
/// tiny products. No parallelism here — used per batch entry inside an
/// outer fan-out, and by the 2-D path below after it packs once for all
/// row chunks.
fn matmul_single(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if !use_packed(m, n) {
        matmul_rows_reference(a, b, out, 0, k, n);
        return;
    }
    let mut packed = Buffer::zeroed(panel_count(n) * k * NR);
    pack_b_panels(b, k, n, &mut packed);
    matmul_rows_packed(a, &packed, out, 0, k, n);
}

/// Raw 2-D kernel: `out[m x n] = a[m x k] * b[k x n]`, all slices row-major.
/// Packs `b` once, then row-chunks across the pool when the product is
/// large enough; every chunk reads the same shared panels.
pub(crate) fn matmul2d_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if out.is_empty() {
        return;
    }
    let rows_per_chunk = if pool::should_parallelize(m * k * n, MATMUL_GRAIN) {
        (pool::grain(MATMUL_GRAIN) / (k * n).max(1)).clamp(1, m)
    } else {
        m
    };
    if !use_packed(m, n) {
        pool::for_each_chunk(out, rows_per_chunk * n, |offset, chunk| {
            matmul_rows_reference(a, b, chunk, offset / n, k, n);
        });
        return;
    }
    // Pack before the fan-out: one pass over b, shared read-only by every
    // row chunk, so chunking cannot perturb packed values.
    let mut packed = Buffer::zeroed(panel_count(n) * k * NR);
    pack_b_panels(b, k, n, &mut packed);
    let packed = &packed[..];
    pool::for_each_chunk(out, rows_per_chunk * n, |offset, chunk| {
        matmul_rows_packed(a, packed, chunk, offset / n, k, n);
    });
}

/// Matrix product with rank dispatch:
///
/// * `[m,k] x [k,n] -> [m,n]`
/// * `[b,m,k] x [b,k,n] -> [b,m,n]` (batched, parallel across batch entries)
/// * `[b,m,k] x [k,n] -> [b,m,n]` (shared right operand)
///
/// # Errors
/// Returns [`TensorError::MatmulMismatch`] for any other rank combination or
/// inner-dimension disagreement; the error message names the offending
/// `(m,k) x (k',n)` dimensions.
pub fn matmul(a: &NdArray, b: &NdArray) -> Result<NdArray> {
    let err = || TensorError::MatmulMismatch { lhs: a.shape().to_vec(), rhs: b.shape().to_vec() };
    match (a.rank(), b.rank()) {
        (2, 2) => {
            let (m, k) = (a.shape()[0], a.shape()[1]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[m, n]);
            matmul2d_kernel(a.data(), b.data(), out.data_mut(), m, k, n);
            Ok(out)
        }
        (3, 3) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (bs2, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
            if k != k2 || bs != bs2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[bs, m, n]);
            let per = m * n;
            if per > 0 {
                let batches_per_chunk = if pool::should_parallelize(bs * m * k * n, MATMUL_GRAIN) {
                    (pool::grain(MATMUL_GRAIN) / (m * k * n).max(1)).clamp(1, bs)
                } else {
                    bs
                };
                let (ad, bd) = (a.data(), b.data());
                pool::for_each_chunk(out.data_mut(), batches_per_chunk * per, |offset, chunk| {
                    let first = offset / per;
                    for (j, o_sl) in chunk.chunks_mut(per).enumerate() {
                        let i = first + j;
                        matmul_single(
                            &ad[i * m * k..(i + 1) * m * k],
                            &bd[i * k * n..(i + 1) * k * n],
                            o_sl,
                            m,
                            k,
                            n,
                        );
                    }
                });
            }
            Ok(out)
        }
        (3, 2) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            // Fold the batch into the row dimension: one big GEMM.
            let mut out = NdArray::zeros(&[bs, m, n]);
            matmul2d_kernel(a.data(), b.data(), out.data_mut(), bs * m, k, n);
            Ok(out)
        }
        _ => Err(err()),
    }
}

/// Reference matrix product: the same rank dispatch as [`matmul`] but
/// always through the seed `i-k-j` loop, serially. The packed microkernel
/// is property-tested to be bit-identical to this (here and in the
/// determinism suite); it also anchors perf comparisons in the benches.
pub fn matmul_reference(a: &NdArray, b: &NdArray) -> Result<NdArray> {
    let err = || TensorError::MatmulMismatch { lhs: a.shape().to_vec(), rhs: b.shape().to_vec() };
    match (a.rank(), b.rank()) {
        (2, 2) => {
            let (m, k) = (a.shape()[0], a.shape()[1]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[m, n]);
            matmul_rows_reference(a.data(), b.data(), out.data_mut(), 0, k, n);
            Ok(out)
        }
        (3, 3) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (bs2, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
            if k != k2 || bs != bs2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[bs, m, n]);
            let per = m * n;
            if per > 0 {
                let (ad, bd) = (a.data(), b.data());
                for (i, o_sl) in out.data_mut().chunks_mut(per).enumerate() {
                    matmul_rows_reference(
                        &ad[i * m * k..(i + 1) * m * k],
                        &bd[i * k * n..(i + 1) * k * n],
                        o_sl,
                        0,
                        k,
                        n,
                    );
                }
            }
            Ok(out)
        }
        (3, 2) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[bs, m, n]);
            matmul_rows_reference(a.data(), b.data(), out.data_mut(), 0, k, n);
            Ok(out)
        }
        _ => Err(err()),
    }
}

// ---------------------------------------------------------------------------
// Transpose-aware variants (DESIGN.md §12).
//
// Every forward matmul spawns two backward products that read a *transposed*
// operand (`dA = G·Bᵀ`, `dB = Aᵀ·G`). Because `NdArray` is strictly
// contiguous row-major, computing those through [`matmul`] first materializes
// the transposed copy and then packs it again — two redundant passes over
// memory per matmul node. The packing stage already reorders memory, so it
// can just as well read the *untransposed* operand with strides:
//
// * `Bᵀ` panels are packed by walking `B`'s rows ([`pack_bt_panels`]),
// * `Aᵀ` row blocks are packed by walking `A`'s columns ([`pack_at_block`]),
//
// producing byte-identical packed buffers to the materialize-then-pack path.
// From there the unchanged microkernel runs, so the §10 bit-exactness
// contract (same f32 additions, ascending-k order, ±0.0 skip, thread-count
// invariance) carries over verbatim: `matmul_nt(a, b)` is bit-equal to
// `matmul(a, &b.transpose())` and `matmul_tn(a, b)` to
// `matmul(&a.transpose(), b)` — property-tested below and provable on demand
// via [`with_materialized_transposes`].
// ---------------------------------------------------------------------------

thread_local! {
    /// Test hook: when set, the `matmul_nt`/`matmul_tn` entry points route
    /// through explicit `transpose()` + [`matmul`] instead of the strided
    /// packing paths.
    static MATERIALIZE_TRANSPOSES: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the transpose-aware entry points forced through the
/// materialize-then-[`matmul`] path on *this thread* (run under
/// `pool::with_threads(1, ..)` to cover work that would otherwise fan out to
/// workers). Exists so tests can prove the strided-packing fast paths change
/// no bits: train or compute twice, once inside this closure, and
/// byte-compare.
pub fn with_materialized_transposes<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            MATERIALIZE_TRANSPOSES.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(MATERIALIZE_TRANSPOSES.with(|c| c.replace(true)));
    f()
}

fn materialize_transposes() -> bool {
    MATERIALIZE_TRANSPOSES.with(Cell::get)
}

/// `shape` with its last two axes swapped — the shape the operand *would*
/// have after `transpose()`, used so `matmul_nt`/`matmul_tn` errors name the
/// same effective `(m,k) x (k',n)` dimensions as the equivalent [`matmul`].
fn transposed_dims(shape: &[usize]) -> Vec<usize> {
    let mut v = shape.to_vec();
    let r = v.len();
    if r >= 2 {
        v.swap(r - 2, r - 1);
    }
    v
}

/// Packs `Bᵀ` into `NR`-wide column panels **directly from the untransposed**
/// `b` (`n x k`, row-major): column `j0 + c` of `Bᵀ` is row `j0 + c` of `B`,
/// so the packer walks `B`'s rows with contiguous reads and stride-`NR`
/// writes. Writes the exact bytes [`pack_b_panels`] would produce from a
/// materialized `b.transpose()`:
/// `packed[p][kk][c] == Bᵀ[kk][p*NR + c] == b[(p*NR + c) * k + kk]`.
pub(crate) fn pack_bt_panels(b: &[f32], k: usize, n: usize, packed: &mut [f32]) {
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(packed.len(), panel_count(n) * k * NR);
    if k == 0 {
        return; // zero-size inner axis: nothing to pack, output stays 0
    }
    for (p, panel) in packed.chunks_mut(k * NR).enumerate() {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        for c in 0..w {
            let brow = &b[(j0 + c) * k..(j0 + c + 1) * k];
            for (kk, &v) in brow.iter().enumerate() {
                panel[kk * NR + c] = v;
            }
        }
        // Right-edge panel: zero-pad the missing columns, as pack_b_panels
        // does for a materialized transpose.
        for c in w..NR {
            for kk in 0..k {
                panel[kk * NR + c] = 0.0;
            }
        }
    }
}

/// Reference row-range core for `out = a · bᵀ` with `b` given untransposed
/// (`n x k`, row-major): the exact operation sequence of
/// [`matmul_rows_reference`] on a materialized `b.transpose()`, reading
/// `bᵀ[kk][j]` as `b[j*k + kk]`. Serves tiny products and anchors the
/// bitwise property tests for the packed `nt` path.
pub(crate) fn matmul_nt_rows_reference(
    a: &[f32],
    b: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    out_chunk.fill(0.0);
    if n == 0 {
        return; // zero-width rows: nothing to compute
    }
    for (li, orow) in out_chunk.chunks_mut(n).enumerate() {
        let i = row0 + li;
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            for (j, o) in orow.iter_mut().enumerate() {
                *o += av * b[j * k + kk];
            }
        }
    }
}

/// Reference row-range core for the transposed-left product: computes rows
/// `[row0, row0 + out_chunk.len()/n)` of the effective `[rows, kdim]` left
/// matrix formed by stacking each batch entry's `aᵀ` (`a` is
/// `[bs, kdim, m]` flattened; `bs == 1` gives the plain 2-D `aᵀ · b`). Row
/// `i`'s element `kk` is read in place as `a[(i/m)·kdim·m + kk·m + i%m]` —
/// the same value, consumed in the same ascending-`k` order with the same
/// `0.0` skip, as [`matmul_rows_reference`] sees on a materialized
/// transpose.
pub(crate) fn matmul_tn_rows_reference(
    a: &[f32],
    b: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    kdim: usize,
    m: usize,
    n: usize,
) {
    out_chunk.fill(0.0);
    if n == 0 {
        return; // zero-width rows: nothing to compute
    }
    for (li, orow) in out_chunk.chunks_mut(n).enumerate() {
        let i = row0 + li;
        let base = (i / m) * kdim * m + (i % m);
        for kk in 0..kdim {
            let av = a[base + kk * m];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Packs `mr` rows of the effective transposed-left matrix (row addressing
/// as in [`matmul_tn_rows_reference`]) into a contiguous `mr x kdim` block
/// by walking `a`'s columns. The strided column reads happen *once per row
/// block* and amortize over every packed panel the block is multiplied
/// against; the block holds the exact bytes of the materialized `aᵀ` rows.
fn pack_at_block(a: &[f32], kdim: usize, m: usize, i0: usize, mr: usize, dst: &mut [f32]) {
    for r in 0..mr {
        let i = i0 + r;
        let base = (i / m) * kdim * m + (i % m);
        for (kk, o) in dst[r * kdim..(r + 1) * kdim].iter_mut().enumerate() {
            *o = a[base + kk * m];
        }
    }
}

/// Packed row-range core for the transposed-left product: packs each
/// `MR`-row block of `aᵀ` from `a`'s columns (pooled scratch, reused across
/// blocks) and hands it to the unchanged [`matmul_rows_packed`] microkernel.
/// Because the block holds byte-identical values to the materialized `aᵀ`
/// rows and block boundaries fall at the same offsets (both paths restart
/// `MR`-blocking at each chunk start), the dense-block dispatch and every
/// f32 operation match the materialized path bit for bit.
fn matmul_tn_rows_packed(
    a: &[f32],
    kdim: usize,
    m: usize,
    packed: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    n: usize,
) {
    let m_chunk = out_chunk.len() / n.max(1);
    let mut ablock = Buffer::zeroed(MR * kdim);
    let mut i = 0;
    while i < m_chunk {
        let mr = MR.min(m_chunk - i);
        pack_at_block(a, kdim, m, row0 + i, mr, &mut ablock[..mr * kdim]);
        matmul_rows_packed(
            &ablock[..mr * kdim],
            packed,
            &mut out_chunk[i * n..(i + mr) * n],
            0,
            kdim,
            n,
        );
        i += mr;
    }
}

/// Raw 2-D kernel for `out[m x n] = a[m x k] · bᵀ` with `b` given
/// untransposed (`n x k`, row-major). Identical structure to
/// [`matmul2d_kernel`] — pack once, row-chunk across the pool — except the
/// panels come from [`pack_bt_panels`]; the microkernel itself is unchanged.
pub(crate) fn matmul_nt2d_kernel(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if out.is_empty() {
        return;
    }
    let rows_per_chunk = if pool::should_parallelize(m * k * n, MATMUL_GRAIN) {
        (pool::grain(MATMUL_GRAIN) / (k * n).max(1)).clamp(1, m)
    } else {
        m
    };
    if !use_packed(m, n) {
        pool::for_each_chunk(out, rows_per_chunk * n, |offset, chunk| {
            matmul_nt_rows_reference(a, b, chunk, offset / n, k, n);
        });
        return;
    }
    let mut packed = Buffer::zeroed(panel_count(n) * k * NR);
    pack_bt_panels(b, k, n, &mut packed);
    let packed = &packed[..];
    pool::for_each_chunk(out, rows_per_chunk * n, |offset, chunk| {
        matmul_rows_packed(a, packed, chunk, offset / n, k, n);
    });
}

/// Raw kernel for the transposed-left product over `rows = bs * m` output
/// rows: `a` is `[bs, kdim, m]` flattened (`bs == 1` gives the plain 2-D
/// `aᵀ[m x kdim] · b[kdim x n]`), `b` is shared, `out` is `[rows, n]`.
/// Packs `b` once with the ordinary [`pack_b_panels`] (the right operand is
/// not transposed here) and row-chunks across the pool; each chunk packs its
/// `MR`-row `aᵀ` blocks from `a`'s columns on the fly.
pub(crate) fn matmul_tn_kernel(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    kdim: usize,
    m: usize,
    rows: usize,
    n: usize,
) {
    debug_assert_eq!(b.len(), kdim * n);
    debug_assert_eq!(out.len(), rows * n);
    debug_assert!(m == 0 || rows % m == 0);
    if out.is_empty() {
        return;
    }
    debug_assert_eq!(a.len(), (rows / m) * kdim * m);
    let rows_per_chunk = if pool::should_parallelize(rows * kdim * n, MATMUL_GRAIN) {
        (pool::grain(MATMUL_GRAIN) / (kdim * n).max(1)).clamp(1, rows)
    } else {
        rows
    };
    if !use_packed(rows, n) {
        pool::for_each_chunk(out, rows_per_chunk * n, |offset, chunk| {
            matmul_tn_rows_reference(a, b, chunk, offset / n, kdim, m, n);
        });
        return;
    }
    let mut packed = Buffer::zeroed(panel_count(n) * kdim * NR);
    pack_b_panels(b, kdim, n, &mut packed);
    let packed = &packed[..];
    pool::for_each_chunk(out, rows_per_chunk * n, |offset, chunk| {
        matmul_tn_rows_packed(a, kdim, m, packed, chunk, offset / n, n);
    });
}

/// Per-batch-entry core for `a · bᵀ` — the `nt` analogue of
/// [`matmul_single`], used inside the batched fan-out.
fn matmul_nt_single(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if !use_packed(m, n) {
        matmul_nt_rows_reference(a, b, out, 0, k, n);
        return;
    }
    let mut packed = Buffer::zeroed(panel_count(n) * k * NR);
    pack_bt_panels(b, k, n, &mut packed);
    matmul_rows_packed(a, &packed, out, 0, k, n);
}

/// Per-batch-entry core for `aᵀ · b` — the `tn` analogue of
/// [`matmul_single`], used inside the batched fan-out.
fn matmul_tn_single(a: &[f32], b: &[f32], out: &mut [f32], kdim: usize, m: usize, n: usize) {
    if !use_packed(m, n) {
        matmul_tn_rows_reference(a, b, out, 0, kdim, m, n);
        return;
    }
    let mut packed = Buffer::zeroed(panel_count(n) * kdim * NR);
    pack_b_panels(b, kdim, n, &mut packed);
    matmul_tn_rows_packed(a, kdim, m, &packed, out, 0, n);
}

/// `a · bᵀ` with `b` passed **untransposed** — no transposed copy is ever
/// materialized; the `Bᵀ` panels are packed straight from `B`'s rows.
///
/// Rank dispatch (shapes of the operands *as given*):
///
/// * `[m,k] x [n,k] -> [m,n]`
/// * `[bs,m,k] x [bs,n,k] -> [bs,m,n]` (batched, parallel across entries)
/// * `[bs,m,k] x [n,k] -> [bs,m,n]` (shared right operand, folded GEMM)
///
/// Bit-identical to `matmul(a, &b.transpose())` for every input, including
/// signed zeros and non-finite values (property-tested;
/// [`with_materialized_transposes`] forces that equivalent path at runtime).
///
/// # Errors
/// Returns [`TensorError::MatmulMismatch`] for any other rank combination or
/// inner-dimension disagreement. The error names the *effective* transposed
/// right-operand shape, matching what the equivalent [`matmul`] would
/// report.
pub fn matmul_nt(a: &NdArray, b: &NdArray) -> Result<NdArray> {
    if materialize_transposes() && b.rank() >= 2 {
        return matmul(a, &b.transpose());
    }
    let err = || TensorError::MatmulMismatch {
        lhs: a.shape().to_vec(),
        rhs: transposed_dims(b.shape()),
    };
    match (a.rank(), b.rank()) {
        (2, 2) => {
            let (m, k) = (a.shape()[0], a.shape()[1]);
            let (n, k2) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[m, n]);
            matmul_nt2d_kernel(a.data(), b.data(), out.data_mut(), m, k, n);
            Ok(out)
        }
        (3, 3) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (bs2, n, k2) = (b.shape()[0], b.shape()[1], b.shape()[2]);
            if k != k2 || bs != bs2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[bs, m, n]);
            let per = m * n;
            if per > 0 {
                let batches_per_chunk = if pool::should_parallelize(bs * m * k * n, MATMUL_GRAIN) {
                    (pool::grain(MATMUL_GRAIN) / (m * k * n).max(1)).clamp(1, bs)
                } else {
                    bs
                };
                let (ad, bd) = (a.data(), b.data());
                pool::for_each_chunk(out.data_mut(), batches_per_chunk * per, |offset, chunk| {
                    let first = offset / per;
                    for (j, o_sl) in chunk.chunks_mut(per).enumerate() {
                        let i = first + j;
                        matmul_nt_single(
                            &ad[i * m * k..(i + 1) * m * k],
                            &bd[i * n * k..(i + 1) * n * k],
                            o_sl,
                            m,
                            k,
                            n,
                        );
                    }
                });
            }
            Ok(out)
        }
        (3, 2) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (n, k2) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            // Fold the batch into the row dimension: one big GEMM sharing
            // one packed Bᵀ.
            let mut out = NdArray::zeros(&[bs, m, n]);
            matmul_nt2d_kernel(a.data(), b.data(), out.data_mut(), bs * m, k, n);
            Ok(out)
        }
        _ => Err(err()),
    }
}

/// `aᵀ · b` with `a` passed **untransposed** — no transposed copy is ever
/// materialized; `MR`-row blocks of `Aᵀ` are packed straight from `A`'s
/// columns.
///
/// Rank dispatch (shapes of the operands *as given*):
///
/// * `[k,m] x [k,n] -> [m,n]`
/// * `[bs,k,m] x [bs,k,n] -> [bs,m,n]` (batched, parallel across entries)
/// * `[bs,k,m] x [k,n] -> [bs,m,n]` (shared right operand, one packed `b`)
///
/// Bit-identical to `matmul(&a.transpose(), b)` for every input
/// (property-tested; [`with_materialized_transposes`] forces that
/// equivalent path at runtime).
///
/// # Errors
/// Returns [`TensorError::MatmulMismatch`] for any other rank combination or
/// inner-dimension disagreement. The error names the *effective* transposed
/// left-operand shape, matching what the equivalent [`matmul`] would report.
pub fn matmul_tn(a: &NdArray, b: &NdArray) -> Result<NdArray> {
    if materialize_transposes() && a.rank() >= 2 {
        return matmul(&a.transpose(), b);
    }
    let err = || TensorError::MatmulMismatch {
        lhs: transposed_dims(a.shape()),
        rhs: b.shape().to_vec(),
    };
    match (a.rank(), b.rank()) {
        (2, 2) => {
            let (k, m) = (a.shape()[0], a.shape()[1]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[m, n]);
            matmul_tn_kernel(a.data(), b.data(), out.data_mut(), k, m, m, n);
            Ok(out)
        }
        (3, 3) => {
            let (bs, k, m) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (bs2, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
            if k != k2 || bs != bs2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[bs, m, n]);
            let per = m * n;
            if per > 0 {
                let batches_per_chunk = if pool::should_parallelize(bs * m * k * n, MATMUL_GRAIN) {
                    (pool::grain(MATMUL_GRAIN) / (m * k * n).max(1)).clamp(1, bs)
                } else {
                    bs
                };
                let (ad, bd) = (a.data(), b.data());
                pool::for_each_chunk(out.data_mut(), batches_per_chunk * per, |offset, chunk| {
                    let first = offset / per;
                    for (j, o_sl) in chunk.chunks_mut(per).enumerate() {
                        let i = first + j;
                        matmul_tn_single(
                            &ad[i * k * m..(i + 1) * k * m],
                            &bd[i * k * n..(i + 1) * k * n],
                            o_sl,
                            k,
                            m,
                            n,
                        );
                    }
                });
            }
            Ok(out)
        }
        (3, 2) => {
            let (bs, k, m) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            // Shared right operand: pack b once, row-chunk all bs*m output
            // rows; the row addressing in pack_at_block crosses entry
            // boundaries exactly like the materialized batch fold.
            let mut out = NdArray::zeros(&[bs, m, n]);
            matmul_tn_kernel(a.data(), b.data(), out.data_mut(), k, m, bs * m, n);
            Ok(out)
        }
        _ => Err(err()),
    }
}

/// Batch-folded `Aᵀ·G` for the rank-3 × rank-2 backward of
/// `[bs,m,k] x [k,n]`: `a` is `[bs,m,k]`, `g` is `[bs,m,n]`, result is
/// `[k,n]`. Both folds are *already contiguous* `[bs*m, ·]` matrices, so
/// this runs one 2-D transposed-left GEMM over the raw data — no reshape
/// copies, no transpose. Bit-identical to
/// `matmul(&a.reshape([bs*m,k]).transpose(), &g.reshape([bs*m,n]))`.
pub(crate) fn matmul_tn_fold(a: &NdArray, g: &NdArray) -> Result<NdArray> {
    debug_assert_eq!(a.rank(), 3);
    debug_assert_eq!(g.rank(), 3);
    let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let n = g.shape()[2];
    if g.shape()[0] != bs || g.shape()[1] != m {
        return Err(TensorError::MatmulMismatch {
            lhs: vec![k, bs * m],
            rhs: vec![g.shape()[0] * g.shape()[1], n],
        });
    }
    if materialize_transposes() {
        let a2 = a.reshape(&[bs * m, k])?;
        let g2 = g.reshape(&[bs * m, n])?;
        return matmul(&a2.transpose(), &g2);
    }
    let mut out = NdArray::zeros(&[k, n]);
    matmul_tn_kernel(a.data(), g.data(), out.data_mut(), bs * m, k, k, n);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Relaxed-exactness FMA variants (DESIGN.md §15).
//
// The exact kernels above deliberately keep `mul` and `add` as separate
// instructions so the packed path stays bit-identical to the seed loop. That
// caps f32 throughput at the non-contracted peak. Serving's relaxed tier has
// no bit-exactness contract, so `matmul_fma`/`matmul_nt_fma` run the same
// MR×NR blocked walk over the same packed panels but fuse each lane update
// into one `mul_add` (compiled to `vfmadd` under the `avx2,fma` target
// features) and drop the reference kernel's ±0.0-skip branch — roughly 2×
// the multiply-add retire rate, with one rounding per FMA instead of two.
//
// `f32::mul_add` is ONLY called inside the `#[target_feature(enable =
// "avx2", enable = "fma")]` instantiation: without the FMA ISA it lowers to
// a libm `fmaf` call, orders of magnitude slower. Hosts without FMA fall
// back to the exact packed kernel — still correct, merely uncontracted (the
// relaxed tier promises closeness to f32, not specific bits across ISAs).
// Within one host, results are bit-identical at any thread count: each
// output element's operation sequence is independent of chunk and row-block
// boundaries, exactly as argued for the exact kernel.
// ---------------------------------------------------------------------------

/// Whether the FMA-contracted instantiation can run on this host.
pub(crate) fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// One row's contracted `NR`-wide update: `acc[c] = av * bp[c] + acc[c]`
/// with a single rounding. No zero-skip — the branch buys nothing once the
/// multiply-add is one instruction.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn lane_update_fma(av: f32, bp: &[f32; NR], acc: &mut [f32; NR]) {
    for c in 0..NR {
        acc[c] = av.mul_add(bp[c], acc[c]);
    }
}

/// FMA row-range core over packed panels: the blocked walk of
/// [`matmul_rows_packed_impl`] with every lane update contracted. Compiled
/// only as the `avx2,fma` instantiation below.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
fn matmul_rows_fma_avx2(
    a: &[f32],
    packed: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    let m_chunk = out_chunk.len() / n.max(1);
    let panels = panel_count(n);
    let mut i = 0;
    while i < m_chunk {
        let mr = MR.min(m_chunk - i);
        let a_base = (row0 + i) * k;
        for p in 0..panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = &packed[p * k * NR..(p + 1) * k * NR];
            let (bps, _) = panel.as_chunks::<NR>();
            let mut acc = [[0.0f32; NR]; MR];
            if mr == MR {
                let row = |r: usize| &a[a_base + r * k..a_base + (r + 1) * k];
                let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
                for ((((bp, &v0), &v1), &v2), &v3) in
                    bps.iter().zip(r0).zip(r1).zip(r2).zip(r3)
                {
                    lane_update_fma(v0, bp, &mut acc[0]);
                    lane_update_fma(v1, bp, &mut acc[1]);
                    lane_update_fma(v2, bp, &mut acc[2]);
                    lane_update_fma(v3, bp, &mut acc[3]);
                }
            } else {
                for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                    let base = a_base + r * k;
                    for (bp, &av) in bps.iter().zip(&a[base..base + k]) {
                        lane_update_fma(av, bp, accr);
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(mr) {
                let o0 = (i + r) * n + j0;
                out_chunk[o0..o0 + w].copy_from_slice(&accr[..w]);
            }
        }
        i += mr;
    }
}

/// Relaxed row-range core: the FMA instantiation when the host supports it,
/// otherwise the exact packed kernel (correct, just uncontracted).
pub(crate) fn matmul_rows_relaxed(
    a: &[f32],
    packed: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: gated on runtime AVX2+FMA detection; the fn is a safe
        // Rust body that only needs the features to be legal to execute.
        unsafe {
            return matmul_rows_fma_avx2(a, packed, out_chunk, row0, k, n);
        }
    }
    matmul_rows_packed(a, packed, out_chunk, row0, k, n);
}

/// Per-matrix relaxed core (no pool fan-out): packs `b` — transposed
/// packing when `nt` — and runs the relaxed row core. Unlike the exact
/// path there is no tiny-product reference fallback: `b` sizes on the
/// serving path are model dimensions, always worth packing.
fn matmul_fma_single(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize, nt: bool) {
    if out.is_empty() {
        return;
    }
    let mut packed = Buffer::zeroed(panel_count(n) * k * NR);
    if nt {
        pack_bt_panels(b, k, n, &mut packed);
    } else {
        pack_b_panels(b, k, n, &mut packed);
    }
    matmul_rows_relaxed(a, &packed, out, 0, k, n);
}

/// Raw relaxed 2-D kernel: pack once, row-chunk across the pool. Chunk
/// boundaries never touch `k`, so results are bit-identical at any thread
/// count (within this tier).
fn matmul_fma2d_kernel(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    nt: bool,
) {
    if out.is_empty() {
        return;
    }
    let mut packed = Buffer::zeroed(panel_count(n) * k * NR);
    if nt {
        pack_bt_panels(b, k, n, &mut packed);
    } else {
        pack_b_panels(b, k, n, &mut packed);
    }
    let packed = &packed[..];
    let rows_per_chunk = if pool::should_parallelize(m * k * n, MATMUL_GRAIN) {
        (pool::grain(MATMUL_GRAIN) / (k * n).max(1)).clamp(1, m)
    } else {
        m
    };
    pool::for_each_chunk(out, rows_per_chunk * n, |offset, chunk| {
        matmul_rows_relaxed(a, packed, chunk, offset / n, k, n);
    });
}

/// Shared rank dispatch for the two relaxed entry points; `nt` selects
/// `a · bᵀ` (with `b` given untransposed) versus `a · b`.
fn matmul_relaxed_entry(a: &NdArray, b: &NdArray, nt: bool) -> Result<NdArray> {
    let err = || TensorError::MatmulMismatch {
        lhs: a.shape().to_vec(),
        rhs: if nt { transposed_dims(b.shape()) } else { b.shape().to_vec() },
    };
    let bdims = |sh: &[usize]| {
        let (r, c) = (sh[sh.len() - 2], sh[sh.len() - 1]);
        if nt { (c, r) } else { (r, c) }
    };
    match (a.rank(), b.rank()) {
        (2, 2) => {
            let (m, k) = (a.shape()[0], a.shape()[1]);
            let (k2, n) = bdims(b.shape());
            if k != k2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[m, n]);
            matmul_fma2d_kernel(a.data(), b.data(), out.data_mut(), m, k, n, nt);
            Ok(out)
        }
        (3, 3) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (k2, n) = bdims(&b.shape()[1..]);
            if k != k2 || bs != b.shape()[0] {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[bs, m, n]);
            let per = m * n;
            if per > 0 {
                let batches_per_chunk = if pool::should_parallelize(bs * m * k * n, MATMUL_GRAIN) {
                    (pool::grain(MATMUL_GRAIN) / (m * k * n).max(1)).clamp(1, bs)
                } else {
                    bs
                };
                let (ad, bd) = (a.data(), b.data());
                pool::for_each_chunk(out.data_mut(), batches_per_chunk * per, |offset, chunk| {
                    let first = offset / per;
                    for (j, o_sl) in chunk.chunks_mut(per).enumerate() {
                        let i = first + j;
                        matmul_fma_single(
                            &ad[i * m * k..(i + 1) * m * k],
                            &bd[i * k * n..(i + 1) * k * n],
                            o_sl,
                            k,
                            n,
                            nt,
                        );
                    }
                });
            }
            Ok(out)
        }
        (3, 2) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (k2, n) = bdims(b.shape());
            if k != k2 {
                return Err(err());
            }
            // Fold the batch into the row dimension: one big GEMM.
            let mut out = NdArray::zeros(&[bs, m, n]);
            matmul_fma2d_kernel(a.data(), b.data(), out.data_mut(), bs * m, k, n, nt);
            Ok(out)
        }
        _ => Err(err()),
    }
}

/// Relaxed-tier matrix product: same rank dispatch and shapes as
/// [`matmul`], computed with the FMA-contracted microkernel (no ±0.0 skip,
/// fused multiply-add) when the host supports `avx2,fma`, else the exact
/// kernel. **Not** bit-equal to [`matmul`] — serving's relaxed tier only;
/// never call this from training or exact-tier code paths.
pub fn matmul_fma(a: &NdArray, b: &NdArray) -> Result<NdArray> {
    matmul_relaxed_entry(a, b, false)
}

/// Relaxed-tier `a · bᵀ` with `b` passed untransposed: same rank dispatch
/// and shapes as [`matmul_nt`], contracted like [`matmul_fma`]. Same
/// caveats: relaxed tier only.
pub fn matmul_nt_fma(a: &NdArray, b: &NdArray) -> Result<NdArray> {
    matmul_relaxed_entry(a, b, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use testkit::{prop, prop_assert, prop_assert_eq};

    #[test]
    fn matmul_2d_known_values() {
        let a = NdArray::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = NdArray::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = NdArray::from_fn(&[4, 4], |i| i as f32);
        let c = matmul(&a, &NdArray::eye(4)).unwrap();
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_batched() {
        let a = NdArray::from_fn(&[2, 2, 3], |i| i as f32);
        let b = NdArray::from_fn(&[2, 3, 2], |i| (i % 5) as f32);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2, 2]);
        // Verify batch 1, element [0,0] by hand.
        // a[1,0,:] = [6,7,8]; b[1,:,0] = b flat idx 6,8,10 -> values 1,3,0
        let expected = 6.0 * 1.0 + 7.0 * 3.0 + 8.0 * 0.0;
        assert_eq!(c.at(&[1, 0, 0]), expected);
    }

    #[test]
    fn matmul_broadcast_rhs() {
        let a = NdArray::from_fn(&[2, 3, 4], |i| i as f32);
        let b = NdArray::eye(4);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 3, 4]);
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = NdArray::zeros(&[2, 3]);
        let b = NdArray::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        let v = NdArray::zeros(&[3]);
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn mismatch_error_names_offending_dims() {
        let a = NdArray::zeros(&[2, 3]);
        let b = NdArray::zeros(&[4, 5]);
        let msg = matmul(&a, &b).unwrap_err().to_string();
        assert!(msg.contains("(2,3) x (4,5)"), "message: {msg}");
        assert!(msg.contains("inner dimensions 3 vs 4"), "message: {msg}");
        // Batched mismatch: inner dims agree but batch sizes differ.
        let a3 = NdArray::zeros(&[2, 3, 4]);
        let b3 = NdArray::zeros(&[5, 4, 6]);
        let msg = matmul(&a3, &b3).unwrap_err().to_string();
        assert!(msg.contains("(3,4) x (4,6)"), "message: {msg}");
        assert!(msg.contains("batch dimensions 2 vs 5"), "message: {msg}");
    }

    #[test]
    fn matmul_matches_naive_reference() {
        let a = NdArray::from_fn(&[5, 7], |i| (i as f32 * 0.37).sin());
        let b = NdArray::from_fn(&[7, 4], |i| (i as f32 * 0.21).cos());
        let c = matmul(&a, &b).unwrap();
        for i in 0..5 {
            for j in 0..4 {
                let mut acc = 0.0f32;
                for k in 0..7 {
                    acc += a.at(&[i, k]) * b.at(&[k, j]);
                }
                assert!((c.at(&[i, j]) - acc).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn parallel_matmul_is_bit_exact() {
        // Force multi-chunk fan-out on small inputs and compare against the
        // single-thread result elementwise with exact equality.
        let a = NdArray::from_fn(&[17, 23], |i| (i as f32 * 0.71).sin());
        let b = NdArray::from_fn(&[23, 13], |i| (i as f32 * 0.29).cos());
        let serial = pool::with_threads(1, || matmul(&a, &b).unwrap());
        for threads in [2usize, 4] {
            let par = pool::with_threads(threads, || {
                pool::with_grain(32, || matmul(&a, &b).unwrap())
            });
            assert_eq!(serial, par, "threads={threads}");
        }
        // Batched dispatch too.
        let a3 = NdArray::from_fn(&[6, 5, 7], |i| (i as f32 * 0.13).sin());
        let b3 = NdArray::from_fn(&[6, 7, 4], |i| (i as f32 * 0.41).cos());
        let serial = pool::with_threads(1, || matmul(&a3, &b3).unwrap());
        let par = pool::with_threads(4, || pool::with_grain(16, || matmul(&a3, &b3).unwrap()));
        assert_eq!(serial, par);
    }

    /// The ISSUE's shape grid: odd, power-of-two, and just-past-block
    /// sizes, plus the zero-size edges.
    const DIMS: [usize; 7] = [0, 1, 3, 7, 17, 64, 129];

    /// Inputs with exact zeros sprinkled in (so the `av == 0.0` skip path
    /// is exercised), plus negative zero and denormal-ish values.
    fn grid_array(shape: &[usize], salt: u64) -> NdArray {
        NdArray::from_fn(shape, |i| {
            let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt);
            match x % 7 {
                0 => 0.0,
                1 => -0.0,
                _ => (x % 1000) as f32 / 61.0 - 8.0,
            }
        })
    }

    prop! {
        #![config(cases = 48)]

        fn packed_matches_reference_bitwise(
            mi in 0usize..7,
            ki in 0usize..7,
            ni in 0usize..7,
            salt in 0u64..1000
        ) {
            let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
            let a = grid_array(&[m, k], salt);
            let b = grid_array(&[k, n], salt ^ 0xdead);
            let fast = matmul(&a, &b).unwrap();
            let reference = matmul_reference(&a, &b).unwrap();
            // Bitwise comparison: identical f32 sequences, not just close.
            let fb: Vec<u32> = fast.data().iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = reference.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(fb, rb);
        }

        fn packed_matches_reference_batched(
            bs in 1usize..5,
            mi in 0usize..7,
            ki in 0usize..7,
            ni in 0usize..7
        ) {
            let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
            let a = grid_array(&[bs, m, k], bs as u64);
            let b3 = grid_array(&[bs, k, n], 17);
            let fast = matmul(&a, &b3).unwrap();
            let reference = matmul_reference(&a, &b3).unwrap();
            prop_assert_eq!(fast.data(), reference.data());
            prop_assert!(fast.data().iter().zip(reference.data())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
            // Shared-rhs dispatch.
            let b2 = grid_array(&[k, n], 23);
            let fast = matmul(&a, &b2).unwrap();
            let reference = matmul_reference(&a, &b2).unwrap();
            prop_assert!(fast.data().iter().zip(reference.data())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    /// Shape grid for the transpose-aware variants: the ISSUE grid plus
    /// both sides of the `MIN_PACKED_DIM` (= 4) packed/reference boundary.
    const TDIMS: [usize; 9] = [0, 1, 3, 4, 5, 7, 17, 64, 129];

    /// Bitwise equality helper for the nt/tn contract tests.
    fn assert_bits_eq(fast: &NdArray, reference: &NdArray, ctx: &str) {
        assert_eq!(fast.shape(), reference.shape(), "{ctx}: shapes differ");
        for (i, (x, y)) in fast.data().iter().zip(reference.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: elem {i}: {x} vs {y}");
        }
    }

    prop! {
        #![config(cases = 48)]

        /// Tentpole contract: `matmul_nt(a, b)` is byte-identical to
        /// `matmul(a, b.transpose())` across shapes spanning zero-size,
        /// `MIN_PACKED_DIM` boundaries, and multi-chunk sizes, at thread
        /// counts 1/2/4 (with a tiny grain so small shapes still fan out).
        fn nt_matches_materialized_bitwise(
            mi in 0usize..9,
            ki in 0usize..9,
            ni in 0usize..9,
            salt in 0u64..1000
        ) {
            let (m, k, n) = (TDIMS[mi], TDIMS[ki], TDIMS[ni]);
            let a = grid_array(&[m, k], salt);
            let b = grid_array(&[n, k], salt ^ 0xbeef);
            let want = matmul(&a, &b.transpose()).unwrap();
            for threads in [1usize, 2, 4] {
                let got = pool::with_threads(threads, || {
                    pool::with_grain(64, || matmul_nt(&a, &b).unwrap())
                });
                assert_bits_eq(&got, &want, &format!("nt {m}x{k}x{n} t{threads}"));
            }
        }

        /// Tentpole contract: `matmul_tn(a, b)` is byte-identical to
        /// `matmul(a.transpose(), b)` under the same shape/thread sweep.
        fn tn_matches_materialized_bitwise(
            mi in 0usize..9,
            ki in 0usize..9,
            ni in 0usize..9,
            salt in 0u64..1000
        ) {
            let (m, k, n) = (TDIMS[mi], TDIMS[ki], TDIMS[ni]);
            let a = grid_array(&[k, m], salt);
            let b = grid_array(&[k, n], salt ^ 0xfeed);
            let want = matmul(&a.transpose(), &b).unwrap();
            for threads in [1usize, 2, 4] {
                let got = pool::with_threads(threads, || {
                    pool::with_grain(64, || matmul_tn(&a, &b).unwrap())
                });
                assert_bits_eq(&got, &want, &format!("tn {m}x{k}x{n} t{threads}"));
            }
        }

        /// Batched (3,3) and shared-rhs (3,2) dispatch for both variants.
        fn nt_tn_batched_match_materialized(
            bs in 1usize..5,
            mi in 0usize..9,
            ki in 0usize..9,
            ni in 0usize..9
        ) {
            let (m, k, n) = (TDIMS[mi], TDIMS[ki], TDIMS[ni]);
            let a_nt = grid_array(&[bs, m, k], bs as u64);
            let b_nt3 = grid_array(&[bs, n, k], 31);
            let want = matmul(&a_nt, &b_nt3.transpose()).unwrap();
            let got = pool::with_threads(2, || {
                pool::with_grain(64, || matmul_nt(&a_nt, &b_nt3).unwrap())
            });
            assert_bits_eq(&got, &want, "nt (3,3)");
            let b_nt2 = grid_array(&[n, k], 37);
            let want = matmul(&a_nt, &b_nt2.transpose()).unwrap();
            let got = matmul_nt(&a_nt, &b_nt2).unwrap();
            assert_bits_eq(&got, &want, "nt (3,2)");

            let a_tn = grid_array(&[bs, k, m], bs as u64 ^ 0x55);
            let b_tn3 = grid_array(&[bs, k, n], 41);
            let want = matmul(&a_tn.transpose(), &b_tn3).unwrap();
            let got = pool::with_threads(2, || {
                pool::with_grain(64, || matmul_tn(&a_tn, &b_tn3).unwrap())
            });
            assert_bits_eq(&got, &want, "tn (3,3)");
            let b_tn2 = grid_array(&[k, n], 43);
            let want = matmul(&a_tn.transpose(), &b_tn2).unwrap();
            let got = matmul_tn(&a_tn, &b_tn2).unwrap();
            assert_bits_eq(&got, &want, "tn (3,2)");

            // The backward batch fold (rank-3 a, rank-3 g, shared-rhs grad).
            let g = grid_array(&[bs, m, n], 47);
            let a_f = grid_array(&[bs, m, k], 53);
            if let (Ok(a2), Ok(g2)) = (a_f.reshape(&[bs * m, k]), g.reshape(&[bs * m, n])) {
                let want = matmul(&a2.transpose(), &g2).unwrap();
                let got = matmul_tn_fold(&a_f, &g).unwrap();
                assert_bits_eq(&got, &want, "tn fold");
            }
        }
    }

    #[test]
    fn nt_tn_reject_mismatch_with_effective_dims() {
        // matmul_nt([2,3], [5,4]): effective product (2,3) x (4,5).
        let a = NdArray::zeros(&[2, 3]);
        let b = NdArray::zeros(&[5, 4]);
        let msg = matmul_nt(&a, &b).unwrap_err().to_string();
        assert!(msg.contains("(2,3) x (4,5)"), "message: {msg}");
        // matmul_tn([3,2], [4,5]): effective product (2,3) x (4,5).
        let a = NdArray::zeros(&[3, 2]);
        let b = NdArray::zeros(&[4, 5]);
        let msg = matmul_tn(&a, &b).unwrap_err().to_string();
        assert!(msg.contains("(2,3) x (4,5)"), "message: {msg}");
        // Rank mismatches are rejected, not panicked on.
        let v = NdArray::zeros(&[3]);
        assert!(matmul_nt(&a, &v).is_err());
        assert!(matmul_tn(&v, &b).is_err());
    }

    #[test]
    fn nt_tn_handle_nonfinite_like_materialized() {
        // The ±0.0 skip is what makes inf/NaN inputs order-sensitive; pin
        // the strided paths to the materialized behavior on those too.
        let vals = vec![
            0.0,
            f32::INFINITY,
            -0.0,
            f32::NAN,
            2.0,
            f32::NEG_INFINITY,
            1.0,
            3.0,
            -1.0,
            0.0,
            4.0,
            -2.0,
        ];
        let a = NdArray::from_vec(&[4, 3], vals.clone()).unwrap();
        let b = NdArray::from_vec(&[4, 3], vals.into_iter().rev().collect()).unwrap();
        let want = matmul(&a, &b.transpose()).unwrap();
        let got = matmul_nt(&a, &b).unwrap();
        assert_bits_eq(&got, &want, "nt nonfinite");
        let want = matmul(&a.transpose(), &b).unwrap();
        let got = matmul_tn(&a, &b).unwrap();
        assert_bits_eq(&got, &want, "tn nonfinite");
    }

    #[test]
    fn materialize_hook_forces_equivalent_path() {
        let a = grid_array(&[9, 6], 1);
        let b = grid_array(&[8, 6], 2);
        let fast = matmul_nt(&a, &b).unwrap();
        let slow = with_materialized_transposes(|| matmul_nt(&a, &b).unwrap());
        assert_bits_eq(&fast, &slow, "hook nt");
        let at = a.transpose(); // [6, 9]: contraction axis first
        let bt = b.transpose(); // [6, 8]
        let fast = matmul_tn(&at, &bt).unwrap();
        let slow = with_materialized_transposes(|| matmul_tn(&at, &bt).unwrap());
        assert_bits_eq(&fast, &slow, "hook tn");
    }

    prop! {
        #![config(cases = 48)]

        /// Relaxed tier: the FMA kernels stay within the analytic rounding
        /// bound of the uncontracted f32 product (one rounding per fused
        /// multiply-add versus two), across the full shape grid including
        /// zero-size and `MIN_PACKED_DIM` edges, for both entry points.
        fn fma_matches_reference_within_bound(
            mi in 0usize..9,
            ki in 0usize..9,
            ni in 0usize..9,
            salt in 0u64..1000
        ) {
            let (m, k, n) = (TDIMS[mi], TDIMS[ki], TDIMS[ni]);
            let a = grid_array(&[m, k], salt);
            let b = grid_array(&[k, n], salt ^ 0x0faa);
            let want = matmul_reference(&a, &b).unwrap();
            let got = matmul_fma(&a, &b).unwrap();
            prop_assert_eq!(got.shape(), want.shape());
            for i in 0..m {
                for j in 0..n {
                    let abssum: f32 =
                        (0..k).map(|kk| (a.at(&[i, kk]) * b.at(&[kk, j])).abs()).sum();
                    // k roundings at eps each, against the running partial
                    // (bounded by the absolute-value sum), plus slack.
                    let bound = abssum * k as f32 * f32::EPSILON * 4.0 + 1e-5;
                    let diff = (got.at(&[i, j]) - want.at(&[i, j])).abs();
                    prop_assert!(diff <= bound, "({i},{j}): {diff} > {bound}");
                }
            }
            let bt = grid_array(&[n, k], salt ^ 0x0bbb);
            let want = matmul(&a, &bt.transpose()).unwrap();
            let got = matmul_nt_fma(&a, &bt).unwrap();
            for i in 0..m {
                for j in 0..n {
                    let abssum: f32 =
                        (0..k).map(|kk| (a.at(&[i, kk]) * bt.at(&[j, kk])).abs()).sum();
                    let bound = abssum * k as f32 * f32::EPSILON * 4.0 + 1e-5;
                    let diff = (got.at(&[i, j]) - want.at(&[i, j])).abs();
                    prop_assert!(diff <= bound, "nt ({i},{j}): {diff} > {bound}");
                }
            }
        }

        /// Relaxed tier: bit-identical at threads {1, 2, 4} — per-element
        /// operation sequences are independent of chunk and row-block
        /// boundaries, so fan-out never changes bits *within* the tier.
        fn fma_is_thread_deterministic(
            mi in 0usize..9,
            ki in 0usize..9,
            ni in 0usize..9,
            bs in 1usize..4
        ) {
            let (m, k, n) = (TDIMS[mi], TDIMS[ki], TDIMS[ni]);
            let a2 = grid_array(&[m, k], 11);
            let a3 = grid_array(&[bs, m, k], 13);
            let b2 = grid_array(&[k, n], 17);
            let b3 = grid_array(&[bs, n, k], 19);
            let w2 = pool::with_threads(1, || matmul_fma(&a2, &b2).unwrap());
            let w3 = pool::with_threads(1, || matmul_nt_fma(&a3, &b3).unwrap());
            for threads in [2usize, 4] {
                let (g2, g3) = pool::with_threads(threads, || {
                    pool::with_grain(64, || {
                        (matmul_fma(&a2, &b2).unwrap(), matmul_nt_fma(&a3, &b3).unwrap())
                    })
                });
                assert_bits_eq(&g2, &w2, &format!("fma t{threads}"));
                assert_bits_eq(&g3, &w3, &format!("nt_fma t{threads}"));
            }
        }
    }

    #[test]
    fn fma_rejects_mismatch_like_exact() {
        let a = NdArray::zeros(&[2, 3]);
        let b = NdArray::zeros(&[4, 5]);
        let msg = matmul_fma(&a, &b).unwrap_err().to_string();
        assert!(msg.contains("(2,3) x (4,5)"), "message: {msg}");
        let msg = matmul_nt_fma(&a, &NdArray::zeros(&[5, 4])).unwrap_err().to_string();
        assert!(msg.contains("(2,3) x (4,5)"), "message: {msg}");
        assert!(matmul_fma(&a, &NdArray::zeros(&[3])).is_err());
    }

    #[test]
    fn packed_handles_nonfinite_b_like_reference() {
        // The zero-skip changes results when b holds inf/NaN: 0 * inf = NaN
        // would poison the sum if the skip were dropped. Pin the packed
        // kernel to the reference behavior.
        let a = NdArray::from_vec(&[4, 2], vec![0.0, 1.0, 2.0, 0.0, -0.0, 3.0, 1.0, 1.0]).unwrap();
        let b = NdArray::from_vec(
            &[2, 4],
            vec![f32::INFINITY, 1.0, f32::NAN, 2.0, 3.0, f32::NEG_INFINITY, 4.0, 5.0],
        )
        .unwrap();
        let fast = matmul(&a, &b).unwrap();
        let reference = matmul_reference(&a, &b).unwrap();
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "fast {x} vs reference {y}");
        }
    }
}
