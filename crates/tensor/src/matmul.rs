//! Matrix multiplication kernels.
//!
//! The 2-D core is a blocked, B-panel-packed microkernel in the GEBP
//! style: `b` is packed once per call into contiguous [`NR`]-wide column
//! panels, and an [`MR`]×[`NR`] register-blocked inner kernel walks the
//! `k` axis keeping all `MR * NR` partial sums in registers. That removes
//! the per-`k` load/store traffic on the output array that bounded the
//! seed kernel and lets the compiler vectorize the `NR`-wide accumulator
//! updates.
//!
//! Bit-exactness contract (DESIGN.md §9–§10): for every output element the
//! microkernel performs *the same `f32` additions in the same ascending-`k`
//! order* as [`matmul_rows_reference`], including the reference kernel's
//! skip of `a`-entries that equal `0.0`. The packed path is therefore
//! bit-identical to the reference loop (property-tested in this module and
//! in the determinism suite), and results do not depend on whether the
//! packed or reference path ran.
//!
//! Large products fan out over `testkit::pool`: the output is split into
//! fixed, index-ordered row (or batch-entry) chunks, each computed into its
//! own disjoint slice. `b` is packed *before* the fan-out and shared
//! read-only, and chunk boundaries never touch the `k` axis, so the
//! parallel result is bit-identical to the serial one at any thread count
//! (`TIMEDRL_THREADS=1` ≡ `TIMEDRL_THREADS=N`).

use crate::array::NdArray;
use crate::bufpool::Buffer;
use crate::error::{Result, TensorError};
use testkit::pool;

/// Work-per-chunk target for the parallel path, in multiply-adds. One grain
/// is roughly a quarter millisecond of serial kernel time — large enough
/// that per-chunk dispatch cost vanishes, small enough to load-balance.
const MATMUL_GRAIN: usize = 1 << 18;

/// Rows per register block of the microkernel.
const MR: usize = 4;

/// Columns per packed panel / register block of the microkernel. Two
/// 256-bit vectors per row: wide enough that the per-row scalar load,
/// zero-test, and branch amortize over 16 columns, small enough that the
/// `MR * NR/8` accumulator vectors still fit the 16 AVX registers.
const NR: usize = 16;

/// Minimum `m` and `n` for the packed path. Below this the packing pass
/// and the zero-padded panel arithmetic cost more than they save, so tiny
/// products keep the reference loop (identical results either way).
const MIN_PACKED_DIM: usize = 4;

/// Reference row-range core — the seed repo's `i-k-j` loop, kept verbatim.
/// Computes `out_chunk = a[row0.., :] * b` for the `out_chunk.len() / n`
/// rows starting at `row0`. The packed microkernel is property-tested to be
/// bit-identical to this loop; it also still serves tiny products where
/// packing does not pay.
pub(crate) fn matmul_rows_reference(
    a: &[f32],
    b: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    out_chunk.fill(0.0);
    if n == 0 {
        return; // zero-width rows: nothing to compute
    }
    // i-k-j order: the inner loop walks both b and out contiguously.
    for (li, orow) in out_chunk.chunks_mut(n).enumerate() {
        let i = row0 + li;
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Number of [`NR`]-wide column panels covering `n` columns.
fn panel_count(n: usize) -> usize {
    n.div_ceil(NR)
}

/// Packs `b` (`k x n`, row-major) into `NR`-wide column panels: panel `p`
/// holds columns `[p*NR, p*NR+NR)` as `k` contiguous `NR`-element rows,
/// zero-padded on the right edge. Packing reorders *memory*, never values:
/// `packed[p][kk][c] == b[kk][p*NR + c]`.
fn pack_b_panels(b: &[f32], k: usize, n: usize, packed: &mut [f32]) {
    debug_assert_eq!(packed.len(), panel_count(n) * k * NR);
    if k == 0 {
        return; // zero-size inner axis: nothing to pack, output stays 0
    }
    for (p, panel) in packed.chunks_mut(k * NR).enumerate() {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        for (kk, dst) in panel.chunks_mut(NR).enumerate() {
            dst[..w].copy_from_slice(&b[kk * n + j0..kk * n + j0 + w]);
            dst[w..].fill(0.0);
        }
    }
}

/// One row's `NR`-wide accumulator update for a single `k` step — the
/// exact per-element operation of [`matmul_rows_reference`]: skip when the
/// `a`-entry equals `0.0`, otherwise `acc[c] += av * bp[c]`.
///
/// The skip uses an integer bit test instead of a float compare:
/// `to_bits() & 0x7FFF_FFFF == 0` holds exactly for `+0.0`/`-0.0` and for
/// no other `f32` (NaN compares unequal to zero *and* has nonzero payload
/// bits), so the condition is identical to `av == 0.0` for every input —
/// it just compiles to one predictable branch instead of a two-branch
/// NaN-aware `ucomiss`.
#[inline(always)]
fn lane_update(av: f32, bp: &[f32; NR], acc: &mut [f32; NR]) {
    if av.to_bits() & 0x7FFF_FFFF != 0 {
        for c in 0..NR {
            acc[c] += av * bp[c];
        }
    }
}

/// Register-blocked inner kernel, full `MR`-row case: accumulates the
/// `MR x NR` output block for rows starting at `a_base` against one packed
/// panel, walking `k` ascending with the exact per-element operation
/// sequence of [`matmul_rows_reference`]. Zipped iterators (rather than
/// indexed loads) keep the hot loop free of bounds checks.
#[inline(always)]
fn micro_block_main(a: &[f32], a_base: usize, k: usize, panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let row = |r: usize| &a[a_base + r * k..a_base + (r + 1) * k];
    let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
    let (bps, _) = panel.as_chunks::<NR>();
    for ((((bp, &v0), &v1), &v2), &v3) in bps.iter().zip(r0).zip(r1).zip(r2).zip(r3) {
        lane_update(v0, bp, &mut acc[0]);
        lane_update(v1, bp, &mut acc[1]);
        lane_update(v2, bp, &mut acc[2]);
        lane_update(v3, bp, &mut acc[3]);
    }
}

/// Branch-free variant of [`micro_block_main`] for row blocks proven to
/// hold no `0.0` entries (checked once per block by [`any_zero`], amortized
/// over every panel): with no zeros present the reference skip is vacuous,
/// so the four row updates run unconditionally as straight-line vector
/// code — identical operations, minus the per-`k` taken branches that
/// otherwise bound the loop.
#[inline(always)]
fn micro_block_dense(a: &[f32], a_base: usize, k: usize, panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let row = |r: usize| &a[a_base + r * k..a_base + (r + 1) * k];
    let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
    let (bps, _) = panel.as_chunks::<NR>();
    for ((((bp, &v0), &v1), &v2), &v3) in bps.iter().zip(r0).zip(r1).zip(r2).zip(r3) {
        for c in 0..NR {
            acc[0][c] += v0 * bp[c];
        }
        for c in 0..NR {
            acc[1][c] += v1 * bp[c];
        }
        for c in 0..NR {
            acc[2][c] += v2 * bp[c];
        }
        for c in 0..NR {
            acc[3][c] += v3 * bp[c];
        }
    }
}

/// Whether `row` contains an exact `0.0`/`-0.0` — the same bit-level
/// predicate as [`lane_update`]'s skip, vectorized by the compiler into a
/// cheap integer scan.
#[inline(always)]
fn any_zero(row: &[f32]) -> bool {
    row.iter().any(|v| v.to_bits() & 0x7FFF_FFFF == 0)
}

/// Single-row edge kernel: same operation sequence, partial register block.
#[inline(always)]
fn micro_block_edge(arow: &[f32], panel: &[f32], acc: &mut [f32; NR]) {
    let (bps, _) = panel.as_chunks::<NR>();
    for (bp, &av) in bps.iter().zip(arow) {
        lane_update(av, bp, acc);
    }
}

/// Packed row-range core: same contract as [`matmul_rows_reference`] but
/// reads `b` through its packed panels and blocks `m`/`n` into `MR x NR`
/// register tiles. Bit-identical to the reference loop by construction
/// (same `k` order, same zero-skip, same `mul`+`add` per element).
#[inline(always)]
fn matmul_rows_packed_impl(
    a: &[f32],
    packed: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    let m_chunk = out_chunk.len() / n.max(1);
    let panels = panel_count(n);
    let mut i = 0;
    while i < m_chunk {
        let mr = MR.min(m_chunk - i);
        let a_base = (row0 + i) * k;
        // One zero-scan per row block, reused across all its panels: picks
        // the branch-free kernel when the reference skip cannot fire.
        let dense = mr == MR
            && !(0..MR).any(|r| any_zero(&a[a_base + r * k..a_base + (r + 1) * k]));
        for p in 0..panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = &packed[p * k * NR..(p + 1) * k * NR];
            let mut acc = [[0.0f32; NR]; MR];
            if dense {
                micro_block_dense(a, a_base, k, panel, &mut acc);
            } else if mr == MR {
                micro_block_main(a, a_base, k, panel, &mut acc);
            } else {
                // Edge rows: same kernel, partial register block.
                for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                    let base = a_base + r * k;
                    micro_block_edge(&a[base..base + k], panel, accr);
                }
            }
            for (r, accr) in acc.iter().enumerate().take(mr) {
                let o0 = (i + r) * n + j0;
                out_chunk[o0..o0 + w].copy_from_slice(&accr[..w]);
            }
        }
        i += mr;
    }
}

/// Portable instantiation of the packed core (baseline target features).
fn matmul_rows_packed_portable(
    a: &[f32],
    packed: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    matmul_rows_packed_impl(a, packed, out_chunk, row0, k, n);
}

/// AVX2 instantiation: the same Rust body compiled with 256-bit vectors
/// enabled, so the `NR`-wide accumulator updates become one-register ops.
/// Vectorization only spans the `NR` independent output lanes — the `k`
/// sum stays sequential per element and `mul`/`add` stay separate
/// instructions (rustc never contracts them into FMA) — so this is
/// bit-identical to the portable build; the dispatch below is invisible
/// in results.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn matmul_rows_packed_avx2(
    a: &[f32],
    packed: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    matmul_rows_packed_impl(a, packed, out_chunk, row0, k, n);
}

/// Runtime-dispatched packed core: picks the widest instantiation the host
/// supports. Both produce bit-identical output, so the choice never shows
/// up in results — only in speed.
fn matmul_rows_packed(
    a: &[f32],
    packed: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: gated on runtime AVX2 detection; the fn is a safe Rust
        // body that only needs the feature to be *legal to execute*.
        unsafe {
            return matmul_rows_packed_avx2(a, packed, out_chunk, row0, k, n);
        }
    }
    matmul_rows_packed_portable(a, packed, out_chunk, row0, k, n);
}

/// Whether the packed microkernel pays for `m x k * n`: both output
/// dimensions must be big enough to amortize packing and panel padding.
fn use_packed(m: usize, n: usize) -> bool {
    m >= MIN_PACKED_DIM && n >= MIN_PACKED_DIM
}

/// Single-matrix core with kernel dispatch: packs `b` (from the buffer
/// pool) and runs the microkernel, or falls back to the reference loop for
/// tiny products. No parallelism here — used per batch entry inside an
/// outer fan-out, and by the 2-D path below after it packs once for all
/// row chunks.
fn matmul_single(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if !use_packed(m, n) {
        matmul_rows_reference(a, b, out, 0, k, n);
        return;
    }
    let mut packed = Buffer::zeroed(panel_count(n) * k * NR);
    pack_b_panels(b, k, n, &mut packed);
    matmul_rows_packed(a, &packed, out, 0, k, n);
}

/// Raw 2-D kernel: `out[m x n] = a[m x k] * b[k x n]`, all slices row-major.
/// Packs `b` once, then row-chunks across the pool when the product is
/// large enough; every chunk reads the same shared panels.
pub(crate) fn matmul2d_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if out.is_empty() {
        return;
    }
    let rows_per_chunk = if pool::should_parallelize(m * k * n, MATMUL_GRAIN) {
        (pool::grain(MATMUL_GRAIN) / (k * n).max(1)).clamp(1, m)
    } else {
        m
    };
    if !use_packed(m, n) {
        pool::for_each_chunk(out, rows_per_chunk * n, |offset, chunk| {
            matmul_rows_reference(a, b, chunk, offset / n, k, n);
        });
        return;
    }
    // Pack before the fan-out: one pass over b, shared read-only by every
    // row chunk, so chunking cannot perturb packed values.
    let mut packed = Buffer::zeroed(panel_count(n) * k * NR);
    pack_b_panels(b, k, n, &mut packed);
    let packed = &packed[..];
    pool::for_each_chunk(out, rows_per_chunk * n, |offset, chunk| {
        matmul_rows_packed(a, packed, chunk, offset / n, k, n);
    });
}

/// Matrix product with rank dispatch:
///
/// * `[m,k] x [k,n] -> [m,n]`
/// * `[b,m,k] x [b,k,n] -> [b,m,n]` (batched, parallel across batch entries)
/// * `[b,m,k] x [k,n] -> [b,m,n]` (shared right operand)
///
/// # Errors
/// Returns [`TensorError::MatmulMismatch`] for any other rank combination or
/// inner-dimension disagreement; the error message names the offending
/// `(m,k) x (k',n)` dimensions.
pub fn matmul(a: &NdArray, b: &NdArray) -> Result<NdArray> {
    let err = || TensorError::MatmulMismatch { lhs: a.shape().to_vec(), rhs: b.shape().to_vec() };
    match (a.rank(), b.rank()) {
        (2, 2) => {
            let (m, k) = (a.shape()[0], a.shape()[1]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[m, n]);
            matmul2d_kernel(a.data(), b.data(), out.data_mut(), m, k, n);
            Ok(out)
        }
        (3, 3) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (bs2, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
            if k != k2 || bs != bs2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[bs, m, n]);
            let per = m * n;
            if per > 0 {
                let batches_per_chunk = if pool::should_parallelize(bs * m * k * n, MATMUL_GRAIN) {
                    (pool::grain(MATMUL_GRAIN) / (m * k * n).max(1)).clamp(1, bs)
                } else {
                    bs
                };
                let (ad, bd) = (a.data(), b.data());
                pool::for_each_chunk(out.data_mut(), batches_per_chunk * per, |offset, chunk| {
                    let first = offset / per;
                    for (j, o_sl) in chunk.chunks_mut(per).enumerate() {
                        let i = first + j;
                        matmul_single(
                            &ad[i * m * k..(i + 1) * m * k],
                            &bd[i * k * n..(i + 1) * k * n],
                            o_sl,
                            m,
                            k,
                            n,
                        );
                    }
                });
            }
            Ok(out)
        }
        (3, 2) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            // Fold the batch into the row dimension: one big GEMM.
            let mut out = NdArray::zeros(&[bs, m, n]);
            matmul2d_kernel(a.data(), b.data(), out.data_mut(), bs * m, k, n);
            Ok(out)
        }
        _ => Err(err()),
    }
}

/// Reference matrix product: the same rank dispatch as [`matmul`] but
/// always through the seed `i-k-j` loop, serially. The packed microkernel
/// is property-tested to be bit-identical to this (here and in the
/// determinism suite); it also anchors perf comparisons in the benches.
pub fn matmul_reference(a: &NdArray, b: &NdArray) -> Result<NdArray> {
    let err = || TensorError::MatmulMismatch { lhs: a.shape().to_vec(), rhs: b.shape().to_vec() };
    match (a.rank(), b.rank()) {
        (2, 2) => {
            let (m, k) = (a.shape()[0], a.shape()[1]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[m, n]);
            matmul_rows_reference(a.data(), b.data(), out.data_mut(), 0, k, n);
            Ok(out)
        }
        (3, 3) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (bs2, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
            if k != k2 || bs != bs2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[bs, m, n]);
            let per = m * n;
            if per > 0 {
                let (ad, bd) = (a.data(), b.data());
                for (i, o_sl) in out.data_mut().chunks_mut(per).enumerate() {
                    matmul_rows_reference(
                        &ad[i * m * k..(i + 1) * m * k],
                        &bd[i * k * n..(i + 1) * k * n],
                        o_sl,
                        0,
                        k,
                        n,
                    );
                }
            }
            Ok(out)
        }
        (3, 2) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[bs, m, n]);
            matmul_rows_reference(a.data(), b.data(), out.data_mut(), 0, k, n);
            Ok(out)
        }
        _ => Err(err()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testkit::{prop, prop_assert, prop_assert_eq};

    #[test]
    fn matmul_2d_known_values() {
        let a = NdArray::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = NdArray::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = NdArray::from_fn(&[4, 4], |i| i as f32);
        let c = matmul(&a, &NdArray::eye(4)).unwrap();
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_batched() {
        let a = NdArray::from_fn(&[2, 2, 3], |i| i as f32);
        let b = NdArray::from_fn(&[2, 3, 2], |i| (i % 5) as f32);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2, 2]);
        // Verify batch 1, element [0,0] by hand.
        // a[1,0,:] = [6,7,8]; b[1,:,0] = b flat idx 6,8,10 -> values 1,3,0
        let expected = 6.0 * 1.0 + 7.0 * 3.0 + 8.0 * 0.0;
        assert_eq!(c.at(&[1, 0, 0]), expected);
    }

    #[test]
    fn matmul_broadcast_rhs() {
        let a = NdArray::from_fn(&[2, 3, 4], |i| i as f32);
        let b = NdArray::eye(4);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 3, 4]);
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = NdArray::zeros(&[2, 3]);
        let b = NdArray::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        let v = NdArray::zeros(&[3]);
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn mismatch_error_names_offending_dims() {
        let a = NdArray::zeros(&[2, 3]);
        let b = NdArray::zeros(&[4, 5]);
        let msg = matmul(&a, &b).unwrap_err().to_string();
        assert!(msg.contains("(2,3) x (4,5)"), "message: {msg}");
        assert!(msg.contains("inner dimensions 3 vs 4"), "message: {msg}");
        // Batched mismatch: inner dims agree but batch sizes differ.
        let a3 = NdArray::zeros(&[2, 3, 4]);
        let b3 = NdArray::zeros(&[5, 4, 6]);
        let msg = matmul(&a3, &b3).unwrap_err().to_string();
        assert!(msg.contains("(3,4) x (4,6)"), "message: {msg}");
        assert!(msg.contains("batch dimensions 2 vs 5"), "message: {msg}");
    }

    #[test]
    fn matmul_matches_naive_reference() {
        let a = NdArray::from_fn(&[5, 7], |i| (i as f32 * 0.37).sin());
        let b = NdArray::from_fn(&[7, 4], |i| (i as f32 * 0.21).cos());
        let c = matmul(&a, &b).unwrap();
        for i in 0..5 {
            for j in 0..4 {
                let mut acc = 0.0f32;
                for k in 0..7 {
                    acc += a.at(&[i, k]) * b.at(&[k, j]);
                }
                assert!((c.at(&[i, j]) - acc).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn parallel_matmul_is_bit_exact() {
        // Force multi-chunk fan-out on small inputs and compare against the
        // single-thread result elementwise with exact equality.
        let a = NdArray::from_fn(&[17, 23], |i| (i as f32 * 0.71).sin());
        let b = NdArray::from_fn(&[23, 13], |i| (i as f32 * 0.29).cos());
        let serial = pool::with_threads(1, || matmul(&a, &b).unwrap());
        for threads in [2usize, 4] {
            let par = pool::with_threads(threads, || {
                pool::with_grain(32, || matmul(&a, &b).unwrap())
            });
            assert_eq!(serial, par, "threads={threads}");
        }
        // Batched dispatch too.
        let a3 = NdArray::from_fn(&[6, 5, 7], |i| (i as f32 * 0.13).sin());
        let b3 = NdArray::from_fn(&[6, 7, 4], |i| (i as f32 * 0.41).cos());
        let serial = pool::with_threads(1, || matmul(&a3, &b3).unwrap());
        let par = pool::with_threads(4, || pool::with_grain(16, || matmul(&a3, &b3).unwrap()));
        assert_eq!(serial, par);
    }

    /// The ISSUE's shape grid: odd, power-of-two, and just-past-block
    /// sizes, plus the zero-size edges.
    const DIMS: [usize; 7] = [0, 1, 3, 7, 17, 64, 129];

    /// Inputs with exact zeros sprinkled in (so the `av == 0.0` skip path
    /// is exercised), plus negative zero and denormal-ish values.
    fn grid_array(shape: &[usize], salt: u64) -> NdArray {
        NdArray::from_fn(shape, |i| {
            let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt);
            match x % 7 {
                0 => 0.0,
                1 => -0.0,
                _ => (x % 1000) as f32 / 61.0 - 8.0,
            }
        })
    }

    prop! {
        #![config(cases = 48)]

        fn packed_matches_reference_bitwise(
            mi in 0usize..7,
            ki in 0usize..7,
            ni in 0usize..7,
            salt in 0u64..1000
        ) {
            let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
            let a = grid_array(&[m, k], salt);
            let b = grid_array(&[k, n], salt ^ 0xdead);
            let fast = matmul(&a, &b).unwrap();
            let reference = matmul_reference(&a, &b).unwrap();
            // Bitwise comparison: identical f32 sequences, not just close.
            let fb: Vec<u32> = fast.data().iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = reference.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(fb, rb);
        }

        fn packed_matches_reference_batched(
            bs in 1usize..5,
            mi in 0usize..7,
            ki in 0usize..7,
            ni in 0usize..7
        ) {
            let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
            let a = grid_array(&[bs, m, k], bs as u64);
            let b3 = grid_array(&[bs, k, n], 17);
            let fast = matmul(&a, &b3).unwrap();
            let reference = matmul_reference(&a, &b3).unwrap();
            prop_assert_eq!(fast.data(), reference.data());
            prop_assert!(fast.data().iter().zip(reference.data())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
            // Shared-rhs dispatch.
            let b2 = grid_array(&[k, n], 23);
            let fast = matmul(&a, &b2).unwrap();
            let reference = matmul_reference(&a, &b2).unwrap();
            prop_assert!(fast.data().iter().zip(reference.data())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn packed_handles_nonfinite_b_like_reference() {
        // The zero-skip changes results when b holds inf/NaN: 0 * inf = NaN
        // would poison the sum if the skip were dropped. Pin the packed
        // kernel to the reference behavior.
        let a = NdArray::from_vec(&[4, 2], vec![0.0, 1.0, 2.0, 0.0, -0.0, 3.0, 1.0, 1.0]).unwrap();
        let b = NdArray::from_vec(
            &[2, 4],
            vec![f32::INFINITY, 1.0, f32::NAN, 2.0, 3.0, f32::NEG_INFINITY, 4.0, 5.0],
        )
        .unwrap();
        let fast = matmul(&a, &b).unwrap();
        let reference = matmul_reference(&a, &b).unwrap();
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "fast {x} vs reference {y}");
        }
    }
}
