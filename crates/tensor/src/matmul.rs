//! Matrix multiplication kernels.
//!
//! A single cache-friendly `i-k-j` loop kernel handles the 2-D case; rank-3
//! inputs dispatch to it per batch. The kernel is deliberately simple — at
//! the model widths used in this reproduction (d_model <= 128) it is within
//! a small factor of a tuned BLAS and keeps the crate dependency-free.
//!
//! Large products fan out over `testkit::pool`: the output is split into
//! fixed, index-ordered row (or batch-entry) chunks, each computed by the
//! same serial per-row kernel into its own disjoint slice. Chunk boundaries
//! never reorder the `k`-axis accumulation that produces an element, so the
//! parallel result is bit-identical to the serial one at any thread count
//! (`TIMEDRL_THREADS=1` ≡ `TIMEDRL_THREADS=N`).

use crate::array::NdArray;
use crate::error::{Result, TensorError};
use testkit::pool;

/// Work-per-chunk target for the parallel path, in multiply-adds. One grain
/// is roughly a quarter millisecond of serial kernel time — large enough
/// that per-chunk dispatch cost vanishes, small enough to load-balance.
const MATMUL_GRAIN: usize = 1 << 18;

/// Serial row-range core: computes `out_chunk = a[row0.., :] * b` for the
/// `out_chunk.len() / n` rows starting at `row0`. All parallel and serial
/// entry points funnel through this one loop, which is what makes the
/// chunked fan-out bit-exact by construction.
fn matmul_rows(a: &[f32], b: &[f32], out_chunk: &mut [f32], row0: usize, k: usize, n: usize) {
    out_chunk.fill(0.0);
    // i-k-j order: the inner loop walks both b and out contiguously.
    for (li, orow) in out_chunk.chunks_mut(n).enumerate() {
        let i = row0 + li;
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Raw 2-D kernel: `out[m x n] = a[m x k] * b[k x n]`, all slices row-major.
/// Row-chunked across the pool when the product is large enough.
pub(crate) fn matmul2d_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if out.is_empty() {
        return;
    }
    let rows_per_chunk = if pool::should_parallelize(m * k * n, MATMUL_GRAIN) {
        (pool::grain(MATMUL_GRAIN) / (k * n).max(1)).clamp(1, m)
    } else {
        m
    };
    pool::for_each_chunk(out, rows_per_chunk * n, |offset, chunk| {
        matmul_rows(a, b, chunk, offset / n, k, n);
    });
}

/// Matrix product with rank dispatch:
///
/// * `[m,k] x [k,n] -> [m,n]`
/// * `[b,m,k] x [b,k,n] -> [b,m,n]` (batched, parallel across batch entries)
/// * `[b,m,k] x [k,n] -> [b,m,n]` (shared right operand)
///
/// # Errors
/// Returns [`TensorError::MatmulMismatch`] for any other rank combination or
/// inner-dimension disagreement; the error message names the offending
/// `(m,k) x (k',n)` dimensions.
pub fn matmul(a: &NdArray, b: &NdArray) -> Result<NdArray> {
    let err = || TensorError::MatmulMismatch { lhs: a.shape().to_vec(), rhs: b.shape().to_vec() };
    match (a.rank(), b.rank()) {
        (2, 2) => {
            let (m, k) = (a.shape()[0], a.shape()[1]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[m, n]);
            matmul2d_kernel(a.data(), b.data(), out.data_mut(), m, k, n);
            Ok(out)
        }
        (3, 3) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (bs2, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
            if k != k2 || bs != bs2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[bs, m, n]);
            let per = m * n;
            if per > 0 {
                let batches_per_chunk = if pool::should_parallelize(bs * m * k * n, MATMUL_GRAIN) {
                    (pool::grain(MATMUL_GRAIN) / (m * k * n).max(1)).clamp(1, bs)
                } else {
                    bs
                };
                let (ad, bd) = (a.data(), b.data());
                pool::for_each_chunk(out.data_mut(), batches_per_chunk * per, |offset, chunk| {
                    let first = offset / per;
                    for (j, o_sl) in chunk.chunks_mut(per).enumerate() {
                        let i = first + j;
                        matmul_rows(
                            &ad[i * m * k..(i + 1) * m * k],
                            &bd[i * k * n..(i + 1) * k * n],
                            o_sl,
                            0,
                            k,
                            n,
                        );
                    }
                });
            }
            Ok(out)
        }
        (3, 2) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            // Fold the batch into the row dimension: one big GEMM.
            let mut out = NdArray::zeros(&[bs, m, n]);
            matmul2d_kernel(a.data(), b.data(), out.data_mut(), bs * m, k, n);
            Ok(out)
        }
        _ => Err(err()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2d_known_values() {
        let a = NdArray::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = NdArray::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = NdArray::from_fn(&[4, 4], |i| i as f32);
        let c = matmul(&a, &NdArray::eye(4)).unwrap();
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_batched() {
        let a = NdArray::from_fn(&[2, 2, 3], |i| i as f32);
        let b = NdArray::from_fn(&[2, 3, 2], |i| (i % 5) as f32);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2, 2]);
        // Verify batch 1, element [0,0] by hand.
        // a[1,0,:] = [6,7,8]; b[1,:,0] = b flat idx 6,8,10 -> values 1,3,0
        let expected = 6.0 * 1.0 + 7.0 * 3.0 + 8.0 * 0.0;
        assert_eq!(c.at(&[1, 0, 0]), expected);
    }

    #[test]
    fn matmul_broadcast_rhs() {
        let a = NdArray::from_fn(&[2, 3, 4], |i| i as f32);
        let b = NdArray::eye(4);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 3, 4]);
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = NdArray::zeros(&[2, 3]);
        let b = NdArray::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        let v = NdArray::zeros(&[3]);
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn mismatch_error_names_offending_dims() {
        let a = NdArray::zeros(&[2, 3]);
        let b = NdArray::zeros(&[4, 5]);
        let msg = matmul(&a, &b).unwrap_err().to_string();
        assert!(msg.contains("(2,3) x (4,5)"), "message: {msg}");
        assert!(msg.contains("inner dimensions 3 vs 4"), "message: {msg}");
        // Batched mismatch: inner dims agree but batch sizes differ.
        let a3 = NdArray::zeros(&[2, 3, 4]);
        let b3 = NdArray::zeros(&[5, 4, 6]);
        let msg = matmul(&a3, &b3).unwrap_err().to_string();
        assert!(msg.contains("(3,4) x (4,6)"), "message: {msg}");
        assert!(msg.contains("batch dimensions 2 vs 5"), "message: {msg}");
    }

    #[test]
    fn matmul_matches_naive_reference() {
        let a = NdArray::from_fn(&[5, 7], |i| (i as f32 * 0.37).sin());
        let b = NdArray::from_fn(&[7, 4], |i| (i as f32 * 0.21).cos());
        let c = matmul(&a, &b).unwrap();
        for i in 0..5 {
            for j in 0..4 {
                let mut acc = 0.0f32;
                for k in 0..7 {
                    acc += a.at(&[i, k]) * b.at(&[k, j]);
                }
                assert!((c.at(&[i, j]) - acc).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn parallel_matmul_is_bit_exact() {
        // Force multi-chunk fan-out on small inputs and compare against the
        // single-thread result elementwise with exact equality.
        let a = NdArray::from_fn(&[17, 23], |i| (i as f32 * 0.71).sin());
        let b = NdArray::from_fn(&[23, 13], |i| (i as f32 * 0.29).cos());
        let serial = pool::with_threads(1, || matmul(&a, &b).unwrap());
        for threads in [2usize, 4] {
            let par = pool::with_threads(threads, || {
                pool::with_grain(32, || matmul(&a, &b).unwrap())
            });
            assert_eq!(serial, par, "threads={threads}");
        }
        // Batched dispatch too.
        let a3 = NdArray::from_fn(&[6, 5, 7], |i| (i as f32 * 0.13).sin());
        let b3 = NdArray::from_fn(&[6, 7, 4], |i| (i as f32 * 0.41).cos());
        let serial = pool::with_threads(1, || matmul(&a3, &b3).unwrap());
        let par = pool::with_threads(4, || pool::with_grain(16, || matmul(&a3, &b3).unwrap()));
        assert_eq!(serial, par);
    }
}
