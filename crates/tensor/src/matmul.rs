//! Matrix multiplication kernels.
//!
//! A single cache-friendly `i-k-j` loop kernel handles the 2-D case; rank-3
//! inputs dispatch to it per batch. The kernel is deliberately simple — at
//! the model widths used in this reproduction (d_model <= 128) it is within
//! a small factor of a tuned BLAS and keeps the crate dependency-free.

use crate::array::NdArray;
use crate::error::{Result, TensorError};

/// Raw 2-D kernel: `out[m x n] = a[m x k] * b[k x n]`, all slices row-major.
pub(crate) fn matmul2d_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    // i-k-j order: the inner loop walks both b and out contiguously.
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Matrix product with rank dispatch:
///
/// * `[m,k] x [k,n] -> [m,n]`
/// * `[b,m,k] x [b,k,n] -> [b,m,n]` (batched)
/// * `[b,m,k] x [k,n] -> [b,m,n]` (shared right operand)
///
/// # Errors
/// Returns [`TensorError::MatmulMismatch`] for any other rank combination or
/// inner-dimension disagreement.
pub fn matmul(a: &NdArray, b: &NdArray) -> Result<NdArray> {
    let err = || TensorError::MatmulMismatch { lhs: a.shape().to_vec(), rhs: b.shape().to_vec() };
    match (a.rank(), b.rank()) {
        (2, 2) => {
            let (m, k) = (a.shape()[0], a.shape()[1]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[m, n]);
            matmul2d_kernel(a.data(), b.data(), out.data_mut(), m, k, n);
            Ok(out)
        }
        (3, 3) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (bs2, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
            if k != k2 || bs != bs2 {
                return Err(err());
            }
            let mut out = NdArray::zeros(&[bs, m, n]);
            for i in 0..bs {
                let a_sl = &a.data()[i * m * k..(i + 1) * m * k];
                let b_sl = &b.data()[i * k * n..(i + 1) * k * n];
                let o_sl = &mut out.data_mut()[i * m * n..(i + 1) * m * n];
                matmul2d_kernel(a_sl, b_sl, o_sl, m, k, n);
            }
            Ok(out)
        }
        (3, 2) => {
            let (bs, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
            let (k2, n) = (b.shape()[0], b.shape()[1]);
            if k != k2 {
                return Err(err());
            }
            // Fold the batch into the row dimension: one big GEMM.
            let mut out = NdArray::zeros(&[bs, m, n]);
            matmul2d_kernel(a.data(), b.data(), out.data_mut(), bs * m, k, n);
            Ok(out)
        }
        _ => Err(err()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2d_known_values() {
        let a = NdArray::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = NdArray::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = NdArray::from_fn(&[4, 4], |i| i as f32);
        let c = matmul(&a, &NdArray::eye(4)).unwrap();
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_batched() {
        let a = NdArray::from_fn(&[2, 2, 3], |i| i as f32);
        let b = NdArray::from_fn(&[2, 3, 2], |i| (i % 5) as f32);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2, 2]);
        // Verify batch 1, element [0,0] by hand.
        // a[1,0,:] = [6,7,8]; b[1,:,0] = b flat idx 6,8,10 -> values 1,3,0
        let expected = 6.0 * 1.0 + 7.0 * 3.0 + 8.0 * 0.0;
        assert_eq!(c.at(&[1, 0, 0]), expected);
    }

    #[test]
    fn matmul_broadcast_rhs() {
        let a = NdArray::from_fn(&[2, 3, 4], |i| i as f32);
        let b = NdArray::eye(4);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 3, 4]);
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = NdArray::zeros(&[2, 3]);
        let b = NdArray::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        let v = NdArray::zeros(&[3]);
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn matmul_matches_naive_reference() {
        let a = NdArray::from_fn(&[5, 7], |i| (i as f32 * 0.37).sin());
        let b = NdArray::from_fn(&[7, 4], |i| (i as f32 * 0.21).cos());
        let c = matmul(&a, &b).unwrap();
        for i in 0..5 {
            for j in 0..4 {
                let mut acc = 0.0f32;
                for k in 0..7 {
                    acc += a.at(&[i, k]) * b.at(&[k, j]);
                }
                assert!((c.at(&[i, j]) - acc).abs() < 1e-5);
            }
        }
    }
}
