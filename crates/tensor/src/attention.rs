//! Fused tiled attention (DESIGN.md §17).
//!
//! Computes `softmax(Q·Kᵀ·s + mask)·V` without ever materializing the
//! `[B·H, T, T]` score tensor. The composed path (the seed code, still
//! reachable via [`attention_reference`] and the tape's introspection
//! branch) allocates five to six `T²`-sized intermediates per attention
//! call — raw scores, scaled scores, masked scores, probabilities, dropped
//! probabilities — and streams each of them through main memory twice. The
//! fused kernel instead walks the output in [`MR`]-row blocks: each block's
//! scores live in one pooled `[MR, T]` scratch strip that stays cache-hot
//! through scale → mask → softmax → dropout → `·V`, so peak attention
//! scratch is `O(MR·T + T·Dh)` (the packed panels) — linear in `T`, not
//! quadratic.
//!
//! # Exact tier: bitwise equality with the composed path
//!
//! Every `f32` an exact-tier fused call produces is bit-identical to the
//! composed chain `matmul_nt → scale → add mask → softmax_lastdim →
//! mul mask → matmul` (property-tested below and in the determinism
//! suite). The argument is per output element, the same shape as the
//! packed-GEMM proof in `matmul.rs`:
//!
//! * **Scores.** The composed `matmul_nt` dispatches per batch entry to the
//!   packed microkernel when `use_packed(t, t)`, else to the reference
//!   loop. The fused kernel packs the same `Kᵀ` panels with the same
//!   [`pack_bt_panels`] and runs the same [`matmul_rows_packed`] core (or
//!   the same reference loop) — packing reorders memory, never values, and
//!   the microkernel's per-element operation sequence is independent of
//!   row-block and chunk boundaries.
//! * **Scale / mask.** `row[j] * scale` then `row[j] + mask[i][j]` in
//!   ascending `j` — exactly the composed `map`/`zip_map` per-element ops.
//!   When `causal` the add happens for every element including the `0.0`
//!   mask entries (`-0.0 + 0.0 == +0.0`, so skipping the add would flip
//!   signed zeros); when not causal the composed graph has *no* add node,
//!   so the fused kernel adds nothing either.
//! * **Softmax.** The per-row schedule of `softmax_lastdim` verbatim:
//!   left-to-right `f32::max` fold from `NEG_INFINITY`, `exp` in ascending
//!   `j`, left-to-right sum from `0.0`, divide in ascending `j`. Rows never
//!   split across chunks, so the reduction order is blocking-invariant.
//! * **Output.** The composed `matmul` packs each entry's `V` with
//!   [`pack_b_panels`] and runs the identical microkernel over the
//!   probability rows; the fused kernel feeds it the same probability bits
//!   from scratch instead of from a materialized array.
//!
//! The backward pass recomputes tile statistics instead of reading saved
//! probabilities and replays the composed backward chain per element:
//! `dAttn = G·Vᵀ` (packed `nt` kernel), the softmax Jacobian row schedule
//! `gs[j] = gp[j]·p[j]`, `dot = Σ_j gs[j]` (ascending from `0.0`),
//! `gn1[j] = (p[j]·(gp[j]−dot))·scale`, then `dQ = gn1·K` (packed kernel)
//! and streaming ascending-`i` rank-1 updates for `dK`/`dV` that perform,
//! per element, the same skip-zero multiply-adds as
//! `matmul_tn_rows_reference` — which the packed `tn` path is itself
//! property-tested bit-identical to. Parallelism in the backward fans out
//! across batch-head entries only; the `dK`/`dV` accumulators for one
//! entry are owned by one closure, so no cross-chunk reduction ever
//! reorders their sums.
//!
//! # Relaxed tier: single-pass online softmax
//!
//! Under `Precision::Relaxed` (DESIGN.md §15) the kernel switches to a
//! FlashAttention-style single pass: scores for an `MR`-row strip come from
//! the FMA microkernel, then one walk over [`NR`]-wide key tiles maintains
//! a running row maximum `m`, a running denominator `z`, and a `Dh`-wide
//! accumulator that is rescaled by `exp(m_old − m_new)` whenever the
//! maximum grows; every multiply-add contracts to `vfmadd`. Accumulation
//! order is fixed by the tile walk (ascending `j` in `NR` strides), never
//! by thread count, so relaxed results are bit-identical across
//! `TIMEDRL_THREADS` on one host — the tier's contract is ε-closeness to
//! the exact kernel (gated by `quant_probe`), not specific bits across
//! ISAs. Hosts without FMA fall back to the exact fused kernel.

use crate::array::NdArray;
use crate::bufpool::Buffer;
use crate::error::{Result, TensorError};
use crate::matmul::{
    fma_available, matmul_nt_rows_reference, matmul_rows_packed, matmul_rows_reference,
    matmul_rows_relaxed, pack_b_panels, pack_bt_panels, panel_count, use_packed, MATMUL_GRAIN, MR,
    NR,
};
use std::cell::Cell;
use testkit::pool;

/// The additive mask value for disallowed (future) positions — the same
/// constant `nn::attention::causal_mask` and the serving plan bake into
/// their materialized masks.
const MASK_NEG: f32 = -1e9;

thread_local! {
    /// When set, tape-level consumers build the composed score graph
    /// instead of the fused node (see [`with_composed_attention`]).
    static COMPOSED_ATTENTION: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with fused attention disabled: `Var`-level consumers that
/// consult [`composed_attention_forced`] build the materialized
/// `matmul_t → scale → mask → softmax → matmul` graph instead. Test hook
/// (pattern of `with_materialized_transposes`) used to prove the fused
/// node changes no training bits — e.g. byte-comparing pretrain
/// checkpoints between the two paths.
pub fn with_composed_attention<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            COMPOSED_ATTENTION.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(COMPOSED_ATTENTION.with(|c| c.replace(true)));
    f()
}

/// Whether [`with_composed_attention`] is active on this thread.
pub fn composed_attention_forced() -> bool {
    COMPOSED_ATTENTION.with(Cell::get)
}

/// Validates that `q`, `k`, `v` are rank-3 `[bh, t, dh]` with identical
/// shapes and returns `(bh, t, dh)`.
fn validate(q: &NdArray, k: &NdArray, v: &NdArray) -> Result<(usize, usize, usize)> {
    let qs = q.shape();
    if q.rank() != 3 || k.shape() != qs || v.shape() != qs {
        let rhs = if k.shape() != qs { k.shape() } else { v.shape() };
        return Err(TensorError::MatmulMismatch { lhs: qs.to_vec(), rhs: rhs.to_vec() });
    }
    Ok((qs[0], qs[1], qs[2]))
}

/// Validates an optional `[bh, t, t]` dropout mask against the q/k/v batch
/// geometry.
fn validate_mask(mask: Option<&NdArray>, bh: usize, t: usize) -> Result<()> {
    if let Some(m) = mask {
        if m.shape() != [bh, t, t] {
            return Err(TensorError::BroadcastMismatch {
                lhs: m.shape().to_vec(),
                rhs: vec![bh, t, t],
            });
        }
    }
    Ok(())
}

/// Finishes a strip of raw score rows in place, in the composed path's
/// exact per-element order: `* scale`, `+ mask` (causal only — the
/// non-causal composed graph has no add node, and adding `0.0` would turn
/// `-0.0` into `+0.0`), the seed softmax row schedule, then the optional
/// dropout-mask multiply. `row0` is the entry-local index of the first row;
/// `drop` is the entry's `[t, t]` mask slice.
fn finish_rows_exact(
    strip: &mut [f32],
    t: usize,
    row0: usize,
    scale: f32,
    causal: bool,
    drop: Option<&[f32]>,
) {
    for (r, row) in strip.chunks_mut(t).enumerate() {
        let i = row0 + r;
        for x in row.iter_mut() {
            *x = *x * scale;
        }
        if causal {
            for (j, x) in row.iter_mut().enumerate() {
                *x = *x + if j > i { MASK_NEG } else { 0.0 };
            }
        }
        // softmax_lastdim's row body, verbatim.
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for x in row.iter_mut() {
            *x = (*x - m).exp();
        }
        let s: f32 = row.iter().sum();
        for x in row.iter_mut() {
            *x /= s;
        }
        if let Some(dm) = drop {
            for (x, &mv) in row.iter_mut().zip(&dm[i * t..(i + 1) * t]) {
                *x = *x * mv;
            }
        }
    }
}

/// Shared forward geometry: packed-path dispatch flags and per-entry panel
/// strides, mirroring the composed kernels' per-entry `use_packed` choices.
struct Tiling {
    /// Packed microkernel for the `Q·Kᵀ` scores (`m = t, n = t`)?
    score_packed: bool,
    /// Packed microkernel for the `probs·V` product (`m = t, n = dh`)?
    out_packed: bool,
    /// Length of one entry's packed `Kᵀ` panels.
    kt_len: usize,
    /// Length of one entry's packed `V` panels.
    vp_len: usize,
}

impl Tiling {
    fn new(t: usize, dh: usize) -> Self {
        Tiling {
            score_packed: use_packed(t, t),
            out_packed: use_packed(t, dh),
            kt_len: panel_count(t) * dh * NR,
            vp_len: panel_count(dh) * t * NR,
        }
    }
}

/// Packs every entry's `Kᵀ` panels (when the score product takes the packed
/// path) into one pooled buffer, shared read-only across the fan-out.
fn pack_kt_all(kd: &[f32], bh: usize, t: usize, dh: usize, tl: &Tiling) -> Buffer {
    let mut kt_all = Buffer::zeroed(if tl.score_packed { bh * tl.kt_len } else { 0 });
    if tl.score_packed {
        for e in 0..bh {
            pack_bt_panels(
                &kd[e * t * dh..(e + 1) * t * dh],
                dh,
                t,
                &mut kt_all[e * tl.kt_len..(e + 1) * tl.kt_len],
            );
        }
    }
    kt_all
}

/// Fused tiled attention, exact tier: `softmax(q·kᵀ·scale + mask)·v` for
/// `[bh, t, dh]` operands, bit-identical to the composed
/// `matmul_nt → scale → (add causal mask) → softmax_lastdim →
/// (mul drop_mask) → matmul` chain at any thread count, with peak scratch
/// linear in `t` (see the module docs for the per-element argument).
///
/// `drop_mask`, when given, is a `[bh, t, t]` elementwise multiplier
/// applied to the probabilities (the tape's inverted-dropout mask).
///
/// # Errors
/// Returns [`TensorError::MatmulMismatch`] unless `q`, `k`, `v` are rank-3
/// with identical shapes, and [`TensorError::BroadcastMismatch`] if
/// `drop_mask` is not `[bh, t, t]`.
pub fn attention_fused(
    q: &NdArray,
    k: &NdArray,
    v: &NdArray,
    scale: f32,
    causal: bool,
    drop_mask: Option<&NdArray>,
) -> Result<NdArray> {
    let (bh, t, dh) = validate(q, k, v)?;
    validate_mask(drop_mask, bh, t)?;
    let mut out = NdArray::zeros(&[bh, t, dh]);
    if out.data().is_empty() {
        return Ok(out);
    }
    let (qd, kd, vd) = (q.data(), k.data(), v.data());
    let dm = drop_mask.map(NdArray::data);
    let tl = Tiling::new(t, dh);
    // Pack panels for every entry before the fan-out, shared read-only, so
    // chunking cannot perturb packed values (same discipline as matmul).
    let kt_all = pack_kt_all(kd, bh, t, dh, &tl);
    let mut v_all = Buffer::zeroed(if tl.out_packed { bh * tl.vp_len } else { 0 });
    if tl.out_packed {
        for e in 0..bh {
            pack_b_panels(
                &vd[e * t * dh..(e + 1) * t * dh],
                t,
                dh,
                &mut v_all[e * tl.vp_len..(e + 1) * tl.vp_len],
            );
        }
    }
    let (kt_all, v_all) = (&kt_all[..], &v_all[..]);
    // ~2·t·dh multiply-adds per output row (scores + output GEMMs).
    let row_cost = 2 * t * dh;
    let rows_per_chunk = if pool::should_parallelize(bh * t * row_cost, MATMUL_GRAIN) {
        (pool::grain(MATMUL_GRAIN) / row_cost.max(1)).clamp(1, bh * t)
    } else {
        bh * t
    };
    pool::for_each_chunk(out.data_mut(), rows_per_chunk * dh, |offset, chunk| {
        let mut scratch = Buffer::zeroed(MR * t);
        let row_first = offset / dh;
        let rows = chunk.len() / dh;
        let mut r = 0;
        while r < rows {
            let grow = row_first + r;
            let (e, i0) = (grow / t, grow % t);
            // At most MR rows, never crossing an entry boundary (each entry
            // has its own panels). Block offsets don't affect bits: the
            // microkernel's per-element sequence is blocking-invariant.
            let mr = MR.min(rows - r).min(t - i0);
            let qe = &qd[e * t * dh..(e + 1) * t * dh];
            let strip = &mut scratch[..mr * t];
            if tl.score_packed {
                matmul_rows_packed(qe, &kt_all[e * tl.kt_len..(e + 1) * tl.kt_len], strip, i0, dh, t);
            } else {
                matmul_nt_rows_reference(qe, &kd[e * t * dh..(e + 1) * t * dh], strip, i0, dh, t);
            }
            finish_rows_exact(strip, t, i0, scale, causal, dm.map(|d| &d[e * t * t..(e + 1) * t * t]));
            let oblock = &mut chunk[r * dh..(r + mr) * dh];
            if tl.out_packed {
                matmul_rows_packed(strip, &v_all[e * tl.vp_len..(e + 1) * tl.vp_len], oblock, 0, t, dh);
            } else {
                matmul_rows_reference(strip, &vd[e * t * dh..(e + 1) * t * dh], oblock, 0, t, dh);
            }
            r += mr;
        }
    });
    Ok(out)
}

/// Backward of [`attention_fused`]: recomputes probability tiles from
/// `q`/`k` (no saved `[t, t]` probabilities) and returns `(dq, dk, dv)`
/// for upstream gradient `g`, bit-identical to the composed tape's
/// backward chain (see module docs). Fans out across batch-head entries
/// only: each entry's `dk`/`dv` accumulators stream ascending-`i` rank-1
/// updates inside one closure, so the f32 sums are never re-associated.
///
/// # Errors
/// Same shape contract as [`attention_fused`]; `g` must be `[bh, t, dh]`.
pub fn attention_fused_backward(
    q: &NdArray,
    k: &NdArray,
    v: &NdArray,
    g: &NdArray,
    scale: f32,
    causal: bool,
    drop_mask: Option<&NdArray>,
) -> Result<(NdArray, NdArray, NdArray)> {
    let (bh, t, dh) = validate(q, k, v)?;
    if g.shape() != [bh, t, dh] {
        return Err(TensorError::MatmulMismatch {
            lhs: g.shape().to_vec(),
            rhs: vec![bh, t, dh],
        });
    }
    validate_mask(drop_mask, bh, t)?;
    let mut dq = NdArray::zeros(&[bh, t, dh]);
    let mut dk = NdArray::zeros(&[bh, t, dh]);
    let mut dv = NdArray::zeros(&[bh, t, dh]);
    if dq.data().is_empty() {
        return Ok((dq, dk, dv));
    }
    let (qd, kd, vd, gd) = (q.data(), k.data(), v.data(), g.data());
    let dm = drop_mask.map(NdArray::data);
    let tl = Tiling::new(t, dh);
    let kt_all = pack_kt_all(kd, bh, t, dh, &tl);
    // Panels for dAttn = G·Vᵀ (same geometry as the score product) and for
    // dQ = gn1·K (same geometry as the output product).
    let mut vt_all = Buffer::zeroed(if tl.score_packed { bh * tl.kt_len } else { 0 });
    let mut kb_all = Buffer::zeroed(if tl.out_packed { bh * tl.vp_len } else { 0 });
    for e in 0..bh {
        if tl.score_packed {
            pack_bt_panels(
                &vd[e * t * dh..(e + 1) * t * dh],
                dh,
                t,
                &mut vt_all[e * tl.kt_len..(e + 1) * tl.kt_len],
            );
        }
        if tl.out_packed {
            pack_b_panels(
                &kd[e * t * dh..(e + 1) * t * dh],
                t,
                dh,
                &mut kb_all[e * tl.vp_len..(e + 1) * tl.vp_len],
            );
        }
    }
    let (kt_all, vt_all, kb_all) = (&kt_all[..], &vt_all[..], &kb_all[..]);
    // Entry-granular fan-out into one combined [bh][dq|dk|dv] buffer so a
    // single disjoint &mut slice covers all three gradients of an entry.
    let per = t * dh;
    let mut grads = Buffer::zeroed(bh * 3 * per);
    // ~5 GEMM-equivalents per entry: dAttn, softmax rows, dQ, dK, dV.
    let entry_cost = 5 * t * t * dh;
    let entries_per_chunk = if pool::should_parallelize(bh * entry_cost, MATMUL_GRAIN) {
        (pool::grain(MATMUL_GRAIN) / entry_cost.max(1)).clamp(1, bh)
    } else {
        bh
    };
    pool::for_each_chunk(&mut grads, entries_per_chunk * 3 * per, |offset, chunk| {
        let mut pbuf = Buffer::zeroed(MR * t);
        let mut gbuf = Buffer::zeroed(MR * t);
        let first = offset / (3 * per);
        for (je, echunk) in chunk.chunks_mut(3 * per).enumerate() {
            let e = first + je;
            let qe = &qd[e * per..(e + 1) * per];
            let ke = &kd[e * per..(e + 1) * per];
            let ve = &vd[e * per..(e + 1) * per];
            let ge = &gd[e * per..(e + 1) * per];
            let dme = dm.map(|d| &d[e * t * t..(e + 1) * t * t]);
            let (dqe, rest) = echunk.split_at_mut(per);
            let (dke, dve) = rest.split_at_mut(per);
            let mut i0 = 0;
            while i0 < t {
                let mr = MR.min(t - i0);
                let pstrip = &mut pbuf[..mr * t];
                let gstrip = &mut gbuf[..mr * t];
                // Recompute this strip's probabilities (pre-dropout).
                if tl.score_packed {
                    matmul_rows_packed(qe, &kt_all[e * tl.kt_len..(e + 1) * tl.kt_len], pstrip, i0, dh, t);
                } else {
                    matmul_nt_rows_reference(qe, ke, pstrip, i0, dh, t);
                }
                finish_rows_exact(pstrip, t, i0, scale, causal, None);
                // dAttn strip: G·Vᵀ — the Matmul backward's `matmul_nt(g, v)`.
                if tl.score_packed {
                    matmul_rows_packed(ge, &vt_all[e * tl.kt_len..(e + 1) * tl.kt_len], gstrip, i0, dh, t);
                } else {
                    matmul_nt_rows_reference(ge, ve, gstrip, i0, dh, t);
                }
                for r in 0..mr {
                    let i = i0 + r;
                    let prow = &mut pstrip[r * t..(r + 1) * t];
                    let grow = &mut gstrip[r * t..(r + 1) * t];
                    // Dropout backward: gp = dAttn · mask (g on the left,
                    // as Backward::Dropout computes g.mul(mask)).
                    if let Some(d) = dme {
                        for (x, &mv) in grow.iter_mut().zip(&d[i * t..(i + 1) * t]) {
                            *x = *x * mv;
                        }
                    }
                    // Softmax backward, the composed row schedule:
                    // gs[j] = gp[j]·p[j]; dot = Σ_j gs[j] (ascending, from
                    // 0.0); ds[j] = p[j]·(gp[j]−dot); then ·scale.
                    let mut dot = 0.0f32;
                    for (&gp, &p) in grow.iter().zip(prow.iter()) {
                        dot += gp * p;
                    }
                    for (x, &p) in grow.iter_mut().zip(prow.iter()) {
                        *x = (p * (*x - dot)) * scale;
                    }
                    // Post-dropout probabilities for the dV stream.
                    if let Some(d) = dme {
                        for (x, &mv) in prow.iter_mut().zip(&d[i * t..(i + 1) * t]) {
                            *x = *x * mv;
                        }
                    }
                }
                // dQ strip: gn1·K — the MatmulNT backward's `matmul(g, k)`.
                let dq_block = &mut dqe[i0 * dh..(i0 + mr) * dh];
                if tl.out_packed {
                    matmul_rows_packed(gstrip, &kb_all[e * tl.vp_len..(e + 1) * tl.vp_len], dq_block, 0, t, dh);
                } else {
                    matmul_rows_reference(gstrip, ke, dq_block, 0, t, dh);
                }
                // dK / dV: streaming ascending-`i` rank-1 updates with the
                // reference `tn` kernel's skip of 0.0 left factors —
                // per-element the exact sequence of
                // `matmul_tn(gn1, q)` / `matmul_tn(attn, g)`.
                for r in 0..mr {
                    let i = i0 + r;
                    let qrow = &qe[i * dh..(i + 1) * dh];
                    let grad_row = &ge[i * dh..(i + 1) * dh];
                    for j in 0..t {
                        let gv = gstrip[r * t + j];
                        if gv != 0.0 {
                            for (o, &qv) in dke[j * dh..(j + 1) * dh].iter_mut().zip(qrow) {
                                *o += gv * qv;
                            }
                        }
                        let av = pstrip[r * t + j];
                        if av != 0.0 {
                            for (o, &gvv) in dve[j * dh..(j + 1) * dh].iter_mut().zip(grad_row) {
                                *o += av * gvv;
                            }
                        }
                    }
                }
                i0 += mr;
            }
        }
    });
    for e in 0..bh {
        let base = e * 3 * per;
        dq.data_mut()[e * per..(e + 1) * per].copy_from_slice(&grads[base..base + per]);
        dk.data_mut()[e * per..(e + 1) * per].copy_from_slice(&grads[base + per..base + 2 * per]);
        dv.data_mut()[e * per..(e + 1) * per].copy_from_slice(&grads[base + 2 * per..base + 3 * per]);
    }
    Ok((dq, dk, dv))
}

/// One row's single-pass online softmax + `·V` accumulation over `NR`-wide
/// key tiles. `srow` holds the raw (unscaled) scores and is finished in
/// place; `orow` receives the attention output. Compiled only as the
/// `avx2,fma` instantiation: every accumulator update is a `vfmadd`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
fn online_softmax_row_avx2(
    srow: &mut [f32],
    ve: &[f32],
    orow: &mut [f32],
    i: usize,
    scale: f32,
    causal: bool,
) {
    let t = srow.len();
    let dh = orow.len();
    orow.fill(0.0);
    let mut m = f32::NEG_INFINITY;
    let mut z = 0.0f32;
    let mut j0 = 0;
    while j0 < t {
        let w = NR.min(t - j0);
        // Finish this tile's logits and find its maximum.
        let mut tmax = f32::NEG_INFINITY;
        for (jj, x) in srow[j0..j0 + w].iter_mut().enumerate() {
            let lo = if causal && j0 + jj > i { MASK_NEG } else { 0.0 };
            *x = (*x).mul_add(scale, lo);
            tmax = tmax.max(*x);
        }
        // Rescale the running accumulator when the maximum grows.
        if tmax > m {
            if z > 0.0 {
                let c = (m - tmax).exp();
                z *= c;
                for o in orow.iter_mut() {
                    *o *= c;
                }
            }
            m = tmax;
        }
        for (jj, &x) in srow[j0..j0 + w].iter().enumerate() {
            let e = (x - m).exp();
            z += e;
            let vrow = &ve[(j0 + jj) * dh..(j0 + jj + 1) * dh];
            for (o, &vv) in orow.iter_mut().zip(vrow) {
                *o = e.mul_add(vv, *o);
            }
        }
        j0 += w;
    }
    let inv = 1.0 / z;
    for o in orow.iter_mut() {
        *o *= inv;
    }
}

/// Fused tiled attention, relaxed tier (`Precision::Relaxed`): FMA scores
/// plus a single-pass online softmax (see module docs). ε-close to
/// [`attention_fused`] and bit-identical across thread counts on one host;
/// hosts without AVX2+FMA fall back to the exact fused kernel.
///
/// # Errors
/// Same shape contract as [`attention_fused`].
pub fn attention_fused_relaxed(
    q: &NdArray,
    k: &NdArray,
    v: &NdArray,
    scale: f32,
    causal: bool,
) -> Result<NdArray> {
    if !fma_available() {
        return attention_fused(q, k, v, scale, causal, None);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        unreachable!("fma_available() is false off x86_64");
    }
    #[cfg(target_arch = "x86_64")]
    {
        let (bh, t, dh) = validate(q, k, v)?;
        let mut out = NdArray::zeros(&[bh, t, dh]);
        if out.data().is_empty() {
            return Ok(out);
        }
        let (qd, kd, vd) = (q.data(), k.data(), v.data());
        let tl = Tiling::new(t, dh);
        // The relaxed GEMM core always packs (serving dims are model
        // dims, always worth it — see matmul_fma_single).
        let mut kt_all = Buffer::zeroed(bh * tl.kt_len);
        for e in 0..bh {
            pack_bt_panels(
                &kd[e * t * dh..(e + 1) * t * dh],
                dh,
                t,
                &mut kt_all[e * tl.kt_len..(e + 1) * tl.kt_len],
            );
        }
        let kt_all = &kt_all[..];
        let row_cost = 2 * t * dh;
        let rows_per_chunk = if pool::should_parallelize(bh * t * row_cost, MATMUL_GRAIN) {
            (pool::grain(MATMUL_GRAIN) / row_cost.max(1)).clamp(1, bh * t)
        } else {
            bh * t
        };
        pool::for_each_chunk(out.data_mut(), rows_per_chunk * dh, |offset, chunk| {
            let mut scratch = Buffer::zeroed(MR * t);
            let row_first = offset / dh;
            let rows = chunk.len() / dh;
            let mut r = 0;
            while r < rows {
                let grow = row_first + r;
                let (e, i0) = (grow / t, grow % t);
                let mr = MR.min(rows - r).min(t - i0);
                let qe = &qd[e * t * dh..(e + 1) * t * dh];
                let ve = &vd[e * t * dh..(e + 1) * t * dh];
                let strip = &mut scratch[..mr * t];
                matmul_rows_relaxed(qe, &kt_all[e * tl.kt_len..(e + 1) * tl.kt_len], strip, i0, dh, t);
                for lr in 0..mr {
                    let srow = &mut strip[lr * t..(lr + 1) * t];
                    let orow = &mut chunk[(r + lr) * dh..(r + lr + 1) * dh];
                    // SAFETY: gated on runtime AVX2+FMA detection at entry.
                    unsafe {
                        online_softmax_row_avx2(srow, ve, orow, i0 + lr, scale, causal);
                    }
                }
                r += mr;
            }
        });
        Ok(out)
    }
}

/// The composed, materialized score path as one call: `matmul_nt → scale →
/// (add causal mask) → softmax_lastdim → (mul drop_mask) → matmul`, exactly
/// the op chain the seed tape executed. Anchors the bitwise property tests,
/// the `attn_probe` parity/perf gate, and the `attention_naive_256` bench
/// rows.
///
/// # Errors
/// Same shape contract as [`attention_fused`].
pub fn attention_reference(
    q: &NdArray,
    k: &NdArray,
    v: &NdArray,
    scale: f32,
    causal: bool,
    drop_mask: Option<&NdArray>,
) -> Result<NdArray> {
    let (bh, t, _) = validate(q, k, v)?;
    validate_mask(drop_mask, bh, t)?;
    let mut scores = crate::matmul::matmul_nt(q, k)?.scale(scale);
    if causal {
        let mask =
            NdArray::from_fn(&[t, t], |flat| if flat % t.max(1) > flat / t.max(1) { MASK_NEG } else { 0.0 });
        scores = scores.add(&mask);
    }
    let probs = scores.softmax_lastdim();
    let attn = match drop_mask {
        Some(m) => probs.mul(m),
        None => probs,
    };
    crate::matmul::matmul(&attn, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Prng;
    use crate::matmul::{matmul, matmul_nt, matmul_tn};
    use testkit::prop;

    /// The composed tape's backward chain, op for op, on plain arrays.
    fn reference_backward(
        q: &NdArray,
        k: &NdArray,
        v: &NdArray,
        g: &NdArray,
        scale: f32,
        causal: bool,
        drop_mask: Option<&NdArray>,
    ) -> (NdArray, NdArray, NdArray) {
        let t = q.shape()[1];
        let mut scores = matmul_nt(q, k).unwrap().scale(scale);
        if causal {
            let mask = NdArray::from_fn(&[t, t], |f| if f % t > f / t { MASK_NEG } else { 0.0 });
            scores = scores.add(&mask);
        }
        let p = scores.softmax_lastdim();
        let attn = match drop_mask {
            Some(m) => p.mul(m),
            None => p.clone(),
        };
        // Matmul backward: dAttn = g·vᵀ, dv = attnᵀ·g.
        let ga = matmul_nt(g, v).unwrap();
        let dv = matmul_tn(&attn, g).unwrap();
        // Dropout backward: gp = dAttn·mask.
        let gp = match drop_mask {
            Some(m) => ga.mul(m),
            None => ga,
        };
        // Softmax backward.
        let gs = gp.mul(&p);
        let dot = gs.sum_axis(2, true);
        let ds = p.mul(&gp.sub(&dot.broadcast_to(gp.shape()).unwrap()));
        // Scale backward, then MatmulNT backward: dq = gn1·k, dk = gn1ᵀ·q.
        let gn1 = ds.scale(scale);
        let dq = matmul(&gn1, k).unwrap();
        let dk = matmul_tn(&gn1, q).unwrap();
        (dq, dk, dv)
    }

    fn assert_bits_eq(a: &NdArray, b: &NdArray, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
        for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at {i}: {x} vs {y}");
        }
    }

    fn drop_mask_for(rng: &mut Prng, bh: usize, t: usize, p: f32) -> NdArray {
        let keep = 1.0 - p;
        NdArray::from_fn(&[bh, t, t], |_| if rng.bernoulli(keep) { 1.0 / keep } else { 0.0 })
    }

    prop! {
        #![config(cases = 96)]

        fn fused_forward_matches_reference_bitwise(
            bh in 1usize..=6,
            t in 1usize..=33,
            dh in 1usize..=18,
            causal in 0usize..2,
            with_drop in 0usize..2,
            seed in 0u64..1_000_000,
        ) {
            let causal = causal == 1;
            let mut rng = Prng::new(seed | 1);
            let q = rng.randn(&[bh, t, dh]);
            let k = rng.randn(&[bh, t, dh]);
            let v = rng.randn(&[bh, t, dh]);
            let mask = (with_drop == 1).then(|| drop_mask_for(&mut rng, bh, t, 0.25));
            let scale = 1.0 / (dh as f32).sqrt();
            let want = attention_reference(&q, &k, &v, scale, causal, mask.as_ref()).unwrap();
            for threads in [1usize, 2, 4] {
                let got = pool::with_threads(threads, || {
                    pool::with_grain(1024, || {
                        attention_fused(&q, &k, &v, scale, causal, mask.as_ref()).unwrap()
                    })
                });
                assert_bits_eq(&got, &want, &format!("forward t={t} dh={dh} threads={threads}"));
            }
        }
    }

    prop! {
        #![config(cases = 64)]

        fn fused_backward_matches_composed_chain_bitwise(
            bh in 1usize..=5,
            t in 1usize..=21,
            dh in 1usize..=14,
            causal in 0usize..2,
            with_drop in 0usize..2,
            seed in 0u64..1_000_000,
        ) {
            let causal = causal == 1;
            let mut rng = Prng::new(seed | 1);
            let q = rng.randn(&[bh, t, dh]);
            let k = rng.randn(&[bh, t, dh]);
            let v = rng.randn(&[bh, t, dh]);
            let g = rng.randn(&[bh, t, dh]);
            let mask = (with_drop == 1).then(|| drop_mask_for(&mut rng, bh, t, 0.25));
            let scale = 1.0 / (dh as f32).sqrt();
            let (wq, wk, wv) = reference_backward(&q, &k, &v, &g, scale, causal, mask.as_ref());
            for threads in [1usize, 2, 4] {
                let (dq, dk, dv) = pool::with_threads(threads, || {
                    pool::with_grain(1024, || {
                        attention_fused_backward(&q, &k, &v, &g, scale, causal, mask.as_ref())
                            .unwrap()
                    })
                });
                let what = format!("t={t} dh={dh} threads={threads}");
                assert_bits_eq(&dq, &wq, &format!("dq {what}"));
                assert_bits_eq(&dk, &wk, &format!("dk {what}"));
                assert_bits_eq(&dv, &wv, &format!("dv {what}"));
            }
        }
    }

    #[test]
    fn relaxed_is_close_to_exact_and_thread_invariant() {
        let mut rng = Prng::new(7);
        for &(bh, t, dh, causal) in
            &[(2usize, 16usize, 8usize, false), (2, 33, 8, true), (1, 64, 16, false), (3, 7, 4, true)]
        {
            let q = rng.randn(&[bh, t, dh]);
            let k = rng.randn(&[bh, t, dh]);
            let v = rng.randn(&[bh, t, dh]);
            let scale = 1.0 / (dh as f32).sqrt();
            let exact = attention_fused(&q, &k, &v, scale, causal, None).unwrap();
            let relaxed = attention_fused_relaxed(&q, &k, &v, scale, causal).unwrap();
            let mut max_abs = 0.0f32;
            for (a, b) in exact.data().iter().zip(relaxed.data().iter()) {
                max_abs = max_abs.max((a - b).abs());
            }
            assert!(max_abs < 1e-4, "relaxed drift {max_abs} at t={t} dh={dh} causal={causal}");
            // Same bits at any thread count (one host, fixed tile walk).
            let r1 = pool::with_threads(1, || {
                pool::with_grain(512, || attention_fused_relaxed(&q, &k, &v, scale, causal).unwrap())
            });
            for threads in [2usize, 4] {
                let rn = pool::with_threads(threads, || {
                    pool::with_grain(512, || {
                        attention_fused_relaxed(&q, &k, &v, scale, causal).unwrap()
                    })
                });
                assert_bits_eq(&rn, &r1, &format!("relaxed threads={threads} t={t}"));
            }
        }
    }

    #[test]
    fn degenerate_shapes_are_handled() {
        let q = NdArray::zeros(&[2, 0, 4]);
        let out = attention_fused(&q, &q, &q, 1.0, true, None).unwrap();
        assert_eq!(out.shape(), [2, 0, 4]);
        let bad = NdArray::zeros(&[2, 3, 4]);
        let other = NdArray::zeros(&[2, 3, 5]);
        assert!(attention_fused(&bad, &other, &bad, 1.0, false, None).is_err());
        let mask = NdArray::zeros(&[2, 3, 4]);
        assert!(attention_fused(&bad, &bad, &bad, 1.0, false, Some(&mask)).is_err());
    }

    #[test]
    fn composed_attention_hook_scopes_to_closure() {
        assert!(!composed_attention_forced());
        with_composed_attention(|| {
            assert!(composed_attention_forced());
        });
        assert!(!composed_attention_forced());
    }
}
