//! Bench for the patching ablation behind Fig. 4's efficiency claim:
//! encoder forward cost vs patch length at fixed input length. Larger
//! patches → fewer tokens → quadratically cheaper attention. Runs on
//! `testkit::bench`; tune with the `TESTKIT_BENCH_*` env knobs.

use testkit::Bench;
use timedrl::{TimeDrl, TimeDrlConfig};
use timedrl_data::PatchConfig;
use timedrl_nn::Ctx;
use timedrl_tensor::Prng;

fn main() {
    let mut b = Bench::from_env("patching");
    let mut group = b.group("encoder_forward_by_patch_len");
    let input_len = 128usize;
    let mut rng = Prng::new(0);
    let x = rng.randn(&[8, input_len, 1]);

    for &p in &[2usize, 4, 8, 16, 32] {
        let mut cfg = TimeDrlConfig::forecasting(input_len);
        cfg.patch = PatchConfig::non_overlapping(p);
        let model = TimeDrl::new(cfg);
        let tokens = 1 + input_len / p;
        group.bench(format!("tokens/{tokens}"), || {
            model.encode(&x, &mut Ctx::eval()).z.to_array()
        });
    }
    group.finish();
}
