//! Criterion bench for the patching ablation behind Fig. 4's efficiency
//! claim: encoder forward cost vs patch length at fixed input length.
//! Larger patches → fewer tokens → quadratically cheaper attention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use timedrl::{TimeDrl, TimeDrlConfig};
use timedrl_data::PatchConfig;
use timedrl_nn::Ctx;
use timedrl_tensor::Prng;

fn bench_patch_lengths(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoder_forward_by_patch_len");
    let input_len = 128usize;
    let mut rng = Prng::new(0);
    let x = rng.randn(&[8, input_len, 1]);

    for &p in &[2usize, 4, 8, 16, 32] {
        let mut cfg = TimeDrlConfig::forecasting(input_len);
        cfg.patch = PatchConfig::non_overlapping(p);
        let model = TimeDrl::new(cfg);
        let tokens = 1 + input_len / p;
        group.bench_with_input(
            BenchmarkId::new("tokens", tokens),
            &tokens,
            |bench, _| {
                bench.iter(|| model.encode(&x, &mut Ctx::eval()).z.to_array());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_patch_lengths
}
criterion_main!(benches);
