//! Out-of-core shard-reader benchmark: windows/sec of the streaming
//! sharded path against the in-memory `sliding_windows` path, and the
//! peak-residency bound that justifies the whole layer (DESIGN.md §16).
//!
//! Writes `BENCH_shard.json` at the repository root (override with
//! `TIMEDRL_BENCH_OUT`): throughput of both paths across series lengths,
//! the sharded/in-memory cost ratio, and the peak resident bytes of the
//! sharded reader versus the full-series footprint — the latter must stay
//! bounded by one shard plus one window span regardless of series length,
//! which this binary asserts.

use testkit::{Bench, Json};
use timedrl_data::{sliding_windows, ShardWriter, ShardedDataset};
use timedrl_tensor::NdArray;

/// Window geometry shared by every series length.
const LOOKBACK: usize = 64;
const HORIZON: usize = 16;
const STRIDE: usize = 4;
/// Rows per shard: the out-of-core residency unit.
const ROWS_PER_SHARD: usize = 2048;
/// Series lengths swept (rows); the largest is many shards long.
const LENGTHS: [usize; 3] = [4_096, 16_384, 65_536];
const CHANNELS: usize = 4;

fn out_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("TIMEDRL_BENCH_OUT") {
        return p.into();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_shard.json")
}

fn series(t: usize) -> NdArray {
    NdArray::from_fn(&[t, CHANNELS], |i| (i as f32 * 0.013).sin() + (i as f32) * 1e-5)
}

fn main() {
    let mut b = Bench::from_env("shard");
    let mut results = Vec::new();
    let dir = std::env::temp_dir().join("timedrl_shard_bench");
    let _ = std::fs::remove_dir_all(&dir);

    for &t in &LENGTHS {
        let s = series(t);
        let sub = dir.join(format!("len{t}"));
        ShardWriter::new(ROWS_PER_SHARD).expect("writer").write(&s, &sub).expect("shards");
        let ds = ShardedDataset::open(&sub).expect("open");
        let n = ds.window_count(LOOKBACK, HORIZON, STRIDE);

        // In-memory reference: one bulk materialization.
        let mut group = b.group("in_memory");
        let mem_report = group.bench(format!("rows{t}"), || {
            let wf = sliding_windows(&s, LOOKBACK, HORIZON, STRIDE);
            wf.inputs.shape()[0]
        });
        group.finish();

        // Sharded streaming path, plus its peak-residency high-water mark.
        let mut peak_bytes = 0usize;
        let mut group = b.group("sharded_stream");
        let shard_report = group.bench(format!("rows{t}"), || {
            let mut iter = ds.windows(LOOKBACK, HORIZON, STRIDE).expect("plan");
            let mut count = 0usize;
            for w in iter.by_ref() {
                let (input, _target) = w.expect("window");
                count += usize::from(std::hint::black_box(&input).data()[0].is_finite());
            }
            peak_bytes = iter.peak_buffer_bytes();
            count
        });
        group.finish();

        let full_bytes = t * CHANNELS * std::mem::size_of::<f32>();
        let bound = (ROWS_PER_SHARD + LOOKBACK + HORIZON) * CHANNELS * std::mem::size_of::<f32>();
        assert!(
            peak_bytes <= bound,
            "rows {t}: peak resident {peak_bytes} B exceeds the one-shard bound {bound} B"
        );

        let mem_wps = n as f64 / mem_report.median;
        let shard_wps = n as f64 / shard_report.median;
        let ratio = mem_report.median / shard_report.median;
        println!(
            "rows {t:>6}: in-memory {:>10.0} w/s, sharded {:>10.0} w/s ({ratio:.2}x), \
             peak resident {peak_bytes} B vs full series {full_bytes} B",
            mem_wps, shard_wps,
        );
        results.push(Json::Obj(vec![
            ("rows".to_string(), Json::Num(t as f64)),
            ("windows".to_string(), Json::Num(n as f64)),
            ("in_memory_windows_per_s".to_string(), Json::Num(mem_wps)),
            ("sharded_windows_per_s".to_string(), Json::Num(shard_wps)),
            ("sharded_vs_in_memory".to_string(), Json::Num(ratio)),
            ("peak_resident_bytes".to_string(), Json::Num(peak_bytes as f64)),
            ("full_series_bytes".to_string(), Json::Num(full_bytes as f64)),
            ("samples".to_string(), Json::Num(shard_report.samples as f64)),
        ]));
    }
    let _ = std::fs::remove_dir_all(&dir);

    let doc = Json::Obj(vec![
        ("suite".to_string(), Json::Str("shard".to_string())),
        ("lookback".to_string(), Json::Num(LOOKBACK as f64)),
        ("horizon".to_string(), Json::Num(HORIZON as f64)),
        ("stride".to_string(), Json::Num(STRIDE as f64)),
        ("rows_per_shard".to_string(), Json::Num(ROWS_PER_SHARD as f64)),
        ("channels".to_string(), Json::Num(CHANNELS as f64)),
        ("results".to_string(), Json::Arr(results)),
    ]);
    let path = out_path();
    std::fs::write(&path, doc.to_string_pretty()).expect("write BENCH_shard.json");
    println!("\nwrote {}", path.display());
}
