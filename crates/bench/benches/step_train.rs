//! Training-step benchmark: wall-clock and steady-state heap allocations
//! of one whole-batch pre-training step (forward + backward + clip +
//! AdamW), the path the packed matmul microkernel and the tensor buffer
//! pool optimize (DESIGN.md §10).
//!
//! Writes a machine-readable baseline to `BENCH_step.json` at the
//! repository root (override with `TIMEDRL_BENCH_OUT`). Alongside the
//! usual median/min/p95 seconds it records `allocs_per_step`, measured at
//! steady state (after warm-up steps, so every pool bucket is populated) —
//! the same metric `ci.sh` gates via the `step_alloc_probe` binary.

use testkit::{Bench, Json};
use timedrl_bench::StepHarness;

fn out_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("TIMEDRL_BENCH_OUT") {
        return p.into();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_step.json")
}

fn result_obj(group: &str, id: &str, report: &testkit::bench::BenchReport) -> Vec<(String, Json)> {
    vec![
        ("group".to_string(), Json::Str(group.to_string())),
        ("id".to_string(), Json::Str(id.to_string())),
        ("median_s".to_string(), Json::Num(report.median)),
        ("min_s".to_string(), Json::Num(report.min)),
        ("p95_s".to_string(), Json::Num(report.p95)),
        ("samples".to_string(), Json::Num(report.samples as f64)),
    ]
}

fn main() {
    let mut b = Bench::from_env("step_train");
    let mut group = b.group("pretrain_step");
    let mut harness = StepHarness::new();
    // The group's own warm-up iterations put the pool at steady state
    // before any timed sample.
    let report = group.bench("whole_batch_b8_d16", || harness.step());
    group.finish();

    // Phase split: forward alone (graph built and dropped), then repeated
    // backward over one retained graph. Together they show which side of
    // the step the transpose-aware kernels are paying off on.
    let mut group = b.group("pretrain_phases");
    let fwd = group.bench("forward_b8_d16", || harness.forward_only());
    let loss = harness.build_loss();
    let bwd = group.bench("backward_b8_d16", || harness.backward_only(&loss));
    drop(loss);
    group.finish();

    // Allocation metric, measured after the timing loop: thousands of
    // steps in, every transient buffer should come from the pool.
    let allocs_per_step = harness.allocations_per_step(2, 8);
    println!("allocs/step (steady state): {allocs_per_step}");

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = testkit::pool::num_threads();

    let mut whole = result_obj("pretrain_step", "whole_batch_b8_d16", &report);
    whole.push(("allocs_per_step".to_string(), Json::Num(allocs_per_step as f64)));
    let doc = Json::Obj(vec![
        ("suite".to_string(), Json::Str("step_train".to_string())),
        ("host_cores".to_string(), Json::Num(host_cores as f64)),
        ("timedrl_threads".to_string(), Json::Num(threads as f64)),
        (
            "results".to_string(),
            Json::Arr(vec![
                Json::Obj(whole),
                Json::Obj(result_obj("pretrain_phases", "forward_b8_d16", &fwd)),
                Json::Obj(result_obj("pretrain_phases", "backward_b8_d16", &bwd)),
            ]),
        ),
    ]);
    let path = out_path();
    std::fs::write(&path, doc.to_string_pretty()).expect("write BENCH_step.json");
    println!("\nwrote {}", path.display());
}
