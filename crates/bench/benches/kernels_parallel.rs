//! Parallel-runtime benchmark: the same kernels as `kernels`, pinned to
//! explicit `testkit::pool` thread counts so the speedup of the chunked
//! fan-out is measurable and tracked over time.
//!
//! Besides the usual stdout report, this target writes a machine-readable
//! baseline to `BENCH_parallel.json` at the repository root (override the
//! path with `TIMEDRL_BENCH_OUT`). The file records the host's available
//! parallelism next to every sample: on a single-core host the pool
//! degrades to the serial path plus scheduling overhead, so thread-count
//! speedups are only meaningful where `host_cores > 1`.

use testkit::bench::BenchReport;
use testkit::pool;
use testkit::{Bench, Json};
use timedrl_nn::Conv1d;
use timedrl_tensor::{
    attention_fused, attention_reference, matmul, matmul_fma, matmul_nt, matmul_q8, matmul_tn,
    quantize_per_channel, Prng, Var,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

struct Record {
    group: String,
    id: String,
    threads: usize,
    report: BenchReport,
}

fn record(records: &mut Vec<Record>, group: &str, id: &str, threads: usize, report: BenchReport) {
    records.push(Record { group: group.to_string(), id: id.to_string(), threads, report });
}

fn bench_matmul_threads(b: &mut Bench, records: &mut Vec<Record>) {
    let mut group = b.group("matmul_256");
    let mut rng = Prng::new(0);
    let a = rng.randn(&[256, 256]);
    let bm = rng.randn(&[256, 256]);
    for &threads in &THREAD_COUNTS {
        let report =
            group.bench(format!("t{threads}"), || pool::with_threads(threads, || matmul(&a, &bm).unwrap()));
        record(records, "matmul_256", "256x256x256", threads, report);
    }
    group.finish();
}

/// The transpose-aware variants at the same scale as `matmul_256`: both
/// read their logically-transposed operand in place, so parity with the
/// plain product here means the backward pass pays no transpose tax.
fn bench_matmul_transposed_threads(b: &mut Bench, records: &mut Vec<Record>) {
    let mut rng = Prng::new(3);
    let a = rng.randn(&[256, 256]);
    let bm = rng.randn(&[256, 256]);

    let mut group = b.group("matmul_nt_256");
    for &threads in &THREAD_COUNTS {
        let report = group.bench(format!("t{threads}"), || {
            pool::with_threads(threads, || matmul_nt(&a, &bm).unwrap())
        });
        record(records, "matmul_nt_256", "256x256x256", threads, report);
    }
    group.finish();

    let mut group = b.group("matmul_tn_256");
    for &threads in &THREAD_COUNTS {
        let report = group.bench(format!("t{threads}"), || {
            pool::with_threads(threads, || matmul_tn(&a, &bm).unwrap())
        });
        record(records, "matmul_tn_256", "256x256x256", threads, report);
    }
    group.finish();
}

/// The relaxed-exactness serving kernels (DESIGN.md §15) at the same scale
/// as `matmul_256` — the acceptance gate compares `matmul_q8_256` t1 against
/// `matmul_256` t1 (≥2× single-thread inference GEMM throughput). Weights
/// are quantized *outside* the timed region, matching the serving scenario
/// where `quantize_per_channel` runs once at model-load time; dynamic
/// per-row activation quantization stays inside, as it does per request.
fn bench_relaxed_threads(b: &mut Bench, records: &mut Vec<Record>) {
    let mut rng = Prng::new(4);
    let a = rng.randn(&[256, 256]);
    let bm = rng.randn(&[256, 256]);
    let qb = quantize_per_channel(&bm).unwrap();

    let mut group = b.group("matmul_q8_256");
    for &threads in &THREAD_COUNTS {
        let report = group.bench(format!("t{threads}"), || {
            pool::with_threads(threads, || matmul_q8(&a, &qb).unwrap())
        });
        record(records, "matmul_q8_256", "256x256x256", threads, report);
    }
    group.finish();

    let mut group = b.group("matmul_fma_256");
    for &threads in &THREAD_COUNTS {
        let report = group.bench(format!("t{threads}"), || {
            pool::with_threads(threads, || matmul_fma(&a, &bm).unwrap())
        });
        record(records, "matmul_fma_256", "256x256x256", threads, report);
    }
    group.finish();
}

/// The fused tiled attention kernel (DESIGN.md §17) against the composed
/// chain it replaced (`matmul_nt → scale → mask → softmax → matmul`, which
/// materializes the `[B·H, T, T]` scores), at the serving-scale sequence
/// length T=256. `ci.sh`'s attention gate asserts `attention_fused_256` is
/// ≥1.5× `attention_naive_256` at equal thread counts.
fn bench_attention_threads(b: &mut Bench, records: &mut Vec<Record>) {
    let mut rng = Prng::new(5);
    let (bh, t, dh) = (8, 256, 16);
    let q = rng.randn(&[bh, t, dh]);
    let k = rng.randn(&[bh, t, dh]);
    let v = rng.randn(&[bh, t, dh]);
    let scale = 1.0 / (dh as f32).sqrt();

    let mut group = b.group("attention_fused_256");
    for &threads in &THREAD_COUNTS {
        let report = group.bench(format!("t{threads}"), || {
            pool::with_threads(threads, || attention_fused(&q, &k, &v, scale, true, None).unwrap())
        });
        record(records, "attention_fused_256", "8x256x16_causal", threads, report);
    }
    group.finish();

    let mut group = b.group("attention_naive_256");
    for &threads in &THREAD_COUNTS {
        let report = group.bench(format!("t{threads}"), || {
            pool::with_threads(threads, || {
                attention_reference(&q, &k, &v, scale, true, None).unwrap()
            })
        });
        record(records, "attention_naive_256", "8x256x16_causal", threads, report);
    }
    group.finish();
}

fn bench_conv1d_threads(b: &mut Bench, records: &mut Vec<Record>) {
    let mut group = b.group("conv1d_forward_256");
    let mut rng = Prng::new(1);
    let conv = Conv1d::new(32, 32, 3, 1, 1, 1, &mut rng);
    let x = Var::constant(rng.randn(&[8, 32, 256]));
    for &threads in &THREAD_COUNTS {
        let report = group.bench(format!("t{threads}"), || {
            pool::with_threads(threads, || conv.forward(&x).to_array())
        });
        record(records, "conv1d_forward_256", "8x32x256_k3", threads, report);
    }
    group.finish();
}

fn bench_elementwise_threads(b: &mut Bench, records: &mut Vec<Record>) {
    let mut group = b.group("map_1m");
    let mut rng = Prng::new(2);
    let a = rng.randn(&[1 << 20]);
    for &threads in &THREAD_COUNTS {
        let report = group.bench(format!("t{threads}"), || {
            pool::with_threads(threads, || a.map(|v| (v * 1.7).tanh()))
        });
        record(records, "map_1m", "tanh_1048576", threads, report);
    }
    group.finish();
}

/// Median-time speedup of each multi-thread row over its group's
/// single-thread row.
fn speedup_vs_serial(records: &[Record], r: &Record) -> Option<f64> {
    let serial = records
        .iter()
        .find(|s| s.group == r.group && s.id == r.id && s.threads == 1)?;
    (r.report.median > 0.0).then(|| serial.report.median / r.report.median)
}

fn out_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("TIMEDRL_BENCH_OUT") {
        return p.into();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json")
}

/// Detected SIMD features, recorded in the baseline so cross-host numbers
/// are interpretable: `matmul_fma_256` silently falls back to the exact
/// kernel without `fma`, and `matmul_q8_256` to its scalar core without
/// `avx2` — a reader comparing hosts needs to know which kernels ran.
fn cpu_features() -> Vec<Json> {
    let mut feats: Vec<&str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (name, have) in [
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
            ("avx512vl", std::arch::is_x86_feature_detected!("avx512vl")),
            ("avx512vnni", std::arch::is_x86_feature_detected!("avx512vnni")),
        ] {
            if have {
                feats.push(name);
            }
        }
    }
    feats.into_iter().map(|f| Json::Str(f.to_string())).collect()
}

fn main() {
    let mut b = Bench::from_env("kernels_parallel");
    let mut records = Vec::new();
    bench_matmul_threads(&mut b, &mut records);
    bench_matmul_transposed_threads(&mut b, &mut records);
    bench_relaxed_threads(&mut b, &mut records);
    bench_attention_threads(&mut b, &mut records);
    bench_conv1d_threads(&mut b, &mut records);
    bench_elementwise_threads(&mut b, &mut records);

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let results: Vec<Json> = records
        .iter()
        .map(|r| {
            let mut obj = vec![
                ("group".to_string(), Json::Str(r.group.clone())),
                ("id".to_string(), Json::Str(r.id.clone())),
                ("threads".to_string(), Json::Num(r.threads as f64)),
                ("median_s".to_string(), Json::Num(r.report.median)),
                ("min_s".to_string(), Json::Num(r.report.min)),
                ("p95_s".to_string(), Json::Num(r.report.p95)),
                ("samples".to_string(), Json::Num(r.report.samples as f64)),
            ];
            if let Some(s) = speedup_vs_serial(&records, r) {
                obj.push(("speedup_vs_1thread".to_string(), Json::Num(s)));
            }
            Json::Obj(obj)
        })
        .collect();
    let doc = Json::Obj(vec![
        ("suite".to_string(), Json::Str("kernels_parallel".to_string())),
        ("host_cores".to_string(), Json::Num(host_cores as f64)),
        ("cpu_features".to_string(), Json::Arr(cpu_features())),
        ("results".to_string(), Json::Arr(results)),
    ]);
    let path = out_path();
    std::fs::write(&path, doc.to_string_pretty()).expect("write BENCH_parallel.json");
    println!("\nwrote {}", path.display());
}
