//! Streaming-path benchmark: per-tick cost of the incremental engine
//! against a naive consumer that re-encodes the full window from
//! scratch every tick (DESIGN.md §14).
//!
//! Writes `BENCH_stream.json` at the repository root (override with
//! `TIMEDRL_BENCH_OUT`): per-tick latency of both paths across window
//! lengths, the streaming/naive speedup — which must be ≥ 2× at the
//! largest window and *grows* with the window, since the engine's
//! between-hop tick cost is O(C) while the naive path re-runs the
//! transformer on every tick — and steady-state allocations per tick,
//! gated to zero by `ci.sh` via the `stream_probe` binary.

use testkit::alloc::count_allocations;
use testkit::{Bench, Json};
use timedrl::{decode_model_export, encode_model_export, TimeDrl, TimeDrlConfig};
use timedrl_data::PatchConfig;
use timedrl_serve::CompiledModel;
use timedrl_stream::{SlidingWindow, StreamingEncoder};
use timedrl_tensor::Prng;

/// Patch geometry shared by every window length (stride = hop period).
const PATCH: usize = 8;
/// Window lengths swept; the acceptance gate reads the largest.
const WINDOWS: [usize; 4] = [32, 64, 128, 256];
/// Ticks per bench iteration — one full hop period, so the streaming
/// iteration pays exactly one encode plus `PATCH − 1` O(C) buffer ticks.
const TICKS_PER_ITER: usize = PATCH;

fn out_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("TIMEDRL_BENCH_OUT") {
        return p.into();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_stream.json")
}

fn model(input_len: usize) -> TimeDrl {
    let mut cfg = TimeDrlConfig::forecasting(input_len);
    cfg.patch = PatchConfig::non_overlapping(PATCH);
    cfg.d_model = 32;
    cfg.n_heads = 4;
    cfg.d_ff = 64;
    cfg.n_layers = 2;
    cfg.seed = 47;
    TimeDrl::new(cfg)
}

fn compile(model: &TimeDrl) -> CompiledModel {
    let payload = encode_model_export(model);
    CompiledModel::from_export(decode_model_export(&payload[4..]).unwrap())
        .expect("transformer backbone compiles")
}

/// Endless deterministic tick source: cycles a precomputed buffer.
struct TickSource {
    data: Vec<f32>,
    next: usize,
}

impl TickSource {
    fn new(seed: u64) -> Self {
        Self { data: Prng::new(seed).randn(&[4096, 1]).data().to_vec(), next: 0 }
    }

    fn next(&mut self) -> f32 {
        let x = self.data[self.next];
        self.next = (self.next + 1) % self.data.len();
        x
    }
}

/// One naive tick: re-encode the materialized window from scratch and
/// score it, exactly what a consumer without the engine would run.
fn naive_tick(window: &SlidingWindow, compiled: &CompiledModel, patch: &PatchConfig) -> f32 {
    let t = window.capacity();
    let x = window.materialize().reshape(&[1, t, 1]).expect("window");
    let emb = compiled.embed(&x).expect("embed");
    let recon = compiled.reconstruct(&emb.z_t).expect("reconstruct");
    // Score against the normalized patched input, as the batch anomaly
    // path does.
    let normed = timedrl_data::instance_normalize(&x).expect("normalize");
    let patched = timedrl_data::patch_batch(&normed, patch);
    let errors = timedrl::patch_errors(&recon, &patched);
    timedrl::window_score(errors.data())
}

fn main() {
    let mut b = Bench::from_env("stream");
    let mut results = Vec::new();
    let mut largest_speedup = 0.0f64;

    for &t in &WINDOWS {
        let m = model(t);
        let compiled = compile(&m);

        // Streaming path: the engine encodes once per hop and buffers
        // the other ticks.
        let mut engine = StreamingEncoder::new(compile(&m), 4).expect("engine");
        engine.warm();
        let mut src = TickSource::new(t as u64);
        for _ in 0..(t + 4 * PATCH) {
            let s = [src.next()];
            if let Some(u) = engine.push(&s).expect("push") {
                let _ = engine.reconstruction_error(&u).expect("score");
            }
        }
        let mut group = b.group("streaming_tick");
        let stream_report = group.bench(format!("window{t}"), || {
            let mut last = 0.0f32;
            for _ in 0..TICKS_PER_ITER {
                let s = [src.next()];
                if let Some(u) = engine.push(&s).expect("push") {
                    let (_, score) = engine.reconstruction_error(&u).expect("score");
                    last = score;
                }
            }
            last
        });
        group.finish();
        let (_, allocs) = count_allocations(|| {
            for _ in 0..TICKS_PER_ITER {
                let s = [src.next()];
                if let Some(u) = engine.push(&s).expect("push") {
                    let _ = engine.reconstruction_error(&u).expect("score");
                }
            }
        });

        // Naive path: full re-encode of the window on every tick.
        let mut window = SlidingWindow::new(t, 1).expect("window");
        let mut src = TickSource::new(t as u64);
        for _ in 0..t {
            window.push(&[src.next()]);
        }
        compiled.warm(1);
        let patch = PatchConfig::non_overlapping(PATCH);
        let _ = naive_tick(&window, &compiled, &patch);
        let mut group = b.group("naive_tick");
        let naive_report = group.bench(format!("window{t}"), || {
            let mut last = 0.0f32;
            for _ in 0..TICKS_PER_ITER {
                window.push(&[src.next()]);
                last = naive_tick(&window, &compiled, &patch);
            }
            last
        });
        group.finish();

        let stream_tick_s = stream_report.median / TICKS_PER_ITER as f64;
        let naive_tick_s = naive_report.median / TICKS_PER_ITER as f64;
        let speedup = naive_tick_s / stream_tick_s;
        largest_speedup = speedup; // WINDOWS is sorted; the last wins.
        println!(
            "window {t:>4}: streaming {:>8.2} us/tick, naive {:>8.2} us/tick, speedup {speedup:.1}x, allocs/tick {allocs}",
            stream_tick_s * 1e6,
            naive_tick_s * 1e6,
        );
        results.push(Json::Obj(vec![
            ("window_len".to_string(), Json::Num(t as f64)),
            ("streaming_tick_s".to_string(), Json::Num(stream_tick_s)),
            ("naive_tick_s".to_string(), Json::Num(naive_tick_s)),
            ("speedup".to_string(), Json::Num(speedup)),
            ("allocs_per_tick_span".to_string(), Json::Num(allocs as f64)),
            ("samples".to_string(), Json::Num(stream_report.samples as f64)),
        ]));
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = testkit::pool::num_threads();
    let doc = Json::Obj(vec![
        ("suite".to_string(), Json::Str("stream".to_string())),
        ("host_cores".to_string(), Json::Num(host_cores as f64)),
        ("timedrl_threads".to_string(), Json::Num(threads as f64)),
        ("patch_stride".to_string(), Json::Num(PATCH as f64)),
        ("speedup_at_largest_window".to_string(), Json::Num(largest_speedup)),
        ("results".to_string(), Json::Arr(results)),
    ]);
    let path = out_path();
    std::fs::write(&path, doc.to_string_pretty()).expect("write BENCH_stream.json");
    println!("\nwrote {}", path.display());
    assert!(
        largest_speedup >= 2.0,
        "streaming must be at least 2x the naive path at the largest window, got {largest_speedup:.2}x"
    );
}
