//! Serving-path benchmark: request latency and throughput of the
//! tape-free compiled forward (`timedrl-serve`), against the eval-mode
//! `Var`-tape forward it replaces (DESIGN.md §13).
//!
//! Writes `BENCH_serve.json` at the repository root (override with
//! `TIMEDRL_BENCH_OUT`): per-batch p50/p95 latency, derived
//! embeddings/sec, and steady-state `allocs_per_request` — the metric
//! `ci.sh` gates to zero via the `serve_probe` binary.

use testkit::alloc::count_allocations;
use testkit::{Bench, Json};
use timedrl::{decode_model_export, encode_model_export, TimeDrl, TimeDrlConfig};
use timedrl_data::PatchConfig;
use timedrl_nn::Ctx;
use timedrl_serve::CompiledModel;
use timedrl_tensor::{NdArray, Prng};

fn out_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("TIMEDRL_BENCH_OUT") {
        return p.into();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

/// Serving-sized model: one ETT-style forecasting window geometry.
fn model() -> TimeDrl {
    let mut cfg = TimeDrlConfig::forecasting(64);
    cfg.patch = PatchConfig::non_overlapping(8);
    cfg.d_model = 32;
    cfg.n_heads = 4;
    cfg.d_ff = 64;
    cfg.n_layers = 2;
    cfg.seed = 47;
    TimeDrl::new(cfg)
}

fn result_obj(
    group: &str,
    id: &str,
    batch: usize,
    report: &testkit::bench::BenchReport,
) -> Vec<(String, Json)> {
    vec![
        ("group".to_string(), Json::Str(group.to_string())),
        ("id".to_string(), Json::Str(id.to_string())),
        ("p50_latency_s".to_string(), Json::Num(report.median)),
        ("p95_latency_s".to_string(), Json::Num(report.p95)),
        ("min_s".to_string(), Json::Num(report.min)),
        ("embeddings_per_sec".to_string(), Json::Num(batch as f64 / report.median)),
        ("samples".to_string(), Json::Num(report.samples as f64)),
    ]
}

fn main() {
    let model = model();
    let payload = encode_model_export(&model);
    let compiled = CompiledModel::from_export(decode_model_export(&payload[4..]).unwrap())
        .expect("transformer backbone compiles");

    let mut b = Bench::from_env("embed_serve");
    let mut results = Vec::new();

    let mut group = b.group("compiled_embed");
    for batch in [1usize, 16, 64] {
        let x = Prng::new(batch as u64).randn(&[batch, 64, 1]);
        compiled.warm(batch);
        let report = group.bench(&format!("batch{batch}"), || {
            compiled.embed(&x).expect("valid request")
        });
        results.push(Json::Obj(result_obj(
            "compiled_embed",
            &format!("batch{batch}"),
            batch,
            &report,
        )));
    }
    group.finish();

    // The tape path at the same batch, for the compiled-vs-tape ratio.
    let mut group = b.group("tape_embed");
    let x16 = Prng::new(16).randn(&[16, 64, 1]);
    let tape = group.bench("batch16", || {
        let mut ctx = Ctx::eval();
        let enc = model.encode(&x16, &mut ctx);
        (enc.instance(model.config().pooling).to_array(), enc.timestamps().to_array())
    });
    results.push(Json::Obj(result_obj("tape_embed", "batch16", 16, &tape)));
    group.finish();

    // Steady-state allocation metric at batch 1 (the latency-critical
    // request size) — gated to zero by ci.sh.
    let x1: NdArray = Prng::new(1).randn(&[1, 64, 1]);
    compiled.warm(1);
    compiled.warm(1);
    let (_, allocs_per_request) = count_allocations(|| compiled.embed(&x1));
    println!("allocs/request (steady state): {allocs_per_request}");

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = testkit::pool::num_threads();
    let doc = Json::Obj(vec![
        ("suite".to_string(), Json::Str("embed_serve".to_string())),
        ("host_cores".to_string(), Json::Num(host_cores as f64)),
        ("timedrl_threads".to_string(), Json::Num(threads as f64)),
        ("allocs_per_request".to_string(), Json::Num(allocs_per_request as f64)),
        ("results".to_string(), Json::Arr(results)),
    ]);
    let path = out_path();
    std::fs::write(&path, doc.to_string_pretty()).expect("write BENCH_serve.json");
    println!("\nwrote {}", path.display());
}
