//! Macro-benchmark: one pre-training epoch per method — the Fig. 4
//! comparison as a sampled benchmark (the `fig4_pretrain_time` binary
//! reports single-shot wall-clock at T = 512; this bench uses T = 64 so
//! many samples are affordable). Runs on `testkit::bench`; tune with the
//! `TESTKIT_BENCH_*` env knobs.

use testkit::Bench;
use timedrl::{pretrain, TimeDrl, TimeDrlConfig};
use timedrl_baselines::{BaselineConfig, SimTs, SslMethod, Ts2Vec};
use timedrl_tensor::{NdArray, Prng};

fn windows(n: usize, t: usize) -> NdArray {
    let mut rng = Prng::new(0);
    NdArray::from_fn(&[n, t, 1], |flat| {
        ((flat % t) as f32 * 0.3).sin() + rng.normal_with(0.0, 0.1)
    })
}

fn main() {
    let mut b = Bench::from_env("pretraining");
    let mut group = b.group("pretrain_one_epoch");
    let w = windows(64, 64);

    group.bench_function("TimeDRL", || {
        let mut cfg = TimeDrlConfig::forecasting(64);
        cfg.epochs = 1;
        let model = TimeDrl::new(cfg);
        pretrain(&model, &w).expect("pre-training failed").final_loss()
    });

    group.bench_function("SimTS", || {
        let cfg = BaselineConfig { epochs: 1, ..BaselineConfig::compact(64, 1) };
        SimTs::new(cfg).pretrain(&w)
    });

    group.bench_function("TS2Vec", || {
        let cfg = BaselineConfig { epochs: 1, ..BaselineConfig::compact(64, 1) };
        Ts2Vec::new(cfg).pretrain(&w)
    });

    group.finish();
}
