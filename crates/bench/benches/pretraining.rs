//! Criterion macro-benchmark: one pre-training epoch per method — the
//! Fig. 4 comparison as a statistically sampled benchmark (the
//! `fig4_pretrain_time` binary reports single-shot wall-clock at T = 512;
//! this bench uses T = 64 so criterion can afford many samples).

use criterion::{criterion_group, criterion_main, Criterion};
use timedrl::{pretrain, TimeDrl, TimeDrlConfig};
use timedrl_baselines::{BaselineConfig, SimTs, SslMethod, Ts2Vec};
use timedrl_tensor::{NdArray, Prng};

fn windows(n: usize, t: usize) -> NdArray {
    let mut rng = Prng::new(0);
    NdArray::from_fn(&[n, t, 1], |flat| {
        ((flat % t) as f32 * 0.3).sin() + rng.normal_with(0.0, 0.1)
    })
}

fn bench_pretrain_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pretrain_one_epoch");
    let w = windows(64, 64);

    group.bench_function("TimeDRL", |b| {
        b.iter(|| {
            let mut cfg = TimeDrlConfig::forecasting(64);
            cfg.epochs = 1;
            let model = TimeDrl::new(cfg);
            pretrain(&model, &w).final_loss()
        });
    });

    group.bench_function("SimTS", |b| {
        b.iter(|| {
            let cfg = BaselineConfig { epochs: 1, ..BaselineConfig::compact(64, 1) };
            SimTs::new(cfg).pretrain(&w)
        });
    });

    group.bench_function("TS2Vec", |b| {
        b.iter(|| {
            let cfg = BaselineConfig { epochs: 1, ..BaselineConfig::compact(64, 1) };
            Ts2Vec::new(cfg).pretrain(&w)
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pretrain_epoch
}
criterion_main!(benches);
