//! Criterion micro-benchmarks for the numeric substrate: matmul, conv1d,
//! attention-block forward/backward — the kernels every experiment spends
//! its time in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use timedrl_nn::{Conv1d, Ctx, Module, TransformerConfig, TransformerEncoder};
use timedrl_tensor::{matmul, Prng, Var};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = Prng::new(0);
    for &n in &[32usize, 64, 128] {
        let a = rng.randn(&[n, n]);
        let b = rng.randn(&[n, n]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(&a, &b).unwrap());
        });
    }
    group.finish();
}

fn bench_conv1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv1d_forward");
    let mut rng = Prng::new(1);
    for &t in &[64usize, 256] {
        let conv = Conv1d::new(32, 32, 3, 1, 1, 1, &mut rng);
        let x = Var::constant(rng.randn(&[8, 32, t]));
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |bench, _| {
            bench.iter(|| conv.forward(&x).to_array());
        });
    }
    group.finish();
}

fn bench_transformer_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("transformer_forward");
    let mut rng = Prng::new(2);
    let cfg = TransformerConfig { d_model: 32, n_heads: 4, d_ff: 64, n_layers: 2, dropout: 0.0, causal: false };
    let enc = TransformerEncoder::new(&cfg, &mut rng);
    for &tokens in &[9usize, 33, 65] {
        let x = Var::constant(rng.randn(&[8, tokens, 32]));
        group.bench_with_input(BenchmarkId::from_parameter(tokens), &tokens, |bench, _| {
            bench.iter(|| enc.forward(&x, &mut Ctx::eval()).to_array());
        });
    }
    group.finish();
}

fn bench_backward_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("transformer_train_step");
    let mut rng = Prng::new(3);
    let cfg = TransformerConfig { d_model: 32, n_heads: 4, d_ff: 64, n_layers: 2, dropout: 0.1, causal: false };
    let enc = TransformerEncoder::new(&cfg, &mut rng);
    let x = Var::constant(rng.randn(&[8, 9, 32]));
    group.bench_function("forward_backward", |bench| {
        bench.iter(|| {
            for p in enc.parameters() {
                p.zero_grad();
            }
            let loss = enc.forward(&x, &mut Ctx::train(0)).powf(2.0).mean();
            loss.backward();
            loss.item()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul, bench_conv1d, bench_transformer_block, bench_backward_pass
}
criterion_main!(benches);
