//! Micro-benchmarks for the numeric substrate: matmul, conv1d,
//! attention-block forward/backward — the kernels every experiment spends
//! its time in. Runs on `testkit::bench` (wall-clock, median/p95); tune
//! with `TESTKIT_BENCH_SAMPLES` / `TESTKIT_BENCH_WARMUP_MS` /
//! `TESTKIT_BENCH_SAMPLE_MS`.

use testkit::Bench;
use timedrl_nn::{Conv1d, Ctx, Module, TransformerConfig, TransformerEncoder};
use timedrl_tensor::{matmul, Prng, Var};

fn bench_matmul(b: &mut Bench) {
    let mut group = b.group("matmul");
    let mut rng = Prng::new(0);
    for &n in &[32usize, 64, 128] {
        let a = rng.randn(&[n, n]);
        let b = rng.randn(&[n, n]);
        group.bench(n, || matmul(&a, &b).unwrap());
    }
    group.finish();
}

fn bench_conv1d(b: &mut Bench) {
    let mut group = b.group("conv1d_forward");
    let mut rng = Prng::new(1);
    for &t in &[64usize, 256] {
        let conv = Conv1d::new(32, 32, 3, 1, 1, 1, &mut rng);
        let x = Var::constant(rng.randn(&[8, 32, t]));
        group.bench(t, || conv.forward(&x).to_array());
    }
    group.finish();
}

fn bench_transformer_block(b: &mut Bench) {
    let mut group = b.group("transformer_forward");
    let mut rng = Prng::new(2);
    let cfg =
        TransformerConfig { d_model: 32, n_heads: 4, d_ff: 64, n_layers: 2, dropout: 0.0, causal: false };
    let enc = TransformerEncoder::new(&cfg, &mut rng);
    for &tokens in &[9usize, 33, 65] {
        let x = Var::constant(rng.randn(&[8, tokens, 32]));
        group.bench(tokens, || enc.forward(&x, &mut Ctx::eval()).to_array());
    }
    group.finish();
}

fn bench_backward_pass(b: &mut Bench) {
    let mut group = b.group("transformer_train_step");
    let mut rng = Prng::new(3);
    let cfg =
        TransformerConfig { d_model: 32, n_heads: 4, d_ff: 64, n_layers: 2, dropout: 0.1, causal: false };
    let enc = TransformerEncoder::new(&cfg, &mut rng);
    let x = Var::constant(rng.randn(&[8, 9, 32]));
    group.bench_function("forward_backward", || {
        for p in enc.parameters() {
            p.zero_grad();
        }
        let loss = enc.forward(&x, &mut Ctx::train(0)).powf(2.0).mean();
        loss.backward();
        loss.item()
    });
    group.finish();
}

fn main() {
    let mut b = Bench::from_env("kernels");
    bench_matmul(&mut b);
    bench_conv1d(&mut b);
    bench_transformer_block(&mut b);
    bench_backward_pass(&mut b);
}
