//! Smoke tests over the experiment harness: every table/figure pathway
//! runs end-to-end at miniature scale and produces sane, finite numbers.

use timedrl_baselines::{
    classification_baselines, forecast_e2e_baselines, forecast_ssl_baselines,
};
use timedrl_bench::registry::{classify_by_name, classify_registry, forecast_by_name, forecast_registry};
use timedrl_bench::runners::{
    baseline_classify_config, baseline_forecast_config, forecast_data, run_e2e_forecast,
    run_ssl_classification, run_ssl_forecast, run_timedrl_classification, run_timedrl_forecast,
};
use timedrl_bench::Scale;
use timedrl_tensor::Prng;

#[test]
fn registries_are_complete_and_scaled() {
    let f = forecast_registry(Scale::Quick);
    assert_eq!(f.iter().map(|d| d.name).collect::<Vec<_>>(),
        vec!["ETTh1", "ETTh2", "ETTm1", "ETTm2", "Exchange", "Weather"]);
    for ds in &f {
        assert_eq!(ds.timesteps(), Scale::Quick.series_len());
    }
    let c = classify_registry(Scale::Quick);
    assert_eq!(c.len(), 5);
}

#[test]
fn table3_cell_every_ssl_method() {
    // One (dataset, horizon) cell through all four SSL forecasting
    // baselines plus TimeDRL: exercised exactly as table3 does.
    let ds = forecast_by_name("ETTh1", Scale::Quick);
    let data = forecast_data(&ds, 24, Scale::Quick);
    let t = run_timedrl_forecast(&data, Scale::Quick, 0);
    assert!(t.mse.is_finite() && t.mae.is_finite());
    let cfg = baseline_forecast_config(Scale::Quick, 0);
    for mut m in forecast_ssl_baselines(&cfg) {
        let r = run_ssl_forecast(m.as_mut(), &data);
        assert!(r.mse.is_finite() && r.mse > 0.0, "{} broken", m.name());
    }
}

#[test]
fn table3_cell_every_e2e_method() {
    let ds = forecast_by_name("Exchange", Scale::Quick);
    let data = forecast_data(&ds, 24, Scale::Quick);
    let cfg = baseline_forecast_config(Scale::Quick, 0);
    for mut m in forecast_e2e_baselines(&cfg, 24) {
        let r = run_e2e_forecast(m.as_mut(), &data);
        assert!(r.mse.is_finite(), "{} broken", m.name());
    }
}

#[test]
fn table5_cell_every_classifier() {
    let ds = classify_by_name("PenDigits", Scale::Quick);
    let (train, test) = ds.train_test_split(0.6, &mut Prng::new(0)).unwrap();
    let t = run_timedrl_classification(&train, &test, Scale::Quick, 0);
    assert!(t.accuracy > 0.0);
    let cfg = baseline_classify_config(&ds, Scale::Quick, 0);
    for mut m in classification_baselines(&cfg, ds.n_classes) {
        let r = run_ssl_classification(m.as_mut(), &train, &test, Scale::Quick, 0);
        assert!(
            (0.0..=1.0).contains(&r.accuracy),
            "{} out of range: {}",
            m.name(),
            r.accuracy
        );
    }
}

#[test]
fn univariate_view_matches_table4_geometry() {
    for ds in forecast_registry(Scale::Quick) {
        let uni = ds.univariate();
        assert_eq!(uni.features(), 1, "{}", ds.name);
        let data = forecast_data(&uni, 24, Scale::Quick);
        // One channel: train fold count equals window count.
        assert_eq!(data.train_inputs.shape()[2], 1);
    }
}

#[test]
fn experiment_scale_fits_every_table_geometry() {
    // The ablation tables run horizon 168 at Full scale: the train split
    // must yield windows for it.
    let full_train = Scale::Full.series_len() * 6 / 10;
    assert!(full_train > Scale::Full.lookback() + 168 + Scale::Full.window_stride());
}
