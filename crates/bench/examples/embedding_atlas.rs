//! Embedding atlas: pre-train TimeDRL on synthetic HAR, project the [CLS]
//! instance embeddings to 2-D with PCA, and render the class structure as
//! a terminal scatter chart — a quick qualitative check that the
//! instance-contrastive task produced class-separable geometry without
//! ever seeing a label.
//!
//! ```text
//! cargo run -p timedrl-bench --release --example embedding_atlas
//! ```

use timedrl::{pretrain, TimeDrl, TimeDrlConfig};
use timedrl_bench::{scatter_chart, Series};
use timedrl_data::synth::classify::har;
use timedrl_eval::Pca;
use timedrl_tensor::Prng;

fn main() {
    let ds = har(240, 3);
    let mut cfg = TimeDrlConfig::classification(ds.sample_len(), ds.features());
    cfg.epochs = 5;
    let model = TimeDrl::new(cfg);
    println!("pre-training on {} unlabeled HAR samples...", ds.len());
    pretrain(&model, &ds.to_batch()).expect("pre-training failed");

    let z = model.embed_instances(&ds.to_batch());
    let pca = Pca::fit(&z, 2, &mut Prng::new(0));
    let xy = pca.transform(&z);
    println!(
        "PCA explained variance: {:?}",
        pca.explained_variance().iter().map(|v| format!("{v:.2}")).collect::<Vec<_>>()
    );

    // One series per activity class (labels used only for coloring the
    // plot, never for training).
    let names = ["walk", "upstairs", "downstairs", "sit", "stand", "lay"];
    let series: Vec<Series> = (0..ds.n_classes)
        .map(|class| Series {
            label: names[class].to_string(),
            points: ds
                .labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == class)
                .map(|(i, _)| (xy.at(&[i, 0]), xy.at(&[i, 1])))
                .collect(),
        })
        .collect();
    println!("{}", scatter_chart(&series, 72, 22, "HAR [CLS] embeddings, PCA projection"));
    println!("Expected: active classes (walk/up/down) separate from static ones (sit/stand/lay).");
}
