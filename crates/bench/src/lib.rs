//! # timedrl-bench
//!
//! The experiment harness: shared scaffolding for the per-table/per-figure
//! binaries in `src/bin/` (scaled-down dataset registry, method runners,
//! table formatting, JSON result output) plus `testkit::bench` wall-clock
//! benches in `benches/`.
//!
//! Every binary accepts `--quick` for a smoke-test scale (seconds) and
//! defaults to the "experiment" scale documented in EXPERIMENTS.md
//! (minutes). The absolute numbers differ from the paper (CPU-scale models
//! on synthetic data; DESIGN.md §2); the *comparisons* are the
//! reproduction target.

#![warn(missing_docs)]

pub mod plot;
pub mod registry;
pub mod runners;
pub mod scale;
pub mod step;
pub mod table;

pub use plot::{line_chart, scatter_chart, Series};
pub use step::StepHarness;
pub use registry::{classify_registry, forecast_registry};
pub use runners::{
    run_e2e_forecast, run_ssl_classification, run_ssl_forecast, run_timedrl_classification,
    run_timedrl_forecast,
};
pub use scale::Scale;
pub use table::{format_row, ResultSink};
