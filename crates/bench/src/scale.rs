//! Experiment scale presets.
//!
//! The paper evaluates on a GPU at full dataset scale; this reproduction
//! runs every experiment on CPU. [`Scale`] maps the paper's geometry onto
//! tractable sizes while preserving the structure of each comparison.
//! EXPERIMENTS.md documents the mapping next to each table.

/// Scale preset for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale: seconds per experiment; used by CI tests.
    Quick,
    /// Experiment scale: the default for regenerating EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Parses `--quick` from process args.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Series length for forecasting datasets.
    pub fn series_len(&self) -> usize {
        match self {
            Scale::Quick => 800,
            Scale::Full => 3000,
        }
    }

    /// Sample count for classification datasets.
    pub fn n_samples(&self) -> usize {
        match self {
            Scale::Quick => 90,
            Scale::Full => 300,
        }
    }

    /// Pre-training epochs.
    pub fn epochs(&self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Full => 3,
        }
    }

    /// Lookback window for forecasting.
    pub fn lookback(&self) -> usize {
        64
    }

    /// Window stride used when extracting forecasting windows.
    pub fn window_stride(&self) -> usize {
        match self {
            Scale::Quick => 32,
            Scale::Full => 16,
        }
    }

    /// The forecast-horizon grid, scaled from the paper's
    /// `{24, 48, 168, 336, 720}`: the shortest horizons are kept verbatim
    /// and the long tail is compressed to fit the reduced series length.
    pub fn horizons(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![24],
            Scale::Full => vec![24, 96, 168],
        }
    }

    /// Label fractions for the Fig. 5 semi-supervised sweep.
    pub fn label_fractions(&self) -> Vec<f32> {
        match self {
            Scale::Quick => vec![0.1, 1.0],
            Scale::Full => vec![0.1, 0.25, 0.5, 1.0],
        }
    }

    /// λ grid for the Fig. 6 sensitivity sweep.
    pub fn lambda_grid(&self) -> Vec<f32> {
        match self {
            Scale::Quick => vec![0.001, 1.0, 1000.0],
            Scale::Full => vec![0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        assert!(Scale::Quick.series_len() < Scale::Full.series_len());
        assert!(Scale::Quick.n_samples() < Scale::Full.n_samples());
        assert!(Scale::Quick.epochs() <= Scale::Full.epochs());
        assert!(Scale::Quick.horizons().len() < Scale::Full.horizons().len());
    }

    #[test]
    fn geometry_is_consistent() {
        for scale in [Scale::Quick, Scale::Full] {
            for h in scale.horizons() {
                // Train split (60%) must fit lookback + horizon windows.
                assert!(
                    scale.series_len() * 6 / 10 > scale.lookback() + h + scale.window_stride(),
                    "horizon {h} does not fit at {scale:?}"
                );
            }
        }
    }
}
