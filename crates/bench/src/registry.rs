//! Dataset registry at experiment scale.

use crate::scale::Scale;
use timedrl_data::synth::{classify, forecast};
use timedrl_data::{ClassifyDataset, ForecastDataset};

/// Master seed shared by all experiments so every binary sees the same
/// synthetic data.
pub const DATA_SEED: u64 = 2024;

/// The six forecasting datasets of Table I at the given scale.
pub fn forecast_registry(scale: Scale) -> Vec<ForecastDataset> {
    let len = scale.series_len();
    vec![
        forecast::etth1(len, DATA_SEED),
        forecast::etth2(len, DATA_SEED),
        forecast::ettm1(len, DATA_SEED),
        forecast::ettm2(len, DATA_SEED),
        forecast::exchange(len, DATA_SEED),
        forecast::weather(len, DATA_SEED),
    ]
}

/// Looks up one forecasting dataset by its Table I name.
pub fn forecast_by_name(name: &str, scale: Scale) -> ForecastDataset {
    forecast_registry(scale)
        .into_iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown forecasting dataset {name}"))
}

/// The five classification datasets of Table II at the given scale.
pub fn classify_registry(scale: Scale) -> Vec<ClassifyDataset> {
    let n = scale.n_samples();
    vec![
        classify::finger_movements(n, DATA_SEED),
        classify::pendigits(n, DATA_SEED),
        classify::har(n, DATA_SEED),
        classify::epilepsy(n, DATA_SEED),
        classify::wisdm(n, DATA_SEED),
    ]
}

/// Looks up one classification dataset by its Table II name.
pub fn classify_by_name(name: &str, scale: Scale) -> ClassifyDataset {
    classify_registry(scale)
        .into_iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown classification dataset {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_cover_the_paper_tables() {
        let f = forecast_registry(Scale::Quick);
        assert_eq!(f.len(), 6);
        assert_eq!(f[0].name, "ETTh1");
        let c = classify_registry(Scale::Quick);
        assert_eq!(c.len(), 5);
        assert_eq!(c[0].name, "FingerMovements");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(forecast_by_name("Exchange", Scale::Quick).features(), 8);
        assert_eq!(classify_by_name("HAR", Scale::Quick).n_classes, 6);
    }

    #[test]
    #[should_panic(expected = "unknown forecasting dataset")]
    fn unknown_name_panics() {
        forecast_by_name("nope", Scale::Quick);
    }
}
