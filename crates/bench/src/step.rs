//! Shared harness for measuring one whole-batch pre-training step: the
//! hot path the buffer-pool and microkernel work targets (DESIGN.md §10).
//!
//! Both the `step_train` bench (wall-clock + allocations → BENCH_step.json)
//! and the `step_alloc_probe` binary (the `ci.sh` allocation-regression
//! gate) drive the same `StepHarness`, so the number CI gates on is the
//! number the bench reports.

use timedrl::{gather_rows, pretext_loss, TimeDrl, TimeDrlConfig};
use timedrl_nn::{clip_grad_norm, AdamW, Ctx, Module, Optimizer};
use timedrl_tensor::{NdArray, Prng, Var};

/// A live whole-batch training step, mirroring the `micro_batch: None`
/// path of `timedrl::trainer::pretrain_impl` exactly: zero_grad →
/// `pretext_loss` → backward → `clip_grad_norm(5.0)` → AdamW step.
pub struct StepHarness {
    model: TimeDrl,
    opt: AdamW,
    ctx: Ctx,
    aug_rng: Prng,
    batch: NdArray,
}

impl StepHarness {
    /// Builds the harness at the CI-probe scale: the same compact
    /// forecasting model `pretrain_checkpoint` trains, with one
    /// pre-gathered batch of sinusoid windows.
    pub fn new() -> Self {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.batch_size = 8;
        cfg.seed = 42;
        let model = TimeDrl::new(cfg.clone());
        let opt = AdamW::new(model.parameters(), cfg.lr, cfg.weight_decay);
        let windows = NdArray::from_fn(&[16, 32, 1], |flat| {
            let (i, step) = (flat / 32, flat % 32);
            (step as f32 * 0.4 + i as f32 * 0.3).sin()
        });
        let batch = gather_rows(&windows, &(0..cfg.batch_size).collect::<Vec<_>>());
        Self {
            model,
            opt,
            ctx: Ctx::train(cfg.seed ^ 0x5eed_0002),
            aug_rng: Prng::new(cfg.seed ^ 0x5eed_0003),
            batch,
        }
    }

    /// Runs one optimizer step and returns the joint pretext loss.
    pub fn step(&mut self) -> f32 {
        self.opt.zero_grad();
        let (loss, breakdown) =
            pretext_loss(&self.model, &self.batch, &mut self.ctx, &mut self.aug_rng);
        loss.backward();
        clip_grad_norm(self.opt.parameters(), 5.0);
        self.opt.step();
        breakdown.total
    }

    /// Runs the forward pass alone — builds the full pretext-loss graph
    /// and drops it without differentiating. Subtracting this from
    /// [`StepHarness::step`] isolates what backward + clip + AdamW cost.
    pub fn forward_only(&mut self) -> f32 {
        let (_loss, breakdown) =
            pretext_loss(&self.model, &self.batch, &mut self.ctx, &mut self.aug_rng);
        breakdown.total
    }

    /// Builds and returns one retained loss graph for repeated backward
    /// timing.
    pub fn build_loss(&mut self) -> Var {
        pretext_loss(&self.model, &self.batch, &mut self.ctx, &mut self.aug_rng).0
    }

    /// One backward pass over a retained graph. Gradients are zeroed first
    /// so every call does identical accumulation work.
    pub fn backward_only(&mut self, loss: &Var) {
        self.opt.zero_grad();
        loss.backward();
    }

    /// Steady-state heap allocations per step: runs `warmup` steps so every
    /// pool bucket is populated, then averages the allocation count of the
    /// next `measured` steps. With the buffer pool in place this should be
    /// near zero; the seed code allocated tens of thousands per step.
    pub fn allocations_per_step(&mut self, warmup: usize, measured: usize) -> u64 {
        for _ in 0..warmup {
            self.step();
        }
        let (_, allocs) = testkit::alloc::count_allocations(|| {
            for _ in 0..measured {
                self.step();
            }
        });
        allocs / measured.max(1) as u64
    }
}

impl Default for StepHarness {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_runs_and_loss_is_finite() {
        let mut h = StepHarness::new();
        let l0 = h.step();
        let l1 = h.step();
        assert!(l0.is_finite() && l1.is_finite());
    }

    #[test]
    fn steady_state_allocations_are_bounded() {
        let mut h = StepHarness::new();
        let per_step = h.allocations_per_step(2, 3);
        // The committed ci.sh budget is far tighter; this is a sanity
        // backstop so the metric itself cannot silently explode.
        assert!(per_step < 100_000, "allocations per step: {per_step}");
    }
}
