//! Shared method runners used by the experiment binaries: one call = one
//! (method, dataset, task) cell of a paper table.

use crate::scale::Scale;
use timedrl::{
    classification_linear_eval, forecast_linear_eval, prepare_forecast_data, ForecastData,
    ForecastEvalResult, ForecastTask, TimeDrlConfig,
};
use timedrl_baselines::{BaselineConfig, EndToEndForecaster, SslMethod};
use timedrl_data::{ClassifyDataset, ForecastDataset};
use timedrl_eval::{
    classification_report, mae, mse, ClassificationReport, LogisticConfig, LogisticProbe,
    RidgeProbe,
};

/// Ridge regularization used by every forecasting probe.
pub const RIDGE_LAMBDA: f32 = 1.0;

/// Logistic-probe settings used by every classification probe.
pub fn probe_config(scale: Scale) -> LogisticConfig {
    LogisticConfig {
        epochs: match scale {
            Scale::Quick => 80,
            Scale::Full => 200,
        },
        ..Default::default()
    }
}

/// TimeDRL forecasting configuration at experiment scale.
pub fn timedrl_forecast_config(scale: Scale, seed: u64) -> TimeDrlConfig {
    let mut cfg = TimeDrlConfig::forecasting(scale.lookback());
    cfg.epochs = scale.epochs();
    cfg.seed = seed;
    cfg
}

/// TimeDRL classification configuration at experiment scale.
pub fn timedrl_classify_config(ds: &ClassifyDataset, scale: Scale, seed: u64) -> TimeDrlConfig {
    let mut cfg = TimeDrlConfig::classification(ds.sample_len(), ds.features());
    cfg.epochs = scale.epochs();
    cfg.seed = seed;
    cfg
}

/// Baseline configuration matched to the forecasting geometry.
pub fn baseline_forecast_config(scale: Scale, seed: u64) -> BaselineConfig {
    let mut cfg = BaselineConfig::compact(scale.lookback(), 1);
    cfg.epochs = scale.epochs();
    cfg.seed = seed;
    cfg
}

/// Baseline configuration matched to a classification dataset.
pub fn baseline_classify_config(ds: &ClassifyDataset, scale: Scale, seed: u64) -> BaselineConfig {
    let mut cfg = BaselineConfig::compact(ds.sample_len(), ds.features());
    cfg.epochs = scale.epochs();
    cfg.seed = seed;
    cfg
}

/// Builds forecasting data for one (dataset, horizon) cell.
pub fn forecast_data(ds: &ForecastDataset, horizon: usize, scale: Scale) -> ForecastData {
    let task = ForecastTask { lookback: scale.lookback(), horizon, stride: scale.window_stride() };
    prepare_forecast_data(ds, &task)
}

/// TimeDRL's cell of Table III/IV: pre-train + ridge probe.
pub fn run_timedrl_forecast(data: &ForecastData, scale: Scale, seed: u64) -> ForecastEvalResult {
    let cfg = timedrl_forecast_config(scale, seed);
    let (_, result, _) = forecast_linear_eval(&cfg, data, RIDGE_LAMBDA);
    result
}

/// An SSL baseline's cell of Table III/IV: pre-train, embed, ridge probe.
pub fn run_ssl_forecast(method: &mut dyn SslMethod, data: &ForecastData) -> ForecastEvalResult {
    method.pretrain(&data.train_inputs);
    let train_emb = method.embed_timestamps_flat(&data.train_inputs);
    let test_emb = method.embed_timestamps_flat(&data.test_inputs);
    let probe = RidgeProbe::fit(&train_emb, &data.train_targets, RIDGE_LAMBDA);
    let pred = probe.predict(&test_emb);
    ForecastEvalResult { mse: mse(&pred, &data.test_targets), mae: mae(&pred, &data.test_targets) }
}

/// An end-to-end baseline's cell of Table III/IV: supervised fit + predict.
pub fn run_e2e_forecast(method: &mut dyn EndToEndForecaster, data: &ForecastData) -> ForecastEvalResult {
    method.fit(&data.train_inputs, &data.train_targets);
    let pred = method.predict(&data.test_inputs);
    ForecastEvalResult { mse: mse(&pred, &data.test_targets), mae: mae(&pred, &data.test_targets) }
}

/// TimeDRL's cell of Table V: pre-train + logistic probe.
pub fn run_timedrl_classification(
    train: &ClassifyDataset,
    test: &ClassifyDataset,
    scale: Scale,
    seed: u64,
) -> ClassificationReport {
    let cfg = timedrl_classify_config(train, scale, seed);
    let (_, report) = classification_linear_eval(&cfg, train, test, &probe_config(scale));
    report
}

/// An SSL baseline's cell of Table V: pre-train, embed, logistic probe.
pub fn run_ssl_classification(
    method: &mut dyn SslMethod,
    train: &ClassifyDataset,
    test: &ClassifyDataset,
    scale: Scale,
    seed: u64,
) -> ClassificationReport {
    method.pretrain(&train.to_batch());
    let train_emb = method.embed_instances(&train.to_batch());
    let test_emb = method.embed_instances(&test.to_batch());
    let probe = LogisticProbe::fit(&train_emb, &train.labels, train.n_classes, &probe_config(scale), seed);
    let pred = probe.predict(&test_emb);
    classification_report(&pred, &test.labels, test.n_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{classify_by_name, forecast_by_name};
    use timedrl_baselines::SimTs;
    use timedrl_tensor::Prng;

    #[test]
    fn timedrl_forecast_cell_runs() {
        let ds = forecast_by_name("ETTh1", Scale::Quick);
        let data = forecast_data(&ds, 24, Scale::Quick);
        let r = run_timedrl_forecast(&data, Scale::Quick, 0);
        assert!(r.mse.is_finite() && r.mse > 0.0);
    }

    #[test]
    fn ssl_forecast_cell_runs() {
        let ds = forecast_by_name("Exchange", Scale::Quick);
        let data = forecast_data(&ds, 24, Scale::Quick);
        let mut m = SimTs::new(baseline_forecast_config(Scale::Quick, 0));
        let r = run_ssl_forecast(&mut m, &data);
        assert!(r.mse.is_finite());
    }

    #[test]
    fn classification_cell_runs() {
        let ds = classify_by_name("PenDigits", Scale::Quick);
        let (train, test) = ds.train_test_split(0.6, &mut Prng::new(1)).unwrap();
        let r = run_timedrl_classification(&train, &test, Scale::Quick, 0);
        assert!(r.accuracy > 0.0 && r.accuracy <= 1.0);
    }
}
