//! Terminal plotting for the figure binaries: multi-series line charts
//! rendered as Unicode text, so `fig5_semisupervised` and
//! `fig6_lambda_sensitivity` print actual *figures*, not just tables.

/// One named series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (x ascending is not required; points are plotted as
    /// given).
    pub points: Vec<(f32, f32)>,
}

/// Renders series into a `width` × `height` character grid with y-axis
/// labels and a legend. Each series gets a distinct glyph.
pub fn line_chart(series: &[Series], width: usize, height: usize, title: &str) -> String {
    render(series, width, height, title, true)
}

/// Like [`line_chart`] but without connecting segments — a scatter plot
/// (e.g. for PCA embedding atlases).
pub fn scatter_chart(series: &[Series], width: usize, height: usize, title: &str) -> String {
    render(series, width, height, title, false)
}

fn render(series: &[Series], width: usize, height: usize, title: &str, connect: bool) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    const GLYPHS: [char; 6] = ['●', '○', '▲', '△', '■', '□'];

    let all: Vec<(f32, f32)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut x_min, mut x_max) = (f32::INFINITY, f32::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f32::INFINITY, f32::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Draw connecting segments by dense parameter sampling, then the
        // markers on top.
        for pair in s.points.windows(2) {
            if !connect {
                break;
            }
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            for k in 0..=32 {
                let t = k as f32 / 32.0;
                let x = x0 + (x1 - x0) * t;
                let y = y0 + (y1 - y0) * t;
                let (cx, cy) = to_cell(x, y, x_min, x_max, y_min, y_max, width, height);
                if grid[cy][cx] == ' ' {
                    grid[cy][cx] = '·';
                }
            }
        }
        for &(x, y) in &s.points {
            let (cx, cy) = to_cell(x, y, x_min, x_max, y_min, y_max, width, height);
            grid[cy][cx] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (row_idx, row) in grid.iter().enumerate() {
        // y label on the first, middle, and last rows.
        let y_here = y_max - (y_max - y_min) * row_idx as f32 / (height - 1) as f32;
        let label = if row_idx == 0 || row_idx == height - 1 || row_idx == height / 2 {
            format!("{y_here:>9.3} ")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("{:>10} {:<} .. {:>}\n", "", fmt_num(x_min), fmt_num(x_max)));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{:>12} {} {}\n", "", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

fn to_cell(
    x: f32,
    y: f32,
    x_min: f32,
    x_max: f32,
    y_min: f32,
    y_max: f32,
    width: usize,
    height: usize,
) -> (usize, usize) {
    let fx = (x - x_min) / (x_max - x_min);
    let fy = (y - y_min) / (y_max - y_min);
    let cx = ((fx * (width - 1) as f32).round() as usize).min(width - 1);
    let cy = height - 1 - ((fy * (height - 1) as f32).round() as usize).min(height - 1);
    (cx, cy)
}

fn fmt_num(v: f32) -> String {
    if v.abs() >= 100.0 || (v != 0.0 && v.abs() < 0.01) {
        format!("{v:.1e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(label: &str, pts: &[(f32, f32)]) -> Series {
        Series { label: label.into(), points: pts.to_vec() }
    }

    #[test]
    fn renders_without_panicking() {
        let chart = line_chart(
            &[
                series("a", &[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]),
                series("b", &[(0.0, 1.0), (1.0, 0.2), (2.0, 0.9)]),
            ],
            40,
            10,
            "test chart",
        );
        assert!(chart.contains("test chart"));
        assert!(chart.contains('●'));
        assert!(chart.contains('○'));
        assert!(chart.contains("a\n") || chart.contains(" a"));
    }

    #[test]
    fn extremes_land_on_borders() {
        let chart = line_chart(&[series("s", &[(0.0, 0.0), (10.0, 5.0)])], 30, 8, "t");
        let lines: Vec<&str> = chart.lines().collect();
        // Max y is the first grid row; min y is the last grid row.
        assert!(lines[1].contains('●'), "top row has max point: {chart}");
        assert!(lines[8].contains('●'), "bottom row has min point: {chart}");
    }

    #[test]
    fn empty_series_handled() {
        let chart = line_chart(&[series("s", &[])], 30, 8, "empty");
        assert!(chart.contains("no data"));
    }

    #[test]
    fn constant_series_no_division_by_zero() {
        let chart = line_chart(&[series("s", &[(1.0, 3.0), (2.0, 3.0)])], 30, 8, "flat");
        assert!(chart.contains('●'));
    }

    #[test]
    fn log_like_small_values_formatted() {
        assert_eq!(fmt_num(0.001), "1.0e-3");
        assert_eq!(fmt_num(1000.0), "1.0e3");
        assert_eq!(fmt_num(0.5), "0.500");
    }
}

#[cfg(test)]
mod scatter_tests {
    use super::*;

    #[test]
    fn scatter_has_no_connecting_dots() {
        let s = Series { label: "s".into(), points: vec![(0.0, 0.0), (10.0, 10.0)] };
        let chart = scatter_chart(&[s], 30, 8, "t");
        assert!(!chart.contains('·'), "scatter must not draw segments:\n{chart}");
        // Two plotted markers plus one legend glyph.
        assert_eq!(chart.matches('●').count(), 3);
    }
}
