//! CI probe for the relaxed exactness tier (see `ci.sh`).
//!
//! Answers the question the serving gate cannot: does int8 quantized
//! serving *change the answers that matter*? The probe embeds the same
//! synthetic dataset under both tiers of one fixture model, fits the
//! paper's linear-evaluation readouts on each tier's embeddings, and
//! requires the downstream metrics — classification accuracy and
//! forecast MSE — to agree within ε. It also re-checks the serving
//! allocation budget on the relaxed path: a warmed relaxed request must
//! perform zero heap allocations, same as exact.
//!
//! Prints machine-parseable `key=value` lines and exits nonzero on any
//! violated budget. Run with `TIMEDRL_THREADS=1`: the allocation counter
//! is process-global.

use std::process::ExitCode;
use testkit::alloc::count_allocations;
use timedrl::{decode_model_export, encode_model_export, Precision, TimeDrl, TimeDrlConfig};
use timedrl_data::PatchConfig;
use timedrl_eval::{classification_report, mse, LogisticConfig, LogisticProbe, RidgeProbe};
use timedrl_serve::CompiledModel;
use timedrl_tensor::{NdArray, Prng};

/// Dataset geometry: windows of `T` ticks, `H` future ticks as the
/// forecast target, split `TRAIN`/`TEST`.
const N: usize = 96;
const TRAIN: usize = 64;
const T: usize = 16;
const H: usize = 4;

/// Tier-agreement budgets. Quantization perturbs each embedding by well
/// under 1% (see the `relaxed` serve suite); after a linear readout the
/// *metric* drift stays far smaller than these, and anything beyond them
/// means the relaxed tier is changing answers, not rounding them.
const ACC_EPS: f32 = 0.05;
const MSE_REL_EPS: f32 = 0.10;

fn fixture_model() -> TimeDrl {
    let mut cfg = TimeDrlConfig::forecasting(T);
    cfg.patch = PatchConfig::non_overlapping(4);
    cfg.d_model = 8;
    cfg.n_heads = 2;
    cfg.d_ff = 16;
    cfg.n_layers = 2;
    cfg.seed = 11;
    TimeDrl::new(cfg)
}

fn compile(model: &TimeDrl, precision: Precision) -> CompiledModel {
    let payload = encode_model_export(model);
    let export = decode_model_export(&payload[4..]).expect("export");
    CompiledModel::from_export_with(export, precision).expect("compile")
}

/// Synthetic but *learnable* data: per-window sinusoids whose frequency
/// carries the class label and whose continuation is the forecast target.
fn dataset() -> (NdArray, NdArray, Vec<usize>) {
    let mut rng = Prng::new(42);
    let params = rng.randn(&[N, 2]);
    let noise = rng.randn(&[N, T + H]);
    let mut series = vec![0.0f32; N * (T + H)];
    let mut labels = Vec::with_capacity(N);
    for n in 0..N {
        let r = params.data()[n * 2];
        let freq = 0.1 + 0.4 / (1.0 + (-r).exp());
        let phase = params.data()[n * 2 + 1];
        labels.push(usize::from(freq > 0.3));
        for t in 0..T + H {
            series[n * (T + H) + t] = (std::f32::consts::TAU * freq * t as f32 + phase).sin()
                + 0.1 * noise.data()[n * (T + H) + t];
        }
    }
    let mut windows = NdArray::zeros(&[N, T, 1]);
    let mut targets = NdArray::zeros(&[N, H]);
    for n in 0..N {
        windows.data_mut()[n * T..(n + 1) * T]
            .copy_from_slice(&series[n * (T + H)..n * (T + H) + T]);
        targets.data_mut()[n * H..(n + 1) * H]
            .copy_from_slice(&series[n * (T + H) + T..(n + 1) * (T + H)]);
    }
    (windows, targets, labels)
}

/// Linear-evaluation metrics on one tier's embeddings.
fn evaluate(z_i: &NdArray, targets: &NdArray, labels: &[usize]) -> (f32, f32) {
    let (z_train, z_test) = (z_i.slice(0, 0, TRAIN).unwrap(), z_i.slice(0, TRAIN, N - TRAIN).unwrap());
    let (y_train, y_test) =
        (targets.slice(0, 0, TRAIN).unwrap(), targets.slice(0, TRAIN, N - TRAIN).unwrap());
    let ridge = RidgeProbe::fit(&z_train, &y_train, 1.0);
    let fmse = mse(&ridge.predict(&z_test), &y_test);
    let logistic = LogisticProbe::fit(&z_train, &labels[..TRAIN], 2, &LogisticConfig::default(), 9);
    let acc = classification_report(&logistic.predict(&z_test), &labels[TRAIN..], 2).accuracy;
    (acc, fmse)
}

fn main() -> ExitCode {
    let model = fixture_model();
    let (windows, targets, labels) = dataset();

    let exact = compile(&model, Precision::Exact);
    let relaxed = compile(&model, Precision::Relaxed);

    let z_exact = exact.embed(&windows).expect("exact embed").z_i;
    let z_relaxed = relaxed.embed(&windows).expect("relaxed embed").z_i;

    let (acc_exact, mse_exact) = evaluate(&z_exact, &targets, &labels);
    let (acc_relaxed, mse_relaxed) = evaluate(&z_relaxed, &targets, &labels);
    println!("accuracy_exact={acc_exact}");
    println!("accuracy_relaxed={acc_relaxed}");
    println!("mse_exact={mse_exact}");
    println!("mse_relaxed={mse_relaxed}");

    // Steady-state allocation budget on the relaxed serving path.
    let probe = Prng::new(7).randn(&[3, T, 1]);
    relaxed.warm(3);
    relaxed.warm(3);
    let (result, allocs) = count_allocations(|| relaxed.embed(&probe));
    result.expect("relaxed embed");
    println!("relaxed_allocs_per_request={allocs}");

    let mut ok = true;
    if (acc_exact - acc_relaxed).abs() > ACC_EPS {
        eprintln!("quant_probe: FAIL: accuracy drifts {} > {ACC_EPS}", (acc_exact - acc_relaxed).abs());
        ok = false;
    }
    let mse_drift = (mse_exact - mse_relaxed).abs() / mse_exact.max(1e-6);
    if mse_drift > MSE_REL_EPS {
        eprintln!("quant_probe: FAIL: forecast MSE drifts {mse_drift} > {MSE_REL_EPS} (relative)");
        ok = false;
    }
    if allocs != 0 {
        eprintln!("quant_probe: FAIL: warmed relaxed request allocates {allocs} blocks, budget is 0");
        ok = false;
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!("quality=ok");
    ExitCode::SUCCESS
}
