//! Fig. 6: sensitivity analysis on λ (Eq. 19), sweeping the
//! predictive/contrastive balance across seven orders of magnitude.
//!
//! Small λ → predictive-dominated; large λ → contrastive-dominated. The
//! paper's finding: both extremes hurt, λ = 1 (balanced) is near-optimal
//! for both forecasting (MSE) and classification (accuracy).

use testkit::impl_to_json;
use timedrl_bench::registry::{classify_by_name, forecast_by_name};
use timedrl_bench::runners::{
    forecast_data, probe_config, timedrl_classify_config, timedrl_forecast_config,
};
use timedrl_bench::{line_chart, ResultSink, Scale, Series};
use timedrl::{classification_linear_eval, forecast_linear_eval};
use timedrl_tensor::Prng;

struct LambdaRecord {
    task: String,
    dataset: String,
    lambda: f32,
    metric: f32,
}

impl_to_json!(LambdaRecord { task, dataset, lambda, metric });

fn main() {
    let scale = Scale::from_args();
    let seed = 17u64;
    let mut sink = ResultSink::new("fig6_lambda_sensitivity");

    // Forecasting branch (ETTh1, horizon 24).
    let ds_f = forecast_by_name("ETTh1", scale);
    let data = forecast_data(&ds_f, 24, scale);
    println!("Fig. 6 (left): forecasting MSE on ETTh1 vs lambda (lower is better).\n");
    println!("{:>10} {:>10}", "lambda", "MSE");
    let mut mse_pts = Vec::new();
    for &lambda in &scale.lambda_grid() {
        let mut cfg = timedrl_forecast_config(scale, seed);
        cfg.lambda = lambda;
        let (_, result, _) = forecast_linear_eval(&cfg, &data, 1.0);
        println!("{lambda:>10.3} {:>10.3}", result.mse);
        mse_pts.push((lambda.log10(), result.mse));
        sink.push(LambdaRecord {
            task: "forecast".into(),
            dataset: "ETTh1".into(),
            lambda,
            metric: result.mse,
        });
    }
    println!("\n{}", line_chart(
        &[Series { label: "ETTh1 MSE".into(), points: mse_pts }],
        56, 10,
        "forecast MSE vs log10(lambda)",
    ));

    // Classification branch (FingerMovements).
    let ds_c = classify_by_name("FingerMovements", scale);
    let (train, test) = ds_c.train_test_split(0.6, &mut Prng::new(seed)).unwrap();
    println!("\nFig. 6 (right): classification accuracy on FingerMovements vs lambda.\n");
    println!("{:>10} {:>10}", "lambda", "ACC %");
    let mut acc_pts = Vec::new();
    for &lambda in &scale.lambda_grid() {
        let mut cfg = timedrl_classify_config(&train, scale, seed);
        cfg.lambda = lambda;
        let (_, report) = classification_linear_eval(&cfg, &train, &test, &probe_config(scale));
        println!("{lambda:>10.3} {:>10.2}", report.accuracy * 100.0);
        acc_pts.push((lambda.log10(), report.accuracy * 100.0));
        sink.push(LambdaRecord {
            task: "classify".into(),
            dataset: "FingerMovements".into(),
            lambda,
            metric: report.accuracy * 100.0,
        });
    }
    println!("\n{}", line_chart(
        &[Series { label: "FingerMovements ACC %".into(), points: acc_pts }],
        56, 10,
        "classification accuracy vs log10(lambda)",
    ));

    println!("\nExpected shape (paper): forecasting degrades at tiny lambda (contrastive");
    println!("task starved); classification degrades at huge lambda (predictive task");
    println!("starved); balanced lambda ~ 1 is strong for both.");
    let path = sink.write();
    println!("results written to {}", path.display());
}
