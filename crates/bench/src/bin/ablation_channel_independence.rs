//! Extension experiment: channel-independence vs channel-mixing for
//! forecasting — the Section V.4 implementation claim ("we observed that
//! channel-independence significantly enhances performance in time-series
//! forecasting").
//!
//! Channel-independent: each channel becomes a univariate sample through
//! shared weights (`[N, L, C] -> [N·C, L, 1]`). Channel-mixing: the model
//! consumes all channels jointly (`n_features = C`).

use testkit::impl_to_json;
use timedrl::{
    channel_independent, forecast_linear_eval, pretrain, ForecastEvalResult, ForecastTask,
    TimeDrl, TimeDrlConfig,
};
use timedrl_bench::registry::forecast_by_name;
use timedrl_bench::runners::timedrl_forecast_config;
use timedrl_bench::{ResultSink, Scale};
use timedrl_data::{chrono_split, sliding_windows, Standardizer};
use timedrl_eval::{mae, mse, RidgeProbe};

struct CiRecord {
    dataset: String,
    mode: String,
    mse: f32,
    mae: f32,
}

impl_to_json!(CiRecord { dataset, mode, mse, mae });

fn main() {
    let scale = Scale::from_args();
    let seed = 41u64;
    let horizon = 24usize;
    let mut sink = ResultSink::new("ablation_channel_independence");

    println!("Extension: channel-independence vs channel-mixing (forecast, horizon {horizon}).\n");
    println!("{:<10} {:>22} {:>22}", "dataset", "independent (MSE/MAE)", "mixing (MSE/MAE)");

    for name in ["ETTh1", "Weather"] {
        let ds = forecast_by_name(name, scale);
        let task = ForecastTask { lookback: scale.lookback(), horizon, stride: scale.window_stride() };

        // Channel-independent: the standard pipeline.
        let data = timedrl::prepare_forecast_data(&ds, &task);
        let cfg = timedrl_forecast_config(scale, seed);
        let (_, independent, _) = forecast_linear_eval(&cfg, &data, 1.0);

        // Channel-mixing: model built with n_features = C; probe predicts
        // the flattened multivariate horizon.
        let mixing = channel_mixing_eval(&ds, &task, scale, seed);

        println!(
            "{:<10} {:>11.3} / {:>7.3} {:>11.3} / {:>7.3}",
            name, independent.mse, independent.mae, mixing.mse, mixing.mae
        );
        for (mode, r) in [("independent", independent), ("mixing", mixing)] {
            sink.push(CiRecord { dataset: name.to_string(), mode: mode.into(), mse: r.mse, mae: r.mae });
        }
    }

    println!("\nExpected shape (paper, Section V.4): channel-independence wins on");
    println!("forecasting — shared univariate weights generalize better than joint");
    println!("channel mixing at this data scale.");
    let path = sink.write();
    println!("results written to {}", path.display());
}

/// The channel-mixing counterpart of `forecast_linear_eval`: no channel
/// fold; the probe maps flattened timestamp embeddings to the flattened
/// `[H·C]` horizon. Scores on the same standardized scale.
fn channel_mixing_eval(
    ds: &timedrl_data::ForecastDataset,
    task: &ForecastTask,
    scale: Scale,
    seed: u64,
) -> ForecastEvalResult {
    let split = chrono_split(ds);
    let scaler = Standardizer::fit(&split.train);
    let train = scaler.transform(&split.train);
    let test = scaler.transform(&split.test);
    let train_w = sliding_windows(&train, task.lookback, task.horizon, task.stride);
    let test_w = sliding_windows(&test, task.lookback, task.horizon, task.stride);

    let c = ds.features();
    let mut cfg = TimeDrlConfig::forecasting(task.lookback);
    cfg.n_features = c;
    cfg.channel_independence = false;
    cfg.epochs = scale.epochs();
    cfg.seed = seed;
    let model = TimeDrl::new(cfg);
    pretrain(&model, &train_w.inputs).expect("pre-training failed");

    // RevIN parity with the independent path: the probe learns horizons in
    // each window's per-channel normalized scale; predictions are
    // de-normalized with the window statistics before scoring.
    let window_stats = |inputs: &timedrl_tensor::NdArray| {
        let mean = inputs.mean_axis(1, true); // [N, 1, C]
        let std = inputs.var_axis(1, true).add_scalar(1e-5).sqrt();
        (mean, std)
    };
    let flatten = |targets: &timedrl_tensor::NdArray| {
        let n = targets.shape()[0];
        let h = targets.shape()[1];
        targets.reshape(&[n, h * c]).expect("flatten targets")
    };
    let (train_mean, train_std) = window_stats(&train_w.inputs);
    let (test_mean, test_std) = window_stats(&test_w.inputs);
    let norm_train_targets = flatten(&train_w.targets.sub(&train_mean).div(&train_std));

    let train_emb = model.embed_timestamps_flat(&train_w.inputs);
    let test_emb = model.embed_timestamps_flat(&test_w.inputs);
    let probe = RidgeProbe::fit(&train_emb, &norm_train_targets, 1.0);
    let h = test_w.targets.shape()[1];
    let n_test = test_w.targets.shape()[0];
    let pred_norm = probe.predict(&test_emb).reshape(&[n_test, h, c]).expect("unflatten");
    let pred = flatten(&pred_norm.mul(&test_std).add(&test_mean));
    let truth = flatten(&test_w.targets);
    ForecastEvalResult { mse: mse(&pred, &truth), mae: mae(&pred, &truth) }
}

// Re-export check: channel_independent is part of the public API used by
// the independent path inside prepare_forecast_data.
#[allow(dead_code)]
fn _api_surface(x: &timedrl_tensor::NdArray) -> timedrl_tensor::NdArray {
    channel_independent(x)
}
