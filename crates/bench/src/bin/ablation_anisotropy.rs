//! Extension experiment: quantify the anisotropy argument behind Fig. 1
//! and Table VII.
//!
//! The paper claims that deriving instance embeddings by pooling
//! timestamp-level embeddings confines them to a narrow cone (the
//! anisotropy problem), while a dedicated `[CLS]` token optimized by the
//! contrastive task escapes it. This binary measures both proxies on a
//! trained model: mean pairwise cosine similarity (cone-ness; lower is
//! better) and the participation ratio of per-dimension variances
//! (effective dimensionality; higher is better), for each pooling
//! strategy of Table VII.

use testkit::impl_to_json;
use timedrl::{pretrain, Pooling, TimeDrl};
use timedrl_bench::registry::classify_by_name;
use timedrl_bench::runners::timedrl_classify_config;
use timedrl_bench::{ResultSink, Scale};
use timedrl_eval::{mean_pairwise_cosine, participation_ratio};
use timedrl_nn::Ctx;
use timedrl_tensor::NdArray;

struct AnisotropyRecord {
    dataset: String,
    pooling: String,
    mean_cosine: f32,
    participation_ratio: f32,
}

impl_to_json!(AnisotropyRecord { dataset, pooling, mean_cosine, participation_ratio });

fn main() {
    let scale = Scale::from_args();
    let seed = 37u64;
    let mut sink = ResultSink::new("ablation_anisotropy");

    println!("Extension: anisotropy of instance embeddings by pooling strategy.");
    println!("(mean pairwise cosine: lower = more isotropic; participation ratio:");
    println!(" higher = more effective dimensions)\n");
    println!("{:<16} {:<14} {:>12} {:>10}", "dataset", "pooling", "mean cos", "PR");

    for name in ["Epilepsy", "HAR"] {
        let ds = classify_by_name(name, scale);
        let cfg = timedrl_classify_config(&ds, scale, seed);
        let model = TimeDrl::new(cfg);
        pretrain(&model, &ds.to_batch()).expect("pre-training failed");

        // Embed every sample once; extract all pooling views from the same
        // encoder output.
        let batch = ds.to_batch();
        let mut ctx = Ctx::eval();
        let mut views: Vec<(Pooling, Vec<NdArray>)> =
            Pooling::ALL.iter().map(|&p| (p, Vec::new())).collect();
        let n = batch.shape()[0];
        let mut start = 0;
        while start < n {
            let len = 128.min(n - start);
            let chunk = batch.slice(0, start, len).expect("chunk");
            let enc = model.encode(&chunk, &mut ctx);
            for (pooling, parts) in views.iter_mut() {
                parts.push(enc.instance(*pooling).to_array());
            }
            start += len;
        }

        for (pooling, parts) in &views {
            let refs: Vec<&NdArray> = parts.iter().collect();
            let z = NdArray::concat(&refs, 0);
            let cos = mean_pairwise_cosine(&z);
            let pr = participation_ratio(&z);
            println!("{:<16} {:<14} {cos:>12.4} {pr:>10.2}", name, pooling.name());
            sink.push(AnisotropyRecord {
                dataset: name.to_string(),
                pooling: pooling.name().to_string(),
                mean_cosine: cos,
                participation_ratio: pr,
            });
        }
        println!();
    }

    println!("Expected shape (paper's Fig. 1 argument): pooled strategies (GAP");
    println!("especially) show higher mean cosine / lower PR than [CLS].");
    let path = sink.write();
    println!("results written to {}", path.display());
}
