//! Table VI: ablation study on data augmentation. TimeDRL's thesis: any
//! augmentation during pre-training injects inductive bias and worsens
//! downstream forecasting. Runs the seven rows (None + six augmentations)
//! on ETTh1 and Exchange, at the prediction geometry scaled from the
//! paper's T = 168.

use testkit::impl_to_json;
use timedrl::forecast_linear_eval;
use timedrl_bench::registry::forecast_by_name;
use timedrl_bench::runners::{forecast_data, timedrl_forecast_config};
use timedrl_bench::{ResultSink, Scale};
use timedrl_data::Augmentation;

struct AugRecord {
    dataset: String,
    augmentation: String,
    mse: f32,
    delta_pct: f32,
}

impl_to_json!(AugRecord { dataset, augmentation, mse, delta_pct });

fn main() {
    let scale = Scale::from_args();
    let seed = 19u64;
    // Paper uses T=168; our full scale keeps that, quick shrinks it.
    let horizon = if scale == Scale::Quick { 24 } else { 168 };
    let mut sink = ResultSink::new("table6_augmentation");

    println!("Table VI. Ablation on data augmentation (forecast MSE, horizon {horizon}).\n");
    println!("{:<16} {:>10} {:>10} {:>10} {:>10}", "augmentation", "ETTh1", "Δ%", "Exchange", "Δ%");

    let datasets = ["ETTh1", "Exchange"];
    let mut baselines = [0.0f32; 2];
    let mut rows: Vec<(String, [f32; 2])> = Vec::new();

    for aug in Augmentation::ALL {
        let mut cells = [0.0f32; 2];
        for (d, name) in datasets.iter().enumerate() {
            let ds = forecast_by_name(name, scale);
            let data = forecast_data(&ds, horizon, scale);
            let mut cfg = timedrl_forecast_config(scale, seed);
            cfg.augmentation = aug;
            let (_, result, _) = forecast_linear_eval(&cfg, &data, 1.0);
            cells[d] = result.mse;
        }
        if aug == Augmentation::None {
            baselines = cells;
        }
        rows.push((aug.name().to_string(), cells));
    }

    for (name, cells) in &rows {
        let d0 = (cells[0] - baselines[0]) / baselines[0] * 100.0;
        let d1 = (cells[1] - baselines[1]) / baselines[1] * 100.0;
        println!("{name:<16} {:>10.3} {d0:>+9.2}% {:>10.3} {d1:>+9.2}%", cells[0], cells[1]);
        for (d, dataset) in datasets.iter().enumerate() {
            sink.push(AugRecord {
                dataset: dataset.to_string(),
                augmentation: name.clone(),
                mse: cells[d],
                delta_pct: (cells[d] - baselines[d]) / baselines[d] * 100.0,
            });
        }
    }

    println!("\nExpected shape (paper): every augmentation row is >= None; Rotation");
    println!("degrades most, Masking least.");
    let path = sink.write();
    println!("results written to {}", path.display());
}
