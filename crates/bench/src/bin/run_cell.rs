//! Developer tool: run a single (dataset, horizon) cell of Table III at
//! full experiment scale and print every method's MSE/MAE.
//!
//! ```text
//! run_cell <dataset> <horizon> [--quick]
//! e.g. run_cell ETTh1 168
//! ```

use timedrl_baselines::{Cost, Informer, SimTs, TcnForecaster, Tnc, Ts2Vec};
use timedrl_bench::registry::forecast_by_name;
use timedrl_bench::runners::{
    baseline_forecast_config, forecast_data, run_e2e_forecast, run_ssl_forecast,
    run_timedrl_forecast,
};
use timedrl_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = args.get(1).map(String::as_str).unwrap_or("ETTh1");
    let horizon: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(24);
    let scale = Scale::from_args();

    let ds = forecast_by_name(dataset, scale);
    let data = forecast_data(&ds, horizon, scale);
    println!(
        "{dataset} horizon {horizon} ({} train / {} test folds)",
        data.train_inputs.shape()[0],
        data.test_inputs.shape()[0]
    );

    let seed = 7u64;
    let t = run_timedrl_forecast(&data, scale, seed);
    println!("{:<10} {:>8.3} {:>8.3}", "TimeDRL", t.mse, t.mae);
    let bcfg = baseline_forecast_config(scale, seed);
    for (name, r) in [
        ("SimTS", run_ssl_forecast(&mut SimTs::new(bcfg.clone()), &data)),
        ("TS2Vec", run_ssl_forecast(&mut Ts2Vec::new(bcfg.clone()), &data)),
        ("TNC", run_ssl_forecast(&mut Tnc::new(bcfg.clone()), &data)),
        ("CoST", run_ssl_forecast(&mut Cost::new(bcfg.clone()), &data)),
        ("Informer", run_e2e_forecast(&mut Informer::new(bcfg.clone(), horizon), &data)),
        ("TCN", run_e2e_forecast(&mut TcnForecaster::new(bcfg, horizon), &data)),
    ] {
        println!("{name:<10} {:>8.3} {:>8.3}", r.mse, r.mae);
    }
}
