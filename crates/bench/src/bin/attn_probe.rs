//! CI probe for the fused tiled attention kernel (see `ci.sh`).
//!
//! Two budgets, both enforced here so the gate is a single process run:
//!
//! 1. **Parity** — forward and backward of the fused kernel must be
//!    bit-identical to the composed
//!    `matmul_t → scale → mask → softmax → matmul` tape graph it replaced,
//!    at pool thread counts 1 and 4, causal and bidirectional, on shapes
//!    that exercise both the packed and reference microkernel dispatches.
//! 2. **Speedup** — at the serving-scale sequence length T=256 the fused
//!    kernel must beat the materialized `[B·H, T, T]` path by at least
//!    [`MIN_SPEEDUP`]× in median wall time.
//!
//! Prints machine-parseable `key=value` lines and exits nonzero on any
//! violated budget.

use std::process::ExitCode;
use std::time::Instant;
use testkit::pool;
use timedrl_tensor::{attention_fused, attention_reference, NdArray, Prng, Var};

const MIN_SPEEDUP: f64 = 1.5;

/// Parity shapes: a packed-kernel shape, an odd non-multiple-of-tile
/// shape, and a degenerate tiny one.
const SHAPES: [(usize, usize, usize); 3] = [(4, 64, 8), (2, 33, 16), (3, 5, 2)];

fn assert_bits_eq(a: &NdArray, b: &NdArray, what: &str) -> Result<(), String> {
    if a.shape() != b.shape() {
        return Err(format!("{what}: shape mismatch {:?} vs {:?}", a.shape(), b.shape()));
    }
    for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!("{what}: bit mismatch at {i}: {x} vs {y}"));
        }
    }
    Ok(())
}

/// The additive causal mask constant the composed graph uses.
fn causal_mask(t: usize) -> NdArray {
    NdArray::from_fn(&[t, t], |flat| if flat % t > flat / t { -1e9 } else { 0.0 })
}

/// Forward + backward of the fused tape node against the composed graph,
/// bit for bit, at the current thread count.
fn check_parity(threads: usize) -> Result<(), String> {
    pool::with_threads(threads, || {
        for &(bh, t, dh) in &SHAPES {
            for causal in [false, true] {
                let mut rng = Prng::new(17 + t as u64 + causal as u64);
                let q0 = rng.randn(&[bh, t, dh]);
                let k0 = rng.randn(&[bh, t, dh]);
                let v0 = rng.randn(&[bh, t, dh]);
                let g0 = rng.randn(&[bh, t, dh]);
                let scale = 1.0 / (dh as f32).sqrt();
                let what = format!("threads={threads} bh={bh} t={t} dh={dh} causal={causal}");

                // Raw kernel vs materialized reference chain.
                let fused = attention_fused(&q0, &k0, &v0, scale, causal, None)
                    .map_err(|e| format!("{what}: {e}"))?;
                let naive = attention_reference(&q0, &k0, &v0, scale, causal, None)
                    .map_err(|e| format!("{what}: {e}"))?;
                assert_bits_eq(&fused, &naive, &format!("forward {what}"))?;

                // Tape node (forward + backward) vs the composed graph.
                let run = |composed: bool| {
                    let q = Var::parameter(q0.clone());
                    let k = Var::parameter(k0.clone());
                    let v = Var::parameter(v0.clone());
                    let out = if composed {
                        let mut scores = q.matmul_t(&k).scale(scale);
                        if causal {
                            scores = scores.add(&Var::constant(causal_mask(t)));
                        }
                        scores.softmax_lastdim().matmul(&v)
                    } else {
                        Var::attention(&q, &k, &v, scale, causal, None)
                    };
                    out.backward_with(g0.clone());
                    (
                        out.to_array(),
                        q.grad().expect("dq"),
                        k.grad().expect("dk"),
                        v.grad().expect("dv"),
                    )
                };
                let (yf, dqf, dkf, dvf) = run(false);
                let (yc, dqc, dkc, dvc) = run(true);
                assert_bits_eq(&yf, &yc, &format!("node value {what}"))?;
                assert_bits_eq(&dqf, &dqc, &format!("dQ {what}"))?;
                assert_bits_eq(&dkf, &dkc, &format!("dK {what}"))?;
                assert_bits_eq(&dvf, &dvc, &format!("dV {what}"))?;
            }
        }
        Ok(())
    })
}

/// Median wall time of `f` over `iters` runs (after one warm-up).
fn median_time(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() -> ExitCode {
    for threads in [1usize, 4] {
        if let Err(e) = check_parity(threads) {
            println!("parity=FAIL");
            println!("{e}");
            return ExitCode::FAILURE;
        }
    }
    println!("parity=ok");

    // Speedup at serving scale. TIMEDRL_THREADS from the environment
    // applies to both paths equally; ci.sh runs this at 1 thread.
    let mut rng = Prng::new(99);
    let (bh, t, dh) = (8, 256, 16);
    let q = rng.randn(&[bh, t, dh]);
    let k = rng.randn(&[bh, t, dh]);
    let v = rng.randn(&[bh, t, dh]);
    let scale = 1.0 / (dh as f32).sqrt();
    let fused_s = median_time(15, || {
        attention_fused(&q, &k, &v, scale, true, None).expect("fused");
    });
    let naive_s = median_time(15, || {
        attention_reference(&q, &k, &v, scale, true, None).expect("naive");
    });
    let speedup = naive_s / fused_s;
    println!("fused_t256_s={fused_s:.6}");
    println!("naive_t256_s={naive_s:.6}");
    println!("speedup={speedup:.2}");
    if speedup < MIN_SPEEDUP {
        println!("FAIL: fused attention is only {speedup:.2}x the materialized path (budget {MIN_SPEEDUP}x)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
