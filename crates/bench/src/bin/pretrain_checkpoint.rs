//! Determinism probe for CI: runs a tiny 2-epoch data-parallel pretrain and
//! saves the resulting checkpoint to the path given as the first argument.
//!
//! `ci.sh` runs this twice — once with `TIMEDRL_THREADS=1` and once with
//! `TIMEDRL_THREADS=4` — and byte-compares the two files. Any divergence
//! means a kernel's chunked fan-out changed a floating-point reduction
//! order, which the deterministic-parallelism contract forbids.

use timedrl::config::TimeDrlConfig;
use timedrl::model::TimeDrl;
use timedrl::trainer::pretrain;
use timedrl_tensor::NdArray;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: pretrain_checkpoint <output-path>");
        std::process::exit(2);
    });
    let mut cfg = TimeDrlConfig::forecasting(32);
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.epochs = 2;
    cfg.batch_size = 8;
    cfg.seed = 42;
    cfg.micro_batch = Some(4);
    let model = TimeDrl::new(cfg);
    // Deterministic windows: pure sinusoids, no RNG involved.
    let windows = NdArray::from_fn(&[16, 32, 1], |flat| {
        let (i, step) = (flat / 32, flat % 32);
        (step as f32 * 0.4 + i as f32 * 0.3).sin()
    });
    let report = pretrain(&model, &windows).expect("pre-training failed");
    model.save(&path).expect("write checkpoint");
    println!(
        "pretrain_checkpoint: {} epochs, final loss {:.6}, saved {path}",
        report.total.len(),
        report.final_loss().expect("at least one epoch ran")
    );
}
