//! Sharded-pretraining probe for CI: proves the multi-process determinism
//! and crash-recovery contracts across *real* OS process boundaries
//! (DESIGN.md §16).
//!
//! Modes:
//!
//! * `prepare <shard-dir>` — write the deterministic synthetic series as a
//!   5-shard split.
//! * `worker <shard-dir> <run-dir> <w> <n> [--die-at-step K]` — run worker
//!   `w` of `n`; with `--die-at-step K` the process calls
//!   `process::exit(9)` at the start of optimizer step `K` (the "kill").
//! * `run <shard-dir> <run-dir> <n> <model-out>` — spawn `n` `worker`
//!   child processes (via `current_exe`), wait for all, copy the final
//!   checkpoint to `<model-out>`.
//! * `crash <shard-dir> <run-dir> <n> <victim> <model-out>` — like `run`,
//!   but worker `<victim>` dies at step 2; after confirming exit code 9 a
//!   clean replacement is spawned, and the run must still complete with a
//!   byte-identical checkpoint.
//!
//! `ci.sh` byte-compares `run` at n = 1, 2, 4 and `crash` (killing both a
//! follower and the coordinator) against the single-process result.

use std::path::Path;
use std::process::{Command, Stdio};
use timedrl::config::TimeDrlConfig;
use timedrl::shard::{run_shard_worker_with, ShardTrainPlan};
use timedrl_data::ShardWriter;
use timedrl_tensor::NdArray;

fn usage() -> ! {
    eprintln!(
        "usage: shard_probe prepare <shard-dir>\n\
         \x20      shard_probe worker <shard-dir> <run-dir> <w> <n> [--die-at-step K]\n\
         \x20      shard_probe run <shard-dir> <run-dir> <n> <model-out>\n\
         \x20      shard_probe crash <shard-dir> <run-dir> <n> <victim> <model-out>"
    );
    std::process::exit(2);
}

fn base_cfg() -> TimeDrlConfig {
    let mut cfg = TimeDrlConfig::forecasting(32);
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.batch_size = 8;
    cfg.epochs = 2;
    cfg.seed = 21;
    cfg
}

fn plan(shard_dir: &str, run_dir: &str, worker: usize, n: usize) -> ShardTrainPlan {
    let mut plan = ShardTrainPlan::new(shard_dir, run_dir);
    plan.worker = worker;
    plan.n_workers = n;
    plan.stride = 4;
    plan
}

/// Deterministic sinusoid series, 600 rows × 1 channel — five 128-row
/// shards (the last holds 88), identical in every invocation.
fn series() -> NdArray {
    NdArray::from_fn(&[600, 1], |i| (i as f32 * 0.4).sin() + (i as f32 * 0.05).cos())
}

fn spawn_worker(shard_dir: &str, run_dir: &str, w: usize, n: usize, die_at: Option<u64>) -> std::process::Child {
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = Command::new(exe);
    cmd.args(["worker", shard_dir, run_dir, &w.to_string(), &n.to_string()])
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit());
    if let Some(k) = die_at {
        cmd.args(["--die-at-step", &k.to_string()]);
    }
    cmd.spawn().expect("spawn worker")
}

fn finish(run_dir: &str, model_out: &str, n: usize) {
    std::fs::copy(Path::new(run_dir).join("model_final.tdrl"), model_out)
        .expect("copy final checkpoint");
    println!("shard_probe: workers={n} final={model_out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("prepare") => {
            let [_, shard_dir] = args.as_slice() else { usage() };
            let paths = ShardWriter::new(128)
                .expect("rows_per_shard")
                .write(&series(), shard_dir)
                .expect("write shards");
            println!("shard_probe prepare: shards={} dir={shard_dir}", paths.len());
        }
        Some("worker") => {
            let (core, die_at) = match args.as_slice() {
                [_, s, r, w, n] => ((s, r, w, n), None),
                [_, s, r, w, n, flag, k] if flag == "--die-at-step" => {
                    ((s, r, w, n), Some(k.parse::<u64>().unwrap_or_else(|_| usage())))
                }
                _ => usage(),
            };
            let (shard_dir, run_dir, w, n) = core;
            let w: usize = w.parse().unwrap_or_else(|_| usage());
            let n: usize = n.parse().unwrap_or_else(|_| usage());
            let report = run_shard_worker_with(&base_cfg(), &plan(shard_dir, run_dir, w, n), |s| {
                if die_at == Some(s) {
                    eprintln!("shard_probe worker {w}: dying at step {s} as instructed");
                    std::process::exit(9);
                }
            })
            .unwrap_or_else(|e| {
                eprintln!("shard_probe worker {w}: {e}");
                std::process::exit(1);
            });
            println!("shard_probe worker {w}/{n}: done, epochs={}", report.total.len());
        }
        Some("run") => {
            let [_, shard_dir, run_dir, n, model_out] = args.as_slice() else { usage() };
            let n: usize = n.parse().unwrap_or_else(|_| usage());
            let children: Vec<_> =
                (0..n).map(|w| spawn_worker(shard_dir, run_dir, w, n, None)).collect();
            for (w, child) in children.into_iter().enumerate() {
                let status = child.wait_with_output().expect("wait worker");
                assert!(status.status.success(), "worker {w} failed: {}", status.status);
            }
            finish(run_dir, model_out, n);
        }
        Some("crash") => {
            let [_, shard_dir, run_dir, n, victim, model_out] = args.as_slice() else { usage() };
            let n: usize = n.parse().unwrap_or_else(|_| usage());
            let victim: usize = victim.parse().unwrap_or_else(|_| usage());
            assert!(victim < n, "victim {victim} out of range for {n} workers");
            let mut children = Vec::new();
            for w in 0..n {
                let die_at = (w == victim).then_some(2);
                children.push((w, spawn_worker(shard_dir, run_dir, w, n, die_at)));
            }
            // The victim must actually die with the kill code...
            let (_, victim_child) = children.remove(victim);
            let status = victim_child.wait_with_output().expect("wait victim");
            assert_eq!(
                status.status.code(),
                Some(9),
                "victim {victim} exited {:?}, expected the kill code 9",
                status.status.code()
            );
            println!("shard_probe crash: worker {victim} killed at step 2, respawning");
            // ...and a clean replacement must finish the run from disk.
            children.push((victim, spawn_worker(shard_dir, run_dir, victim, n, None)));
            for (w, child) in children {
                let status = child.wait_with_output().expect("wait worker");
                assert!(status.status.success(), "worker {w} failed: {}", status.status);
            }
            finish(run_dir, model_out, n);
        }
        _ => usage(),
    }
}
