//! Table I: statistical overview of the forecasting datasets.
//!
//! Prints the generators' paper-scale statistics (features, timesteps,
//! frequency) and verifies each matches the published Table I row.

use timedrl_data::synth::forecast::{self, default_len};

fn main() {
    println!("Table I. Statistical overview of the forecasting datasets.\n");
    println!("{:<16} {:>9} {:>10}  Frequency", "Datasets", "Features", "Timesteps");
    // Paper-scale generation is cheap (pure O(T·C) synthesis).
    let rows = [
        forecast::etth1(default_len::ETTH, 0),
        forecast::etth2(default_len::ETTH, 0),
        forecast::ettm1(default_len::ETTM, 0),
        forecast::ettm2(default_len::ETTM, 0),
        forecast::exchange(default_len::EXCHANGE, 0),
        forecast::weather(default_len::WEATHER, 0),
    ];
    for ds in &rows {
        println!(
            "{:<16} {:>9} {:>10}  {}",
            ds.name,
            ds.features(),
            ds.timesteps(),
            ds.frequency
        );
    }
    println!("\nPaper row check:");
    let expected = [
        ("ETTh1", 7, 17_420),
        ("ETTh2", 7, 17_420),
        ("ETTm1", 7, 69_680),
        ("ETTm2", 7, 69_680),
        ("Exchange", 8, 7_588),
        ("Weather", 21, 52_696),
    ];
    for ((name, feats, steps), ds) in expected.iter().zip(rows.iter()) {
        assert_eq!(ds.name, *name);
        assert_eq!(ds.features(), *feats, "{name} feature count");
        assert_eq!(ds.timesteps(), *steps, "{name} timesteps");
        println!("  {name}: OK");
    }
}
