//! Kill-and-resume probe for CI: verifies the crash-safe checkpoint
//! contract end to end, across process boundaries (DESIGN.md §11).
//!
//! Three modes, each a separate process invocation so the resume path
//! genuinely reconstructs everything from disk:
//!
//! * `straight <model-out>` — pretrain 4 epochs in one go, save the final
//!   parameter checkpoint.
//! * `phase1 <state-out>` — pretrain 2 epochs with `checkpoint_every = 2`,
//!   writing a training-state snapshot, then exit (the "kill").
//! * `phase2 <state-in> <model-out>` — resume from the snapshot for the
//!   remaining 2 epochs, save the final parameter checkpoint.
//!
//! `ci.sh` byte-compares the `straight` and `phase2` model files at
//! `TIMEDRL_THREADS=1` and `4`: any difference means resume lost part of
//! the training state (optimizer moments, a PRNG stream position, a
//! counter) or a reduction order changed with thread count.

use timedrl::config::TimeDrlConfig;
use timedrl::model::TimeDrl;
use timedrl::trainer::pretrain;
use timedrl_tensor::NdArray;

fn usage() -> ! {
    eprintln!(
        "usage: resume_probe straight <model-out>\n\
         \x20      resume_probe phase1 <state-out>\n\
         \x20      resume_probe phase2 <state-in> <model-out>"
    );
    std::process::exit(2);
}

fn base_cfg() -> TimeDrlConfig {
    let mut cfg = TimeDrlConfig::forecasting(32);
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.batch_size = 8;
    cfg.seed = 77;
    cfg
}

/// Deterministic windows: pure sinusoids, no RNG involved, so every
/// process invocation trains on identical data.
fn windows() -> NdArray {
    NdArray::from_fn(&[16, 32, 1], |flat| {
        let (i, step) = (flat / 32, flat % 32);
        (step as f32 * 0.4 + i as f32 * 0.3).sin()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("straight") => {
            let [_, model_out] = args.as_slice() else { usage() };
            let mut cfg = base_cfg();
            cfg.epochs = 4;
            let model = TimeDrl::new(cfg);
            let report = pretrain(&model, &windows()).expect("straight pretrain failed");
            model.save(model_out).expect("write model checkpoint");
            println!("resume_probe straight: {} epochs, saved {model_out}", report.total.len());
        }
        Some("phase1") => {
            let [_, state_out] = args.as_slice() else { usage() };
            let mut cfg = base_cfg();
            cfg.epochs = 2;
            cfg.checkpoint_every = Some(2);
            cfg.checkpoint_path = Some(state_out.into());
            let model = TimeDrl::new(cfg);
            let report = pretrain(&model, &windows()).expect("phase1 pretrain failed");
            println!("resume_probe phase1: {} epochs, snapshot {state_out}", report.total.len());
        }
        Some("phase2") => {
            let [_, state_in, model_out] = args.as_slice() else { usage() };
            let mut cfg = base_cfg();
            cfg.epochs = 4;
            cfg.resume_from = Some(state_in.into());
            let model = TimeDrl::new(cfg);
            let report = pretrain(&model, &windows()).unwrap_or_else(|e| {
                eprintln!("resume_probe phase2: {e}");
                std::process::exit(1);
            });
            model.save(model_out).expect("write model checkpoint");
            println!(
                "resume_probe phase2: resumed to {} epochs, saved {model_out}",
                report.total.len()
            );
        }
        _ => usage(),
    }
}
