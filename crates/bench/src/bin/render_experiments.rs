//! Renders EXPERIMENTS.md from the JSON artifacts in `results/` — the
//! paper-vs-measured ledger for every table and figure.
//!
//! ```text
//! cargo run -p timedrl-bench --release --bin render_experiments
//! ```
//!
//! Run `all_experiments` first; this binary only formats what it finds
//! (missing experiments render as "not yet run").

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use testkit::json::Json as Value;

fn main() {
    let results_dir = std::env::var("TIMEDRL_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    let mut out = String::new();
    out.push_str(HEADER);

    render_table3(&mut out, &load(&results_dir, "table3_forecast_multi"));
    render_table4(&mut out, &load(&results_dir, "table4_forecast_uni"));
    render_table5(&mut out, &load(&results_dir, "table5_classification"));
    render_fig4(&mut out, &load(&results_dir, "fig4_pretrain_time"));
    render_fig5(&mut out, &load(&results_dir, "fig5_semisupervised"));
    render_fig6(&mut out, &load(&results_dir, "fig6_lambda_sensitivity"));
    render_table6(&mut out, &load(&results_dir, "table6_augmentation"));
    render_table7(&mut out, &load(&results_dir, "table7_pooling"));
    render_table8(&mut out, &load(&results_dir, "table8_encoders"));
    render_table9(&mut out, &load(&results_dir, "table9_stop_gradient"));
    render_extensions(
        &mut out,
        &load(&results_dir, "ablation_anisotropy"),
        &load(&results_dir, "ablation_channel_independence"),
    );

    out.push_str(FOOTER);
    fs::write("EXPERIMENTS.md", &out).expect("write EXPERIMENTS.md");
    println!("EXPERIMENTS.md written ({} bytes)", out.len());
}

fn load(dir: &std::path::Path, name: &str) -> Vec<Value> {
    let path = dir.join(format!("{name}.json"));
    let Ok(text) = fs::read_to_string(&path) else {
        return Vec::new();
    };
    Value::parse(&text)
        .ok()
        .and_then(|v| v.get("records").and_then(|r| r.as_array()).cloned())
        .unwrap_or_default()
}

fn f(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
}

fn s<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key).and_then(Value::as_str).unwrap_or("?")
}

fn not_run(out: &mut String) {
    out.push_str("*(not yet run — execute `all_experiments` first)*\n\n");
}

const FORECAST_METHODS: [&str; 7] = ["TimeDRL", "SimTS", "TS2Vec", "TNC", "CoST", "Informer", "TCN"];

fn render_forecast_table(out: &mut String, records: &[Value]) {
    // Group rows by (dataset, horizon), columns by method.
    let mut keys: Vec<(String, u64)> = Vec::new();
    for r in records {
        let k = (s(r, "dataset").to_string(), r.get("horizon").and_then(Value::as_u64).unwrap_or(0));
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    out.push_str("| dataset | T |");
    for m in FORECAST_METHODS {
        let _ = write!(out, " {m} |");
    }
    out.push('\n');
    out.push_str("|---|---|");
    for _ in FORECAST_METHODS {
        out.push_str("---|");
    }
    out.push('\n');
    let mut totals = vec![0.0f64; FORECAST_METHODS.len()];
    for (ds, h) in &keys {
        let _ = write!(out, "| {ds} | {h} |");
        for (mi, m) in FORECAST_METHODS.iter().enumerate() {
            let cell = records.iter().find(|r| {
                s(r, "dataset") == ds
                    && r.get("horizon").and_then(Value::as_u64) == Some(*h)
                    && s(r, "method") == *m
            });
            match cell {
                Some(r) => {
                    let mse = f(r, "mse");
                    totals[mi] += mse;
                    let _ = write!(out, " {mse:.3} |");
                }
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    let n = keys.len().max(1) as f64;
    out.push_str("| **avg** | |");
    for t in &totals {
        let _ = write!(out, " **{:.3}** |", t / n);
    }
    out.push('\n');
    let timedrl = totals[0] / n;
    let best = totals[1..].iter().cloned().fold(f64::INFINITY, f64::min) / n;
    let _ = write!(
        out,
        "\nTimeDRL average MSE {:.3} vs best baseline {:.3}: **{:+.1}%**.\n\n",
        timedrl,
        best,
        (timedrl - best) / best * 100.0
    );
}

fn render_table3(out: &mut String, records: &[Value]) {
    out.push_str("## Table III — multivariate forecasting (linear evaluation, MSE)\n\n");
    out.push_str(
        "Paper: TimeDRL best in every cell; **58.02% average MSE improvement** \
         over the strongest baseline, largest margins on ETTh2/long horizons.\n\nMeasured:\n\n",
    );
    if records.is_empty() {
        return not_run(out);
    }
    render_forecast_table(out, records);
}

fn render_table4(out: &mut String, records: &[Value]) {
    out.push_str("## Table IV — univariate forecasting (linear evaluation, MSE)\n\n");
    out.push_str("Paper: **29.09% average MSE improvement**; TimeDRL best or second-best nearly everywhere.\n\nMeasured:\n\n");
    if records.is_empty() {
        return not_run(out);
    }
    render_forecast_table(out, records);
}

fn render_table5(out: &mut String, records: &[Value]) {
    out.push_str("## Table V — classification (linear evaluation, percent)\n\n");
    out.push_str(
        "Paper: **+1.48% average accuracy** over the best baseline; biggest win on \
         FingerMovements (64.00 ACC vs ~52 best baseline); near-parity on the ~90%+ datasets.\n\nMeasured (ACC / MF1 / κ):\n\n",
    );
    if records.is_empty() {
        return not_run(out);
    }
    let mut datasets: Vec<String> = Vec::new();
    let mut methods: Vec<String> = Vec::new();
    for r in records {
        let d = s(r, "dataset").to_string();
        let m = s(r, "method").to_string();
        if !datasets.contains(&d) {
            datasets.push(d);
        }
        if !methods.contains(&m) {
            methods.push(m);
        }
    }
    out.push_str("| dataset |");
    for m in &methods {
        let _ = write!(out, " {m} |");
    }
    out.push_str("\n|---|");
    for _ in &methods {
        out.push_str("---|");
    }
    out.push('\n');
    for d in &datasets {
        let _ = write!(out, "| {d} |");
        for m in &methods {
            match records.iter().find(|r| s(r, "dataset") == d && s(r, "method") == m) {
                Some(r) => {
                    let _ = write!(out, " {:.1}/{:.1}/{:.1} |", f(r, "acc"), f(r, "mf1"), f(r, "kappa"));
                }
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out.push('\n');
}

fn render_fig4(out: &mut String, records: &[Value]) {
    out.push_str("## Fig. 4 — pre-training wall-clock (seconds)\n\n");
    out.push_str(
        "Paper: conv encoders (SimTS/TS2Vec) fastest; TimeDRL slower but patching \
         cuts the Transformer's quadratic cost substantially.\n\nMeasured (T=512, batch 32):\n\n",
    );
    if records.is_empty() {
        return not_run(out);
    }
    out.push_str("| dataset | method | seconds |\n|---|---|---|\n");
    for r in records {
        let _ = writeln!(out, "| {} | {} | {:.2} |", s(r, "dataset"), s(r, "method"), f(r, "seconds"));
    }
    out.push('\n');
}

fn render_fig5(out: &mut String, records: &[Value]) {
    out.push_str("## Fig. 5 — semi-supervised learning\n\n");
    out.push_str(
        "Paper: TimeDRL (FT) beats supervised-only everywhere; the gap widens as \
         labels shrink.\n\nMeasured (forecast rows: MSE, lower better; classify rows: ACC %, higher better):\n\n",
    );
    if records.is_empty() {
        return not_run(out);
    }
    out.push_str("| task | dataset | labels | supervised | TimeDRL (FT) |\n|---|---|---|---|---|\n");
    for r in records {
        let _ = writeln!(
            out,
            "| {} | {} | {:.0}% | {:.3} | {:.3} |",
            s(r, "task"),
            s(r, "dataset"),
            f(r, "label_fraction") * 100.0,
            f(r, "supervised"),
            f(r, "timedrl_ft")
        );
    }
    out.push('\n');
}

fn render_fig6(out: &mut String, records: &[Value]) {
    out.push_str("## Fig. 6 — λ sensitivity\n\n");
    out.push_str(
        "Paper: tiny λ starves the contrastive task (forecast MSE rises); huge λ \
         starves the predictive task (accuracy falls); λ = 1 is near-optimal for both.\n\nMeasured:\n\n",
    );
    if records.is_empty() {
        return not_run(out);
    }
    out.push_str("| task | dataset | λ | metric |\n|---|---|---|---|\n");
    for r in records {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.3} |",
            s(r, "task"),
            s(r, "dataset"),
            f(r, "lambda"),
            f(r, "metric")
        );
    }
    out.push('\n');
}

fn render_delta_table(out: &mut String, records: &[Value], entity_key: &str) {
    let mut entities: Vec<String> = Vec::new();
    let mut datasets: Vec<String> = Vec::new();
    for r in records {
        let e = s(r, entity_key).to_string();
        let d = s(r, "dataset").to_string();
        if !entities.contains(&e) {
            entities.push(e);
        }
        if !datasets.contains(&d) {
            datasets.push(d);
        }
    }
    out.push_str("| variant |");
    for d in &datasets {
        let _ = write!(out, " {d} (MSE, Δ%) |");
    }
    out.push_str("\n|---|");
    for _ in &datasets {
        out.push_str("---|");
    }
    out.push('\n');
    for e in &entities {
        let _ = write!(out, "| {e} |");
        for d in &datasets {
            match records.iter().find(|r| s(r, entity_key) == e && s(r, "dataset") == d) {
                Some(r) => {
                    let _ = write!(out, " {:.3} ({:+.1}%) |", f(r, "mse"), f(r, "delta_pct"));
                }
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out.push('\n');
}

fn render_table6(out: &mut String, records: &[Value]) {
    out.push_str("## Table VI — augmentation ablation (forecast MSE, T=168)\n\n");
    out.push_str(
        "Paper: every augmentation worsens MSE (ETTh1 +4.8%..+68.2%, Exchange \
         +2.1%..+174.5%); Rotation worst, Masking mildest.\n\nMeasured:\n\n",
    );
    if records.is_empty() {
        return not_run(out);
    }
    render_delta_table(out, records, "augmentation");
}

fn render_table7(out: &mut String, records: &[Value]) {
    out.push_str("## Table VII — pooling ablation (accuracy %)\n\n");
    out.push_str(
        "Paper: [CLS] best (FingerMovements 63.00, Epilepsy 95.83); every pooled \
         derivation loses, GAP worst (−19.05% / −16.75%).\n\nMeasured:\n\n",
    );
    if records.is_empty() {
        return not_run(out);
    }
    let mut poolings: Vec<String> = Vec::new();
    for r in records {
        let p = s(r, "pooling").to_string();
        if !poolings.contains(&p) {
            poolings.push(p);
        }
    }
    out.push_str("| pooling | FingerMovements | Epilepsy |\n|---|---|---|\n");
    for p in &poolings {
        let cell = |d: &str| {
            records
                .iter()
                .find(|r| s(r, "pooling") == p && s(r, "dataset") == d)
                .map(|r| format!("{:.1}", f(r, "acc")))
                .unwrap_or_else(|| "—".into())
        };
        let _ = writeln!(out, "| {p} | {} | {} |", cell("FingerMovements"), cell("Epilepsy"));
    }
    out.push('\n');
}

fn render_table8(out: &mut String, records: &[Value]) {
    out.push_str("## Table VIII — encoder ablation (forecast MSE, T=168)\n\n");
    out.push_str(
        "Paper: Transformer encoder best; decoder (causal) +11.3% on ETTh1; \
         Bi-LSTM beats LSTM — full temporal access matters.\n\nMeasured:\n\n",
    );
    if records.is_empty() {
        return not_run(out);
    }
    render_delta_table(out, records, "encoder");
}

fn render_table9(out: &mut String, records: &[Value]) {
    out.push_str("## Table IX — stop-gradient ablation (accuracy %)\n\n");
    out.push_str(
        "Paper: removing stop-gradient drops accuracy (FingerMovements −11.1%, \
         Epilepsy −16.8%).\n\nMeasured (accuracy %, plus embedding std as a collapse diagnostic):\n\n",
    );
    if records.is_empty() {
        return not_run(out);
    }
    out.push_str("| dataset | stop-gradient | ACC % | embedding std |\n|---|---|---|---|\n");
    for r in records {
        let sg = r.get("stop_gradient").and_then(Value::as_bool).unwrap_or(false);
        let _ = writeln!(
            out,
            "| {} | {} | {:.1} | {:.4} |",
            s(r, "dataset"),
            if sg { "w/ SG (Ours)" } else { "w/o SG" },
            f(r, "acc"),
            f(r, "embedding_std")
        );
    }
    out.push('\n');
}

fn render_extensions(out: &mut String, aniso: &[Value], ci: &[Value]) {
    out.push_str("## Extension A — anisotropy diagnostics (Fig. 1's argument, quantified)\n\n");
    out.push_str(
        "Claim: pooled instance embeddings live in a narrow cone (high mean pairwise \
         cosine); GAP worst.\n\nMeasured:\n\n",
    );
    if aniso.is_empty() {
        not_run(out);
    } else {
        out.push_str("| dataset | pooling | mean cosine | participation ratio |\n|---|---|---|---|\n");
        for r in aniso {
            let _ = writeln!(
                out,
                "| {} | {} | {:.3} | {:.1} |",
                s(r, "dataset"),
                s(r, "pooling"),
                f(r, "mean_cosine"),
                f(r, "participation_ratio")
            );
        }
        out.push('\n');
    }
    out.push_str("## Extension B — channel-independence vs channel-mixing\n\n");
    out.push_str("Paper (Section V.4): channel-independence enhances forecasting.\n\nMeasured:\n\n");
    if ci.is_empty() {
        not_run(out);
    } else {
        out.push_str("| dataset | mode | MSE | MAE |\n|---|---|---|---|\n");
        for r in ci {
            let _ = writeln!(
                out,
                "| {} | {} | {:.3} | {:.3} |",
                s(r, "dataset"),
                s(r, "mode"),
                f(r, "mse"),
                f(r, "mae")
            );
        }
        out.push('\n');
    }
}

const HEADER: &str = "\
# EXPERIMENTS — paper vs measured

Every table and figure of the TimeDRL paper's evaluation section,
regenerated by this reproduction. **Absolute numbers are not comparable to
the paper's** (DESIGN.md §2: synthetic data standing in for the 11 public
datasets; d_model 32 / 2-block encoders / 3 pre-training epochs on one CPU
core standing in for the paper's GPU-scale training). What the
reproduction targets — and what each section below compares — is the
*shape* of every result: who wins, in which direction each ablation
moves, where the crossovers fall.

Scaling map (experiment scale, `Scale::Full`): series length 3000
(vs 7.5k–70k), horizons {24, 96, 168} (vs {24,48,168,336,720}),
lookback 64 with stride-16 windows, 300 samples per classification
dataset, 3 pre-training epochs, logistic probes 200 epochs, ridge λ = 1.
Every binary accepts `--quick` for a smoke-scale run.

Regenerate with:

```sh
cargo build -p timedrl-bench --release --bins
./target/release/all_experiments          # ~1 h on one CPU core
./target/release/render_experiments       # rebuilds this file from results/
```

Tables I–II (dataset statistics) are verified programmatically by their
binaries — each generator asserts the published feature counts, lengths,
sample counts, and class counts — and are omitted here.

";

const FOOTER: &str = "\
## Reading the ledger

Honest deviations to know about:

- Per-cell winners in Tables III/IV vary more than in the paper: at this
  scale the convolutional baselines are strong on the smoother, more
  stationary cells (short-horizon ETTh1/ETTm1), while TimeDRL's advantage
  concentrates where the paper's is largest — volatile (ETTh2-family),
  drifting (Exchange), and long-horizon cells. The aggregate direction
  matches the paper.
- Fig. 4's absolute seconds are CPU seconds on a single core; the paper's
  are RTX 3070 seconds. The ordering (conv < TimeDRL-patched <
  TimeDRL-unpatched) is the reproduced claim.
- The `--quick` preset is deliberately underpowered for TimeDRL (too few
  pre-training windows for a Transformer); use the full scale for any
  method comparison.
";
