//! Table III: linear evaluation on **multivariate** time-series
//! forecasting — TimeDRL vs SimTS, TS2Vec, TNC, CoST (unsupervised
//! representation learning) and Informer, TCN (end-to-end), across the six
//! forecasting datasets and the scaled horizon grid.
//!
//! Output: one row per (dataset, horizon) with MSE/MAE per method, plus
//! the per-method average rank and TimeDRL's relative MSE improvement —
//! the paper's headline "58.02% average MSE improvement" counterpart.

use timedrl_baselines::{Cost, Informer, SimTs, TcnForecaster, Tnc, Ts2Vec};
use timedrl_bench::registry::forecast_registry;
use timedrl_bench::runners::{
    baseline_forecast_config, forecast_data, run_e2e_forecast, run_ssl_forecast,
    run_timedrl_forecast,
};
use timedrl_bench::table::ForecastRecord;
use timedrl_bench::{ResultSink, Scale};

const METHODS: [&str; 7] = ["TimeDRL", "SimTS", "TS2Vec", "TNC", "CoST", "Informer", "TCN"];

fn main() {
    let scale = Scale::from_args();
    let seed = 7u64;
    let mut sink = ResultSink::new("table3_forecast_multi");

    println!("Table III. Linear evaluation on multivariate time-series forecasting.");
    println!("(scaled reproduction: lookback {}, horizons {:?}, synthetic data)\n", scale.lookback(), scale.horizons());
    print!("{:<10} {:>4}", "dataset", "T");
    for m in METHODS {
        print!(" | {m:>8} MSE {m:>8} MAE");
    }
    println!();

    // Per-method cumulative MSE (for the improvement summary).
    let mut totals = vec![0.0f64; METHODS.len()];
    let mut cells = 0usize;

    for ds in forecast_registry(scale) {
        for &horizon in &scale.horizons() {
            let data = forecast_data(&ds, horizon, scale);
            let mut results = Vec::with_capacity(METHODS.len());

            results.push(run_timedrl_forecast(&data, scale, seed));
            let bcfg = baseline_forecast_config(scale, seed);
            results.push(run_ssl_forecast(&mut SimTs::new(bcfg.clone()), &data));
            results.push(run_ssl_forecast(&mut Ts2Vec::new(bcfg.clone()), &data));
            results.push(run_ssl_forecast(&mut Tnc::new(bcfg.clone()), &data));
            results.push(run_ssl_forecast(&mut Cost::new(bcfg.clone()), &data));
            results.push(run_e2e_forecast(&mut Informer::new(bcfg.clone(), horizon), &data));
            results.push(run_e2e_forecast(&mut TcnForecaster::new(bcfg, horizon), &data));

            print!("{:<10} {:>4}", ds.name, horizon);
            for (i, r) in results.iter().enumerate() {
                print!(" |    {:>9.3}    {:>9.3}", r.mse, r.mae);
                totals[i] += r.mse as f64;
                sink.push(ForecastRecord {
                    dataset: ds.name.to_string(),
                    horizon,
                    method: METHODS[i].to_string(),
                    mse: r.mse,
                    mae: r.mae,
                });
            }
            println!();
            cells += 1;
        }
    }

    println!("\nAverage MSE over {cells} (dataset, horizon) cells:");
    for (m, t) in METHODS.iter().zip(totals.iter()) {
        println!("  {m:<10} {:.4}", t / cells as f64);
    }
    let timedrl = totals[0] / cells as f64;
    let best_baseline = totals[1..].iter().cloned().fold(f64::INFINITY, f64::min) / cells as f64;
    println!(
        "\nTimeDRL vs best baseline average MSE: {:.4} vs {:.4} ({:+.2}% change)",
        timedrl,
        best_baseline,
        (timedrl - best_baseline) / best_baseline * 100.0
    );
    let path = sink.write();
    println!("results written to {}", path.display());
}
