//! Table IV: linear evaluation on **univariate** time-series forecasting —
//! the same method grid as Table III, restricted to each dataset's target
//! channel (oil temperature for ETT, "Singapore" for Exchange, "wet bulb"
//! for Weather).

use timedrl_baselines::{Cost, Informer, SimTs, TcnForecaster, Tnc, Ts2Vec};
use timedrl_bench::registry::forecast_registry;
use timedrl_bench::runners::{
    baseline_forecast_config, forecast_data, run_e2e_forecast, run_ssl_forecast,
    run_timedrl_forecast,
};
use timedrl_bench::table::ForecastRecord;
use timedrl_bench::{ResultSink, Scale};

const METHODS: [&str; 7] = ["TimeDRL", "SimTS", "TS2Vec", "TNC", "CoST", "Informer", "TCN"];

fn main() {
    let scale = Scale::from_args();
    let seed = 7u64;
    let mut sink = ResultSink::new("table4_forecast_uni");

    println!("Table IV. Linear evaluation on univariate time-series forecasting.");
    println!("(scaled reproduction: target channel only per dataset)\n");
    print!("{:<10} {:>4}", "dataset", "T");
    for m in METHODS {
        print!(" | {m:>8} MSE {m:>8} MAE");
    }
    println!();

    let mut totals = vec![0.0f64; METHODS.len()];
    let mut cells = 0usize;

    for ds in forecast_registry(scale) {
        let uni = ds.univariate();
        for &horizon in &scale.horizons() {
            let data = forecast_data(&uni, horizon, scale);
            let mut results = Vec::with_capacity(METHODS.len());

            results.push(run_timedrl_forecast(&data, scale, seed));
            let bcfg = baseline_forecast_config(scale, seed);
            results.push(run_ssl_forecast(&mut SimTs::new(bcfg.clone()), &data));
            results.push(run_ssl_forecast(&mut Ts2Vec::new(bcfg.clone()), &data));
            results.push(run_ssl_forecast(&mut Tnc::new(bcfg.clone()), &data));
            results.push(run_ssl_forecast(&mut Cost::new(bcfg.clone()), &data));
            results.push(run_e2e_forecast(&mut Informer::new(bcfg.clone(), horizon), &data));
            results.push(run_e2e_forecast(&mut TcnForecaster::new(bcfg, horizon), &data));

            print!("{:<10} {:>4}", uni.name, horizon);
            for (i, r) in results.iter().enumerate() {
                print!(" |    {:>9.3}    {:>9.3}", r.mse, r.mae);
                totals[i] += r.mse as f64;
                sink.push(ForecastRecord {
                    dataset: uni.name.to_string(),
                    horizon,
                    method: METHODS[i].to_string(),
                    mse: r.mse,
                    mae: r.mae,
                });
            }
            println!();
            cells += 1;
        }
    }

    println!("\nAverage univariate MSE over {cells} cells:");
    for (m, t) in METHODS.iter().zip(totals.iter()) {
        println!("  {m:<10} {:.4}", t / cells as f64);
    }
    let path = sink.write();
    println!("results written to {}", path.display());
}
