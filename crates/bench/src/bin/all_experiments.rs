//! Runs every table/figure binary in sequence — the one-command
//! regeneration entry point for EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p timedrl-bench --release --bin all_experiments [-- --quick]
//! ```

use std::process::Command;

const EXPERIMENTS: [&str; 13] = [
    "table1_datasets",
    "table2_datasets",
    "table3_forecast_multi",
    "table4_forecast_uni",
    "table5_classification",
    "fig4_pretrain_time",
    "fig5_semisupervised",
    "fig6_lambda_sensitivity",
    "table6_augmentation",
    "table7_pooling",
    "table8_encoders",
    "ablation_anisotropy",
    "ablation_channel_independence",
];
const LAST: &str = "table9_stop_gradient";

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let mut failed = Vec::new();
    for name in EXPERIMENTS.iter().chain(std::iter::once(&LAST)) {
        println!("\n================== {name} ==================\n");
        let mut cmd = Command::new(exe_dir.join(name));
        if quick {
            cmd.arg("--quick");
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{name} exited with {status}");
                failed.push(*name);
            }
            Err(e) => {
                eprintln!(
                    "{name} failed to launch ({e}); build all binaries first: \
                     cargo build -p timedrl-bench --release --bins"
                );
                failed.push(*name);
            }
        }
    }

    println!("\n=============================================");
    if failed.is_empty() {
        println!("All {} experiments completed.", EXPERIMENTS.len() + 1);
    } else {
        println!("Failed experiments: {failed:?}");
        std::process::exit(1);
    }
}
