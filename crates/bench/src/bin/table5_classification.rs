//! Table V: linear evaluation on time-series classification — TimeDRL vs
//! MHCCL, CCL, SimCLR, BYOL, TS2Vec, TS-TCC, T-Loss across the five
//! classification datasets, reporting ACC / MF1 / Cohen's κ (percent).

use timedrl_baselines::{classification_baselines, SslMethod};
use timedrl_bench::registry::classify_registry;
use timedrl_bench::runners::{
    baseline_classify_config, run_ssl_classification, run_timedrl_classification,
};
use timedrl_bench::table::ClassifyRecord;
use timedrl_bench::{ResultSink, Scale};
use timedrl_tensor::Prng;

fn main() {
    let scale = Scale::from_args();
    let seed = 11u64;
    let mut sink = ResultSink::new("table5_classification");

    println!("Table V. Linear evaluation on time-series classification (percent).\n");
    println!(
        "{:<18} {:<10} {:>8} {:>8} {:>8}",
        "dataset", "method", "ACC", "MF1", "kappa"
    );

    let mut acc_totals: Vec<(String, f64, usize)> = Vec::new();

    for ds in classify_registry(scale) {
        let (train, test) = ds.train_test_split(0.6, &mut Prng::new(seed)).unwrap();

        // TimeDRL first, then the seven baselines.
        let report = run_timedrl_classification(&train, &test, scale, seed);
        let mut rows = vec![("TimeDRL".to_string(), report)];
        let bcfg = baseline_classify_config(&ds, scale, seed);
        let methods: Vec<Box<dyn SslMethod>> = classification_baselines(&bcfg, ds.n_classes);
        for mut method in methods {
            let name = method.name().to_string();
            let report = run_ssl_classification(method.as_mut(), &train, &test, scale, seed);
            rows.push((name, report));
        }

        for (name, r) in &rows {
            let (acc, mf1, kappa) = r.as_percentages();
            println!("{:<18} {:<10} {acc:>8.2} {mf1:>8.2} {kappa:>8.2}", ds.name, name);
            sink.push(ClassifyRecord {
                dataset: ds.name.to_string(),
                method: name.clone(),
                acc,
                mf1,
                kappa,
            });
            match acc_totals.iter_mut().find(|(n, _, _)| n == name) {
                Some(entry) => {
                    entry.1 += acc as f64;
                    entry.2 += 1;
                }
                None => acc_totals.push((name.clone(), acc as f64, 1)),
            }
        }
        println!();
    }

    println!("Average accuracy across datasets:");
    for (name, total, n) in &acc_totals {
        println!("  {name:<10} {:.2}%", total / *n as f64);
    }
    let path = sink.write();
    println!("results written to {}", path.display());
}
