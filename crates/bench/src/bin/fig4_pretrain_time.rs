//! Fig. 4: pre-training wall-clock comparison — TimeDRL (Transformer with
//! patching) vs SimTS and TS2Vec (convolutional encoders) on the
//! forecasting datasets.
//!
//! The paper fixes batch 32, 10 epochs, sequence length 512 on an RTX
//! 3070; this CPU reproduction fixes batch 32, sequence length 512, and a
//! scaled epoch count, and also reports TimeDRL *without* patching
//! (patch length 1) to demonstrate the quadratic attention-cost reduction
//! the paper credits the patching mechanism with.

use testkit::impl_to_json;
use std::time::Instant;
use timedrl::{pretrain, TimeDrl, TimeDrlConfig};
use timedrl_baselines::{BaselineConfig, SimTs, SslMethod, Ts2Vec};
use timedrl_bench::registry::forecast_registry;
use timedrl_bench::{ResultSink, Scale};
use timedrl_data::{chrono_split, sliding_windows, PatchConfig};
use timedrl::channel_independent;

struct TimingRecord {
    dataset: String,
    method: String,
    seconds: f64,
}

impl_to_json!(TimingRecord { dataset, method, seconds });

fn main() {
    let scale = Scale::from_args();
    // Quick mode shrinks T so the 60% train split of the reduced series
    // still yields windows.
    let seq_len = if scale == Scale::Quick { 256 } else { 512 };
    let epochs = if scale == Scale::Quick { 1 } else { 2 };
    // Enough windows for a handful of batches per epoch.
    let n_windows = if scale == Scale::Quick { 32 } else { 96 };
    let mut sink = ResultSink::new("fig4_pretrain_time");

    println!("Fig. 4: pre-training wall-clock (seconds), T={seq_len}, batch 32, {epochs} epoch(s).\n");
    println!(
        "{:<10} {:>12} {:>18} {:>10} {:>10}",
        "dataset", "TimeDRL", "TimeDRL(no patch)", "SimTS", "TS2Vec"
    );

    for ds in forecast_registry(scale) {
        // Build fixed-count windows from the train split (univariate fold).
        let split = chrono_split(&ds);
        let w = sliding_windows(&split.train, seq_len, 1, 8);
        if w.is_empty() {
            // The scaled series is shorter than T=512 + margin; extend it
            // logically by tiling the split (timing only — content is
            // irrelevant to wall-clock).
            println!("{:<10} (series too short at this scale; skipped)", ds.name);
            continue;
        }
        let folded = channel_independent(&w.inputs);
        let take = n_windows.min(folded.shape()[0]);
        let windows = folded.slice(0, 0, take).expect("window subset");

        // TimeDRL with patching (P=S=16 -> 32 tokens + CLS).
        let timedrl_s = time(|| {
            let mut cfg = TimeDrlConfig::forecasting(seq_len);
            cfg.patch = PatchConfig::non_overlapping(16);
            cfg.epochs = epochs;
            let model = TimeDrl::new(cfg);
            pretrain(&model, &windows).expect("pre-training failed");
        });

        // TimeDRL without patching (P=S=4 -> 128 tokens + CLS): attention
        // cost grows quadratically with token count. (P=1 would be the
        // paper's literal point-level input; P=4 keeps the demo tractable
        // while already showing the super-linear growth.)
        let no_patch_s = time(|| {
            let mut cfg = TimeDrlConfig::forecasting(seq_len);
            cfg.patch = PatchConfig::non_overlapping(4);
            cfg.epochs = epochs;
            let model = TimeDrl::new(cfg);
            pretrain(&model, &windows).expect("pre-training failed");
        });

        let simts_s = time(|| {
            let mut cfg = BaselineConfig::compact(seq_len, 1);
            cfg.epochs = epochs;
            SimTs::new(cfg).pretrain(&windows);
        });

        let ts2vec_s = time(|| {
            let mut cfg = BaselineConfig::compact(seq_len, 1);
            cfg.epochs = epochs;
            Ts2Vec::new(cfg).pretrain(&windows);
        });

        println!(
            "{:<10} {timedrl_s:>12.2} {no_patch_s:>18.2} {simts_s:>10.2} {ts2vec_s:>10.2}",
            ds.name
        );
        for (method, s) in [
            ("TimeDRL", timedrl_s),
            ("TimeDRL(no patch)", no_patch_s),
            ("SimTS", simts_s),
            ("TS2Vec", ts2vec_s),
        ] {
            sink.push(TimingRecord { dataset: ds.name.to_string(), method: method.into(), seconds: s });
        }
    }

    println!("\nExpected shape (paper): conv methods fastest; TimeDRL slower but");
    println!("patching closes most of the gap vs the unpatched Transformer.");
    let path = sink.write();
    println!("results written to {}", path.display());
}

fn time(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}
