//! Table II: statistical overview of the classification datasets.
//!
//! Prints the generators' paper-scale statistics (samples, features,
//! classes, length) and verifies each matches the published Table II row.
//! Generating the full sample counts takes a few seconds; pass `--quick`
//! to check shapes at 1/10 sample counts instead.

use timedrl_bench::Scale;
use timedrl_data::synth::classify::{self, default_n};

fn main() {
    let quick = Scale::from_args() == Scale::Quick;
    let scale_n = |n: usize| if quick { n / 10 } else { n };
    println!("Table II. Statistical overview of the classification datasets.\n");
    println!(
        "{:<18} {:>8} {:>9} {:>8} {:>7}",
        "Datasets", "Samples", "Features", "Classes", "Length"
    );
    let rows = [
        classify::finger_movements(scale_n(default_n::FINGER_MOVEMENTS), 0),
        classify::pendigits(scale_n(default_n::PENDIGITS), 0),
        classify::har(scale_n(default_n::HAR), 0),
        classify::epilepsy(scale_n(default_n::EPILEPSY), 0),
        classify::wisdm(scale_n(default_n::WISDM), 0),
    ];
    for ds in &rows {
        println!(
            "{:<18} {:>8} {:>9} {:>8} {:>7}",
            ds.name,
            ds.len(),
            ds.features(),
            ds.n_classes,
            ds.sample_len()
        );
    }
    println!("\nPaper row check (features / classes / length):");
    let expected = [
        ("FingerMovements", 28, 2, 50),
        ("PenDigits", 2, 10, 8),
        ("HAR", 9, 6, 128),
        ("Epilepsy", 1, 2, 178),
        ("WISDM", 3, 6, 256),
    ];
    for ((name, feats, classes, len), ds) in expected.iter().zip(rows.iter()) {
        assert_eq!(ds.name, *name);
        assert_eq!(ds.features(), *feats, "{name} features");
        assert_eq!(ds.n_classes, *classes, "{name} classes");
        assert_eq!(ds.sample_len(), *len, "{name} length");
        println!("  {name}: OK");
    }
}
