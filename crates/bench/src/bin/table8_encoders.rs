//! Table VIII: ablation study on the backbone encoder architecture —
//! Transformer encoder (TimeDRL's choice) vs Transformer decoder (causal),
//! 1-D ResNet, TCN, LSTM, and Bi-LSTM, on ETTh1 and Exchange forecasting.
//!
//! The paper's expected ordering: the bidirectional Transformer wins;
//! causal/unidirectional variants (decoder, TCN, LSTM) trail their
//! bidirectional counterparts — full temporal access per timestamp
//! matters.

use testkit::impl_to_json;
use timedrl::{forecast_linear_eval, EncoderKind};
use timedrl_bench::registry::forecast_by_name;
use timedrl_bench::runners::{forecast_data, timedrl_forecast_config};
use timedrl_bench::{ResultSink, Scale};

struct EncoderRecord {
    dataset: String,
    encoder: String,
    mse: f32,
    delta_pct: f32,
}

impl_to_json!(EncoderRecord { dataset, encoder, mse, delta_pct });

fn main() {
    let scale = Scale::from_args();
    let seed = 29u64;
    let horizon = if scale == Scale::Quick { 24 } else { 168 };
    let mut sink = ResultSink::new("table8_encoders");

    println!("Table VIII. Ablation on the backbone encoder (forecast MSE, horizon {horizon}).\n");
    println!("{:<28} {:>10} {:>10} {:>10} {:>10}", "backbone", "ETTh1", "Δ%", "Exchange", "Δ%");

    let datasets = ["ETTh1", "Exchange"];
    let mut baselines = [0.0f32; 2];
    let mut rows: Vec<(String, [f32; 2])> = Vec::new();

    for kind in EncoderKind::ALL {
        let mut cells = [0.0f32; 2];
        for (d, name) in datasets.iter().enumerate() {
            let ds = forecast_by_name(name, scale);
            let data = forecast_data(&ds, horizon, scale);
            let mut cfg = timedrl_forecast_config(scale, seed);
            cfg.encoder = kind;
            let (_, result, _) = forecast_linear_eval(&cfg, &data, 1.0);
            cells[d] = result.mse;
        }
        if kind == EncoderKind::TransformerEncoder {
            baselines = cells;
        }
        rows.push((kind.name().to_string(), cells));
    }

    for (name, cells) in &rows {
        let d0 = (cells[0] - baselines[0]) / baselines[0] * 100.0;
        let d1 = (cells[1] - baselines[1]) / baselines[1] * 100.0;
        println!("{name:<28} {:>10.3} {d0:>+9.2}% {:>10.3} {d1:>+9.2}%", cells[0], cells[1]);
        for (d, dataset) in datasets.iter().enumerate() {
            sink.push(EncoderRecord {
                dataset: dataset.to_string(),
                encoder: name.clone(),
                mse: cells[d],
                delta_pct: (cells[d] - baselines[d]) / baselines[d] * 100.0,
            });
        }
    }

    println!("\nExpected shape (paper): Transformer encoder best; decoder (causal)");
    println!("worse than encoder; Bi-LSTM better than LSTM.");
    let path = sink.write();
    println!("results written to {}", path.display());
}
