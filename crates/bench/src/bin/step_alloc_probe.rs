//! Allocation-regression probe for CI: prints the steady-state heap
//! allocation count of one whole-batch pre-training step.
//!
//! `ci.sh` runs this with `TIMEDRL_THREADS=1` (so no pool-worker
//! allocations pollute the process-global counter) and fails if the
//! number exceeds the committed budget. The seed code allocated on the
//! order of tens of thousands of blocks per step; with the tensor buffer
//! pool the steady state must stay near-allocation-free (DESIGN.md §10).
//!
//! Output: a single line `allocs_per_step=<N>` for the gate to parse.

use timedrl_bench::StepHarness;

fn main() {
    let mut harness = StepHarness::new();
    // Two warm-up steps fill the pool buckets; average over several
    // measured steps so a one-off bucket growth doesn't dominate.
    let per_step = harness.allocations_per_step(2, 8);
    println!("allocs_per_step={per_step}");
}
