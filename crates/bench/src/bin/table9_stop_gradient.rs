//! Table IX: ablation study on the stop-gradient operation in the
//! instance-contrastive task (Eqs. 16–17). Without stop-gradient the
//! negative-free Siamese objective admits the collapsed constant solution;
//! the paper shows accuracy drops sharply on FingerMovements and Epilepsy.

use testkit::impl_to_json;
use timedrl::classification_linear_eval;
use timedrl_bench::registry::classify_by_name;
use timedrl_bench::runners::{probe_config, timedrl_classify_config};
use timedrl_bench::{ResultSink, Scale};
use timedrl_tensor::Prng;

struct SgRecord {
    dataset: String,
    stop_gradient: bool,
    acc: f32,
    embedding_std: f32,
}

impl_to_json!(SgRecord { dataset, stop_gradient, acc, embedding_std });

fn main() {
    let scale = Scale::from_args();
    let seed = 31u64;
    let mut sink = ResultSink::new("table9_stop_gradient");

    println!("Table IX. Ablation on the stop-gradient operation (accuracy, percent).\n");
    println!("{:<14} {:>18} {:>12}", "variant", "FingerMovements", "Epilepsy");

    let datasets = ["FingerMovements", "Epilepsy"];
    for (label, sg) in [("w/ SG (Ours)", true), ("w/o SG", false)] {
        let mut cells = [0.0f32; 2];
        for (d, name) in datasets.iter().enumerate() {
            let ds = classify_by_name(name, scale);
            let (train, test) = ds.train_test_split(0.6, &mut Prng::new(seed)).unwrap();
            let mut cfg = timedrl_classify_config(&train, scale, seed);
            cfg.stop_gradient = sg;
            // Emphasize the contrastive task so the collapse mechanism is
            // load-bearing (with lambda << 1 the predictive task would
            // mask the ablation).
            cfg.lambda = 5.0;
            let (model, report) =
                classification_linear_eval(&cfg, &train, &test, &probe_config(scale));
            cells[d] = report.accuracy * 100.0;
            // Collapse diagnostic: std of instance embeddings across the
            // test set.
            let emb = model.embed_instances(&test.to_batch());
            let std = emb.var_axis(0, false).mean().sqrt();
            sink.push(SgRecord {
                dataset: name.to_string(),
                stop_gradient: sg,
                acc: cells[d],
                embedding_std: std,
            });
        }
        println!("{label:<14} {:>18.2} {:>12.2}", cells[0], cells[1]);
    }

    println!("\nExpected shape (paper): removing the stop-gradient drops accuracy on");
    println!("both datasets (collapse-prone objective). The JSON records include the");
    println!("embedding std as a collapse diagnostic.");
    let path = sink.write();
    println!("results written to {}", path.display());
}
