//! Table VII: ablation study on pooling methods — the dedicated `[CLS]`
//! token (disentangled instance embedding) vs deriving the instance
//! embedding from timestamp-level embeddings via Last / GAP / All pooling,
//! on FingerMovements and Epilepsy.
//!
//! The paper's point: pooled derivations suffer the anisotropy problem;
//! `[CLS]` wins, and GAP (the common choice, e.g. TS2Vec) is worst.

use testkit::impl_to_json;
use timedrl::{classification_linear_eval, Pooling};
use timedrl_bench::registry::classify_by_name;
use timedrl_bench::runners::{probe_config, timedrl_classify_config};
use timedrl_bench::{ResultSink, Scale};
use timedrl_tensor::Prng;

struct PoolRecord {
    dataset: String,
    pooling: String,
    acc: f32,
}

impl_to_json!(PoolRecord { dataset, pooling, acc });

fn main() {
    let scale = Scale::from_args();
    let seed = 23u64;
    let mut sink = ResultSink::new("table7_pooling");

    println!("Table VII. Ablation on pooling methods (accuracy, percent).\n");
    println!("{:<14} {:>18} {:>12}", "pooling", "FingerMovements", "Epilepsy");

    let datasets = ["FingerMovements", "Epilepsy"];
    for pooling in Pooling::ALL {
        let mut cells = [0.0f32; 2];
        for (d, name) in datasets.iter().enumerate() {
            let ds = classify_by_name(name, scale);
            let (train, test) = ds.train_test_split(0.6, &mut Prng::new(seed)).unwrap();
            let mut cfg = timedrl_classify_config(&train, scale, seed);
            cfg.pooling = pooling;
            // `All` pooling widens the instance embedding beyond the
            // contrast head's width; pre-training then runs with [CLS] (as
            // in the paper, the pooling ablation concerns the downstream
            // readout) while the probe reads the flattened embedding.
            if pooling == Pooling::All {
                cfg.pooling = Pooling::Cls;
                let (model, _) =
                    classification_linear_eval(&cfg, &train, &test, &probe_config(scale));
                // Re-probe with All pooling on the frozen encoder.
                cells[d] = probe_with_pooling(&model, &train, &test, Pooling::All, scale, seed);
            } else {
                let (_, report) =
                    classification_linear_eval(&cfg, &train, &test, &probe_config(scale));
                cells[d] = report.accuracy * 100.0;
            }
        }
        println!("{:<14} {:>18.2} {:>12.2}", pooling.name(), cells[0], cells[1]);
        for (d, dataset) in datasets.iter().enumerate() {
            sink.push(PoolRecord {
                dataset: dataset.to_string(),
                pooling: pooling.name().to_string(),
                acc: cells[d],
            });
        }
    }

    println!("\nExpected shape (paper): [CLS] best on both datasets; GAP suffers the");
    println!("anisotropy problem most.");
    let path = sink.write();
    println!("results written to {}", path.display());
}

/// Probes a frozen encoder with an alternative pooling strategy.
fn probe_with_pooling(
    model: &timedrl::TimeDrl,
    train: &timedrl_data::ClassifyDataset,
    test: &timedrl_data::ClassifyDataset,
    pooling: Pooling,
    scale: Scale,
    seed: u64,
) -> f32 {
    use timedrl_eval::{classification_report, LogisticProbe};
    use timedrl_nn::Ctx;

    let embed = |ds: &timedrl_data::ClassifyDataset| {
        let batch = ds.to_batch();
        let n = batch.shape()[0];
        let mut parts = Vec::new();
        let mut ctx = Ctx::eval();
        let mut start = 0;
        while start < n {
            let len = 128.min(n - start);
            let chunk = batch.slice(0, start, len).expect("chunk");
            let enc = model.encode(&chunk, &mut ctx);
            parts.push(enc.instance(pooling).to_array());
            start += len;
        }
        let refs: Vec<&timedrl_tensor::NdArray> = parts.iter().collect();
        timedrl_tensor::NdArray::concat(&refs, 0)
    };
    let train_emb = embed(train);
    let test_emb = embed(test);
    let probe = LogisticProbe::fit(&train_emb, &train.labels, train.n_classes, &probe_config(scale), seed);
    let pred = probe.predict(&test_emb);
    classification_report(&pred, &test.labels, test.n_classes).accuracy * 100.0
}
