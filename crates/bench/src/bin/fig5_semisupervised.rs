//! Fig. 5: semi-supervised learning — supervised-only training vs TimeDRL
//! with pre-training + fine-tuning ("TimeDRL (FT)"), across label
//! fractions.
//!
//! Top panels (a–c): forecasting MSE on ETTh1/ETTh2/Exchange. Bottom
//! panels (d–f): classification accuracy on HAR/Epilepsy/PenDigits. The
//! paper's expected shape: TimeDRL (FT) dominates, and the gap widens as
//! labels get scarcer.

use testkit::impl_to_json;
use timedrl::{
    finetune_classification, finetune_forecast, pretrain, FinetuneConfig, TimeDrl,
};
use timedrl_bench::registry::{classify_by_name, forecast_by_name};
use timedrl_bench::runners::{forecast_data, timedrl_classify_config, timedrl_forecast_config};
use timedrl_bench::{line_chart, ResultSink, Scale, Series};
use timedrl_tensor::Prng;

struct SemiRecord {
    task: String,
    dataset: String,
    label_fraction: f32,
    supervised: f32,
    timedrl_ft: f32,
}

impl_to_json!(SemiRecord { task, dataset, label_fraction, supervised, timedrl_ft });

fn main() {
    let scale = Scale::from_args();
    let seed = 13u64;
    let horizon = 24usize;
    let ft = FinetuneConfig {
        epochs: if scale == Scale::Quick { 2 } else { 5 },
        ..Default::default()
    };
    let mut sink = ResultSink::new("fig5_semisupervised");

    // ---------------- Forecasting panels (a-c) ----------------
    println!("Fig. 5 (a-c): forecasting MSE vs label fraction (lower is better).\n");
    let forecast_sets: &[&str] =
        if scale == Scale::Quick { &["ETTh1"] } else { &["ETTh1", "ETTh2", "Exchange"] };
    for name in forecast_sets {
        let ds = forecast_by_name(name, scale);
        let data = forecast_data(&ds, horizon, scale);
        println!("{name}:");
        println!("{:>10} {:>14} {:>14}", "labels", "Supervised", "TimeDRL (FT)");
        let mut sup_pts = Vec::new();
        let mut ft_pts = Vec::new();
        for &frac in &scale.label_fractions() {
            // Supervised: fresh encoder, no pre-training, fine-tune on the
            // labelled subset only.
            let sup_cfg = timedrl_forecast_config(scale, seed);
            let sup_model = TimeDrl::new(sup_cfg);
            let supervised = finetune_forecast(&sup_model, &data, &ft, frac, seed).mse;

            // TimeDRL (FT): pre-train on ALL unlabeled windows, then
            // fine-tune on the labelled subset.
            let ssl_cfg = timedrl_forecast_config(scale, seed);
            let ssl_model = TimeDrl::new(ssl_cfg);
            pretrain(&ssl_model, &data.train_inputs).expect("pre-training failed");
            let ft_result = finetune_forecast(&ssl_model, &data, &ft, frac, seed).mse;

            println!("{:>9.0}% {supervised:>14.3} {ft_result:>14.3}", frac * 100.0);
            sup_pts.push((frac * 100.0, supervised));
            ft_pts.push((frac * 100.0, ft_result));
            sink.push(SemiRecord {
                task: "forecast".into(),
                dataset: name.to_string(),
                label_fraction: frac,
                supervised,
                timedrl_ft: ft_result,
            });
        }
        println!();
        println!("{}", line_chart(
            &[
                Series { label: "Supervised".into(), points: sup_pts },
                Series { label: "TimeDRL (FT)".into(), points: ft_pts },
            ],
            56, 12,
            &format!("{name}: test MSE vs % labels (lower is better)"),
        ));
    }

    // ---------------- Classification panels (d-f) ----------------
    println!("Fig. 5 (d-f): classification accuracy vs label fraction (higher is better).\n");
    let classify_sets: &[&str] =
        if scale == Scale::Quick { &["PenDigits"] } else { &["HAR", "Epilepsy", "PenDigits"] };
    for name in classify_sets {
        let ds = classify_by_name(name, scale);
        let (train, test) = ds.train_test_split(0.6, &mut Prng::new(seed)).unwrap();
        println!("{name}:");
        println!("{:>10} {:>14} {:>14}", "labels", "Supervised", "TimeDRL (FT)");
        let mut sup_pts = Vec::new();
        let mut ft_pts = Vec::new();
        for &frac in &scale.label_fractions() {
            let sup_cfg = timedrl_classify_config(&train, scale, seed);
            let sup_model = TimeDrl::new(sup_cfg);
            let supervised =
                finetune_classification(&sup_model, &train, &test, &ft, frac, seed).accuracy * 100.0;

            let ssl_cfg = timedrl_classify_config(&train, scale, seed);
            let ssl_model = TimeDrl::new(ssl_cfg);
            pretrain(&ssl_model, &train.to_batch()).expect("pre-training failed");
            let ft_acc =
                finetune_classification(&ssl_model, &train, &test, &ft, frac, seed).accuracy * 100.0;

            println!("{:>9.0}% {supervised:>13.2}% {ft_acc:>13.2}%", frac * 100.0);
            sup_pts.push((frac * 100.0, supervised));
            ft_pts.push((frac * 100.0, ft_acc));
            sink.push(SemiRecord {
                task: "classify".into(),
                dataset: name.to_string(),
                label_fraction: frac,
                supervised,
                timedrl_ft: ft_acc,
            });
        }
        println!();
        println!("{}", line_chart(
            &[
                Series { label: "Supervised".into(), points: sup_pts },
                Series { label: "TimeDRL (FT)".into(), points: ft_pts },
            ],
            56, 12,
            &format!("{name}: accuracy % vs % labels (higher is better)"),
        ));
    }

    println!("Expected shape (paper): TimeDRL (FT) >= supervised everywhere, with the");
    println!("largest gaps at the smallest label fractions.");
    let path = sink.write();
    println!("results written to {}", path.display());
}
