//! Table formatting and JSON result persistence for the experiment
//! binaries.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use testkit::json::{Json, ToJson};
use testkit::impl_to_json;

/// Formats one table row: a label column followed by fixed-precision
/// numeric cells.
pub fn format_row(label: &str, cells: &[f32]) -> String {
    let mut row = format!("{label:<28}");
    for c in cells {
        row.push_str(&format!(" {c:>9.3}"));
    }
    row
}

/// Collects experiment results and writes them as JSON under
/// `results/<experiment>.json` (next to the workspace root), so
/// EXPERIMENTS.md can be regenerated from artifacts.
pub struct ResultSink {
    experiment: String,
    records: Vec<Json>,
}

impl ResultSink {
    /// Creates a sink for a named experiment (e.g. `"table3"`).
    pub fn new(experiment: &str) -> Self {
        Self { experiment: experiment.to_string(), records: Vec::new() }
    }

    /// Appends one result record.
    pub fn push(&mut self, record: impl ToJson) {
        self.records.push(record.to_json());
    }

    /// Number of collected records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records were collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Writes `results/<experiment>.json`; returns the path.
    pub fn write(&self) -> PathBuf {
        let dir = results_dir();
        fs::create_dir_all(&dir).expect("create results dir");
        let path = dir.join(format!("{}.json", self.experiment));
        let mut file = fs::File::create(&path).expect("create results file");
        let doc = Json::Obj(vec![
            ("experiment".to_string(), Json::Str(self.experiment.clone())),
            ("records".to_string(), Json::Arr(self.records.clone())),
        ]);
        writeln!(file, "{}", doc.to_string_pretty()).expect("write results");
        path
    }
}

/// `results/` directory: honours `TIMEDRL_RESULTS_DIR`, else the current
/// working directory.
fn results_dir() -> PathBuf {
    std::env::var("TIMEDRL_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// One forecasting-table record.
#[derive(Debug)]
pub struct ForecastRecord {
    /// Dataset name.
    pub dataset: String,
    /// Prediction horizon.
    pub horizon: usize,
    /// Method name.
    pub method: String,
    /// Test MSE.
    pub mse: f32,
    /// Test MAE.
    pub mae: f32,
}

impl_to_json!(ForecastRecord { dataset, horizon, method, mse, mae });

/// One classification-table record.
#[derive(Debug)]
pub struct ClassifyRecord {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Accuracy (percent).
    pub acc: f32,
    /// Macro-F1 (percent).
    pub mf1: f32,
    /// Cohen's kappa (percent).
    pub kappa: f32,
}

impl_to_json!(ClassifyRecord { dataset, method, acc, mf1, kappa });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_align() {
        let r1 = format_row("TimeDRL", &[0.327, 0.378]);
        let r2 = format_row("SimTS", &[0.377, 0.422]);
        assert_eq!(r1.len(), r2.len());
        assert!(r1.contains("0.327"));
    }

    #[test]
    fn sink_writes_json() {
        let dir = std::env::temp_dir().join("timedrl_test_results");
        std::env::set_var("TIMEDRL_RESULTS_DIR", &dir);
        let mut sink = ResultSink::new("unit_test");
        sink.push(ForecastRecord {
            dataset: "ETTh1".into(),
            horizon: 24,
            method: "TimeDRL".into(),
            mse: 0.3,
            mae: 0.4,
        });
        let path = sink.write();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"ETTh1\""));
        std::env::remove_var("TIMEDRL_RESULTS_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }
}
