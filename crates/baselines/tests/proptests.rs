//! Property-based tests for the baselines crate: k-means invariants,
//! encoder shape contracts, and segment pooling laws.

use testkit::{prop, prop_assert, prop_assert_eq, prop_assume};
use timedrl_baselines::common::{segment_pool_flat, BaselineConfig, ConvEncoder};
use timedrl_baselines::kmeans;
use timedrl_nn::Ctx;
use timedrl_tensor::{Prng, Var};

prop! {
    #![config(cases = 24)]

    fn kmeans_assignments_in_range(n in 4usize..20, k in 1usize..4, seed in 0u64..500) {
        prop_assume!(k <= n);
        let pts = Prng::new(seed).randn(&[n, 3]);
        let result = kmeans(&pts, k, 8, &mut Prng::new(seed ^ 1));
        prop_assert_eq!(result.assignments.len(), n);
        prop_assert!(result.assignments.iter().all(|&a| a < k));
        prop_assert!(result.inertia >= 0.0);
        prop_assert_eq!(result.centroids.shape(), &[k, 3]);
    }

    fn kmeans_every_cluster_assignment_is_nearest(seed in 0u64..200) {
        let pts = Prng::new(seed).randn(&[15, 2]);
        let result = kmeans(&pts, 3, 15, &mut Prng::new(seed ^ 2));
        // Lloyd's invariant after convergence iterations: each point's
        // assigned centroid is (weakly) nearest.
        for i in 0..15 {
            let dist = |c: usize| -> f32 {
                (0..2)
                    .map(|j| {
                        let d = pts.at(&[i, j]) - result.centroids.at(&[c, j]);
                        d * d
                    })
                    .sum()
            };
            let assigned = dist(result.assignments[i]);
            for c in 0..3 {
                prop_assert!(assigned <= dist(c) + 1e-4);
            }
        }
    }

    fn conv_encoder_shape_contract(b in 1usize..4, t in 4usize..20, c in 1usize..4, seed in 0u64..200) {
        let cfg = BaselineConfig::compact(t, c);
        let mut rng = Prng::new(seed);
        let enc = ConvEncoder::new(&cfg, &mut rng);
        let x = Var::constant(rng.randn(&[b, t, c]));
        let z = enc.forward(&x, &mut Ctx::eval());
        prop_assert_eq!(z.shape(), vec![b, t, cfg.d_model]);
        prop_assert!(!z.to_array().has_non_finite());
    }

    fn segment_pool_preserves_mean(b in 1usize..4, t in 4usize..24, segs in 1usize..6, seed in 0u64..200) {
        // Pooling into segments then averaging equals the global average
        // when segments tile the axis evenly.
        prop_assume!(t % segs == 0);
        let z = Prng::new(seed).randn(&[b, t, 4]);
        let pooled = segment_pool_flat(&z, segs);
        prop_assert_eq!(pooled.shape(), &[b, segs * 4]);
        for bi in 0..b {
            for d in 0..4 {
                let global: f32 = (0..t).map(|ti| z.at(&[bi, ti, d])).sum::<f32>() / t as f32;
                let seg_avg: f32 =
                    (0..segs).map(|s| pooled.at(&[bi, s * 4 + d])).sum::<f32>() / segs as f32;
                prop_assert!((global - seg_avg).abs() < 1e-4);
            }
        }
    }

    fn segment_pool_more_segments_than_steps_clamps(seed in 0u64..100) {
        let z = Prng::new(seed).randn(&[2, 3, 4]);
        let pooled = segment_pool_flat(&z, 10);
        prop_assert_eq!(pooled.shape(), &[2, 3 * 4]);
    }
}
