//! MHCCL (Meng et al., AAAI 2023): Masked Hierarchical Cluster-wise
//! Contrastive Learning — prototype contrast at *multiple* clustering
//! granularities, combined with an instance-level contrast between two
//! dropout views.
//!
//! The hierarchy here is a fan of k-means runs at coarse-to-fine `k`
//! (the original builds a bottom-up dendrogram and masks outlier members;
//! the multi-granularity prototype pull — the part responsible for its
//! classification gains — is preserved).

use crate::ccl::Ccl;
use crate::common::{
    embed_chunked, fit_ssl, gap_instances, segment_pool_flat, BaselineConfig, ConvEncoder,
    SslMethod,
};
use timedrl_nn::loss::nt_xent;
use timedrl_nn::Module;
use timedrl_tensor::{NdArray, Prng, Var};

/// The MHCCL method.
pub struct Mhccl {
    cfg: BaselineConfig,
    encoder: ConvEncoder,
    /// Cluster counts per hierarchy level (coarse to fine).
    pub levels: Vec<usize>,
}

impl Mhccl {
    /// Builds MHCCL with a default 3-level hierarchy derived from the
    /// expected class count.
    pub fn new(cfg: BaselineConfig, base_clusters: usize) -> Self {
        let mut rng = Prng::new(cfg.seed ^ 0x3bcc_1000);
        let encoder = ConvEncoder::new(&cfg, &mut rng);
        let k = base_clusters.max(2);
        Self { cfg, encoder, levels: vec![(k / 2).max(2), k, k * 2] }
    }
}

impl SslMethod for Mhccl {
    fn name(&self) -> &'static str {
        "MHCCL"
    }

    fn pretrain(&mut self, windows: &NdArray) -> Vec<f32> {
        let params = self.encoder.parameters();
        let cfg = self.cfg.clone();
        let levels = self.levels.clone();
        let this = &*self;
        fit_ssl(params, windows, &cfg, |batch, ctx, rng| {
            // Two dropout views of the batch embeddings.
            let z1 = gap_instances(&this.encoder.forward(&Var::constant(batch.clone()), ctx));
            let z2 = gap_instances(&this.encoder.forward(&Var::constant(batch.clone()), ctx));
            // Instance-level contrast between views.
            let mut loss = if batch.shape()[0] >= 2 {
                nt_xent(&z1, &z2, cfg.temperature)
            } else {
                Var::scalar(0.0)
            };
            // Hierarchical prototype contrast at each granularity.
            for &k in &levels {
                let proto = Ccl::prototype_loss(&z1, k, cfg.temperature, rng);
                loss = loss.add(&proto.scale(1.0 / levels.len() as f32));
            }
            loss
        })
    }

    fn embed_timestamps_flat(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            let z = self.encoder.forward(&Var::constant(chunk.clone()), ctx).to_array();
            segment_pool_flat(&z, 8)
        })
    }

    fn embed_instances(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            gap_instances(&self.encoder.forward(&Var::constant(chunk.clone()), ctx)).to_array()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_windows(n: usize, t: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, t, 1], |flat| {
            let i = flat / t;
            let freq = [0.2f32, 0.5, 1.0, 2.0][i % 4];
            ((flat % t) as f32 * freq).sin() * 1.5 + rng.normal_with(0.0, 0.1)
        })
    }

    #[test]
    fn hierarchy_levels_are_coarse_to_fine() {
        let m = Mhccl::new(BaselineConfig::compact(16, 1), 6);
        assert_eq!(m.levels, vec![3, 6, 12]);
        for w in m.levels.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn pretrain_reduces_loss() {
        let cfg = BaselineConfig { epochs: 6, ..BaselineConfig::compact(16, 1) };
        let mut m = Mhccl::new(cfg, 4);
        let history = m.pretrain(&class_windows(40, 16, 0));
        assert!(history.iter().all(|l| l.is_finite()));
        assert!(history.last().unwrap() < &history[0], "history {history:?}");
    }

    #[test]
    fn no_collapse_after_training() {
        let cfg = BaselineConfig { epochs: 5, ..BaselineConfig::compact(16, 1) };
        let mut m = Mhccl::new(cfg, 4);
        let w = class_windows(32, 16, 1);
        m.pretrain(&w);
        let z = m.embed_instances(&w);
        let std = z.var_axis(0, false).mean().sqrt();
        assert!(std > 1e-4, "collapsed: std {std}");
    }
}
