//! TS-TCC (Eldele et al., IJCAI 2021): temporal and contextual contrasting
//! between a *strong* and a *weak* augmented view.
//!
//! Strong view: permutation + jitter. Weak view: scaling + jitter. The
//! temporal-contrasting module summarizes the past half with an
//! autoregressive GRU (as the original does) and predicts the *other*
//! view's future summary from it; the contextual-contrasting module
//! applies NT-Xent to the two context vectors.

use crate::common::{
    embed_chunked, fit_ssl, gap_instances, segment_pool_flat, BaselineConfig, ConvEncoder,
    SslMethod,
};
use timedrl_data::Augmentation;
use timedrl_nn::loss::nt_xent;
use timedrl_nn::{Ctx, Gru, Linear, Module};
use timedrl_tensor::{NdArray, Prng, Var};

/// The TS-TCC method.
pub struct TsTcc {
    cfg: BaselineConfig,
    encoder: ConvEncoder,
    /// Autoregressive context summarizer over the past half (the
    /// original's GRU).
    summarizer: Gru,
    /// Cross-view future predictor (strong context -> weak future and
    /// vice versa; weights shared, as both map `[B, D] -> [B, D]`).
    temporal_head: Linear,
    /// Contextual projection head.
    context_proj: Linear,
}

impl TsTcc {
    /// Builds TS-TCC.
    pub fn new(cfg: BaselineConfig) -> Self {
        let mut rng = Prng::new(cfg.seed ^ 0x75cc_0000);
        let encoder = ConvEncoder::new(&cfg, &mut rng);
        let d = cfg.d_model;
        Self {
            summarizer: Gru::new(d, d, &mut rng),
            temporal_head: Linear::new(d, d, &mut rng),
            context_proj: Linear::new(d, d, &mut rng),
            encoder,
            cfg,
        }
    }

    /// Context = GRU summary of the past half; future = GAP over the
    /// future half.
    fn context_and_future(&self, x: &NdArray, ctx: &mut Ctx) -> (Var, Var) {
        let t = x.shape()[1];
        let half = t / 2;
        let z = self.encoder.forward(&Var::constant(x.clone()), ctx);
        let past = self.summarizer.summarize(&z.slice(1, 0, half));
        let future = z.slice(1, half, t - half).mean_axis(1, false);
        (past, future)
    }
}

impl SslMethod for TsTcc {
    fn name(&self) -> &'static str {
        "TS-TCC"
    }

    fn pretrain(&mut self, windows: &NdArray) -> Vec<f32> {
        let mut params = self.encoder.parameters();
        params.extend(self.summarizer.parameters());
        params.extend(self.temporal_head.parameters());
        params.extend(self.context_proj.parameters());
        let cfg = self.cfg.clone();
        let this = &*self;
        fit_ssl(params, windows, &cfg, |batch, ctx, rng| {
            if batch.shape()[0] < 2 {
                return Var::scalar(0.0);
            }
            // Strong and weak augmentations (the cross-view asymmetry).
            let strong = {
                let a = Augmentation::Permutation.apply_batch(batch, rng);
                Augmentation::Jitter.apply_batch(&a, rng)
            };
            let weak = {
                let a = Augmentation::Scaling.apply_batch(batch, rng);
                Augmentation::Jitter.apply_batch(&a, rng)
            };
            let (c_strong, f_strong) = this.context_and_future(&strong, ctx);
            let (c_weak, f_weak) = this.context_and_future(&weak, ctx);
            // Temporal contrasting: each view's context predicts the
            // *other* view's future, contrasted against in-batch futures.
            let p_sw = this.temporal_head.forward(&c_strong);
            let p_ws = this.temporal_head.forward(&c_weak);
            let temporal = nt_xent(&p_sw, &f_weak, cfg.temperature)
                .add(&nt_xent(&p_ws, &f_strong, cfg.temperature))
                .scale(0.5);
            // Contextual contrasting between the two full contexts.
            let ctx_s = this.context_proj.forward(&c_strong);
            let ctx_w = this.context_proj.forward(&c_weak);
            let contextual = nt_xent(&ctx_s, &ctx_w, cfg.temperature);
            temporal.add(&contextual)
        })
    }

    fn embed_timestamps_flat(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            let z = self.encoder.forward(&Var::constant(chunk.clone()), ctx).to_array();
            segment_pool_flat(&z, 8)
        })
    }

    fn embed_instances(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            gap_instances(&self.encoder.forward(&Var::constant(chunk.clone()), ctx)).to_array()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows(n: usize, t: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, t, 1], |flat| {
            let i = flat / t;
            ((flat % t) as f32 * 0.4 + i as f32 * 0.9).sin() + rng.normal_with(0.0, 0.1)
        })
    }

    #[test]
    fn pretrain_reduces_loss() {
        let cfg = BaselineConfig { epochs: 6, ..BaselineConfig::compact(16, 1) };
        let mut m = TsTcc::new(cfg);
        let history = m.pretrain(&windows(32, 16, 0));
        assert!(history.last().unwrap() < &history[0], "history {history:?}");
    }

    #[test]
    fn context_and_future_split_time() {
        let cfg = BaselineConfig::compact(16, 1);
        let m = TsTcc::new(cfg);
        let x = Prng::new(1).randn(&[3, 16, 1]);
        let (c, f) = m.context_and_future(&x, &mut Ctx::eval());
        assert_eq!(c.shape(), vec![3, 32]);
        assert_eq!(f.shape(), vec![3, 32]);
        assert!(c.to_array().max_abs_diff(&f.to_array()) > 1e-5);
    }

    #[test]
    fn embedding_shapes() {
        let cfg = BaselineConfig { epochs: 1, ..BaselineConfig::compact(16, 1) };
        let mut m = TsTcc::new(cfg);
        let w = windows(8, 16, 2);
        m.pretrain(&w);
        assert_eq!(m.embed_instances(&w).shape(), &[8, 32]);
    }
}
