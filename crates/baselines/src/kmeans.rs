//! Lloyd's k-means on embeddings, used by the clustering-based baselines
//! (CCL, MHCCL).

use timedrl_tensor::{NdArray, Prng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Centroids `[K, D]`.
    pub centroids: NdArray,
    /// Per-sample cluster index.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squares.
    pub inertia: f32,
}

/// Runs Lloyd's algorithm on `[N, D]` points with k-means++-style seeding
/// (first centroid uniform, subsequent centroids from distant points).
pub fn kmeans(points: &NdArray, k: usize, iters: usize, rng: &mut Prng) -> KMeansResult {
    assert_eq!(points.rank(), 2, "kmeans expects [N, D]");
    let n = points.shape()[0];
    let d = points.shape()[1];
    assert!(k >= 1 && k <= n, "need 1 <= k <= n (k={k}, n={n})");

    // Seeding: pick the first uniformly, then greedily far points.
    let mut centers: Vec<usize> = vec![rng.below(n)];
    while centers.len() < k {
        let mut best = (0usize, -1.0f32);
        for cand in 0..n {
            let dist = centers
                .iter()
                .map(|&c| sq_dist(points, cand, points, c, d))
                .fold(f32::INFINITY, f32::min);
            // Mix in a little randomness so ties break differently per run.
            let score = dist * (0.5 + rng.uniform());
            if score > best.1 {
                best = (cand, score);
            }
        }
        centers.push(best.0);
    }
    let mut centroids = NdArray::zeros(&[k, d]);
    for (ci, &p) in centers.iter().enumerate() {
        for j in 0..d {
            centroids.set(&[ci, j], points.at(&[p, j]));
        }
    }

    let mut assignments = vec![0usize; n];
    for _ in 0..iters {
        // Assignment step.
        for (i, slot) in assignments.iter_mut().enumerate() {
            let mut best = (0usize, f32::INFINITY);
            for c in 0..k {
                let dist = sq_dist(points, i, &centroids, c, d);
                if dist < best.1 {
                    best = (c, dist);
                }
            }
            *slot = best.0;
        }
        // Update step.
        let mut sums = vec![0.0f32; k * d];
        let mut counts = vec![0usize; k];
        for (i, &c) in assignments.iter().enumerate() {
            counts[c] += 1;
            for j in 0..d {
                sums[c * d + j] += points.at(&[i, j]);
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at a random point.
                let p = rng.below(n);
                for j in 0..d {
                    centroids.set(&[c, j], points.at(&[p, j]));
                }
            } else {
                for j in 0..d {
                    centroids.set(&[c, j], sums[c * d + j] / counts[c] as f32);
                }
            }
        }
    }

    let inertia = (0..n)
        .map(|i| sq_dist(points, i, &centroids, assignments[i], d))
        .sum();
    KMeansResult { centroids, assignments, inertia }
}

fn sq_dist(a: &NdArray, ai: usize, b: &NdArray, bi: usize, d: usize) -> f32 {
    let ad = &a.data()[ai * d..(ai + 1) * d];
    let bd = &b.data()[bi * d..(bi + 1) * d];
    ad.iter().zip(bd.iter()).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per: usize, centers: &[(f32, f32)], seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        let n = per * centers.len();
        let mut data = Vec::with_capacity(n * 2);
        for &(cx, cy) in centers {
            for _ in 0..per {
                data.push(cx + rng.normal_with(0.0, 0.2));
                data.push(cy + rng.normal_with(0.0, 0.2));
            }
        }
        NdArray::from_vec(&[n, 2], data).unwrap()
    }

    #[test]
    fn separates_clear_blobs() {
        let pts = blobs(30, &[(0.0, 0.0), (5.0, 5.0), (0.0, 5.0)], 0);
        let result = kmeans(&pts, 3, 20, &mut Prng::new(1));
        // Every blob must be internally consistent.
        for blob in 0..3 {
            let first = result.assignments[blob * 30];
            for i in 0..30 {
                assert_eq!(result.assignments[blob * 30 + i], first, "blob {blob} split");
            }
        }
        assert!(result.inertia < 30.0);
    }

    #[test]
    fn more_clusters_reduce_inertia() {
        let pts = blobs(20, &[(0.0, 0.0), (4.0, 0.0), (0.0, 4.0), (4.0, 4.0)], 2);
        let i2 = kmeans(&pts, 2, 15, &mut Prng::new(3)).inertia;
        let i4 = kmeans(&pts, 4, 15, &mut Prng::new(3)).inertia;
        assert!(i4 < i2);
    }

    #[test]
    fn k_equals_n_is_exact() {
        let pts = blobs(1, &[(0.0, 0.0), (9.0, 9.0)], 4);
        let result = kmeans(&pts, 2, 5, &mut Prng::new(5));
        assert!(result.inertia < 1e-6);
    }

    #[test]
    #[should_panic(expected = "need 1 <= k <= n")]
    fn rejects_k_beyond_n() {
        let pts = blobs(1, &[(0.0, 0.0)], 6);
        kmeans(&pts, 5, 3, &mut Prng::new(7));
    }
}
