//! BYOL (Grill et al., NeurIPS 2020): bootstrap your own latent — an
//! online network predicts a slow-moving *target* network's projection of
//! another augmented view; the target is an exponential moving average of
//! the online weights and receives no gradients.

use crate::common::{
    embed_chunked, fit_ssl, gap_instances, segment_pool_flat, two_augmented_views, BaselineConfig,
    ConvEncoder, SslMethod,
};
use timedrl_data::Augmentation;
use timedrl_nn::{Ctx, Linear, Module};
use timedrl_tensor::{NdArray, Prng, Var};

/// The BYOL method.
pub struct Byol {
    cfg: BaselineConfig,
    online_encoder: ConvEncoder,
    online_proj: Linear,
    predictor1: Linear,
    predictor2: Linear,
    target_encoder: ConvEncoder,
    target_proj: Linear,
    /// EMA coefficient: `target = tau·target + (1-tau)·online`.
    tau: f32,
}

impl Byol {
    /// Builds BYOL; the target starts as a copy of the online network.
    pub fn new(cfg: BaselineConfig) -> Self {
        let mut rng = Prng::new(cfg.seed ^ 0xb401_0000);
        let d = cfg.d_model;
        let online_encoder = ConvEncoder::new(&cfg, &mut rng);
        let online_proj = Linear::new(d, d, &mut rng);
        // Target towers share the architecture; weights are synced below.
        let mut rng_t = Prng::new(cfg.seed ^ 0xb401_0001);
        let target_encoder = ConvEncoder::new(&cfg, &mut rng_t);
        let target_proj = Linear::new(d, d, &mut rng_t);
        let byol = Self {
            predictor1: Linear::new(d, d, &mut rng),
            predictor2: Linear::new(d, d, &mut rng),
            online_encoder,
            online_proj,
            target_encoder,
            target_proj,
            tau: 0.99,
            cfg,
        };
        byol.sync_target(0.0); // hard copy at initialization
        byol
    }

    /// EMA update of the target tower: `target = tau·target + (1-tau)·online`.
    /// `tau = 0` copies the online weights outright.
    fn sync_target(&self, tau: f32) {
        let online: Vec<Var> = self
            .online_encoder
            .parameters()
            .into_iter()
            .chain(self.online_proj.parameters())
            .collect();
        let target: Vec<Var> = self
            .target_encoder
            .parameters()
            .into_iter()
            .chain(self.target_proj.parameters())
            .collect();
        for (o, t) in online.iter().zip(target.iter()) {
            let blended = t.to_array().scale(tau).add(&o.to_array().scale(1.0 - tau));
            t.set_value(blended);
        }
    }

    fn online_predict(&self, x: &NdArray, ctx: &mut Ctx) -> Var {
        let z = gap_instances(&self.online_encoder.forward(&Var::constant(x.clone()), ctx));
        let p = self.online_proj.forward(&z);
        self.predictor2.forward(&self.predictor1.forward(&p).relu())
    }

    fn target_project(&self, x: &NdArray, ctx: &mut Ctx) -> Var {
        let z = gap_instances(&self.target_encoder.forward(&Var::constant(x.clone()), ctx));
        // Target receives no gradients.
        self.target_proj.forward(&z).detach()
    }
}

impl SslMethod for Byol {
    fn name(&self) -> &'static str {
        "BYOL"
    }

    fn pretrain(&mut self, windows: &NdArray) -> Vec<f32> {
        // Only the online tower trains; the target follows by EMA.
        let mut params = self.online_encoder.parameters();
        params.extend(self.online_proj.parameters());
        params.extend(self.predictor1.parameters());
        params.extend(self.predictor2.parameters());
        let cfg = self.cfg.clone();
        let this = &*self;
        fit_ssl(params, windows, &cfg, |batch, ctx, rng| {
            let (v1, v2) =
                two_augmented_views(batch, &[Augmentation::Jitter, Augmentation::Scaling], rng);
            let p1 = this.online_predict(&v1, ctx);
            let p2 = this.online_predict(&v2, ctx);
            let t1 = this.target_project(&v1, ctx);
            let t2 = this.target_project(&v2, ctx);
            // Symmetric negative cosine, then EMA-update the target.
            let loss = p1
                .cosine_similarity_mean(&t2)
                .add(&p2.cosine_similarity_mean(&t1))
                .scale(0.5)
                .neg();
            this.sync_target(this.tau);
            loss
        })
    }

    fn embed_timestamps_flat(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            let z = self.online_encoder.forward(&Var::constant(chunk.clone()), ctx).to_array();
            segment_pool_flat(&z, 8)
        })
    }

    fn embed_instances(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            gap_instances(&self.online_encoder.forward(&Var::constant(chunk.clone()), ctx))
                .to_array()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows(n: usize, t: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, t, 1], |flat| {
            let i = flat / t;
            ((flat % t) as f32 * (0.2 + 0.1 * (i % 4) as f32)).sin() + rng.normal_with(0.0, 0.1)
        })
    }

    #[test]
    fn target_initialized_to_online_copy() {
        let m = Byol::new(BaselineConfig::compact(16, 1));
        let o = m.online_encoder.parameters();
        let t = m.target_encoder.parameters();
        for (a, b) in o.iter().zip(t.iter()) {
            assert_eq!(a.to_array(), b.to_array());
        }
    }

    #[test]
    fn ema_moves_target_slowly() {
        let m = Byol::new(BaselineConfig::compact(16, 1));
        // Manually perturb the online weights, then one EMA step.
        let o = &m.online_encoder.parameters()[0];
        let before = o.to_array();
        o.set_value(before.add_scalar(1.0));
        m.sync_target(0.9);
        let t = m.target_encoder.parameters()[0].to_array();
        // Target moved 10% of the way.
        let moved = t.sub(&before).mean();
        assert!((moved - 0.1).abs() < 1e-3, "moved {moved}");
    }

    #[test]
    fn pretrain_runs_and_stays_bounded() {
        let cfg = BaselineConfig { epochs: 4, ..BaselineConfig::compact(16, 1) };
        let mut m = Byol::new(cfg);
        let history = m.pretrain(&windows(24, 16, 0));
        for l in &history {
            assert!((-1.0..=1.0).contains(l), "cosine-range loss, got {l}");
        }
    }

    #[test]
    fn no_collapse_after_training() {
        let cfg = BaselineConfig { epochs: 6, ..BaselineConfig::compact(16, 1) };
        let mut m = Byol::new(cfg);
        let w = windows(32, 16, 1);
        m.pretrain(&w);
        let z = m.embed_instances(&w);
        let std = z.var_axis(0, false).mean().sqrt();
        assert!(std > 1e-4, "collapsed: std {std}");
    }
}
