//! TNC (Tonekaboni et al., 2021): Temporal Neighborhood Coding.
//!
//! Windows close in time are encouraged to share representations; distant
//! windows are treated as *unlabeled* rather than strictly negative
//! (Positive-Unlabeled learning), softening the sampling-bias problem of
//! periodic series. The neighborhood radius plays the role of the
//! original's ADF-test-determined neighborhood.

use crate::common::{
    embed_chunked, fit_ssl, gap_instances, segment_pool_flat, BaselineConfig, ConvEncoder,
    SslMethod,
};
use timedrl_nn::{Ctx, Linear, Module};
use timedrl_tensor::{NdArray, Prng, Var};

/// The TNC method.
pub struct Tnc {
    cfg: BaselineConfig,
    encoder: ConvEncoder,
    /// Bilinear-style discriminator on concatenated pair embeddings.
    disc_hidden: Linear,
    disc_out: Linear,
    /// Sub-window length used for anchor/neighbor/distant samples.
    sub_len: usize,
    /// PU-learning weight: probability mass assigned to distant windows
    /// actually being positive.
    pu_weight: f32,
}

impl Tnc {
    /// Builds TNC with sub-windows of half the input length.
    pub fn new(cfg: BaselineConfig) -> Self {
        let mut rng = Prng::new(cfg.seed ^ 0x7c00_0a00);
        let encoder = ConvEncoder::new(&cfg, &mut rng);
        let d = cfg.d_model;
        Self {
            disc_hidden: Linear::new(2 * d, d, &mut rng),
            disc_out: Linear::new(d, 1, &mut rng),
            encoder,
            sub_len: (cfg.input_len / 2).max(2),
            pu_weight: 0.05,
            cfg,
        }
    }

    /// Discriminator score for `[B, D]` embedding pairs.
    fn score(&self, a: &Var, b: &Var) -> Var {
        let pair = Var::concat(&[a.clone(), b.clone()], 1);
        self.disc_out.forward(&self.disc_hidden.forward(&pair).relu())
    }

    fn encode_gap(&self, x: NdArray, ctx: &mut Ctx) -> Var {
        gap_instances(&self.encoder.forward(&Var::constant(x), ctx))
    }
}

impl SslMethod for Tnc {
    fn name(&self) -> &'static str {
        "TNC"
    }

    fn pretrain(&mut self, windows: &NdArray) -> Vec<f32> {
        let mut params = self.encoder.parameters();
        params.extend(self.disc_hidden.parameters());
        params.extend(self.disc_out.parameters());
        let cfg = self.cfg.clone();
        let this = &*self;
        fit_ssl(params, windows, &cfg, |batch, ctx, rng| {
            let t = batch.shape()[1];
            let l = this.sub_len;
            let b = batch.shape()[0];
            // Anchor at a random offset; neighbor overlaps it; distant is
            // as far as the window allows (or another series in the batch).
            let max_start = t - l;
            let anchor_at = rng.below(max_start + 1);
            let neighbor_at = (anchor_at + 1 + rng.below(l / 2 + 1)).min(max_start);
            let distant_at = if anchor_at > max_start / 2 { 0 } else { max_start };
            let anchor = batch.slice(1, anchor_at, l).expect("anchor");
            let neighbor = batch.slice(1, neighbor_at, l).expect("neighbor");
            // Distant: far offset *and* shuffled across the batch.
            let mut perm: Vec<usize> = (0..b).collect();
            rng.shuffle(&mut perm);
            let distant_src = batch.slice(1, distant_at, l).expect("distant");
            let distant = crate::common::gather(&distant_src, &perm);

            let za = this.encode_gap(anchor, ctx);
            let zn = this.encode_gap(neighbor, ctx);
            let zd = this.encode_gap(distant, ctx);

            // PU objective: neighbors positive; distants unlabeled —
            // mostly negative, with weight w treated as positive.
            let pos = this.score(&za, &zn).sigmoid().add_scalar(1e-7).ln().mean().neg();
            let s_d = this.score(&za, &zd).sigmoid();
            let neg = s_d.neg().add_scalar(1.0 + 1e-7).ln().mean().neg();
            let pos_d = s_d.add_scalar(1e-7).ln().mean().neg();
            pos.add(&neg.scale(1.0 - this.pu_weight)).add(&pos_d.scale(this.pu_weight))
        })
    }

    fn embed_timestamps_flat(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            let z = self.encoder.forward(&Var::constant(chunk.clone()), ctx).to_array();
            segment_pool_flat(&z, 8)
        })
    }

    fn embed_instances(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            gap_instances(&self.encoder.forward(&Var::constant(chunk.clone()), ctx)).to_array()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regime_windows(n: usize, t: usize, seed: u64) -> NdArray {
        // Each series has its own level: neighborhoods are genuinely more
        // similar than cross-series pairs.
        let mut rng = Prng::new(seed);
        let mut data = Vec::with_capacity(n * t);
        for _ in 0..n {
            let level = rng.normal_with(0.0, 2.0);
            for step in 0..t {
                data.push(level + (step as f32 * 0.3).sin() + rng.normal_with(0.0, 0.1));
            }
        }
        NdArray::from_vec(&[n, t, 1], data).unwrap()
    }

    #[test]
    fn pretrain_reduces_pu_loss() {
        let cfg = BaselineConfig { epochs: 6, ..BaselineConfig::compact(16, 1) };
        let mut m = Tnc::new(cfg);
        let history = m.pretrain(&regime_windows(32, 16, 0));
        assert!(history.iter().all(|l| l.is_finite()));
        assert!(history.last().unwrap() < &history[0], "history {history:?}");
    }

    #[test]
    fn discriminator_learns_neighborhoods() {
        let cfg = BaselineConfig { epochs: 8, ..BaselineConfig::compact(16, 1) };
        let mut m = Tnc::new(cfg);
        let w = regime_windows(32, 16, 1);
        m.pretrain(&w);
        // After training, scores for (anchor, neighbor) from the same
        // series should exceed scores for cross-series pairs.
        let mut ctx = Ctx::eval();
        let a = m.encode_gap(w.slice(1, 0, 8).unwrap(), &mut ctx);
        let n = m.encode_gap(w.slice(1, 4, 8).unwrap(), &mut ctx);
        let mut perm: Vec<usize> = (0..32).collect();
        perm.rotate_left(7);
        let far_src = w.slice(1, 8, 8).unwrap();
        let far = m.encode_gap(crate::common::gather(&far_src, &perm), &mut ctx);
        let s_pos = m.score(&a, &n).to_array().mean();
        let s_neg = m.score(&a, &far).to_array().mean();
        assert!(s_pos > s_neg, "pos {s_pos} vs neg {s_neg}");
    }

    #[test]
    fn embedding_shapes() {
        let cfg = BaselineConfig { epochs: 1, ..BaselineConfig::compact(16, 1) };
        let mut m = Tnc::new(cfg);
        let w = regime_windows(8, 16, 2);
        m.pretrain(&w);
        assert_eq!(m.embed_instances(&w).shape(), &[8, 32]);
    }
}
