//! SimCLR (Chen et al., ICML 2020) adapted to time-series: two augmented
//! views per instance, a projection head, and NT-Xent with in-batch
//! negatives.
//!
//! The augmentations (jitter + scaling) follow the standard time-series
//! adaptation used by the paper's comparison — exactly the
//! transformation-invariance assumptions TimeDRL avoids.

use crate::common::{
    embed_chunked, fit_ssl, gap_instances, segment_pool_flat, two_augmented_views, BaselineConfig,
    ConvEncoder, SslMethod,
};
use timedrl_data::Augmentation;
use timedrl_nn::loss::nt_xent;
use timedrl_nn::{Ctx, Linear, Module};
use timedrl_tensor::{NdArray, Prng, Var};

/// The SimCLR method.
pub struct SimClr {
    cfg: BaselineConfig,
    encoder: ConvEncoder,
    proj1: Linear,
    proj2: Linear,
}

impl SimClr {
    /// Builds SimCLR with a 2-layer projection head.
    pub fn new(cfg: BaselineConfig) -> Self {
        let mut rng = Prng::new(cfg.seed ^ 0x51c1_0000);
        let encoder = ConvEncoder::new(&cfg, &mut rng);
        let d = cfg.d_model;
        Self {
            proj1: Linear::new(d, d, &mut rng),
            proj2: Linear::new(d, d, &mut rng),
            encoder,
            cfg,
        }
    }

    fn project(&self, x: &NdArray, ctx: &mut Ctx) -> Var {
        let z = gap_instances(&self.encoder.forward(&Var::constant(x.clone()), ctx));
        self.proj2.forward(&self.proj1.forward(&z).relu())
    }
}

impl SslMethod for SimClr {
    fn name(&self) -> &'static str {
        "SimCLR"
    }

    fn pretrain(&mut self, windows: &NdArray) -> Vec<f32> {
        let mut params = self.encoder.parameters();
        params.extend(self.proj1.parameters());
        params.extend(self.proj2.parameters());
        let cfg = self.cfg.clone();
        let this = &*self;
        fit_ssl(params, windows, &cfg, |batch, ctx, rng| {
            if batch.shape()[0] < 2 {
                // NT-Xent needs negatives; skip degenerate remainder batches.
                return Var::scalar(0.0);
            }
            let (v1, v2) =
                two_augmented_views(batch, &[Augmentation::Jitter, Augmentation::Scaling], rng);
            let p1 = this.project(&v1, ctx);
            let p2 = this.project(&v2, ctx);
            nt_xent(&p1, &p2, cfg.temperature)
        })
    }

    fn embed_timestamps_flat(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            let z = self.encoder.forward(&Var::constant(chunk.clone()), ctx).to_array();
            segment_pool_flat(&z, 8)
        })
    }

    fn embed_instances(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            gap_instances(&self.encoder.forward(&Var::constant(chunk.clone()), ctx)).to_array()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class_windows(n: usize, t: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, t, 1], |flat| {
            let i = flat / t;
            let step = flat % t;
            let freq = if i % 2 == 0 { 0.3 } else { 1.2 };
            (step as f32 * freq).sin() + rng.normal_with(0.0, 0.1)
        })
    }

    #[test]
    fn pretrain_reduces_nt_xent() {
        let cfg = BaselineConfig { epochs: 6, ..BaselineConfig::compact(16, 1) };
        let mut m = SimClr::new(cfg);
        let history = m.pretrain(&two_class_windows(32, 16, 0));
        assert!(history.last().unwrap() < &history[0], "history {history:?}");
    }

    #[test]
    fn class_structure_emerges_in_embeddings() {
        let cfg = BaselineConfig { epochs: 8, ..BaselineConfig::compact(16, 1) };
        let mut m = SimClr::new(cfg);
        let w = two_class_windows(40, 16, 1);
        m.pretrain(&w);
        let z = m.embed_instances(&w);
        // Mean within-class distance should be below cross-class distance.
        let d = |a: usize, b: usize| {
            let mut s = 0.0f32;
            for k in 0..32 {
                let diff = z.at(&[a, k]) - z.at(&[b, k]);
                s += diff * diff;
            }
            s.sqrt()
        };
        let within = (d(0, 2) + d(1, 3) + d(4, 6)) / 3.0;
        let across = (d(0, 1) + d(2, 3) + d(4, 5)) / 3.0;
        assert!(within < across, "within {within} across {across}");
    }

    #[test]
    fn single_sample_batch_is_safe() {
        let cfg = BaselineConfig { epochs: 1, batch_size: 32, ..BaselineConfig::compact(16, 1) };
        let mut m = SimClr::new(cfg);
        // 33 samples: the remainder batch has exactly 1 element.
        let history = m.pretrain(&two_class_windows(33, 16, 2));
        assert!(history[0].is_finite());
    }
}
