//! # timedrl-baselines
//!
//! Re-implementations of the 12 baseline methods the TimeDRL paper
//! compares against, all running on the same `timedrl-tensor` /
//! `timedrl-nn` substrate as TimeDRL itself so comparisons measure method
//! differences, not framework differences.
//!
//! Forecasting (Tables III–IV): [`SimTs`], [`Ts2Vec`], [`Tnc`], [`Cost`]
//! (unsupervised representation learning) and [`Informer`],
//! [`TcnForecaster`] (end-to-end).
//!
//! Classification (Table V): [`Mhccl`], [`Ccl`], [`SimClr`], [`Byol`],
//! [`Ts2Vec`], [`TsTcc`], [`TLoss`].
//!
//! Every SSL method implements [`SslMethod`]; the end-to-end forecasters
//! implement [`EndToEndForecaster`]. Where an original component cannot be
//! reproduced exactly at this scale, the module-level docs state the
//! substitution (e.g. TS2Vec's max-pool hierarchy → average-pool;
//! Informer's ProbSparse attention → dense attention with distilling).

#![warn(missing_docs)]

pub mod byol;
pub mod ccl;
pub mod common;
pub mod cost;
pub mod informer;
pub mod kmeans;
pub mod mhccl;
pub mod simclr;
pub mod simts;
pub mod tcn_forecaster;
pub mod tloss;
pub mod tnc;
pub mod ts2vec;
pub mod tstcc;

pub use byol::Byol;
pub use ccl::Ccl;
pub use common::{BaselineConfig, ConvEncoder, EndToEndForecaster, SslMethod};
pub use cost::Cost;
pub use informer::Informer;
pub use kmeans::{kmeans, KMeansResult};
pub use mhccl::Mhccl;
pub use simclr::SimClr;
pub use simts::SimTs;
pub use tcn_forecaster::TcnForecaster;
pub use tloss::TLoss;
pub use tnc::Tnc;
pub use ts2vec::Ts2Vec;
pub use tstcc::TsTcc;

/// Builds the four unsupervised forecasting baselines of Table III/IV.
pub fn forecast_ssl_baselines(cfg: &BaselineConfig) -> Vec<Box<dyn SslMethod>> {
    vec![
        Box::new(SimTs::new(cfg.clone())),
        Box::new(Ts2Vec::new(cfg.clone())),
        Box::new(Tnc::new(cfg.clone())),
        Box::new(Cost::new(cfg.clone())),
    ]
}

/// Builds the two end-to-end forecasting baselines of Table III/IV.
pub fn forecast_e2e_baselines(cfg: &BaselineConfig, horizon: usize) -> Vec<Box<dyn EndToEndForecaster>> {
    vec![
        Box::new(Informer::new(cfg.clone(), horizon)),
        Box::new(TcnForecaster::new(cfg.clone(), horizon)),
    ]
}

/// Builds the seven classification baselines of Table V. `n_classes`
/// parameterizes the clustering-based methods.
pub fn classification_baselines(cfg: &BaselineConfig, n_classes: usize) -> Vec<Box<dyn SslMethod>> {
    vec![
        Box::new(Mhccl::new(cfg.clone(), n_classes)),
        Box::new(Ccl::new(cfg.clone(), n_classes)),
        Box::new(SimClr::new(cfg.clone())),
        Box::new(Byol::new(cfg.clone())),
        Box::new(Ts2Vec::new(cfg.clone())),
        Box::new(TsTcc::new(cfg.clone())),
        Box::new(TLoss::new(cfg.clone())),
    ]
}
