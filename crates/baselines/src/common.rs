//! Shared infrastructure for the baseline methods: the dilated-conv
//! sequence encoder that CNN-based SSL baselines (TS2Vec, SimTS, TS-TCC,
//! T-Loss, ...) build on, the method traits, and the generic SSL training
//! loop.

use timedrl_data::BatchIndices;
use timedrl_nn::{clip_grad_norm, AdamW, Conv1d, Ctx, Linear, Module, Optimizer};
use timedrl_tensor::{NdArray, Prng, Var};

/// Hyperparameters shared by all baselines (kept deliberately uniform so
/// the comparison measures *method* differences, not tuning budgets).
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Input window length.
    pub input_len: usize,
    /// Input feature count.
    pub n_features: usize,
    /// Embedding width.
    pub d_model: usize,
    /// Encoder depth (dilated conv blocks / transformer layers).
    pub depth: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// AdamW learning rate.
    pub lr: f32,
    /// Contrastive temperature (where applicable).
    pub temperature: f32,
    /// Master seed.
    pub seed: u64,
}

impl BaselineConfig {
    /// A compact configuration matched to the TimeDRL experiment scale.
    pub fn compact(input_len: usize, n_features: usize) -> Self {
        Self {
            input_len,
            n_features,
            d_model: 32,
            depth: 3,
            dropout: 0.1,
            epochs: 10,
            batch_size: 32,
            lr: 1e-3,
            temperature: 0.5,
            seed: 0,
        }
    }
}

/// A TS2Vec-style dilated convolutional encoder: per-timestep input
/// projection followed by `depth` same-length residual conv blocks with
/// doubling dilation, mapping `[B, T, C] -> [B, T, D]`.
pub struct ConvEncoder {
    input_proj: Linear,
    convs: Vec<Conv1d>,
    dropout: f32,
    d_model: usize,
}

impl ConvEncoder {
    /// Builds the encoder.
    pub fn new(cfg: &BaselineConfig, rng: &mut Prng) -> Self {
        let convs = (0..cfg.depth)
            .map(|i| {
                let dilation = 1usize << i;
                // Same-length dilated conv: pad = dilation for kernel 3.
                Conv1d::new(cfg.d_model, cfg.d_model, 3, 1, dilation, dilation, rng)
            })
            .collect();
        Self {
            input_proj: Linear::new(cfg.n_features, cfg.d_model, rng),
            convs,
            dropout: cfg.dropout,
            d_model: cfg.d_model,
        }
    }

    /// Encodes `[B, T, C]` into per-timestep embeddings `[B, T, D]`.
    pub fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let mut h = self.input_proj.forward(x).permute(&[0, 2, 1]); // [B, D, T]
        for conv in &self.convs {
            let out = conv.forward(&h.gelu());
            h = h.add(&out); // residual
        }
        h.permute(&[0, 2, 1]).dropout(self.dropout, ctx.training, &mut ctx.rng)
    }

    /// Embedding width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }
}

impl Module for ConvEncoder {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = self.input_proj.parameters();
        ps.extend(self.convs.iter().flat_map(|c| c.parameters()));
        ps
    }
}

/// A self-supervised representation learner in the linear-evaluation
/// protocol: pre-train on unlabeled windows, then expose frozen embeddings
/// at both levels.
pub trait SslMethod {
    /// The method name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Pre-trains on unlabeled windows `[N, T, C]`; returns per-epoch
    /// losses.
    fn pretrain(&mut self, windows: &NdArray) -> Vec<f32>;

    /// Frozen per-timestep embeddings, flattened per sample: `[N, T·D]`
    /// (feeds the forecasting ridge probe).
    fn embed_timestamps_flat(&self, x: &NdArray) -> NdArray;

    /// Frozen instance embeddings `[N, D]` (feeds the classification
    /// probe).
    fn embed_instances(&self, x: &NdArray) -> NdArray;
}

/// An end-to-end forecaster (Informer, TCN): representation and forecast
/// head trained jointly with supervision.
pub trait EndToEndForecaster {
    /// The method name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Trains on `(inputs [N, L, C], targets [N, H])`; returns per-epoch
    /// losses.
    fn fit(&mut self, inputs: &NdArray, targets: &NdArray) -> Vec<f32>;

    /// Predicts horizons `[N, H]` for inputs `[N, L, C]`.
    fn predict(&self, inputs: &NdArray) -> NdArray;
}

/// Generic SSL pre-training loop: shuffled mini-batches, AdamW, gradient
/// clipping. `loss_fn` maps a raw batch to a differentiable scalar.
pub fn fit_ssl(
    params: Vec<Var>,
    windows: &NdArray,
    cfg: &BaselineConfig,
    mut loss_fn: impl FnMut(&NdArray, &mut Ctx, &mut Prng) -> Var,
) -> Vec<f32> {
    assert_eq!(windows.rank(), 3, "fit_ssl expects [N, T, C]");
    let n = windows.shape()[0];
    let mut opt = AdamW::new(params, cfg.lr, 1e-4);
    let mut epoch_rng = Prng::new(cfg.seed ^ 0xba5e_0001);
    let mut ctx = Ctx::train(cfg.seed ^ 0xba5e_0002);
    let mut aux_rng = Prng::new(cfg.seed ^ 0xba5e_0003);
    let mut history = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut sum = 0.0f64;
        let mut batches = 0usize;
        for idx in BatchIndices::new(n, cfg.batch_size, Some(&mut epoch_rng))
            .expect("batch_size is positive")
        {
            let batch = gather(windows, &idx);
            opt.zero_grad();
            let loss = loss_fn(&batch, &mut ctx, &mut aux_rng);
            sum += loss.item() as f64;
            // Every matmul node below this call differentiates through the
            // transpose-aware kernels (DESIGN.md §12): dA = G·Bᵀ and
            // dB = Aᵀ·G read their transposed operand in place.
            loss.backward();
            clip_grad_norm(opt.parameters(), 5.0);
            opt.step();
            batches += 1;
        }
        history.push((sum / batches.max(1) as f64) as f32);
    }
    history
}

/// Gathers rows of `[N, T, C]` into `[B, T, C]`.
pub fn gather(x: &NdArray, indices: &[usize]) -> NdArray {
    let (t, c) = (x.shape()[1], x.shape()[2]);
    let row = t * c;
    let mut data = Vec::with_capacity(indices.len() * row);
    for &i in indices {
        data.extend_from_slice(&x.data()[i * row..(i + 1) * row]);
    }
    NdArray::from_vec(&[indices.len(), t, c], data).expect("batch shape")
}

/// Chunked frozen-embedding helper: applies `embed` to 128-sample chunks
/// of `x` in eval mode and concatenates.
pub fn embed_chunked(x: &NdArray, embed: impl Fn(&NdArray, &mut Ctx) -> NdArray) -> NdArray {
    let n = x.shape()[0];
    let mut ctx = Ctx::eval();
    let mut parts = Vec::new();
    let mut start = 0;
    while start < n {
        let len = 128.min(n - start);
        let chunk = x.slice(0, start, len).expect("chunk");
        parts.push(embed(&chunk, &mut ctx));
        start += len;
    }
    let refs: Vec<&NdArray> = parts.iter().collect();
    NdArray::concat(&refs, 0)
}

/// Mean over the time axis of `[B, T, D]` — the GAP instance pooling the
/// CNN baselines use (precisely the entangled derivation TimeDRL argues
/// against, Fig. 1a).
pub fn gap_instances(z: &Var) -> Var {
    z.mean_axis(1, false)
}

/// Pools `[B, T, D]` embeddings into `segments` temporal segments and
/// flattens to `[B, segments·D]`.
///
/// The forecasting ridge probe needs a fixed, moderate feature width; the
/// CNN baselines emit one embedding per raw timestep (`T·D` would be
/// thousands of features), so — mirroring TimeDRL's patch granularity — we
/// average within `T/segments`-step segments before the readout.
pub fn segment_pool_flat(z: &NdArray, segments: usize) -> NdArray {
    assert_eq!(z.rank(), 3, "segment_pool expects [B, T, D]");
    let (b, t, d) = (z.shape()[0], z.shape()[1], z.shape()[2]);
    let s = segments.min(t).max(1);
    let mut out = NdArray::zeros(&[b, s * d]);
    for bi in 0..b {
        for seg in 0..s {
            let start = seg * t / s;
            let end = ((seg + 1) * t / s).max(start + 1);
            let inv = 1.0 / (end - start) as f32;
            for ti in start..end {
                for di in 0..d {
                    let v = z.data()[(bi * t + ti) * d + di];
                    out.data_mut()[bi * s * d + seg * d + di] += v * inv;
                }
            }
        }
    }
    out
}

/// Samples two (possibly augmented) views of a `[B, T, C]` batch by
/// applying each augmentation in `kinds` independently per view.
pub fn two_augmented_views(
    batch: &NdArray,
    kinds: &[timedrl_data::Augmentation],
    rng: &mut Prng,
) -> (NdArray, NdArray) {
    let apply = |x: &NdArray, rng: &mut Prng| {
        let mut out = x.clone();
        for k in kinds {
            out = k.apply_batch(&out, rng);
        }
        out
    };
    (apply(batch, rng), apply(batch, rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_encoder_shapes() {
        let cfg = BaselineConfig::compact(24, 3);
        let mut rng = Prng::new(0);
        let enc = ConvEncoder::new(&cfg, &mut rng);
        let x = Var::constant(rng.randn(&[2, 24, 3]));
        assert_eq!(enc.forward(&x, &mut Ctx::eval()).shape(), vec![2, 24, 32]);
    }

    #[test]
    fn conv_encoder_trains() {
        let cfg = BaselineConfig::compact(16, 1);
        let mut rng = Prng::new(1);
        let enc = ConvEncoder::new(&cfg, &mut rng);
        let x = Var::constant(rng.randn(&[2, 16, 1]));
        enc.forward(&x, &mut Ctx::train(2)).powf(2.0).mean().backward();
        for p in enc.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn fit_ssl_reduces_a_simple_objective() {
        // Minimal smoke: shrink the encoder output norm.
        let cfg = BaselineConfig { epochs: 5, ..BaselineConfig::compact(8, 1) };
        let mut rng = Prng::new(3);
        let enc = ConvEncoder::new(&cfg, &mut rng);
        let windows = rng.randn(&[16, 8, 1]);
        let history = fit_ssl(enc.parameters(), &windows, &cfg, |batch, ctx, _| {
            enc.forward(&Var::constant(batch.clone()), ctx).powf(2.0).mean()
        });
        assert_eq!(history.len(), 5);
        assert!(history.last().unwrap() < &history[0]);
    }

    #[test]
    fn embed_chunked_matches_direct() {
        let cfg = BaselineConfig::compact(8, 1);
        let mut rng = Prng::new(4);
        let enc = ConvEncoder::new(&cfg, &mut rng);
        let x = rng.randn(&[300, 8, 1]);
        let chunked = embed_chunked(&x, |c, ctx| {
            gap_instances(&enc.forward(&Var::constant(c.clone()), ctx)).to_array()
        });
        assert_eq!(chunked.shape(), &[300, 32]);
        let direct =
            gap_instances(&enc.forward(&Var::constant(x.slice(0, 0, 2).unwrap()), &mut Ctx::eval()))
                .to_array();
        for i in 0..2 * 32 {
            assert!((chunked.data()[i] - direct.data()[i]).abs() < 1e-5);
        }
    }
}
