//! CCL (Sharma et al., FG 2020): clustering-based contrastive learning —
//! cluster assignments act as pseudo-labels; samples are pulled toward
//! their own (detached) centroid and pushed from the others via a
//! prototype softmax.

use crate::common::{
    embed_chunked, fit_ssl, gap_instances, segment_pool_flat, BaselineConfig, ConvEncoder,
    SslMethod,
};
use crate::kmeans::kmeans;
use timedrl_nn::loss::l2_normalize_rows;
use timedrl_nn::Module;
use timedrl_tensor::{NdArray, Prng, Var};

/// The CCL method.
pub struct Ccl {
    cfg: BaselineConfig,
    encoder: ConvEncoder,
    /// Number of clusters (the pseudo-class count).
    pub n_clusters: usize,
}

impl Ccl {
    /// Builds CCL with `n_clusters` pseudo-classes.
    pub fn new(cfg: BaselineConfig, n_clusters: usize) -> Self {
        let mut rng = Prng::new(cfg.seed ^ 0xcc10_0000);
        let encoder = ConvEncoder::new(&cfg, &mut rng);
        Self { cfg, encoder, n_clusters }
    }

    /// Prototype cross-entropy: cluster in-batch embeddings, then classify
    /// each sample into its own centroid against the others.
    pub(crate) fn prototype_loss(z: &Var, k: usize, temperature: f32, rng: &mut Prng) -> Var {
        let n = z.shape()[0];
        let k = k.min(n).max(1);
        if k < 2 {
            return Var::scalar(0.0);
        }
        let z_norm = l2_normalize_rows(z);
        // Cluster on detached values; centroids are constants.
        let clustering = kmeans(&z_norm.to_array(), k, 10, rng);
        let centroids = normalize_rows_nd(&clustering.centroids);
        let logits = z_norm
            .matmul_t(&Var::constant(centroids.clone()))
            .scale(1.0 / temperature);
        logits.cross_entropy(&clustering.assignments)
    }
}

/// Row-normalizes an `[K, D]` array (plain-value counterpart of
/// `l2_normalize_rows`).
fn normalize_rows_nd(x: &NdArray) -> NdArray {
    let (k, d) = (x.shape()[0], x.shape()[1]);
    let mut out = x.clone();
    for i in 0..k {
        let row = &x.data()[i * d..(i + 1) * d];
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-8);
        for j in 0..d {
            out.data_mut()[i * d + j] /= norm;
        }
    }
    out
}

impl SslMethod for Ccl {
    fn name(&self) -> &'static str {
        "CCL"
    }

    fn pretrain(&mut self, windows: &NdArray) -> Vec<f32> {
        let params = self.encoder.parameters();
        let cfg = self.cfg.clone();
        let k = self.n_clusters;
        let this = &*self;
        fit_ssl(params, windows, &cfg, |batch, ctx, rng| {
            let z = gap_instances(&this.encoder.forward(&Var::constant(batch.clone()), ctx));
            Self::prototype_loss(&z, k, cfg.temperature, rng)
        })
    }

    fn embed_timestamps_flat(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            let z = self.encoder.forward(&Var::constant(chunk.clone()), ctx).to_array();
            segment_pool_flat(&z, 8)
        })
    }

    fn embed_instances(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            gap_instances(&self.encoder.forward(&Var::constant(chunk.clone()), ctx)).to_array()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_windows(n: usize, t: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, t, 1], |flat| {
            let i = flat / t;
            let freq = [0.2f32, 0.8, 1.6][i % 3];
            ((flat % t) as f32 * freq).sin() * 2.0 + rng.normal_with(0.0, 0.1)
        })
    }

    #[test]
    fn prototype_loss_finite_and_differentiable() {
        let mut rng = Prng::new(0);
        let z = Var::parameter(rng.randn(&[16, 8]));
        let loss = Ccl::prototype_loss(&z, 4, 0.5, &mut rng);
        assert!(loss.item().is_finite());
        loss.backward();
        assert!(z.grad().is_some());
    }

    #[test]
    fn degenerate_batch_is_safe() {
        let mut rng = Prng::new(1);
        let z = Var::parameter(rng.randn(&[1, 8]));
        assert_eq!(Ccl::prototype_loss(&z, 4, 0.5, &mut rng).item(), 0.0);
    }

    #[test]
    fn pretrain_reduces_prototype_loss() {
        let cfg = BaselineConfig { epochs: 6, ..BaselineConfig::compact(16, 1) };
        let mut m = Ccl::new(cfg, 3);
        let history = m.pretrain(&clustered_windows(36, 16, 2));
        assert!(history.iter().all(|l| l.is_finite()));
        assert!(history.last().unwrap() < &history[0], "history {history:?}");
    }
}
