//! CoST (Woo et al., ICLR 2022): contrastive learning of disentangled
//! seasonal-trend representations via time-domain and frequency-domain
//! losses.
//!
//! The time-domain branch contrasts instance embeddings of two augmented
//! views (scaling + jitter, as CoST prescribes). The frequency-domain
//! branch maps per-timestep embeddings through a discrete Fourier
//! transform — implemented as constant cosine/sine matrices so it stays
//! differentiable through our primitive set — and aligns the amplitude
//! spectra of the two views.

use crate::common::{
    embed_chunked, fit_ssl, gap_instances, segment_pool_flat, two_augmented_views, BaselineConfig,
    ConvEncoder, SslMethod,
};
use timedrl_data::Augmentation;
use timedrl_nn::loss::nt_xent;
use timedrl_nn::Module;
use timedrl_tensor::{NdArray, Prng, Var};

/// The CoST method.
pub struct Cost {
    cfg: BaselineConfig,
    encoder: ConvEncoder,
    /// Constant DFT basis `[T, K]` (cosines) for the frequency branch.
    dft_cos: NdArray,
    /// Constant DFT basis `[T, K]` (sines).
    dft_sin: NdArray,
}

impl Cost {
    /// Builds CoST; the frequency branch keeps the first `T/2` rFFT bins.
    pub fn new(cfg: BaselineConfig) -> Self {
        let mut rng = Prng::new(cfg.seed ^ 0xc057_0000);
        let encoder = ConvEncoder::new(&cfg, &mut rng);
        let t = cfg.input_len;
        let k = (t / 2).max(1);
        let (dft_cos, dft_sin) = dft_bases(t, k);
        Self { cfg, encoder, dft_cos, dft_sin }
    }

    /// Amplitude spectrum of `[B, T, D]` embeddings: `[B, K, D]` where
    /// `amp[k] = sqrt(cos_proj^2 + sin_proj^2)`.
    fn amplitude_spectrum(&self, z: &Var) -> Var {
        // Project over time: [B, T, D] -> [B, K, D] via basis^T on axis 1.
        let zt = z.permute(&[0, 2, 1]); // [B, D, T]
        let re = zt.matmul(&Var::constant(self.dft_cos.clone())); // [B, D, K]
        let im = zt.matmul(&Var::constant(self.dft_sin.clone()));
        re.mul(&re).add(&im.mul(&im)).add_scalar(1e-8).sqrt().permute(&[0, 2, 1])
    }
}

/// Real-DFT bases: columns `k` hold `cos(2π k t / T)` and `sin(2π k t / T)`.
fn dft_bases(t: usize, k: usize) -> (NdArray, NdArray) {
    let cos = NdArray::from_fn(&[t, k], |flat| {
        let (ti, ki) = (flat / k, flat % k);
        (std::f32::consts::TAU * ki as f32 * ti as f32 / t as f32).cos()
    });
    let sin = NdArray::from_fn(&[t, k], |flat| {
        let (ti, ki) = (flat / k, flat % k);
        (std::f32::consts::TAU * ki as f32 * ti as f32 / t as f32).sin()
    });
    (cos, sin)
}

impl SslMethod for Cost {
    fn name(&self) -> &'static str {
        "CoST"
    }

    fn pretrain(&mut self, windows: &NdArray) -> Vec<f32> {
        let params = self.encoder.parameters();
        let cfg = self.cfg.clone();
        let this = &*self;
        fit_ssl(params, windows, &cfg, |batch, ctx, rng| {
            let (v1, v2) =
                two_augmented_views(batch, &[Augmentation::Scaling, Augmentation::Jitter], rng);
            let z1 = this.encoder.forward(&Var::constant(v1), ctx);
            let z2 = this.encoder.forward(&Var::constant(v2), ctx);
            // Time-domain: instance-level NT-Xent on pooled embeddings.
            let time_loss = if batch.shape()[0] >= 2 {
                nt_xent(&gap_instances(&z1), &gap_instances(&z2), cfg.temperature)
            } else {
                Var::scalar(0.0)
            };
            // Frequency-domain: align amplitude spectra across views.
            let a1 = this.amplitude_spectrum(&z1);
            let a2 = this.amplitude_spectrum(&z2);
            let freq_loss = a1.sub(&a2).powf(2.0).mean();
            time_loss.add(&freq_loss.scale(0.5))
        })
    }

    fn embed_timestamps_flat(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            let z = self.encoder.forward(&Var::constant(chunk.clone()), ctx).to_array();
            segment_pool_flat(&z, 8)
        })
    }

    fn embed_instances(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            gap_instances(&self.encoder.forward(&Var::constant(chunk.clone()), ctx)).to_array()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dft_basis_identifies_pure_tone() {
        // Projecting a pure cosine at bin 3 onto the bases concentrates
        // amplitude at bin 3.
        let t = 16;
        let (cos_b, sin_b) = dft_bases(t, 8);
        let tone = NdArray::from_fn(&[1, t], |i| {
            (std::f32::consts::TAU * 3.0 * i as f32 / t as f32).cos()
        });
        let re = timedrl_tensor::matmul(&tone, &cos_b).unwrap();
        let im = timedrl_tensor::matmul(&tone, &sin_b).unwrap();
        let amp: Vec<f32> = (0..8)
            .map(|k| (re.data()[k].powi(2) + im.data()[k].powi(2)).sqrt())
            .collect();
        let max_bin = amp
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_bin, 3, "spectrum {amp:?}");
    }

    fn seasonal_windows(n: usize, t: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, t, 1], |flat| {
            let i = flat / t;
            let step = flat % t;
            (std::f32::consts::TAU * step as f32 / 8.0 + i as f32).sin()
                + 0.05 * step as f32
                + rng.normal_with(0.0, 0.1)
        })
    }

    #[test]
    fn pretrain_runs_and_decreases() {
        let cfg = BaselineConfig { epochs: 5, ..BaselineConfig::compact(16, 1) };
        let mut m = Cost::new(cfg);
        let history = m.pretrain(&seasonal_windows(32, 16, 0));
        assert!(history.iter().all(|l| l.is_finite()));
        assert!(history.last().unwrap() < &history[0], "history {history:?}");
    }

    #[test]
    fn embedding_shapes() {
        let cfg = BaselineConfig { epochs: 1, ..BaselineConfig::compact(16, 1) };
        let mut m = Cost::new(cfg);
        let w = seasonal_windows(6, 16, 1);
        m.pretrain(&w);
        assert_eq!(m.embed_instances(&w).shape(), &[6, 32]);
        assert_eq!(m.embed_timestamps_flat(&w).shape(), &[6, 256]);
    }
}
