//! SimTS (Zheng et al., 2023): predict the *future in latent space* from
//! the past, without negative pairs.
//!
//! Each window is split into a history half and a future half. The shared
//! encoder embeds both; a predictor MLP maps the last history embedding to
//! the sequence of future latents; the loss is negative cosine similarity
//! against the (stop-gradient) encoded future — the Siamese asymmetry that
//! avoids collapse without negatives.

use crate::common::{
    embed_chunked, fit_ssl, gap_instances, segment_pool_flat, BaselineConfig, ConvEncoder,
    SslMethod,
};
use timedrl_nn::{Linear, Module};
use timedrl_tensor::{NdArray, Prng, Var};

/// The SimTS method.
pub struct SimTs {
    cfg: BaselineConfig,
    encoder: ConvEncoder,
    /// Predictor: last history latent `[B, D]` → flattened future latents
    /// `[B, F·D]` through a hidden layer.
    pred_hidden: Linear,
    pred_out: Linear,
    future_len: usize,
}

impl SimTs {
    /// Builds SimTS; the future half is `input_len / 2` steps.
    pub fn new(cfg: BaselineConfig) -> Self {
        let mut rng = Prng::new(cfg.seed ^ 0x51b7_5000);
        let encoder = ConvEncoder::new(&cfg, &mut rng);
        let future_len = (cfg.input_len / 2).max(1);
        let d = cfg.d_model;
        Self {
            pred_hidden: Linear::new(d, d * 2, &mut rng),
            pred_out: Linear::new(d * 2, future_len * d, &mut rng),
            encoder,
            cfg,
            future_len,
        }
    }

    fn history_len(&self) -> usize {
        self.cfg.input_len - self.future_len
    }
}

impl SslMethod for SimTs {
    fn name(&self) -> &'static str {
        "SimTS"
    }

    fn pretrain(&mut self, windows: &NdArray) -> Vec<f32> {
        let mut params = self.encoder.parameters();
        params.extend(self.pred_hidden.parameters());
        params.extend(self.pred_out.parameters());
        let cfg = self.cfg.clone();
        let this = &*self;
        fit_ssl(params, windows, &cfg, |batch, ctx, _| {
            let b = batch.shape()[0];
            let d = cfg.d_model;
            let h = this.history_len();
            let f = this.future_len;
            let history = batch.slice(1, 0, h).expect("history");
            let future = batch.slice(1, h, f).expect("future");
            // Encode the history; the last latent summarizes the past.
            let z_hist = this.encoder.forward(&Var::constant(history), ctx);
            let last = z_hist.slice(1, h - 1, 1).reshape(&[b, d]);
            let predicted = this
                .pred_out
                .forward(&this.pred_hidden.forward(&last).relu())
                .reshape(&[b * f, d]);
            // Encode the future and stop its gradient (SimTS's asymmetry).
            let z_future = this
                .encoder
                .forward(&Var::constant(future), ctx)
                .reshape(&[b * f, d])
                .detach();
            predicted.cosine_similarity_mean(&z_future).neg()
        })
    }

    fn embed_timestamps_flat(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            let z = self.encoder.forward(&Var::constant(chunk.clone()), ctx).to_array();
            segment_pool_flat(&z, 8)
        })
    }

    fn embed_instances(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            gap_instances(&self.encoder.forward(&Var::constant(chunk.clone()), ctx)).to_array()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar_windows(n: usize, t: usize, seed: u64) -> NdArray {
        // Autoregressive data: the future genuinely depends on the past.
        let mut rng = Prng::new(seed);
        let mut data = Vec::with_capacity(n * t);
        for _ in 0..n {
            let mut v = rng.normal();
            for _ in 0..t {
                v = 0.9 * v + rng.normal_with(0.0, 0.2);
                data.push(v);
            }
        }
        NdArray::from_vec(&[n, t, 1], data).unwrap()
    }

    #[test]
    fn loss_decreases_on_predictable_data() {
        let cfg = BaselineConfig { epochs: 5, ..BaselineConfig::compact(16, 1) };
        let mut m = SimTs::new(cfg);
        let history = m.pretrain(&ar_windows(32, 16, 0));
        assert!(history.last().unwrap() < &history[0], "history {history:?}");
    }

    #[test]
    fn loss_is_bounded_by_cosine_range() {
        let cfg = BaselineConfig { epochs: 1, ..BaselineConfig::compact(16, 1) };
        let mut m = SimTs::new(cfg);
        let history = m.pretrain(&ar_windows(16, 16, 1));
        for l in history {
            assert!((-1.0..=1.0).contains(&l), "loss {l}");
        }
    }

    #[test]
    fn embeddings_shapes() {
        let cfg = BaselineConfig { epochs: 1, ..BaselineConfig::compact(16, 1) };
        let mut m = SimTs::new(cfg);
        let w = ar_windows(10, 16, 2);
        m.pretrain(&w);
        assert_eq!(m.embed_instances(&w).shape(), &[10, 32]);
        assert_eq!(m.embed_timestamps_flat(&w).shape(), &[10, 256]);
    }
}
