//! TS2Vec (Yue et al., AAAI 2022): hierarchical contrastive learning over
//! overlapping cropped contexts with timestamp masking.
//!
//! Faithful at the structure level: two views come from *cropping* (two
//! overlapping subwindows) plus *masking* (random input zeroing) — exactly
//! the two augmentations Table VI shows to be "relatively less harmful" —
//! then the shared overlap region is contrasted both instance-wise and
//! temporally at multiple temporal scales, with max pooling between
//! scales exactly as the original prescribes.

use crate::common::{
    embed_chunked, fit_ssl, gap_instances, segment_pool_flat, BaselineConfig, ConvEncoder,
    SslMethod,
};
use timedrl_data::augment::masking;
use timedrl_nn::loss::{ts2vec_instance_contrast, ts2vec_temporal_contrast};
use timedrl_nn::Module;
use timedrl_tensor::{NdArray, Prng, Var};

/// The TS2Vec method.
pub struct Ts2Vec {
    cfg: BaselineConfig,
    encoder: ConvEncoder,
}

impl Ts2Vec {
    /// Builds TS2Vec with a fresh encoder.
    pub fn new(cfg: BaselineConfig) -> Self {
        let mut rng = Prng::new(cfg.seed ^ 0x7520_7e00);
        let encoder = ConvEncoder::new(&cfg, &mut rng);
        Self { cfg, encoder }
    }

    /// The hierarchical loss over a pair of aligned `[B, T, D]` views.
    fn hierarchical_loss(&self, mut z1: Var, mut z2: Var) -> Var {
        let mut total = Var::scalar(0.0);
        let mut scales = 0usize;
        loop {
            let li = ts2vec_instance_contrast(&z1, &z2, self.cfg.temperature);
            let lt = ts2vec_temporal_contrast(&z1, &z2, self.cfg.temperature);
            total = total.add(&li).add(&lt);
            scales += 1;
            let t = z1.shape()[1];
            if t < 2 {
                break;
            }
            // Halve the temporal scale by max pooling pairs (TS2Vec's
            // original hierarchy).
            let t2 = t / 2;
            let d = z1.shape()[2];
            let b = z1.shape()[0];
            z1 = z1.slice(1, 0, t2 * 2).reshape(&[b, t2, 2, d]).max_axis(2, false);
            z2 = z2.slice(1, 0, t2 * 2).reshape(&[b, t2, 2, d]).max_axis(2, false);
            if t2 < 2 {
                // One more round at the instance scale, then stop.
                let li = ts2vec_instance_contrast(&z1, &z2, self.cfg.temperature);
                total = total.add(&li);
                scales += 1;
                break;
            }
        }
        total.scale(1.0 / scales as f32)
    }
}

impl SslMethod for Ts2Vec {
    fn name(&self) -> &'static str {
        "TS2Vec"
    }

    fn pretrain(&mut self, windows: &NdArray) -> Vec<f32> {
        let encoder = &self.encoder;
        let cfg = self.cfg.clone();
        let this = &*self;
        fit_ssl(encoder.parameters(), windows, &cfg, |batch, ctx, rng| {
            let t = batch.shape()[1];
            // Two overlapping crops a1 <= a2 < b1 <= b2 with a non-empty
            // common region [a2, b1).
            let min_overlap = (t / 4).max(2).min(t);
            let a2 = rng.below(t - min_overlap + 1);
            let b1 = (a2 + min_overlap + rng.below(t - a2 - min_overlap + 1)).min(t);
            let a1 = rng.below(a2 + 1);
            let b2 = b1 + rng.below(t - b1 + 1);
            let crop1 = batch.slice(1, a1, b1 - a1).expect("crop1");
            let crop2 = batch.slice(1, a2, b2 - a2).expect("crop2");
            // Timestamp masking per view (TS2Vec's second augmentation).
            let m1 = mask_batch(&crop1, 0.1, rng);
            let m2 = mask_batch(&crop2, 0.1, rng);
            let z1 = encoder.forward(&Var::constant(m1), ctx);
            let z2 = encoder.forward(&Var::constant(m2), ctx);
            // Align on the overlap region.
            let o1 = z1.slice(1, a2 - a1, b1 - a2);
            let o2 = z2.slice(1, 0, b1 - a2);
            this.hierarchical_loss(o1, o2)
        })
    }

    fn embed_timestamps_flat(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            let z = self.encoder.forward(&Var::constant(chunk.clone()), ctx).to_array();
            segment_pool_flat(&z, 8)
        })
    }

    fn embed_instances(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            gap_instances(&self.encoder.forward(&Var::constant(chunk.clone()), ctx)).to_array()
        })
    }
}

fn mask_batch(x: &NdArray, p: f32, rng: &mut Prng) -> NdArray {
    let b = x.shape()[0];
    let parts: Vec<NdArray> = (0..b).map(|i| masking(&x.index_axis0(i), p, rng)).collect();
    let refs: Vec<&NdArray> = parts.iter().collect();
    NdArray::stack(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_windows(n: usize, t: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, t, 1], |flat| {
            let i = flat / t;
            let step = flat % t;
            ((step as f32 * 0.5) + i as f32 * 0.37).sin() + rng.normal_with(0.0, 0.05)
        })
    }

    #[test]
    fn pretrain_runs_and_losses_finite() {
        let cfg = BaselineConfig { epochs: 2, ..BaselineConfig::compact(16, 1) };
        let mut m = Ts2Vec::new(cfg);
        let history = m.pretrain(&sine_windows(24, 16, 0));
        assert_eq!(history.len(), 2);
        assert!(history.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn embeddings_have_declared_shapes() {
        let cfg = BaselineConfig { epochs: 1, ..BaselineConfig::compact(16, 1) };
        let mut m = Ts2Vec::new(cfg);
        let w = sine_windows(12, 16, 1);
        m.pretrain(&w);
        assert_eq!(m.embed_instances(&w).shape(), &[12, 32]);
        assert_eq!(m.embed_timestamps_flat(&w).shape(), &[12, 8 * 32]);
    }

    #[test]
    fn similar_inputs_embed_closer_after_training() {
        let cfg = BaselineConfig { epochs: 4, ..BaselineConfig::compact(16, 1) };
        let mut m = Ts2Vec::new(cfg);
        let w = sine_windows(32, 16, 2);
        m.pretrain(&w);
        let z = m.embed_instances(&w);
        // Embeddings should not have collapsed to a constant.
        let std = z.var_axis(0, false).mean().sqrt();
        assert!(std > 1e-4, "collapsed: std {std}");
    }
}
