//! TCN (Bai et al., 2018), end-to-end: dilated causal convolutions with a
//! linear forecast head on the final timestep's receptive field.

use crate::common::{embed_chunked, BaselineConfig, EndToEndForecaster};
use crate::informer::gather_2d;
use timedrl_data::BatchIndices;
use timedrl_nn::{clip_grad_norm, AdamW, Ctx, Linear, Module, Optimizer, Tcn};
use timedrl_tensor::{NdArray, Prng, Var};

/// The end-to-end TCN forecasting baseline.
pub struct TcnForecaster {
    cfg: BaselineConfig,
    net: Tcn,
    head: Linear,
    horizon: usize,
}

impl TcnForecaster {
    /// Builds the model for a given forecast `horizon`.
    pub fn new(cfg: BaselineConfig, horizon: usize) -> Self {
        let mut rng = Prng::new(cfg.seed ^ 0x7c4e_2e00);
        let d = cfg.d_model;
        let net = Tcn::new(cfg.n_features, &vec![d; cfg.depth.max(2)], 3, cfg.dropout, &mut rng);
        Self { head: Linear::new(d, horizon, &mut rng), net, horizon, cfg }
    }

    fn forward(&self, x: &NdArray, ctx: &mut Ctx) -> Var {
        let b = x.shape()[0];
        let t = x.shape()[1];
        // [B, T, C] -> [B, C, T] for the conv stack.
        let h = self.net.forward(&Var::constant(x.clone()).permute(&[0, 2, 1]), ctx);
        // Autoregressive readout: the last causal position summarizes the
        // full receptive field.
        let last = h.slice(2, t - 1, 1).reshape(&[b, self.cfg.d_model]);
        self.head.forward(&last)
    }
}

impl Module for TcnForecaster {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = self.net.parameters();
        ps.extend(self.head.parameters());
        ps
    }
}

impl EndToEndForecaster for TcnForecaster {
    fn name(&self) -> &'static str {
        "TCN"
    }

    fn fit(&mut self, inputs: &NdArray, targets: &NdArray) -> Vec<f32> {
        assert_eq!(targets.shape()[1], self.horizon, "horizon mismatch");
        let n = inputs.shape()[0];
        let mut opt = AdamW::new(self.parameters(), self.cfg.lr, 1e-4);
        let mut epoch_rng = Prng::new(self.cfg.seed ^ 0x7c4e_2e01);
        let mut ctx = Ctx::train(self.cfg.seed ^ 0x7c4e_2e02);
        let mut history = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            let mut sum = 0.0f64;
            let mut count = 0usize;
            for idx in BatchIndices::new(n, self.cfg.batch_size, Some(&mut epoch_rng))
                .expect("batch_size is positive")
            {
                let x = crate::common::gather(inputs, &idx);
                let y = gather_2d(targets, &idx);
                opt.zero_grad();
                let loss = self.forward(&x, &mut ctx).mse_loss(&y);
                sum += loss.item() as f64;
                loss.backward();
                clip_grad_norm(opt.parameters(), 5.0);
                opt.step();
                count += 1;
            }
            history.push((sum / count.max(1) as f64) as f32);
        }
        history
    }

    fn predict(&self, inputs: &NdArray) -> NdArray {
        embed_chunked(inputs, |chunk, ctx| self.forward(chunk, ctx).to_array())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_trend_task(n: usize, l: usize, h: usize, seed: u64) -> (NdArray, NdArray) {
        // y continues a per-sample linear trend: learnable by a causal net.
        let mut rng = Prng::new(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let slope = rng.uniform_in(-0.1, 0.1);
            let offset = rng.normal();
            for t in 0..l {
                xs.push(offset + slope * t as f32 + rng.normal_with(0.0, 0.02));
            }
            for t in 0..h {
                ys.push(offset + slope * (l + t) as f32);
            }
        }
        (
            NdArray::from_vec(&[n, l, 1], xs).unwrap(),
            NdArray::from_vec(&[n, h], ys).unwrap(),
        )
    }

    #[test]
    fn training_reduces_mse() {
        let cfg = BaselineConfig { epochs: 10, depth: 2, ..BaselineConfig::compact(16, 1) };
        let mut m = TcnForecaster::new(cfg, 4);
        let (x, y) = linear_trend_task(48, 16, 4, 0);
        let history = m.fit(&x, &y);
        assert!(history.last().unwrap() < &history[0]);
    }

    #[test]
    fn beats_zero_predictor_on_trend() {
        let cfg = BaselineConfig { epochs: 20, depth: 2, lr: 2e-3, ..BaselineConfig::compact(16, 1) };
        let mut m = TcnForecaster::new(cfg, 4);
        let (x, y) = linear_trend_task(96, 16, 4, 1);
        m.fit(&x, &y);
        let err = timedrl_eval::mse(&m.predict(&x), &y);
        let zero_err = timedrl_eval::mse(&NdArray::zeros(&[96, 4]), &y);
        assert!(err < zero_err * 0.5, "mse {err} vs zero {zero_err}");
    }

    #[test]
    fn prediction_shape() {
        let cfg = BaselineConfig { epochs: 1, ..BaselineConfig::compact(16, 1) };
        let mut m = TcnForecaster::new(cfg, 6);
        let (x, y) = linear_trend_task(8, 16, 6, 2);
        m.fit(&x, &y);
        assert_eq!(m.predict(&x).shape(), &[8, 6]);
    }
}
