//! T-Loss (Franceschi et al., NeurIPS 2019): unsupervised scalable
//! representation learning with a time-based logistic triplet loss.
//!
//! Anchor: a random subseries of a sample. Positive: a sub-subseries of the
//! anchor. Negatives: random subseries of *other* samples in the batch.

use crate::common::{
    embed_chunked, fit_ssl, gap_instances, segment_pool_flat, BaselineConfig, ConvEncoder,
    SslMethod,
};
use timedrl_nn::loss::tloss_logistic;
use timedrl_nn::{Ctx, Module};
use timedrl_tensor::{NdArray, Prng, Var};

/// The T-Loss method.
pub struct TLoss {
    cfg: BaselineConfig,
    encoder: ConvEncoder,
    /// Number of negative samples per anchor.
    n_negatives: usize,
}

impl TLoss {
    /// Builds T-Loss with 4 negatives per anchor.
    pub fn new(cfg: BaselineConfig) -> Self {
        let mut rng = Prng::new(cfg.seed ^ 0x7105_5000);
        let encoder = ConvEncoder::new(&cfg, &mut rng);
        Self { cfg, encoder, n_negatives: 4 }
    }

    fn encode_crop(&self, batch: &NdArray, start: usize, len: usize, ctx: &mut Ctx) -> Var {
        let crop = batch.slice(1, start, len).expect("crop");
        gap_instances(&self.encoder.forward(&Var::constant(crop), ctx))
    }
}

impl SslMethod for TLoss {
    fn name(&self) -> &'static str {
        "T-Loss"
    }

    fn pretrain(&mut self, windows: &NdArray) -> Vec<f32> {
        let params = self.encoder.parameters();
        let cfg = self.cfg.clone();
        let this = &*self;
        fit_ssl(params, windows, &cfg, |batch, ctx, rng| {
            let b = batch.shape()[0];
            let t = batch.shape()[1];
            if b < 2 || t < 4 {
                return Var::scalar(0.0);
            }
            // Anchor subseries: random range of length >= t/2.
            let a_len = t / 2 + rng.below(t / 2);
            let a_start = rng.below(t - a_len + 1);
            // Positive: a sub-subseries inside the anchor.
            let p_len = (a_len / 2).max(2);
            let p_start = a_start + rng.below(a_len - p_len + 1);
            let anchor = this.encode_crop(batch, a_start, a_len, ctx);
            let positive = this.encode_crop(batch, p_start, p_len, ctx);
            // Negatives: random subseries from a shuffled batch.
            let mut negatives = Vec::with_capacity(this.n_negatives);
            for _ in 0..this.n_negatives {
                let n_len = (t / 2).max(2);
                let n_start = rng.below(t - n_len + 1);
                let mut perm: Vec<usize> = (0..b).collect();
                rng.shuffle(&mut perm);
                // Derangement-ish: rotate so sample i never pairs with
                // itself at position i.
                perm.rotate_left(1 + rng.below(b - 1));
                let shuffled = crate::common::gather(batch, &perm);
                negatives.push(this.encode_crop(&shuffled, n_start, n_len, ctx));
            }
            tloss_logistic(&anchor, &positive, &negatives)
        })
    }

    fn embed_timestamps_flat(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            let z = self.encoder.forward(&Var::constant(chunk.clone()), ctx).to_array();
            segment_pool_flat(&z, 8)
        })
    }

    fn embed_instances(&self, x: &NdArray) -> NdArray {
        embed_chunked(x, |chunk, ctx| {
            gap_instances(&self.encoder.forward(&Var::constant(chunk.clone()), ctx)).to_array()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level_windows(n: usize, t: usize, seed: u64) -> NdArray {
        // Per-series levels: subseries of the same series are similar.
        let mut rng = Prng::new(seed);
        let mut data = Vec::with_capacity(n * t);
        for _ in 0..n {
            let level = rng.normal_with(0.0, 2.0);
            for _ in 0..t {
                data.push(level + rng.normal_with(0.0, 0.2));
            }
        }
        NdArray::from_vec(&[n, t, 1], data).unwrap()
    }

    #[test]
    fn pretrain_reduces_triplet_loss() {
        let cfg = BaselineConfig { epochs: 6, ..BaselineConfig::compact(16, 1) };
        let mut m = TLoss::new(cfg);
        let history = m.pretrain(&level_windows(32, 16, 0));
        assert!(history.last().unwrap() < &history[0], "history {history:?}");
    }

    #[test]
    fn same_series_crops_embed_closer_than_cross_series() {
        let cfg = BaselineConfig { epochs: 8, ..BaselineConfig::compact(16, 1) };
        let mut m = TLoss::new(cfg);
        let w = level_windows(32, 16, 1);
        m.pretrain(&w);
        let mut ctx = Ctx::eval();
        let a = m.encode_crop(&w, 0, 8, &mut ctx).to_array();
        let p = m.encode_crop(&w, 8, 8, &mut ctx).to_array();
        // Cross-series: compare sample i's crop against sample i+1's.
        let d_pos: f32 = (0..32 * 32)
            .map(|i| (a.data()[i] - p.data()[i]).powi(2))
            .sum::<f32>();
        let mut cross = 0.0f32;
        for s in 0..31 {
            for k in 0..32 {
                cross += (a.data()[s * 32 + k] - p.data()[(s + 1) * 32 + k]).powi(2);
            }
        }
        let d_pos = d_pos / 32.0;
        let cross = cross / 31.0;
        assert!(d_pos < cross, "within {d_pos} vs cross {cross}");
    }
}
