//! Informer (Zhou et al., AAAI 2021), end-to-end: a Transformer forecaster
//! with the *distilling* operation between encoder blocks.
//!
//! Scale note: Informer's ProbSparse attention exists to cut O(T²) cost at
//! T in the thousands; at this reproduction's sequence lengths full
//! attention is cheaper than the sparse bookkeeping, so the blocks use
//! dense attention while the architecture keeps Informer's signature
//! distilling convolutions (stride-2 conv after each block, halving the
//! sequence) and the direct multi-step decoder head.

use crate::common::{embed_chunked, BaselineConfig, EndToEndForecaster};
use timedrl_data::BatchIndices;
use timedrl_nn::{
    clip_grad_norm, AdamW, Conv1d, Ctx, Linear, Module, Optimizer, TransformerBlock,
};
use timedrl_tensor::{NdArray, Prng, Var};

/// The Informer-style end-to-end forecaster.
pub struct Informer {
    cfg: BaselineConfig,
    input_proj: Linear,
    pos: Var,
    blocks: Vec<TransformerBlock>,
    distill: Vec<Conv1d>,
    head: Linear,
    horizon: usize,
    final_len: usize,
}

impl Informer {
    /// Builds the model for a given forecast `horizon`.
    pub fn new(cfg: BaselineConfig, horizon: usize) -> Self {
        let mut rng = Prng::new(cfg.seed ^ 0x1f08_0000);
        let d = cfg.d_model;
        let n_blocks = cfg.depth.clamp(1, 3);
        let blocks = (0..n_blocks)
            .map(|_| TransformerBlock::new(d, 4, d * 2, cfg.dropout, false, &mut rng))
            .collect();
        // A stride-2 "distilling" conv after each block except the last.
        let distill = (0..n_blocks.saturating_sub(1))
            .map(|_| Conv1d::new(d, d, 3, 2, 1, 1, &mut rng))
            .collect::<Vec<_>>();
        let mut final_len = cfg.input_len;
        for _ in 0..distill.len() {
            final_len = timedrl_nn::conv1d_out_len(final_len, 3, 2, 1, 1);
        }
        Self {
            input_proj: Linear::new(cfg.n_features, d, &mut rng),
            pos: Var::parameter(rng.randn(&[cfg.input_len, d]).scale(0.02)),
            blocks,
            distill,
            head: Linear::new(final_len * d, horizon, &mut rng),
            horizon,
            final_len,
            cfg,
        }
    }

    fn encode(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let mut h = self.input_proj.forward(x).add(&self.pos);
        for (i, block) in self.blocks.iter().enumerate() {
            h = block.forward(&h, ctx);
            if let Some(conv) = self.distill.get(i) {
                h = conv.forward(&h.permute(&[0, 2, 1])).gelu().permute(&[0, 2, 1]);
            }
        }
        h
    }

    fn forward(&self, x: &NdArray, ctx: &mut Ctx) -> Var {
        let b = x.shape()[0];
        let h = self.encode(&Var::constant(x.clone()), ctx);
        self.head.forward(&h.reshape(&[b, self.final_len * self.cfg.d_model]))
    }
}

impl Module for Informer {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = vec![self.pos.clone()];
        ps.extend(self.input_proj.parameters());
        ps.extend(self.blocks.iter().flat_map(|b| b.parameters()));
        ps.extend(self.distill.iter().flat_map(|c| c.parameters()));
        ps.extend(self.head.parameters());
        ps
    }
}

impl EndToEndForecaster for Informer {
    fn name(&self) -> &'static str {
        "Informer"
    }

    fn fit(&mut self, inputs: &NdArray, targets: &NdArray) -> Vec<f32> {
        assert_eq!(targets.shape()[1], self.horizon, "horizon mismatch");
        let n = inputs.shape()[0];
        let mut opt = AdamW::new(self.parameters(), self.cfg.lr, 1e-4);
        let mut epoch_rng = Prng::new(self.cfg.seed ^ 0x1f08_0001);
        let mut ctx = Ctx::train(self.cfg.seed ^ 0x1f08_0002);
        let mut history = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            let mut sum = 0.0f64;
            let mut count = 0usize;
            for idx in BatchIndices::new(n, self.cfg.batch_size, Some(&mut epoch_rng))
                .expect("batch_size is positive")
            {
                let x = crate::common::gather(inputs, &idx);
                let y = gather_2d(targets, &idx);
                opt.zero_grad();
                let loss = self.forward(&x, &mut ctx).mse_loss(&y);
                sum += loss.item() as f64;
                loss.backward();
                clip_grad_norm(opt.parameters(), 5.0);
                opt.step();
                count += 1;
            }
            history.push((sum / count.max(1) as f64) as f32);
        }
        history
    }

    fn predict(&self, inputs: &NdArray) -> NdArray {
        embed_chunked(inputs, |chunk, ctx| self.forward(chunk, ctx).to_array())
    }
}

/// Gathers rows of a `[N, H]` matrix.
pub(crate) fn gather_2d(x: &NdArray, indices: &[usize]) -> NdArray {
    let h = x.shape()[1];
    let mut data = Vec::with_capacity(indices.len() * h);
    for &i in indices {
        data.extend_from_slice(&x.data()[i * h..(i + 1) * h]);
    }
    NdArray::from_vec(&[indices.len(), h], data).expect("gather_2d")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_task(n: usize, l: usize, h: usize, seed: u64) -> (NdArray, NdArray) {
        let mut rng = Prng::new(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let phase = rng.uniform_in(0.0, std::f32::consts::TAU);
            for t in 0..l {
                xs.push((t as f32 * 0.4 + phase).sin());
            }
            for t in 0..h {
                ys.push(((l + t) as f32 * 0.4 + phase).sin());
            }
        }
        (
            NdArray::from_vec(&[n, l, 1], xs).unwrap(),
            NdArray::from_vec(&[n, h], ys).unwrap(),
        )
    }

    #[test]
    fn training_reduces_mse() {
        let cfg = BaselineConfig { epochs: 8, depth: 2, ..BaselineConfig::compact(16, 1) };
        let mut m = Informer::new(cfg, 4);
        let (x, y) = sine_task(48, 16, 4, 0);
        let history = m.fit(&x, &y);
        assert!(history.last().unwrap() < &history[0], "history {history:?}");
    }

    #[test]
    fn distilling_halves_sequence() {
        let cfg = BaselineConfig { depth: 3, ..BaselineConfig::compact(16, 1) };
        let m = Informer::new(cfg, 4);
        // Two distilling convs: 16 -> 8 -> 4.
        assert_eq!(m.final_len, 4);
    }

    #[test]
    fn predictions_have_horizon_shape() {
        let cfg = BaselineConfig { epochs: 1, depth: 2, ..BaselineConfig::compact(16, 1) };
        let mut m = Informer::new(cfg, 4);
        let (x, y) = sine_task(8, 16, 4, 1);
        m.fit(&x, &y);
        assert_eq!(m.predict(&x).shape(), &[8, 4]);
    }

    #[test]
    fn learns_predictable_signal_beyond_mean() {
        let cfg = BaselineConfig { epochs: 15, depth: 2, lr: 2e-3, ..BaselineConfig::compact(16, 1) };
        let mut m = Informer::new(cfg, 4);
        let (x, y) = sine_task(96, 16, 4, 2);
        m.fit(&x, &y);
        let pred = m.predict(&x);
        let err = timedrl_eval::mse(&pred, &y);
        // Targets are sin values: variance 0.5; the model must beat the
        // mean predictor clearly.
        assert!(err < 0.3, "mse {err}");
    }
}
