//! Property-based tests for the neural-network layer invariants.

use testkit::{prop, prop_assert, prop_assert_eq};
use timedrl_nn::{
    BatchNorm1d, Ctx, LayerNorm, Linear, Module, MultiHeadAttention, Sgd, Optimizer,
};
use timedrl_tensor::{NdArray, Prng, Var};

prop! {
    #![config(cases = 24)]

    fn linear_is_affine(seed in 0u64..500, n in 1usize..5) {
        // f(a + b) - f(b) == f(a) - f(0): affine maps have constant slope.
        let mut rng = Prng::new(seed);
        let l = Linear::new(4, 3, &mut rng);
        let a = rng.randn(&[n, 4]);
        let b = rng.randn(&[n, 4]);
        let f = |x: &NdArray| l.forward(&Var::constant(x.clone())).to_array();
        let lhs = f(&a.add(&b)).sub(&f(&b));
        let rhs = f(&a).sub(&f(&NdArray::zeros(&[n, 4])));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    fn layernorm_is_shift_invariant(seed in 0u64..500, shift in -20.0f32..20.0) {
        // Adding a constant to every feature leaves the normalized output
        // unchanged (mean removal).
        let mut rng = Prng::new(seed);
        let ln = LayerNorm::new(8);
        let x = rng.randn(&[3, 8]);
        let y1 = ln.forward(&Var::constant(x.clone())).to_array();
        let y2 = ln.forward(&Var::constant(x.add_scalar(shift))).to_array();
        prop_assert!(y1.max_abs_diff(&y2) < 1e-3);
    }

    fn layernorm_is_scale_invariant(seed in 0u64..500, scale in 0.1f32..10.0) {
        let mut rng = Prng::new(seed);
        let ln = LayerNorm::new(8);
        let x = rng.randn(&[3, 8]);
        let y1 = ln.forward(&Var::constant(x.clone())).to_array();
        let y2 = ln.forward(&Var::constant(x.scale(scale))).to_array();
        prop_assert!(y1.max_abs_diff(&y2) < 1e-2);
    }

    fn batchnorm_output_statistics(seed in 0u64..500) {
        let mut rng = Prng::new(seed);
        let bn = BatchNorm1d::new(4);
        let x = rng.randn(&[64, 4]).scale(rng.uniform_in(0.5, 5.0)).add_scalar(rng.uniform_in(-5.0, 5.0));
        let y = bn.forward(&Var::constant(x), true).to_array();
        let mean = y.mean_axis(0, false);
        let var = y.var_axis(0, false);
        for c in 0..4 {
            prop_assert!(mean.data()[c].abs() < 1e-3);
            prop_assert!((var.data()[c] - 1.0).abs() < 0.05);
        }
    }

    fn attention_is_permutation_sensitive_but_shape_stable(seed in 0u64..200) {
        let mut rng = Prng::new(seed);
        let attn = MultiHeadAttention::new(8, 2, false, 0.0, &mut rng);
        let x = rng.randn(&[1, 4, 8]);
        let y = attn.forward(&Var::constant(x.clone()), &mut Ctx::eval());
        prop_assert_eq!(y.shape(), vec![1, 4, 8]);
        prop_assert!(!y.to_array().has_non_finite());
    }

    fn sgd_step_moves_against_gradient(seed in 0u64..500, lr in 0.001f32..0.5) {
        let mut rng = Prng::new(seed);
        let w = Var::parameter(rng.randn(&[4]));
        let before = w.to_array();
        let target = NdArray::zeros(&[4]);
        let mut opt = Sgd::new(vec![w.clone()], lr, 0.0);
        opt.zero_grad();
        let loss_before = w.mse_loss(&target).item();
        w.mse_loss(&target).backward();
        opt.step();
        let loss_after = Var::parameter(w.to_array()).mse_loss(&target).item();
        // A single small step on a convex quadratic cannot increase loss.
        prop_assert!(loss_after <= loss_before + 1e-6, "loss {loss_before} -> {loss_after}");
        prop_assert!(w.to_array().max_abs_diff(&before) > 0.0 || loss_before == 0.0);
    }

    fn dropout_expectation_preserved(seed in 0u64..200, p in 0.05f32..0.8) {
        let mut ctx = Ctx::train(seed);
        let x = Var::constant(NdArray::ones(&[64, 64]));
        let y = x.dropout(p, ctx.training, &mut ctx.rng).to_array();
        // Inverted dropout: E[y] == 1 within sampling tolerance.
        prop_assert!((y.mean() - 1.0).abs() < 0.12, "mean {} at p {p}", y.mean());
    }

    fn module_parameter_counts_are_stable(seed in 0u64..100) {
        let mut rng = Prng::new(seed);
        let l = Linear::new(7, 3, &mut rng);
        prop_assert_eq!(l.num_parameters(), 7 * 3 + 3);
        prop_assert_eq!(l.parameters().len(), 2);
    }
}
