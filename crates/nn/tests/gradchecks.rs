//! Finite-difference gradient checks for the composite layers: multi-head
//! attention, the Transformer block in both sublayer arrangements, and
//! Conv1d. Each check differentiates a scalar loss through the full layer
//! with respect to the *input*, which exercises every internal op's
//! backward pass along the way.
//!
//! All checks run in eval mode (dropout off) so the loss is a smooth,
//! deterministic function of the probe point.

use timedrl_nn::transformer::TransformerBlock;
use timedrl_nn::{BiLstm, Conv1d, Ctx, Gru, Lstm, MultiHeadAttention, Tcn, TemporalBlock};
use timedrl_tensor::gradcheck::assert_gradients_close;
use timedrl_tensor::Prng;

#[test]
fn multi_head_attention_gradcheck() {
    let mut rng = Prng::new(100);
    let attn = MultiHeadAttention::new(8, 2, false, 0.0, &mut rng);
    let x = rng.randn(&[2, 3, 8]);
    assert_gradients_close(&x, 1e-2, 2e-2, |v| {
        attn.forward(v, &mut Ctx::eval()).powf(2.0).mean()
    });
}

#[test]
fn causal_attention_gradcheck() {
    let mut rng = Prng::new(101);
    let attn = MultiHeadAttention::new(8, 2, true, 0.0, &mut rng);
    let x = rng.randn(&[1, 4, 8]);
    assert_gradients_close(&x, 1e-2, 2e-2, |v| {
        attn.forward(v, &mut Ctx::eval()).powf(2.0).mean()
    });
}

#[test]
fn post_norm_transformer_block_gradcheck() {
    let mut rng = Prng::new(102);
    let block = TransformerBlock::new(8, 2, 16, 0.0, false, &mut rng);
    let x = rng.randn(&[2, 3, 8]);
    assert_gradients_close(&x, 1e-2, 2e-2, |v| {
        block.forward(v, &mut Ctx::eval()).powf(2.0).mean()
    });
}

#[test]
fn pre_norm_transformer_block_gradcheck() {
    let mut rng = Prng::new(103);
    let block = TransformerBlock::new(8, 2, 16, 0.0, false, &mut rng).with_pre_norm();
    let x = rng.randn(&[2, 3, 8]);
    assert_gradients_close(&x, 1e-2, 2e-2, |v| {
        block.forward(v, &mut Ctx::eval()).powf(2.0).mean()
    });
}

#[test]
fn pre_norm_and_post_norm_blocks_differ() {
    // Same weights, different wiring: the two arrangements must not be
    // numerically identical (that would mean with_pre_norm is a no-op).
    let make = |pre: bool| {
        let mut rng = Prng::new(104);
        let b = TransformerBlock::new(8, 2, 16, 0.0, false, &mut rng);
        if pre {
            b.with_pre_norm()
        } else {
            b
        }
    };
    let x = Prng::new(105).randn(&[2, 3, 8]);
    let post = make(false)
        .forward(&timedrl_tensor::Var::constant(x.clone()), &mut Ctx::eval())
        .to_array();
    let pre = make(true)
        .forward(&timedrl_tensor::Var::constant(x), &mut Ctx::eval())
        .to_array();
    assert_eq!(post.shape(), pre.shape());
    assert!(post.max_abs_diff(&pre) > 1e-3);
}

#[test]
fn conv1d_gradcheck() {
    let mut rng = Prng::new(106);
    let conv = Conv1d::new(3, 4, 3, 1, 1, 1, &mut rng);
    let x = rng.randn(&[2, 3, 6]);
    assert_gradients_close(&x, 1e-2, 2e-2, |v| conv.forward(v).powf(2.0).mean());
}

#[test]
fn strided_dilated_conv1d_gradcheck() {
    let mut rng = Prng::new(107);
    let conv = Conv1d::new(2, 3, 3, 2, 2, 2, &mut rng);
    let x = rng.randn(&[1, 2, 9]);
    assert_gradients_close(&x, 1e-2, 2e-2, |v| conv.forward(v).powf(2.0).mean());
}

#[test]
fn lstm_gradcheck() {
    let mut rng = Prng::new(108);
    let lstm = Lstm::new(4, 6, &mut rng);
    let x = rng.randn(&[2, 5, 4]);
    assert_gradients_close(&x, 1e-2, 2e-2, |v| lstm.forward(v).powf(2.0).mean());
}

#[test]
fn bilstm_gradcheck() {
    let mut rng = Prng::new(109);
    let lstm = BiLstm::new(3, 4, &mut rng);
    let x = rng.randn(&[1, 4, 3]);
    assert_gradients_close(&x, 1e-2, 2e-2, |v| lstm.forward(v).powf(2.0).mean());
}

#[test]
fn gru_gradcheck() {
    let mut rng = Prng::new(110);
    let gru = Gru::new(4, 5, &mut rng);
    let x = rng.randn(&[2, 5, 4]);
    assert_gradients_close(&x, 1e-2, 2e-2, |v| gru.forward(v).powf(2.0).mean());
}

#[test]
fn temporal_block_gradcheck() {
    let mut rng = Prng::new(111);
    let block = TemporalBlock::new(3, 5, 3, 2, 0.0, &mut rng);
    let x = rng.randn(&[1, 3, 8]);
    assert_gradients_close(&x, 1e-2, 2e-2, |v| {
        block.forward(v, &mut Ctx::eval()).powf(2.0).mean()
    });
}

#[test]
fn tcn_gradcheck() {
    let mut rng = Prng::new(112);
    let tcn = Tcn::new(2, &[4, 4], 3, 0.0, &mut rng);
    let x = rng.randn(&[1, 2, 8]);
    assert_gradients_close(&x, 1e-2, 2e-2, |v| {
        tcn.forward(v, &mut Ctx::eval()).powf(2.0).mean()
    });
}
