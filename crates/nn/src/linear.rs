//! Fully connected layers and dropout wrappers.

use crate::module::{Ctx, Module};
use timedrl_tensor::{NdArray, Prng, Var};

/// A dense affine layer `y = x W + b`.
///
/// The weight is stored `[in, out]` so both `[N, in]` and `[B, T, in]`
/// inputs multiply without a transpose. The backward pass is equally
/// transpose-free: `dX = G·Wᵀ` and `dW = Xᵀ·G` run through the
/// transpose-aware GEMM kernels (`matmul_nt`/`matmul_tn`, DESIGN.md §12),
/// and for `[B, T, in]` inputs the weight gradient folds the batch
/// directly over the contiguous `[B*T, ·]` data — no transposed or
/// reshaped copies anywhere in the layer's hot path.
pub struct Linear {
    weight: Var,
    bias: Option<Var>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Prng) -> Self {
        // Xavier fans are derived from [out, in]; generate then transpose
        // into the [in, out] storage layout.
        let w = rng.xavier_uniform(&[out_features, in_features]).transpose();
        Self {
            weight: Var::parameter(w),
            bias: Some(Var::parameter(NdArray::zeros(&[out_features]))),
            in_features,
            out_features,
        }
    }

    /// Creates a layer without a bias term.
    pub fn new_no_bias(in_features: usize, out_features: usize, rng: &mut Prng) -> Self {
        let mut l = Self::new(in_features, out_features, rng);
        l.bias = None;
        l
    }

    /// Applies the layer to `[..., in]`-shaped input.
    pub fn forward(&self, x: &Var) -> Var {
        let y = x.matmul(&self.weight);
        match &self.bias {
            Some(b) => y.add(b),
            None => y,
        }
    }

    /// Overwrites the layer's weights (`[in, out]`) and, when present,
    /// bias (`[out]`). Used to initialize fine-tuning heads from a
    /// closed-form probe solution (LP-FT).
    pub fn load(&self, weight: NdArray, bias: Option<NdArray>) {
        self.weight.set_value(weight);
        if let (Some(slot), Some(b)) = (&self.bias, bias) {
            slot.set_value(b);
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

/// Inverted-dropout layer: a thin named wrapper over [`Var::dropout`].
///
/// TimeDRL relies on encoder-internal dropout as its *only* source of view
/// randomness (Section IV-C), so the probability is surfaced prominently in
/// every encoder configuration rather than hidden inside blocks.
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Self { p }
    }

    /// Applies dropout under the context's training flag.
    pub fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        x.dropout(self.p, ctx.training, &mut ctx.rng)
    }

    /// The configured drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Module for Dropout {
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes() {
        let mut rng = Prng::new(0);
        let l = Linear::new(8, 3, &mut rng);
        let x = Var::constant(rng.randn(&[5, 8]));
        assert_eq!(l.forward(&x).shape(), vec![5, 3]);
        let x3 = Var::constant(rng.randn(&[2, 7, 8]));
        assert_eq!(l.forward(&x3).shape(), vec![2, 7, 3]);
    }

    #[test]
    fn linear_zero_input_gives_bias() {
        let mut rng = Prng::new(1);
        let l = Linear::new(4, 2, &mut rng);
        let y = l.forward(&Var::constant(NdArray::zeros(&[1, 4])));
        // Bias initializes to zero.
        assert_eq!(y.to_array().data(), &[0.0, 0.0]);
    }

    #[test]
    fn linear_param_count() {
        let mut rng = Prng::new(2);
        assert_eq!(Linear::new(8, 3, &mut rng).num_parameters(), 8 * 3 + 3);
        assert_eq!(Linear::new_no_bias(8, 3, &mut rng).num_parameters(), 24);
    }

    #[test]
    fn linear_is_trainable() {
        let mut rng = Prng::new(3);
        let l = Linear::new(3, 1, &mut rng);
        let x = Var::constant(rng.randn(&[10, 3]));
        let target = rng.randn(&[10, 1]);
        let loss = l.forward(&x).mse_loss(&target);
        loss.backward();
        for p in l.parameters() {
            assert!(p.grad().is_some(), "every parameter receives gradient");
        }
    }

    #[test]
    fn dropout_respects_ctx() {
        let d = Dropout::new(0.5);
        let x = Var::constant(NdArray::ones(&[16, 16]));
        let mut eval = Ctx::eval();
        assert_eq!(d.forward(&x, &mut eval).to_array(), x.to_array());
        let mut train = Ctx::train(7);
        let y = d.forward(&x, &mut train).to_array();
        assert!(y.data().contains(&0.0), "training dropout zeroes entries");
    }
}
