//! # timedrl-nn
//!
//! Neural-network building blocks on top of the `timedrl-tensor` autograd
//! engine: layers (Linear, Dropout, LayerNorm, BatchNorm1d, multi-head
//! attention, Transformer blocks, LSTM/Bi-LSTM, Conv1d/TCN/1-D ResNet),
//! optimizers (SGD, Adam, AdamW), and the losses used by TimeDRL and its
//! baselines.
//!
//! All stochastic layers draw from the [`Ctx`] passed through `forward`,
//! which carries the train/eval switch and a seeded RNG — the dropout
//! randomness that TimeDRL's instance-contrastive task turns into its two
//! augmentation-free views.

#![warn(missing_docs)]

pub mod attention;
pub mod conv;
pub mod gru;
pub mod linear;
pub mod loss;
pub mod lstm;
pub mod module;
pub mod norm;
pub mod optim;
pub mod resnet;
pub mod schedule;
pub mod tcn;
pub mod transformer;

pub use attention::MultiHeadAttention;
pub use conv::{conv1d_out_len, Conv1d};
pub use gru::Gru;
pub use linear::{Dropout, Linear};
pub use lstm::{BiLstm, Lstm};
pub use module::{clip_grad_norm, Ctx, Module};
pub use norm::{BatchNorm1d, LayerNorm};
pub use optim::{Adam, AdamW, OptimState, Optimizer, Sgd};
pub use resnet::{BasicBlock1d, ResNet1d};
pub use schedule::{ConstantLr, LrSchedule, StepDecay, WarmupCosine};
pub use tcn::{CausalConv1d, Tcn, TemporalBlock};
pub use transformer::{TransformerBlock, TransformerConfig, TransformerEncoder};
